"""Edge cases for the trace utilities (repro.sim.trace)."""

import pytest

from repro.sim.trace import (ALU, InstructionMix, LOAD, STORE, SYNC,
                             TraceOp, measure_mix, validate_trace)


class TestMeasureMix:
    def test_empty_trace_is_all_zero(self):
        mix = measure_mix([])
        assert (mix.store, mix.load, mix.sync, mix.other) == \
            (0.0, 0.0, 0.0, 0.0)
        # The empty mix is intentionally not a valid distribution.
        with pytest.raises(ValueError):
            mix.validate()

    def test_fractions_sum_to_one(self):
        trace = [TraceOp(STORE, 0), TraceOp(LOAD, 8),
                 TraceOp(ALU), TraceOp(SYNC)]
        mix = measure_mix(trace)
        mix.validate()
        assert mix.store == mix.load == mix.sync == mix.other == 0.25

    def test_single_kind_trace(self):
        mix = measure_mix([TraceOp(STORE, 0)] * 7)
        mix.validate()
        assert mix.store == 1.0
        assert mix.load == mix.sync == mix.other == 0.0

    def test_non_divisible_counts_stay_exact(self):
        # 1/3 is not representable in decimal; the fractions must
        # still sum to 1.0 within the validator's 1e-6 tolerance.
        trace = [TraceOp(STORE, 0), TraceOp(LOAD, 8), TraceOp(ALU)]
        mix = measure_mix(trace)
        mix.validate()
        assert mix.store == pytest.approx(1 / 3)

    def test_percentages_rounding(self):
        mix = measure_mix([TraceOp(STORE, 0)] * 3 + [TraceOp(ALU)] * 5)
        pct = mix.as_percentages()
        assert pct["Store"] == pytest.approx(37.5)
        assert pct["Others"] == pytest.approx(62.5)
        assert sum(pct.values()) == pytest.approx(100.0)

    def test_validate_rejects_short_mix(self):
        with pytest.raises(ValueError, match="sums to"):
            InstructionMix(store=0.5, load=0.2, sync=0.0,
                           other=0.0).validate()


class TestValidateTrace:
    def test_accepts_all_known_kinds_and_counts(self):
        trace = [TraceOp(LOAD, 0), TraceOp(STORE, 8), TraceOp(ALU),
                 TraceOp(SYNC)]
        assert validate_trace(trace) == 4

    def test_empty_trace_is_length_zero(self):
        assert validate_trace([]) == 0

    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError, match="bad trace op kind"):
            validate_trace([TraceOp("X", 0)])

    def test_error_reports_offending_index(self):
        trace = [TraceOp(LOAD, 0), TraceOp(STORE, 8), TraceOp("?", 0)]
        with pytest.raises(ValueError, match="index 2"):
            validate_trace(trace)

    def test_consumes_generators(self):
        gen = (TraceOp(ALU) for _ in range(5))
        assert validate_trace(gen) == 5

    def test_rejects_lowercase_kind(self):
        with pytest.raises(ValueError):
            validate_trace([TraceOp("s", 0)])
