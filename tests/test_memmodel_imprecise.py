"""Tests for the imprecise-store-exception formalism and proofs."""

import pytest

from repro.memmodel import PC, WC, allowed_outcomes
from repro.memmodel.events import Event, EventKind, program
from repro.memmodel.imprecise import (
    DrainPolicy,
    interface_fifo_edges,
    protocol_chain_is_total,
    transform,
)
from repro.memmodel.proofs import (
    ADDR_A,
    ADDR_B,
    demonstrate_figure2_race,
    observable_outcomes,
    prove_rule_suite,
    prove_store_store_rule,
)


def writer_thread():
    return list(program(0, [("S", ADDR_A, 1), ("S", ADDR_B, 1)]))


class TestTransform:
    def test_same_stream_routes_fault_and_younger(self):
        w = writer_thread()
        tr = transform([w], [w[0].uid], DrainPolicy.SAME_STREAM)
        assert tr.threads[0] == []  # both stores routed
        kinds = [e.kind for e in tr.extra_events]
        assert kinds.count(EventKind.OS_STORE) == 2
        assert kinds.count(EventKind.PUT) == 2

    def test_same_stream_keeps_older_stores(self):
        w = writer_thread()
        tr = transform([w], [w[1].uid], DrainPolicy.SAME_STREAM)
        # Only S(B) faulting: S(A) stays in the thread.
        assert [e.addr for e in tr.threads[0]] == [ADDR_A]
        assert len([e for e in tr.extra_events
                    if e.kind is EventKind.OS_STORE]) == 1

    def test_split_stream_routes_only_faulting(self):
        w = writer_thread()
        tr = transform([w], [w[0].uid], DrainPolicy.SPLIT_STREAM)
        assert [e.addr for e in tr.threads[0]] == [ADDR_B]
        os_stores = [e for e in tr.extra_events
                     if e.kind is EventKind.OS_STORE]
        assert [e.addr for e in os_stores] == [ADDR_A]

    def test_protocol_chain_order(self):
        w = writer_thread()
        tr = transform([w], [w[0].uid], DrainPolicy.SAME_STREAM)
        assert protocol_chain_is_total(tr)
        kinds = [e.kind for e in sorted(
            (e for e in tr.extra_events), key=lambda e: e.index)]
        assert kinds[0] is EventKind.DETECT
        assert kinds[-1] is EventKind.RESOLVE

    def test_fifo_adds_older_store_to_detect_edge(self):
        w = writer_thread()
        tr = transform([w], [w[1].uid], DrainPolicy.SAME_STREAM, fifo=True)
        detect = [e for e in tr.extra_events
                  if e.kind is EventKind.DETECT][0]
        assert (w[0].uid, detect.uid) in tr.protocol_order

    def test_no_fifo_for_wc(self):
        w = writer_thread()
        tr = transform([w], [w[1].uid], DrainPolicy.SAME_STREAM, fifo=False)
        detect = [e for e in tr.extra_events
                  if e.kind is EventKind.DETECT][0]
        assert (w[0].uid, detect.uid) not in tr.protocol_order

    def test_faulting_load_rejected(self):
        t = list(program(0, [("L", ADDR_A)]))
        with pytest.raises(ValueError, match="not a store"):
            transform([t], [t[0].uid], DrainPolicy.SAME_STREAM)

    def test_non_faulting_thread_untouched(self):
        w = writer_thread()
        obs = list(program(1, [("L", ADDR_B)]))
        tr = transform([w, obs], [w[0].uid], DrainPolicy.SAME_STREAM)
        assert tr.threads[1] == obs

    def test_os_store_preserves_address_and_data(self):
        w = writer_thread()
        tr = transform([w], [w[0].uid], DrainPolicy.SAME_STREAM)
        s_os = tr.os_stores[w[0].uid]
        assert s_os.addr == ADDR_A and s_os.value == 1
        assert s_os.kind is EventKind.OS_STORE

    def test_resolve_registered_per_core(self):
        w = writer_thread()
        tr = transform([w], [w[0].uid], DrainPolicy.SAME_STREAM)
        assert 0 in tr.resolves


class TestInterfaceFifo:
    def test_put_get_pairing_edges(self):
        puts = list(program(0, [("S", 1, 1), ("S", 2, 2)]))
        gets = list(program(1, [("L", 1), ("L", 2)]))
        edges = interface_fifo_edges(puts, gets)
        assert (puts[0].uid, puts[1].uid) in edges
        assert (gets[0].uid, gets[1].uid) in edges
        assert (puts[0].uid, gets[0].uid) in edges
        assert (puts[1].uid, gets[1].uid) in edges


class TestProof1:
    def test_store_store_rule_holds(self):
        report = prove_store_store_rule()
        assert report.holds, report.summary()

    def test_all_four_cases_present(self):
        report = prove_store_store_rule()
        assert len(report.cases) == 4
        assert {c.faulting for c in report.cases} == {
            (), ("B",), ("A", "B"), ("A",)}

    def test_each_case_outcome_set_matches_baseline(self):
        report = prove_store_store_rule()
        for case in report.cases:
            # Not just subset: same-stream is fully transparent here.
            assert case.observed == case.baseline, case.label

    def test_rule_suite_all_hold(self):
        for report in prove_rule_suite():
            assert report.holds, report.summary()


class TestFigure2Race:
    def test_matches_paper(self):
        demo = demonstrate_figure2_race()
        assert demo.matches_paper, demo.summary()

    def test_split_stream_superset_of_baseline(self):
        demo = demonstrate_figure2_race()
        assert demo.baseline_outcomes < demo.split_outcomes

    def test_same_stream_within_baseline(self):
        demo = demonstrate_figure2_race()
        assert demo.same_outcomes <= demo.baseline_outcomes

    def test_wc_tolerates_split_stream(self):
        """The paper: 'such execution is legal in WC' — the Fig 2a
        outcome is not a WC violation because WC never ordered the two
        stores in the first place."""
        w = writer_thread()
        obs = list(program(1, [("L", ADDR_B), ("L", ADDR_A)]))
        fault_a = [w[0].uid]
        wc_base = observable_outcomes([w, obs], WC)
        wc_split = observable_outcomes(
            [w, obs], WC, fault_a, DrainPolicy.SPLIT_STREAM, fifo=False)
        assert wc_split <= wc_base


class TestResumeEdge:
    def test_resume_orders_reexecution_after_resolve(self):
        """§4.4: RESOLVE <m the re-executed instruction."""
        w = writer_thread()
        obs = list(program(1, [("L", ADDR_A)]))
        tr = transform([w], [w[0].uid], DrainPolicy.SAME_STREAM)
        edge = tr.resume_edge(0, obs[0])
        assert edge == (tr.resolves[0], obs[0].uid)
        # With the resume edge, the observer load must see the OS store.
        allowed = allowed_outcomes(
            tr.threads + [obs], PC,
            extra_events=tr.extra_events,
            protocol_order=set(tr.protocol_order) | {edge},
        )
        assert all(dict(o)["r1.0"] == 1 for o in allowed)
