"""Litmus linter: per-rule unit tests, the corpus-clean invariant,
and the ``repro lint`` CLI.

The corpus-clean assertion is the hard form of the implicit-zero
satellite: no library, generated, or shipped ``.litmus`` test may
depend on a never-written register (L001) or any other error rule —
the DSL would silently compile such reads as zero, so the linter
makes them loud instead of whitelisting them.
"""

import json
from pathlib import Path

import pytest

from repro.cli import main
from repro.litmus.dsl import LitmusTest, LitmusOutcome
from repro.litmus.generator import generate_all
from repro.litmus.library import all_library_tests
from repro.litmus.parser import load_litmus_directory
from repro.staticanalysis import (LINT_RULES, has_lint_errors, lint_file,
                                  lint_test, lint_tests)

REPO = Path(__file__).resolve().parents[1]


def rules_of(findings):
    return sorted(f.rule for f in findings)


class TestLintRules:
    def test_l001_dependency_on_never_written_register(self):
        test = LitmusTest(name="t", category="x", threads=[
            [("Raddr", "x", "r0", "ghost")]])
        findings = lint_test(test)
        assert "L001" in rules_of(findings)
        finding = next(f for f in findings if f.rule == "L001")
        assert finding.severity == "error"
        assert finding.thread == 0 and finding.op == 0
        assert "ghost" in finding.message

    def test_l001_satisfied_by_earlier_producer(self):
        test = LitmusTest(name="t", category="x", threads=[
            [("R", "x", "r0"), ("Waddr", "y", 1, "r0")]])
        assert "L001" not in rules_of(lint_test(test))

    def test_l001_producer_must_be_earlier_in_program_order(self):
        test = LitmusTest(name="t", category="x", threads=[
            [("Wdata", "y", 1, "r0"), ("R", "x", "r0")]])
        assert "L001" in rules_of(lint_test(test))

    def test_l002_spotlight_register_never_written(self):
        test = LitmusTest(name="t", category="x",
                          threads=[[("W", "x", 1)]],
                          spotlight=LitmusOutcome.of(r9=1))
        assert "L002" in rules_of(lint_test(test))

    def test_l003_duplicate_observation_register(self):
        test = LitmusTest(name="t", category="x", threads=[
            [("R", "x", "r0")], [("R", "y", "r0")]])
        findings = lint_test(test)
        assert "L003" in rules_of(findings)
        assert "T0.0" in findings[0].message
        assert "T1.0" in findings[0].message

    def test_l004_init_for_unknown_location_warns(self):
        test = LitmusTest(name="t", category="x",
                          threads=[[("R", "x", "r0")]],
                          init={"zz": 1, "x": 0})
        findings = lint_test(test)
        assert rules_of(findings) == ["L004"]
        assert findings[0].severity == "warning"
        assert not has_lint_errors(findings)

    def test_l004_init_for_missing_thread(self):
        test = LitmusTest(name="t", category="x",
                          threads=[[("R", "x", "r0")]],
                          init={(3, "x5"): 1})
        assert rules_of(lint_test(test)) == ["L004"]

    def test_l006_unreachable_final_condition(self):
        test = LitmusTest(name="t", category="x",
                          threads=[[("W", "x", 1), ("R", "x", "r0")]],
                          spotlight=LitmusOutcome.of(r0=7))
        findings = lint_test(test)
        assert "L006" in rules_of(findings)
        assert "[0, 1]" in findings[0].message

    def test_l006_zero_is_always_feasible(self):
        test = LitmusTest(name="t", category="x",
                          threads=[[("R", "x", "r0")]],
                          spotlight=LitmusOutcome.of(r0=0))
        assert lint_test(test) == []

    def test_ignore_drops_whole_rules(self):
        test = LitmusTest(name="t", category="x", threads=[
            [("Raddr", "x", "r0", "ghost")]])
        assert "L001" not in rules_of(lint_test(test, ignore=("L001",)))

    def test_l000_unparseable_file(self, tmp_path):
        path = tmp_path / "broken.litmus"
        path.write_text("RISCV X\n P0 ;\n bogus x1,x2 ;\n")
        findings = lint_file(path)
        assert rules_of(findings) == ["L000"]
        assert findings[0].test == "broken.litmus"

    def test_rule_catalogue_is_closed(self):
        assert set(LINT_RULES) == {
            "L000", "L001", "L002", "L003", "L004", "L005", "L006",
            "L007"}
        assert all(sev in ("error", "warning")
                   for sev, _ in LINT_RULES.values())

    def test_findings_are_machine_readable(self):
        test = LitmusTest(name="t", category="x", threads=[
            [("Rctrl", "x", "r0", "ghost")]])
        payload = [f.as_dict() for f in lint_test(test)]
        json.dumps(payload)
        assert payload[0]["rule"] == "L001"


class TestL007FsbGadget:
    """L007: faulting-store data used as an address (the transient
    leak-gadget shape the taint analyzer reports as a transmit
    channel)."""

    GADGET = [("W", "x", 1), ("R", "x", "r0"),
              ("Raddr", "y", "r1", "r0")]

    def test_store_forward_addr_use_is_flagged(self):
        test = LitmusTest(name="t", category="x",
                          threads=[list(self.GADGET)])
        findings = lint_test(test)
        assert "L007" in rules_of(findings)
        finding = next(f for f in findings if f.rule == "L007")
        assert finding.severity == "warning"
        assert not has_lint_errors(findings)
        assert finding.thread == 0 and finding.op == 2
        assert "T0.0" in finding.message

    def test_waddr_sink_is_flagged_too(self):
        test = LitmusTest(name="t", category="x", threads=[
            [("W", "x", 1), ("R", "x", "r0"),
             ("Waddr", "y", 1, "r0")]])
        assert "L007" in rules_of(lint_test(test))

    def test_fsb_barrier_between_store_and_use_suppresses(self):
        # A store-ordering fence drains the FSB: the forwarded value
        # is architectural by the time it becomes an address.
        for barrier in (("F",), ("A", "z", 1, "a0")):
            ops = list(self.GADGET)
            ops.insert(1, barrier)
            test = LitmusTest(name="t", category="x", threads=[ops])
            assert "L007" not in rules_of(lint_test(test)), barrier

    def test_load_order_fence_does_not_suppress(self):
        # r,r fences don't wait for the FSB (ImpreciseMachine
        # semantics) — the gadget survives them.
        from repro.memmodel.events import FenceKind
        ops = list(self.GADGET)
        ops.insert(1, ("F", FenceKind.LOAD_LOAD))
        test = LitmusTest(name="t", category="x", threads=[ops])
        assert "L007" in rules_of(lint_test(test))

    def test_no_earlier_store_no_finding(self):
        test = LitmusTest(name="t", category="x", threads=[
            [("R", "x", "r0"), ("Raddr", "y", "r1", "r0")]])
        assert "L007" not in rules_of(lint_test(test))

    def test_data_and_ctrl_sinks_are_not_l007(self):
        # The rule is about *address* formation specifically.
        test = LitmusTest(name="t", category="x", threads=[
            [("W", "x", 1), ("R", "x", "r0"),
             ("Wdata", "y", 1, "r0"), ("Rctrl", "z", "r2", "r0")]])
        assert "L007" not in rules_of(lint_test(test))

    def test_register_reassignment_clears_taint(self):
        # A later load of a never-stored location overwrites r0 with
        # clean data before the address use.
        test = LitmusTest(name="t", category="x", threads=[
            [("W", "x", 1), ("R", "x", "r0"), ("R", "z", "r0"),
             ("Raddr", "y", "r1", "r0")]])
        assert "L007" not in rules_of(lint_test(test))

    def test_corpus_l007_status_is_pinned(self):
        # The only shipped programs with the gadget shape are the two
        # PPOCA-lite variants — deliberately: their W;R;Raddr chain IS
        # the speculative-forwarding shape the family documents.
        findings = [f for f in lint_tests(generate_all()
                                          + all_library_tests())
                    if f.rule == "L007"]
        assert sorted(f.test for f in findings) == [
            "PPOCA-lite-v1", "PPOCA-lite-v2"]

    def test_randgen_emitter_exempts_l007_only(self):
        # Gadget-shaped generated tests are wanted (they exercise the
        # taint analyzer) — the emitter must not refuse them, while
        # still raising on genuine well-formedness findings.
        from repro.litmus.randgen import generate_corpus
        corpus = generate_corpus(seed=3, count=40)
        assert len(corpus.tests) == 40
        findings = lint_tests([g.test for g in corpus.tests])
        assert not has_lint_errors(findings)


class TestCorpusIsClean:
    """The whole shipped corpus must lint clean — the implicit-zero
    behaviour has no legitimate user, so there is no whitelist."""

    def test_library_and_generated(self):
        # Error-free always; the only warnings are the two annotated
        # PPOCA-lite L007 gadgets (TestL007FsbGadget pins the list).
        findings = lint_tests(generate_all() + all_library_tests())
        assert not has_lint_errors(findings), \
            [f.render() for f in findings]
        assert {f.rule for f in findings} <= {"L007"}, \
            [f.render() for f in findings]

    def test_shipped_litmus_files(self):
        tests = load_litmus_directory(REPO / "litmus_files")
        assert len(tests) >= 8
        findings = lint_tests(tests)
        assert findings == [], [f.render() for f in findings]

    def test_invalid_fixtures_are_not_silently_loaded(self):
        names = {t.name
                 for t in load_litmus_directory(REPO / "litmus_files")}
        assert not any("DUP" in name for name in names)


class TestLintCli:
    def test_lint_all_is_clean(self, capsys):
        assert main(["lint", "--all"]) == 0
        out = capsys.readouterr().out
        assert "0 error(s)" in out

    def test_lint_named_test(self, capsys):
        assert main(["lint", "MP"]) == 0
        assert "1 test(s) scanned" in capsys.readouterr().out

    def test_lint_invalid_directory_fails_with_findings(self, capsys):
        rc = main(["lint", "--files",
                   str(REPO / "litmus_files" / "invalid")])
        assert rc == 1
        out = capsys.readouterr().out
        assert "L000" in out and "duplicate initialiser" in out

    def test_lint_json_report(self, tmp_path, capsys):
        path = tmp_path / "lint.json"
        rc = main(["lint", "--files",
                   str(REPO / "litmus_files" / "invalid"),
                   "--json", str(path)])
        assert rc == 1
        payload = json.loads(path.read_text())
        assert payload["schema"] == "repro.lint-report/v1"
        assert payload["errors"] == 2
        assert {f["rule"] for f in payload["findings"]} == {"L000"}

    def test_lint_ignore_flag(self, capsys):
        rc = main(["lint", "--files",
                   str(REPO / "litmus_files" / "invalid"),
                   "--ignore", "L000"])
        assert rc == 0

    def test_unknown_test_name_fails(self):
        with pytest.raises(SystemExit):
            main(["lint", "no-such-test"])
