"""3- and 4-core litmus tests: conformance with and without faults."""

import pytest

from repro.litmus import RunConfig, check_test
from repro.litmus.multicore_tests import (
    all_multicore_tests,
    iriw,
    isa2,
    wrc,
)
from repro.memmodel import PC, allowed_outcomes
from repro.sim.config import ConsistencyModel


class TestMulticoreAllowedSets:
    def test_wrc_pc_forbids_causality_violation(self):
        test = wrc()
        threads, deps = test.to_events()
        allowed = allowed_outcomes(threads, PC, extra_ppo=deps)
        bad = tuple(sorted({"r0": 1, "r1": 1, "r2": 0}.items()))
        assert bad not in allowed

    def test_iriw_pc_forbids_disagreement(self):
        test = iriw()
        threads, deps = test.to_events()
        allowed = allowed_outcomes(threads, PC, extra_ppo=deps)
        bad = tuple(sorted({"r0": 1, "r1": 0, "r2": 1, "r3": 0}.items()))
        assert bad not in allowed

    def test_isa2_events_compile(self):
        threads, _ = isa2().to_events()
        assert len(threads) == 3


@pytest.mark.parametrize("inject", [False, True])
@pytest.mark.parametrize("model", [ConsistencyModel.PC,
                                   ConsistencyModel.WC])
class TestMulticoreConformance:
    def test_all_multicore_tests_conform(self, model, inject):
        config = RunConfig(model=model, seeds=25, inject_faults=inject)
        for test in all_multicore_tests():
            verdict = check_test(test, config)
            assert verdict.ok, (
                f"{test.name} [{model}, faults={inject}]: "
                f"{verdict.conformance.summary()}")


class TestMulticoreExceptions:
    def test_faults_exercised_on_every_core(self):
        config = RunConfig(model=ConsistencyModel.PC, seeds=20,
                           inject_faults=True)
        verdict = check_test(iriw(), config)
        run = verdict.run
        assert run.imprecise_exceptions + run.precise_exceptions > 0
        assert verdict.ok
