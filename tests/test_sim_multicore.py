"""Tests for the functional-operational multicore engine."""

import pytest

from repro.core.streams import DrainPolicy
from repro.memmodel.events import FenceKind
from repro.sim import isa
from repro.sim.config import ConsistencyModel, small_config
from repro.sim.multicore import DeadlockError, MulticoreSystem
from repro.sim.program import make_program

A, B, C = 0x1000, 0x2000, 0x3000


def run_outcomes(program, model=ConsistencyModel.PC, seeds=200,
                 faults=(), policy=DrainPolicy.SAME_STREAM,
                 check_contract=True):
    outcomes = set()
    for seed in range(seeds):
        system = MulticoreSystem(program, small_config(program.cores, model),
                                 seed=seed, drain_policy=policy)
        if faults:
            system.inject_faults(list(faults))
        result = system.run()
        outcomes.add(result.outcome)
        if check_contract:
            report = result.contract_report
            assert report.ok, report.summary()
    return outcomes


def mp_program(fenced=False):
    t0 = [isa.store(B, value=1)]
    if fenced:
        t0.append(isa.fence())
    t0.append(isa.store(A, value=1))
    t1 = [isa.load(1, A, label="ra")]
    if fenced:
        t1.append(isa.fence())
    t1.append(isa.load(2, B, label="rb"))
    return make_program([t0, t1], name="MP")


def sb_program():
    t0 = [isa.store(A, value=1), isa.load(1, B, label="r0")]
    t1 = [isa.store(B, value=1), isa.load(1, A, label="r1")]
    return make_program([t0, t1], name="SB")


class TestSingleThread:
    def test_arithmetic(self):
        prog = make_program([[
            isa.li(1, 5), isa.addi(2, 1, 3), isa.add(3, 1, 2),
            isa.xor(4, 3, 3),
            isa.store(A, src_reg=3), isa.load(5, A, label="out"),
        ]])
        system = MulticoreSystem(prog, small_config(1))
        result = system.run()
        assert result.observations["out"] == 13
        assert result.memory_value(A) == 13

    def test_store_forwarding(self):
        prog = make_program([[
            isa.store(A, value=9), isa.load(1, A, label="fwd"),
        ]])
        result = MulticoreSystem(prog, small_config(1)).run()
        assert result.observations["fwd"] == 9

    def test_initial_memory(self):
        prog = make_program([[isa.load(1, A, label="x")]],
                            initial_memory={A: 77})
        result = MulticoreSystem(prog, small_config(1)).run()
        assert result.observations["x"] == 77

    def test_branch_skips(self):
        prog = make_program([[
            isa.li(1, 1),
            isa.bne(1, 0, 1),           # taken: skip next
            isa.store(A, value=5),      # skipped
            isa.store(B, value=6),
        ]])
        result = MulticoreSystem(prog, small_config(1)).run()
        assert result.memory_value(A) == 0
        assert result.memory_value(B) == 6

    def test_branch_not_taken(self):
        prog = make_program([[
            isa.li(1, 1),
            isa.beq(1, 0, 1),           # not taken
            isa.store(A, value=5),
        ]])
        result = MulticoreSystem(prog, small_config(1)).run()
        assert result.memory_value(A) == 5

    def test_indexed_addressing(self):
        prog = make_program([[
            isa.li(1, 0x8),
            isa.store(A, value=3, index_reg=1),   # A+8
            isa.load(2, A, index_reg=1, label="y"),
        ]])
        result = MulticoreSystem(prog, small_config(1)).run()
        assert result.observations["y"] == 3
        assert result.memory_value(A + 8) == 3

    def test_atomic_amoadd(self):
        prog = make_program([[
            isa.store(A, value=10),
            isa.amoadd(1, A, imm=5, ),
            isa.load(2, A, label="after"),
        ]])
        result = MulticoreSystem(prog, small_config(1)).run()
        assert result.observations["after"] == 15

    def test_amoswap_returns_old(self):
        prog = make_program([[
            isa.store(A, value=4),
            isa.amoswap(1, A, imm=9, label="old"),
        ]])
        result = MulticoreSystem(prog, small_config(1)).run()
        assert result.observations["old"] == 4
        assert result.memory_value(A) == 9


class TestConsistencyModes:
    def test_pc_forbids_mp_reorder(self):
        bad = (("ra", 1), ("rb", 0))
        assert bad not in run_outcomes(mp_program(), ConsistencyModel.PC)

    def test_wc_exhibits_mp_reorder(self):
        bad = (("ra", 1), ("rb", 0))
        assert bad in run_outcomes(mp_program(), ConsistencyModel.WC,
                                   seeds=400, check_contract=False)

    def test_wc_fenced_mp_is_ordered(self):
        bad = (("ra", 1), ("rb", 0))
        assert bad not in run_outcomes(mp_program(fenced=True),
                                       ConsistencyModel.WC, seeds=400,
                                       check_contract=False)

    def test_pc_exhibits_store_buffering(self):
        both_zero = (("r0", 0), ("r1", 0))
        assert both_zero in run_outcomes(sb_program(), ConsistencyModel.PC,
                                         seeds=400)

    def test_sc_forbids_store_buffering(self):
        both_zero = (("r0", 0), ("r1", 0))
        assert both_zero not in run_outcomes(sb_program(),
                                             ConsistencyModel.SC)

    def test_full_fence_restores_sb(self):
        t0 = [isa.store(A, value=1), isa.fence(), isa.load(1, B, label="r0")]
        t1 = [isa.store(B, value=1), isa.fence(), isa.load(1, A, label="r1")]
        prog = make_program([t0, t1])
        both_zero = (("r0", 0), ("r1", 0))
        assert both_zero not in run_outcomes(prog, ConsistencyModel.PC,
                                             seeds=400)

    def test_coherence_same_address(self):
        # CoRR: reads of the same location never go backwards.
        t0 = [isa.store(A, value=1)]
        t1 = [isa.load(1, A, label="x"), isa.load(2, A, label="y")]
        prog = make_program([t0, t1])
        for model in (ConsistencyModel.PC, ConsistencyModel.WC):
            outcomes = run_outcomes(prog, model, seeds=300,
                                    check_contract=False)
            assert (("x", 1), ("y", 0)) not in outcomes

    def test_ss_fence_orders_wc_stores(self):
        t0 = [isa.store(B, value=1),
              isa.fence(FenceKind.STORE_STORE),
              isa.store(A, value=1)]
        t1 = [isa.load(1, A, label="ra"),
              isa.fence(FenceKind.LOAD_LOAD),
              isa.load(2, B, label="rb")]
        prog = make_program([t0, t1])
        outcomes = run_outcomes(prog, ConsistencyModel.WC, seeds=400,
                                check_contract=False)
        assert (("ra", 1), ("rb", 0)) not in outcomes


class TestFaultInjection:
    def test_faulting_stores_still_complete(self):
        prog = make_program([[isa.store(A, value=1),
                              isa.load(1, A, label="x")]])
        system = MulticoreSystem(prog, small_config(1))
        system.inject_faults([A])
        result = system.run()
        assert result.memory_value(A) == 1
        assert result.stats.imprecise_exceptions >= 1

    def test_faulting_load_precise_exception(self):
        prog = make_program([[isa.load(1, A, label="x")]],
                            initial_memory={A: 3})
        system = MulticoreSystem(prog, small_config(1))
        system.inject_faults([A])
        result = system.run()
        assert result.observations["x"] == 3
        assert result.stats.precise_exceptions >= 1

    def test_mp_with_faults_still_pc(self):
        bad = (("ra", 1), ("rb", 0))
        outcomes = run_outcomes(mp_program(), ConsistencyModel.PC,
                                seeds=300, faults=[A, B])
        assert bad not in outcomes

    def test_split_stream_violates_pc(self):
        t0 = [isa.store(A, value=1), isa.store(B, value=1)]
        t1 = [isa.load(1, B, label="rb"), isa.load(2, A, label="ra")]
        prog = make_program([t0, t1])
        bad = (("ra", 0), ("rb", 1))
        split = run_outcomes(prog, ConsistencyModel.PC, seeds=400,
                             faults=[A], policy=DrainPolicy.SPLIT_STREAM,
                             check_contract=False)
        same = run_outcomes(prog, ConsistencyModel.PC, seeds=400,
                            faults=[A], policy=DrainPolicy.SAME_STREAM)
        assert bad in split       # Figure 2a
        assert bad not in same    # Figure 2b

    def test_contract_holds_with_many_faults(self):
        t0 = [isa.store(A, value=1), isa.store(B, value=2),
              isa.store(C, value=3)]
        t1 = [isa.load(1, C, label="rc"), isa.load(2, B, label="rb"),
              isa.load(3, A, label="ra")]
        prog = make_program([t0, t1])
        run_outcomes(prog, ConsistencyModel.PC, seeds=150,
                     faults=[A, B, C])

    def test_atomic_to_faulting_page(self):
        prog = make_program([[isa.amoadd(1, A, imm=2),
                              isa.load(2, A, label="x")]],
                            initial_memory={A: 5})
        system = MulticoreSystem(prog, small_config(1))
        system.inject_faults([A])
        result = system.run()
        assert result.observations["x"] == 7

    def test_imprecise_before_precise(self):
        """§5.3: a faulting store in the buffer is handled before the
        precise exception of a younger faulting load."""
        prog = make_program([[
            isa.store(A, value=1),
            isa.load(1, B, label="x"),
        ]], initial_memory={B: 6})
        system = MulticoreSystem(prog, small_config(1))
        system.inject_faults([A, B])
        result = system.run()
        assert result.memory_value(A) == 1
        assert result.observations["x"] == 6
        assert result.stats.imprecise_exceptions >= 1


class TestEngineBehaviour:
    def test_deterministic_given_seed(self):
        prog = sb_program()
        r1 = MulticoreSystem(prog, small_config(2), seed=42).run()
        prog2 = sb_program()
        r2 = MulticoreSystem(prog2, small_config(2), seed=42).run()
        assert r1.outcome == r2.outcome

    def test_different_seeds_explore(self):
        outcomes = run_outcomes(sb_program(), seeds=300)
        assert len(outcomes) >= 3

    def test_too_few_cores_rejected(self):
        with pytest.raises(ValueError, match="cores"):
            MulticoreSystem(sb_program(), small_config(1))

    def test_stats_populated(self):
        result = MulticoreSystem(sb_program(), small_config(2)).run()
        assert result.stats.instructions_retired == 4
        assert result.stats.sb_drains == 2
