"""Tests for the ``repro serve`` daemon: wire protocol round-trips,
an end-to-end Unix-socket server exercising query/submit/watch, and
the warm-store guarantee (a re-query of everything submitted is 100%
hits without re-verification)."""

import asyncio
import threading

import pytest

from repro.litmus import LitmusTest, RunConfig, all_library_tests
from repro.memmodel.events import FenceKind
from repro.serve import (
    PROTOCOL,
    ProtocolError,
    ServeClient,
    ServeError,
    VerdictServer,
    decode_line,
    encode_line,
)
# Aliased so pytest does not collect them as test functions.
from repro.serve import test_from_wire as from_wire
from repro.serve import test_to_wire as to_wire


class TestProtocol:
    def test_encode_decode_round_trip(self):
        message = {"op": "query", "name": "SB", "n": 3}
        assert decode_line(encode_line(message)) == message

    def test_decode_rejects_non_json(self):
        with pytest.raises(ProtocolError, match="not valid JSON"):
            decode_line(b"{nope\n")

    def test_decode_rejects_non_object(self):
        with pytest.raises(ProtocolError, match="JSON object"):
            decode_line(b"[1,2]\n")

    def test_every_library_test_round_trips(self):
        # Covers fences, dependent loads, and atomics.
        for test in all_library_tests():
            wire = to_wire(test)
            back = from_wire(wire)
            assert back.name == test.name
            assert back.threads == test.threads

    def test_fence_kind_flattened(self):
        test = LitmusTest(
            name="fenced", category="t",
            threads=[[("W", "x", 1), ("F", FenceKind.FULL),
                      ("R", "y", "r0")]])
        wire = to_wire(test)
        assert wire["threads"][0][1] == ["F", FenceKind.FULL.value]
        assert from_wire(wire).threads == test.threads

    def test_unknown_fence_rejected(self):
        with pytest.raises(ProtocolError, match="unknown fence"):
            from_wire({"name": "t",
                            "threads": [[["F", "warp-drive"]]]})

    def test_malformed_test_rejected(self):
        with pytest.raises(ProtocolError, match="missing field"):
            from_wire({"name": "t"})
        with pytest.raises(ProtocolError, match="non-empty list"):
            from_wire({"name": "t", "threads": []})


@pytest.fixture()
def served(tmp_path):
    """A live UDS server on a background thread + connected client."""
    uds = tmp_path / "serve.sock"
    server = VerdictServer(
        tmp_path / "store",
        RunConfig(seeds=3, clean_pass=False),
        tests=all_library_tests(),
        batch_window_s=0.02)
    ready = threading.Event()
    thread = threading.Thread(
        target=lambda: asyncio.run(
            server.run(uds=uds, ready=lambda addr: ready.set())),
        daemon=True)
    thread.start()
    assert ready.wait(10), "server never came up"
    client = ServeClient(uds=uds)
    yield server, client, uds
    try:
        client.shutdown()
    except ServeError:
        pass
    client.close()
    thread.join(10)
    assert not thread.is_alive(), "server failed to shut down"


class TestServeEndToEnd:
    def test_ping_identifies_protocol(self, served):
        _server, client, _uds = served
        pong = client.ping()
        assert pong["protocol"] == PROTOCOL
        assert pong["model"] == "PC"

    def test_submit_then_warm_requery_is_all_hits(self, served):
        server, client, uds = served
        names = [t.name for t in all_library_tests()]
        submitted = client.submit(names=names)
        assert [r["name"] for r in submitted["results"]] == names
        assert all(not r["hit"] for r in submitted["results"])
        assert all(r["verdict"]["ok"] for r in submitted["results"])
        # The whole library again, cold client, warm store: every
        # query answers from the store, nothing re-verifies.
        with ServeClient(uds=uds) as second:
            requeried = second.query(names=names)
        assert all(r["hit"] for r in requeried["results"])
        assert server.counters["batches"] >= 1
        # Resubmission short-circuits too — no new batch work.
        batches_before = server.counters["batches"]
        resubmitted = client.submit(names=names)
        assert all(r["hit"] for r in resubmitted["results"])
        assert server.counters["batches"] == batches_before

    def test_submissions_coalesce_into_batches(self, served):
        server, client, _uds = served
        names = [t.name for t in all_library_tests()[:6]]
        response = client.submit(names=names)
        assert len(response["results"]) == len(names)
        # One connection's burst coalesces; distinct fingerprints only.
        assert server.counters["batches"] <= 2
        assert server.counters["batched_tests"] <= len(names)

    def test_inline_test_submission(self, served):
        _server, client, _uds = served
        inline = LitmusTest(
            name="inline-sb", category="submitted",
            threads=[[("W", "x", 1), ("R", "y", "r0")],
                     [("W", "y", 1), ("R", "x", "r1")]])
        response = client.submit(test=inline)
        assert response["ok"] and response["verdict"]["ok"]
        again = client.query(test=inline)
        assert again["hit"] is True

    def test_query_by_fingerprint(self, served):
        _server, client, _uds = served
        response = client.submit(name="SB")
        fingerprint = response["fingerprint"]
        direct = client.query(fingerprint=fingerprint)
        assert direct["hit"] is True
        assert direct["verdict"]["fingerprint"] == fingerprint

    def test_unknown_test_is_an_error_not_a_dead_connection(self,
                                                            served):
        _server, client, _uds = served
        with pytest.raises(ServeError, match="unknown test"):
            client.query(name="NOT-A-TEST")
        assert client.ping()["ok"]  # connection survives

    def test_unknown_op_rejected(self, served):
        _server, client, _uds = served
        with pytest.raises(ServeError, match="unknown op"):
            client.request("frobnicate")

    def test_stats_reflect_activity(self, served):
        _server, client, _uds = served
        client.submit(name="MP")
        stats = client.stats()
        assert stats["counters"]["submissions"] >= 1
        assert stats["store"]["records"] >= 1
        assert stats["uptime_s"] >= 0

    def test_watch_streams_campaign_events(self, served):
        _server, client, uds = served
        events = []
        got_one = threading.Event()

        def watcher() -> None:
            with ServeClient(uds=uds) as w:
                for event in w.watch():
                    events.append(event)
                    if event.get("name", "").startswith("campaign."):
                        got_one.set()
                        return

        thread = threading.Thread(target=watcher, daemon=True)
        thread.start()
        # Submissions while the watcher listens: per-test campaign
        # events must stream out live.
        client.submit(names=[t.name for t in all_library_tests()[:3]])
        assert got_one.wait(15), f"no campaign event: {events[:5]}"
        thread.join(10)
        assert any(e.get("name") == "serve.batch" for e in events)

    def test_persists_across_restart(self, tmp_path):
        root = tmp_path / "store"
        config = RunConfig(seeds=3, clean_pass=False)

        def run_one(action):
            uds = tmp_path / "s.sock"
            server = VerdictServer(root, config,
                                   tests=all_library_tests(),
                                   batch_window_s=0.02)
            ready = threading.Event()
            thread = threading.Thread(
                target=lambda: asyncio.run(server.run(
                    uds=uds, ready=lambda a: ready.set())),
                daemon=True)
            thread.start()
            assert ready.wait(10)
            with ServeClient(uds=uds) as client:
                result = action(client)
                client.shutdown()
            thread.join(10)
            return result

        run_one(lambda c: c.submit(name="SB"))
        (tmp_path / "s.sock").unlink(missing_ok=True)
        # A brand-new daemon over the same store answers warm.
        warm = run_one(lambda c: c.query(name="SB"))
        assert warm["hit"] is True
