"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParserStructure:
    def test_all_commands_registered(self):
        parser = build_parser()
        sub = next(a for a in parser._actions
                   if hasattr(a, "choices") and a.choices)
        assert set(sub.choices) == {
            "litmus", "table3", "fig5", "fig6", "proofs", "mbench",
            "explore", "fuzz", "taint", "lint", "serve", "profile",
            "stats", "capture", "scenario16", "gen", "bench"}

    def test_command_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_litmus_defaults(self):
        args = build_parser().parse_args(["litmus"])
        assert args.model == "PC"
        assert args.seeds == 20
        assert not args.no_faults


class TestCommands:
    def test_proofs_exit_zero(self, capsys):
        assert main(["proofs"]) == 0
        out = capsys.readouterr().out
        assert "HOLDS" in out
        assert "matches paper          : True" in out

    def test_mbench(self, capsys):
        assert main(["mbench", "--stores", "500",
                     "--fault-fraction", "0.1"]) == 0
        out = capsys.readouterr().out
        assert "per-fault breakdown" in out

    def test_mbench_batching_flag(self, capsys):
        assert main(["mbench", "--stores", "500",
                     "--fault-fraction", "0.3", "--batching"]) == 0

    def test_litmus_quick(self, capsys):
        assert main(["litmus", "--quick", "--seeds", "5"]) == 0
        out = capsys.readouterr().out
        assert "litmus suite [OK]" in out

    def test_litmus_clean_mode(self, capsys):
        assert main(["litmus", "--quick", "--seeds", "5",
                     "--no-faults"]) == 0
        assert "faults=off" in capsys.readouterr().out

    def test_litmus_files_mode(self, capsys):
        assert main(["litmus", "--files", "litmus_files",
                     "--seeds", "5"]) == 0
        assert "tests=17" in capsys.readouterr().out

    def test_litmus_save_log(self, capsys, tmp_path):
        import json
        prefix = str(tmp_path / "campaign")
        assert main(["litmus", "--files", "litmus_files",
                     "--seeds", "5", "--save-log", prefix]) == 0
        hardware = json.load(open(prefix + ".hw.json"))
        model = json.load(open(prefix + ".model.json"))
        assert set(hardware) == set(model)
        # Hardware outcomes are a subset of the model's per test.
        for name, observed in hardware.items():
            allowed = {tuple(map(tuple, o)) for o in model[name]}
            assert {tuple(map(tuple, o)) for o in observed} <= allowed


class TestExploreCommand:
    def test_explore_named_tests(self, capsys):
        assert main(["explore", "MP", "SB", "--strategy",
                     "verify"]) == 0
        out = capsys.readouterr().out
        assert "MP [tso/verify]: ok" in out
        assert "SB [tso/verify]: ok" in out

    def test_explore_unknown_test_errors(self):
        with pytest.raises(SystemExit, match="unknown test"):
            main(["explore", "no-such-test"])

    def test_explore_split_policy_prints_witness(self, capsys):
        assert main(["explore", "MP", "--policy", "split",
                     "--fault", "y"]) == 0
        out = capsys.readouterr().out
        assert "RACE" in out
        assert "DETECT+PUT" in out

    def test_explore_same_policy_preserves(self, capsys):
        assert main(["explore", "MP", "--policy", "same"]) == 0
        assert "preserves PC+WC" in capsys.readouterr().out

    def test_fuzz_smoke(self, capsys):
        assert main(["fuzz", "--seed", "7", "--iterations", "8",
                     "--no-shrink"]) == 0
        assert "model divergences: 0" in capsys.readouterr().out


class TestGenCommand:
    def test_gen_prints_generation_record(self, capsys):
        assert main(["gen", "--seed", "7", "--count", "25"]) == 0
        out = capsys.readouterr().out
        assert "randgen corpus: 25 tests" in out
        assert "corpus digest:" in out

    def test_gen_is_deterministic(self, capsys):
        def stable_lines(out):
            # Drop the wall-time/throughput line; everything else
            # (template mix, corpus digest) must be bit-identical.
            return [ln for ln in out.splitlines() if "wall=" not in ln]

        main(["gen", "--seed", "7", "--count", "25"])
        first = stable_lines(capsys.readouterr().out)
        main(["gen", "--seed", "7", "--count", "25"])
        assert stable_lines(capsys.readouterr().out) == first
        assert any("corpus digest:" in ln for ln in first)

    def test_gen_manifest_round_trip(self, capsys, tmp_path):
        manifest = str(tmp_path / "corpus.json")
        assert main(["gen", "--seed", "3", "--count", "15",
                     "--manifest", manifest]) == 0
        assert "corpus manifest written" in capsys.readouterr().out
        assert main(["gen", "--verify", manifest]) == 0
        assert "manifest verified" in capsys.readouterr().out

    def test_gen_verify_detects_tampering(self, tmp_path):
        import json
        from repro.litmus.randgen import ManifestMismatchError
        manifest = tmp_path / "corpus.json"
        main(["gen", "--seed", "3", "--count", "5",
              "--manifest", str(manifest)])
        payload = json.loads(manifest.read_text())
        payload["tests"][0]["digest"] = "f" * 64
        manifest.write_text(json.dumps(payload))
        with pytest.raises(ManifestMismatchError):
            main(["gen", "--verify", str(manifest)])

    def test_gen_bad_cores_spec_errors(self):
        with pytest.raises(SystemExit):
            main(["gen", "--count", "5", "--cores", "lots"])


class TestLitmusRandgen:
    def test_randgen_campaign_with_corpus_block(self, capsys, tmp_path):
        import json
        report_path = str(tmp_path / "report.json")
        assert main(["litmus", "--randgen", "12", "--seeds", "2",
                     "--skip-clean", "--prefilter", "--json",
                     report_path]) == 0
        out = capsys.readouterr().out
        assert "randgen corpus: 12 tests" in out
        assert "litmus suite [OK]" in out
        report = json.load(open(report_path))
        assert report["schema"].endswith("/v8")
        assert report["corpus"]["count"] == 12
        assert report["corpus"]["seed"] == 0

    def test_manifest_campaign_source(self, capsys, tmp_path):
        import json
        manifest = str(tmp_path / "corpus.json")
        main(["gen", "--seed", "5", "--count", "10",
              "--manifest", manifest])
        capsys.readouterr()
        report_path = str(tmp_path / "report.json")
        assert main(["litmus", "--manifest", manifest, "--seeds", "2",
                     "--skip-clean", "--json", report_path]) == 0
        report = json.load(open(report_path))
        assert report["tests"] == 10
        assert report["corpus"]["seed"] == 5
        expected = json.loads(open(manifest).read())["corpus_digest"]
        assert report["corpus"]["corpus_digest"] == expected

    def test_sources_are_mutually_exclusive(self, tmp_path):
        with pytest.raises(SystemExit, match="mutually exclusive"):
            main(["litmus", "--randgen", "5",
                  "--manifest", str(tmp_path / "x.json")])

    def test_profile_nightly_applies_defaults(self, capsys):
        # Small --randgen override keeps the smoke fast; the profile
        # still forces prefilter + dpor + skip-clean + 2 seeds.
        assert main(["litmus", "--profile", "nightly",
                     "--randgen", "8", "--jobs", "1"]) == 0
        out = capsys.readouterr().out
        assert "randgen corpus: 8 tests" in out
        assert "litmus suite [OK]" in out

    def test_profile_nightly_default_count_is_2k(self):
        args = build_parser().parse_args(["litmus", "--profile",
                                          "nightly"])
        from repro.cli import _apply_nightly_profile
        _apply_nightly_profile(args)
        assert args.randgen == 2000
        assert args.seeds == 2
        assert args.prefilter and args.skip_clean
        assert args.explore == "dpor"


class TestStatsCommand:
    def _chrome_file(self, tmp_path, events):
        import json
        path = tmp_path / "trace.json"
        path.write_text(json.dumps({"traceEvents": events}))
        return str(path)

    def test_stats_on_chrome_trace(self, capsys, tmp_path):
        from repro import obs
        tel = obs.Telemetry(sinks=[sink := obs.MemorySink()])
        with tel.span("campaign.run"):
            tel.event("campaign.test", test="SB")
        payload = obs.chrome_trace_events(
            [r for r in sink.records if r["type"] == "span"],
            [r for r in sink.records if r["type"] == "event"])
        path = self._chrome_file(tmp_path, payload["traceEvents"])
        assert main(["stats", path]) == 0
        out = capsys.readouterr().out
        assert "campaign.run" in out
        assert "campaign.test" in out

    def test_stats_rejects_invalid_chrome_trace(self, capsys,
                                                tmp_path):
        path = self._chrome_file(tmp_path, [
            {"name": "a", "ph": "E", "ts": 0, "pid": 1, "tid": 0}])
        assert main(["stats", path]) == 1
        assert "invalid" in capsys.readouterr().err.lower()
