"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParserStructure:
    def test_all_commands_registered(self):
        parser = build_parser()
        sub = next(a for a in parser._actions
                   if hasattr(a, "choices") and a.choices)
        assert set(sub.choices) == {
            "litmus", "table3", "fig5", "fig6", "proofs", "mbench",
            "explore", "fuzz", "lint", "serve", "profile", "stats",
            "capture", "scenario16"}

    def test_command_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_litmus_defaults(self):
        args = build_parser().parse_args(["litmus"])
        assert args.model == "PC"
        assert args.seeds == 20
        assert not args.no_faults


class TestCommands:
    def test_proofs_exit_zero(self, capsys):
        assert main(["proofs"]) == 0
        out = capsys.readouterr().out
        assert "HOLDS" in out
        assert "matches paper          : True" in out

    def test_mbench(self, capsys):
        assert main(["mbench", "--stores", "500",
                     "--fault-fraction", "0.1"]) == 0
        out = capsys.readouterr().out
        assert "per-fault breakdown" in out

    def test_mbench_batching_flag(self, capsys):
        assert main(["mbench", "--stores", "500",
                     "--fault-fraction", "0.3", "--batching"]) == 0

    def test_litmus_quick(self, capsys):
        assert main(["litmus", "--quick", "--seeds", "5"]) == 0
        out = capsys.readouterr().out
        assert "litmus suite [OK]" in out

    def test_litmus_clean_mode(self, capsys):
        assert main(["litmus", "--quick", "--seeds", "5",
                     "--no-faults"]) == 0
        assert "faults=off" in capsys.readouterr().out

    def test_litmus_files_mode(self, capsys):
        assert main(["litmus", "--files", "litmus_files",
                     "--seeds", "5"]) == 0
        assert "tests=8" in capsys.readouterr().out

    def test_litmus_save_log(self, capsys, tmp_path):
        import json
        prefix = str(tmp_path / "campaign")
        assert main(["litmus", "--files", "litmus_files",
                     "--seeds", "5", "--save-log", prefix]) == 0
        hardware = json.load(open(prefix + ".hw.json"))
        model = json.load(open(prefix + ".model.json"))
        assert set(hardware) == set(model)
        # Hardware outcomes are a subset of the model's per test.
        for name, observed in hardware.items():
            allowed = {tuple(map(tuple, o)) for o in model[name]}
            assert {tuple(map(tuple, o)) for o in observed} <= allowed


class TestExploreCommand:
    def test_explore_named_tests(self, capsys):
        assert main(["explore", "MP", "SB", "--strategy",
                     "verify"]) == 0
        out = capsys.readouterr().out
        assert "MP [tso/verify]: ok" in out
        assert "SB [tso/verify]: ok" in out

    def test_explore_unknown_test_errors(self):
        with pytest.raises(SystemExit, match="unknown test"):
            main(["explore", "no-such-test"])

    def test_explore_split_policy_prints_witness(self, capsys):
        assert main(["explore", "MP", "--policy", "split",
                     "--fault", "y"]) == 0
        out = capsys.readouterr().out
        assert "RACE" in out
        assert "DETECT+PUT" in out

    def test_explore_same_policy_preserves(self, capsys):
        assert main(["explore", "MP", "--policy", "same"]) == 0
        assert "preserves PC+WC" in capsys.readouterr().out

    def test_fuzz_smoke(self, capsys):
        assert main(["fuzz", "--seed", "7", "--iterations", "8",
                     "--no-shrink"]) == 0
        assert "model divergences: 0" in capsys.readouterr().out
