"""Tests for the continuous perf-regression tracker
(``repro.obs.perftrack``): the ``repro.bench/v1`` trajectory format,
legacy-file upgrades, catalog normalisation over the repo's real
``BENCH_*.json`` files, the noise-aware regression check, and a
hypothesis round-trip over the record schema."""

import json
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cli import main
from repro.obs import perftrack
from repro.obs.perftrack import (BenchRecord, SCHEMA, append_entry,
                                 check_regressions, load_bench_file,
                                 normalize, render_check,
                                 write_bench_file)

REPO_ROOT = Path(__file__).resolve().parent.parent


def _write_trajectory(root: Path, suite: str, entries):
    write_bench_file(root / f"BENCH_{suite}.json", suite, entries)


class TestFileFormats:
    def test_load_v1_file(self, tmp_path):
        _write_trajectory(tmp_path, "demo",
                          [{"bench": "micro-SB", "speedup": 4.0}])
        suite, entries = load_bench_file(tmp_path / "BENCH_demo.json")
        assert suite == "demo"
        assert entries == [{"bench": "micro-SB", "speedup": 4.0}]

    def test_load_legacy_list(self, tmp_path):
        path = tmp_path / "BENCH_legacy.json"
        path.write_text(json.dumps([{"bench": "micro-SB",
                                     "speedup": 4.0}]))
        suite, entries = load_bench_file(path)
        assert suite == "legacy"
        assert len(entries) == 1

    def test_load_missing_is_empty(self, tmp_path):
        suite, entries = load_bench_file(tmp_path / "BENCH_none.json")
        assert (suite, entries) == ("none", [])

    def test_load_rejects_garbage(self, tmp_path):
        path = tmp_path / "BENCH_bad.json"
        path.write_text('{"schema": "wat"}')
        with pytest.raises(ValueError, match="neither"):
            load_bench_file(path)

    def test_append_upgrades_legacy_to_v1(self, tmp_path):
        path = tmp_path / "BENCH_up.json"
        path.write_text(json.dumps([{"bench": "micro-SB",
                                     "speedup": 4.0}]))
        run = append_entry(path, {"bench": "micro-SB", "speedup": 4.1})
        assert run == 1
        payload = json.loads(path.read_text())
        assert payload["schema"] == SCHEMA
        assert payload["suite"] == "up"
        assert [e["speedup"] for e in payload["entries"]] == [4.0, 4.1]

    def test_append_rejects_benchless_entry(self, tmp_path):
        with pytest.raises(ValueError, match="'bench' key"):
            append_entry(tmp_path / "BENCH_x.json", {"speedup": 1.0})


class TestNormalize:
    def test_repo_trajectories_fully_tracked(self):
        # Every bench entry recorded so far must be in the catalog —
        # a new benchmark without catalog metrics shows up here.
        records, untracked = normalize(REPO_ROOT)
        assert untracked == []
        assert len(records) >= 20
        keys = {(r.suite, r.bench, r.metric) for r in records}
        assert ("obs", "obs-overhead-library-sweep",
                "disabled_overhead") in keys
        assert ("sim", "sim-figure6-sweep", "speedup_vs_seed") in keys

    def test_untracked_benches_are_reported(self, tmp_path):
        _write_trajectory(tmp_path, "demo",
                          [{"bench": "mystery", "speedup": 2.0}])
        records, untracked = normalize(tmp_path)
        assert records == []
        assert untracked == ["demo/mystery"]

    def test_run_indices_count_per_bench(self, tmp_path):
        _write_trajectory(tmp_path, "demo", [
            {"bench": "micro-SB", "speedup": 4.0},
            {"bench": "micro-MP", "speedup": 3.0},
            {"bench": "micro-SB", "speedup": 4.2},
        ])
        records, _ = normalize(tmp_path)
        sb = [r for r in records if r.bench == "micro-SB"]
        assert [r.run for r in sb] == [0, 1]


class TestCheckRegressions:
    def test_repo_trajectories_pass(self):
        report = check_regressions(REPO_ROOT)
        assert report["ok"], render_check(report)
        assert report["untracked"] == []
        assert report["checked"] >= 20

    def test_single_run_is_baseline(self, tmp_path):
        _write_trajectory(tmp_path, "demo",
                          [{"bench": "micro-SB", "speedup": 4.0}])
        report = check_regressions(tmp_path)
        assert report["ok"]
        assert report["results"][0]["status"] == "baseline"

    def test_higher_is_good_regression_detected(self, tmp_path):
        _write_trajectory(tmp_path, "demo", [
            {"bench": "micro-SB", "speedup": 4.0},
            {"bench": "micro-SB", "speedup": 4.1},
            {"bench": "micro-SB", "speedup": 1.0},  # collapsed
        ])
        report = check_regressions(tmp_path)
        assert not report["ok"]
        (row,) = [r for r in report["results"]
                  if r["status"] == "regression"]
        assert row["metric"] == "speedup"
        assert row["baseline"] == pytest.approx(4.05)

    def test_lower_is_good_regression_detected(self, tmp_path):
        _write_trajectory(tmp_path, "obs2", [
            {"bench": "obs-overhead-library-sweep",
             "disabled_overhead": 1.01, "enabled_overhead": 1.2},
            {"bench": "obs-overhead-library-sweep",
             "disabled_overhead": 2.5, "enabled_overhead": 1.2},
        ])
        report = check_regressions(tmp_path)
        assert not report["ok"]
        bad = {r["metric"] for r in report["results"]
               if r["status"] == "regression"}
        assert bad == {"disabled_overhead"}

    def test_noise_within_tolerance_passes(self, tmp_path):
        _write_trajectory(tmp_path, "demo", [
            {"bench": "micro-SB", "speedup": 4.0},
            {"bench": "micro-SB", "speedup": 3.2},  # -20% < 35% tol
        ])
        assert check_regressions(tmp_path)["ok"]

    def test_exact_metric_tolerates_nothing(self, tmp_path):
        _write_trajectory(tmp_path, "taint2", [
            {"bench": "static-taint", "false_negatives": 0,
             "speedup": 100.0},
            {"bench": "static-taint", "false_negatives": 1,
             "speedup": 100.0},
        ])
        report = check_regressions(tmp_path)
        bad = [r for r in report["results"]
               if r["status"] == "regression"]
        assert [r["metric"] for r in bad] == ["false_negatives"]

    def test_median_baseline_shrugs_off_one_outlier(self, tmp_path):
        _write_trajectory(tmp_path, "demo", [
            {"bench": "micro-SB", "speedup": 4.0},
            {"bench": "micro-SB", "speedup": 0.5},  # one bad run
            {"bench": "micro-SB", "speedup": 4.1},
            {"bench": "micro-SB", "speedup": 3.9},
        ])
        report = check_regressions(tmp_path)
        assert report["ok"], render_check(report)


class TestBenchCli:
    def test_bench_check_passes_on_repo(self, capsys):
        assert main(["bench", "--check", "--root",
                     str(REPO_ROOT)]) == 0
        out = capsys.readouterr().out
        assert "OK:" in out

    def test_bench_check_fails_on_injected_regression(self, tmp_path,
                                                      capsys):
        _write_trajectory(tmp_path, "demo", [
            {"bench": "micro-SB", "speedup": 4.0},
            {"bench": "micro-SB", "speedup": 0.1},
        ])
        assert main(["bench", "--check", "--root",
                     str(tmp_path)]) == 1
        assert "REGRESSION" in capsys.readouterr().out

    def test_bench_json_report(self, tmp_path, capsys):
        out = tmp_path / "report.json"
        assert main(["bench", "--root", str(REPO_ROOT),
                     "--json", str(out)]) == 0
        report = json.loads(out.read_text())
        assert report["schema"] == SCHEMA
        assert report["ok"] is True

    def test_bench_append(self, tmp_path, capsys):
        path = tmp_path / "BENCH_demo.json"
        entry = json.dumps({"bench": "micro-SB", "speedup": 4.0})
        assert main(["bench", "--append", str(path),
                     "--entry", entry]) == 0
        suite, entries = load_bench_file(path)
        assert entries[0]["speedup"] == 4.0


_meta_values = st.one_of(
    st.text(max_size=20),
    st.integers(min_value=-10**9, max_value=10**9),
    st.floats(allow_nan=False, allow_infinity=False, width=32),
)


class TestRecordSchemaRoundTrip:
    @settings(max_examples=100, deadline=None)
    @given(
        suite=st.text(min_size=1, max_size=20),
        bench=st.text(min_size=1, max_size=30),
        metric=st.text(min_size=1, max_size=30),
        value=st.floats(allow_nan=False, allow_infinity=False),
        direction=st.sampled_from(["higher", "lower"]),
        kind=st.sampled_from(sorted(perftrack.TOLERANCES)),
        run=st.integers(min_value=0, max_value=10**6),
        meta=st.dictionaries(st.text(max_size=10), _meta_values,
                             max_size=4),
    )
    def test_round_trip(self, suite, bench, metric, value, direction,
                        kind, run, meta):
        record = BenchRecord(suite=suite, bench=bench, metric=metric,
                             value=value, direction=direction,
                             kind=kind, run=run, meta=meta)
        wire = json.loads(json.dumps(record.as_dict()))
        assert BenchRecord.from_dict(wire) == record

    def test_from_dict_rejects_unknown_schema(self):
        payload = BenchRecord("s", "b", "m", 1.0, "higher", "time",
                              0).as_dict()
        payload["schema"] = "repro.bench/v999"
        with pytest.raises(ValueError, match="schema"):
            BenchRecord.from_dict(payload)

    def test_from_dict_rejects_bad_enums(self):
        payload = BenchRecord("s", "b", "m", 1.0, "higher", "time",
                              0).as_dict()
        for key, bad in (("direction", "sideways"), ("kind", "vibes")):
            broken = dict(payload)
            broken[key] = bad
            with pytest.raises(ValueError):
                BenchRecord.from_dict(broken)
