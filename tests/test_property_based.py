"""Property-based tests (hypothesis) on core data structures and
model invariants."""

import random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.exceptions import ExceptionCode
from repro.core.fsb import FaultingStoreBuffer, FsbEntry
from repro.core.interface import ArchitecturalInterface
from repro.core.streams import DrainPolicy, PendingStore, plan_drain
from repro.memmodel import PC, SC, WC, allowed_outcomes
from repro.memmodel.events import program
from repro.memmodel.relations import is_acyclic, transitive_closure
from repro.sim.cache.cache import SetAssociativeCache
from repro.sim.config import CacheConfig
from repro.sim.devices.einject import EInject, PAGE_SIZE
from repro.sim.noc.mesh import Mesh
from repro.sim.config import NocConfig
from repro.sim.trace import measure_mix
from repro.workloads.base import Region, TraceBuilder, calibrate_mix

# ----------------------------------------------------------------------
# FSB ring invariants
# ----------------------------------------------------------------------
ops_strategy = st.lists(st.sampled_from(["drain", "pop"]),
                        min_size=1, max_size=64)


@given(ops=ops_strategy,
       capacity_exp=st.integers(min_value=1, max_value=5))
def test_fsb_fifo_and_occupancy_invariants(ops, capacity_exp):
    """The ring always pops in drain order; occupancy == tail - head;
    occupancy is bounded by capacity."""
    capacity = 1 << capacity_exp
    fsb = FaultingStoreBuffer(capacity)
    drained = []
    popped = []
    seq = 0
    for op in ops:
        if op == "drain" and not fsb.is_full:
            fsb.drain(FsbEntry(addr=seq * 8, data=seq, seq=seq))
            drained.append(seq)
            seq += 1
        elif op == "pop":
            entry = fsb.pop()
            if entry is not None:
                popped.append(entry.seq)
        assert 0 <= fsb.occupancy <= capacity
        assert fsb.occupancy == fsb.tail - fsb.head
    assert popped == drained[:len(popped)]


@given(n=st.integers(min_value=0, max_value=32))
def test_fsb_snapshot_matches_pop_sequence(n):
    fsb = FaultingStoreBuffer(32)
    for i in range(n):
        fsb.drain(FsbEntry(addr=i, data=i, seq=i))
    snap = [e.seq for e in fsb.snapshot()]
    popped = [fsb.pop().seq for _ in range(n)]
    assert snap == popped


# ----------------------------------------------------------------------
# Interface FIFO property
# ----------------------------------------------------------------------
@given(puts=st.lists(st.integers(min_value=0, max_value=2 ** 32),
                     min_size=0, max_size=30))
def test_interface_fifo_for_any_put_sequence(puts):
    iface = ArchitecturalInterface(0, fsb_capacity=32)
    for i, addr in enumerate(puts):
        iface.put(addr & ~7, i)
    got = [e.addr for e in iface.get_all()]
    assert got == [a & ~7 for a in puts]
    assert iface.fifo_respected()


# ----------------------------------------------------------------------
# Drain-policy properties
# ----------------------------------------------------------------------
pending_strategy = st.lists(
    st.tuples(st.integers(min_value=0, max_value=1 << 20),
              st.booleans()),
    min_size=0, max_size=24)


@given(entries=pending_strategy)
def test_drain_plans_preserve_order_and_partition(entries):
    """Both policies emit every entry exactly once, preserving the
    relative order; same-stream targets the interface for all entries
    whenever any entry faults."""
    pending = [
        PendingStore(addr & ~7, i,
                     error_code=(ExceptionCode.EINJECT_BUS_ERROR if f
                                 else ExceptionCode.NONE))
        for i, (addr, f) in enumerate(entries)
    ]
    any_fault = any(p.is_faulting for p in pending)
    for policy in DrainPolicy:
        plan = plan_drain(pending, policy)
        assert [a.store for a in plan] == pending  # order + totality
        if not any_fault:
            assert all(a.target.value == "memory" for a in plan)
    if any_fault:
        same = plan_drain(pending, DrainPolicy.SAME_STREAM)
        assert all(a.target.value == "interface" for a in same)
        split = plan_drain(pending, DrainPolicy.SPLIT_STREAM)
        for action in split:
            expected = ("interface" if action.store.is_faulting
                        else "memory")
            assert action.target.value == expected


# ----------------------------------------------------------------------
# Memory-model inclusion: SC ⊆ PC ⊆ WC on arbitrary small programs
# ----------------------------------------------------------------------
def _ops_strategy(addr_pool):
    return st.lists(
        st.one_of(
            st.tuples(st.just("S"), st.sampled_from(addr_pool),
                      st.integers(min_value=1, max_value=3)),
            st.tuples(st.just("L"), st.sampled_from(addr_pool)),
            st.tuples(st.just("F")),
        ),
        min_size=1, max_size=3)


@settings(max_examples=40, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(t0=_ops_strategy([0xA, 0xB]), t1=_ops_strategy([0xA, 0xB]))
def test_model_outcome_inclusion(t0, t1):
    """Stronger models allow fewer behaviours: SC ⊆ PC ⊆ WC."""
    threads = [list(program(0, t0)), list(program(1, t1))]
    sc = allowed_outcomes(threads, SC)

    threads2 = [list(program(0, t0)), list(program(1, t1))]
    pc = allowed_outcomes(threads2, PC)

    threads3 = [list(program(0, t0)), list(program(1, t1))]
    wc = allowed_outcomes(threads3, WC)
    assert sc <= pc <= wc
    assert sc, "SC must allow at least one outcome"


# ----------------------------------------------------------------------
# Graph helpers
# ----------------------------------------------------------------------
@given(edges=st.lists(
    st.tuples(st.integers(0, 8), st.integers(0, 8)), max_size=20))
def test_transitive_closure_contains_edges_and_is_transitive(edges):
    closure = transitive_closure(edges)
    assert set(e for e in edges if e[0] != e[1]) - closure == set() or \
        all((a, b) in closure for a, b in edges if a != b)
    for (a, b) in closure:
        for (c, d) in closure:
            if b == c:
                assert (a, d) in closure


# ----------------------------------------------------------------------
# Cache LRU invariants
# ----------------------------------------------------------------------
@settings(max_examples=50, deadline=None)
@given(addrs=st.lists(st.integers(min_value=0, max_value=1 << 14),
                      min_size=1, max_size=100))
def test_cache_occupancy_bounded_and_rehit(addrs):
    cache = SetAssociativeCache(
        CacheConfig(size_bytes=1024, ways=2, block_bytes=64))
    for addr in addrs:
        if cache.lookup(addr) is None:
            cache.insert(addr)
        # Immediately re-probing must hit.
        assert cache.peek(addr) is not None
        assert cache.occupancy <= 16  # 8 sets x 2 ways


# ----------------------------------------------------------------------
# Mesh metric properties
# ----------------------------------------------------------------------
@given(a=st.integers(0, 15), b=st.integers(0, 15), c=st.integers(0, 15))
def test_mesh_hops_is_a_metric(a, b, c):
    mesh = Mesh(NocConfig())
    assert mesh.hops(a, b) == mesh.hops(b, a)
    assert mesh.hops(a, b) == 0 if a == b else mesh.hops(a, b) > 0
    assert mesh.hops(a, c) <= mesh.hops(a, b) + mesh.hops(b, c)


# ----------------------------------------------------------------------
# EInject set/clr idempotence
# ----------------------------------------------------------------------
@given(addrs=st.lists(st.integers(min_value=0, max_value=1 << 20),
                      min_size=1, max_size=30))
def test_einject_set_then_clear_roundtrip(addrs):
    einject = EInject()
    for addr in addrs:
        einject.mmio_set(addr)
        assert einject.check(addr).denied
    for addr in addrs:
        einject.mmio_clr(addr)
    for addr in addrs:
        assert not einject.check(addr).denied
    assert einject.faulting_page_count == 0


# ----------------------------------------------------------------------
# Mix calibration properties
# ----------------------------------------------------------------------
@settings(max_examples=30, deadline=None)
@given(n_loads=st.integers(5, 60), n_stores=st.integers(0, 20),
       store_pct=st.integers(5, 30), load_pct=st.integers(10, 40))
def test_calibrate_mix_hits_targets_and_preserves_ops(
        n_loads, n_stores, store_pct, load_pct):
    tb = TraceBuilder()
    for i in range(n_loads):
        tb.load(0x10000 + i * 8)
    for i in range(n_stores):
        tb.store(0x20000 + i * 8)
    stack = Region("stack", 0x1000, 4096)
    out = calibrate_mix(tb.build(), stack, store_pct, load_pct,
                        random.Random(0))
    mix = measure_mix(out)
    # Discreteness bound: one op of slack on small traces.
    tolerance = 2.0 + 100.0 / len(out)
    assert abs(100 * mix.store - store_pct) < tolerance
    assert abs(100 * mix.load - load_pct) < tolerance
    # Algorithmic accesses survive, in order.
    algo_loads = [op.addr for op in out
                  if op.kind == "L" and op.addr >= 0x10000]
    assert algo_loads[:n_loads] == [0x10000 + i * 8
                                    for i in range(n_loads)]
