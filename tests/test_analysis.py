"""Tests for the analysis drivers and reporting."""

import pytest

from repro.analysis import (
    measure_figure6,
    measure_workload,
    render_bar_series,
    render_figure5,
    render_figure6,
    render_table,
    render_table3,
    run_figure6,
)
from repro.analysis.figure6 import FIGURE6_PARAMS
from repro.workloads import PAPER_TABLE3, figure6_workload_names


class TestTable3Driver:
    @pytest.fixture(scope="class")
    def row(self):
        return measure_workload("Masstree", cores=2, scale=0.25)

    def test_row_fields(self, row):
        assert row.workload == "Masstree"
        assert row.suite == "Tailbench"
        assert row.paper_wc_speedup == PAPER_TABLE3["Masstree"].wc_speedup

    def test_mix_near_paper(self, row):
        assert abs(row.store_pct - 14) < 3
        assert abs(row.load_pct - 13) < 3

    def test_speedup_positive_and_sane(self, row):
        assert 0.8 < row.wc_speedup < 4.0

    def test_state_columns_populated(self, row):
        assert row.state_kb_baseline > 0
        assert row.state_kb_4x_skew > 0

    def test_as_dict_rounding(self, row):
        d = row.as_dict()
        assert d["workload"] == "Masstree"
        assert isinstance(d["WC speedup"], float)


class TestFigure6Driver:
    def test_figure6_params_cover_all_workloads(self):
        assert set(FIGURE6_PARAMS) == set(figure6_workload_names())

    def test_measure_single_workload(self):
        row = measure_figure6("Silo", cores=1)
        assert 0.8 < row.relative_performance <= 1.001
        assert row.imprecise_exceptions > 0
        assert row.baseline_throughput >= row.imprecise_throughput

    def test_batching_variant_not_worse(self):
        minimal = measure_figure6("Masstree", cores=1)
        batched = measure_figure6("Masstree", cores=1, batching=True)
        assert (batched.relative_performance
                >= minimal.relative_performance - 0.02)


class TestFigure6Gate:
    """The paper's §6.5 criteria: per-GAP-kernel >= 96.5 % of
    baseline; Tailbench *aggregated* throughput loss <= 4 %."""

    def _row(self, name, baseline, imprecise, work=100):
        from repro.analysis import Figure6Row
        return Figure6Row(workload=name, baseline_cycles=baseline,
                          imprecise_cycles=imprecise,
                          imprecise_exceptions=1, faulting_stores=1,
                          precise_exceptions=1, work_items=work)

    def test_all_criteria_met(self):
        from repro.analysis import figure6_gate
        verdict = figure6_gate([
            self._row("BFS", 1000, 1010),
            self._row("Silo", 1000, 1020),
            self._row("Masstree", 1000, 1030),
        ])
        assert verdict.ok
        assert verdict.gap_relative["BFS"] == pytest.approx(1000 / 1010)
        assert verdict.tailbench_aggregate == pytest.approx(2000 / 2050)

    def test_gap_kernel_below_965_fails_by_name(self):
        from repro.analysis import figure6_gate
        verdict = figure6_gate([
            self._row("BFS", 1000, 1010),
            self._row("SSSP", 1000, 1050),  # 95.2 % < 96.5 %
        ])
        assert not verdict.ok
        assert len(verdict.failures) == 1
        assert "GAP/SSSP" in verdict.failures[0]

    def test_tailbench_gates_on_aggregate_not_per_app(self):
        from repro.analysis import figure6_gate
        # Masstree alone is at 95.2 % (would fail a per-app gate) but
        # the aggregated throughput stays within the 4 % budget.
        verdict = figure6_gate([
            self._row("Silo", 1000, 1010),
            self._row("Masstree", 1000, 1050),
        ])
        assert verdict.ok
        assert verdict.tailbench_ratio["Masstree"] < 0.96
        assert verdict.tailbench_aggregate >= 0.96

    def test_tailbench_aggregate_breach_fails(self):
        from repro.analysis import figure6_gate
        verdict = figure6_gate([
            self._row("Silo", 1000, 1080),
            self._row("Masstree", 1000, 1080),
        ])
        assert not verdict.ok
        assert "Tailbench aggregate" in verdict.failures[0]


class TestReporting:
    def test_render_table_alignment(self):
        text = render_table(["a", "bb"], [(1, 2.5), ("xx", "y")],
                            title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "2.50" in text
        assert all(len(lines[2]) >= len("a  bb") for _ in [0])

    def test_render_bar_series(self):
        text = render_bar_series({"x": 2.0, "y": 1.0}, width=10,
                                 title="bars")
        assert "##########" in text
        assert "#####" in text

    def test_render_bar_series_empty(self):
        assert render_bar_series({}, title="t") == "t"

    def test_render_figure5_rows(self):
        rows = [{"fault_fraction": 0.1, "mode": "minimal",
                 "uarch": 10.0, "os_apply": 20.0, "os_other": 30.0,
                 "total": 60.0, "stores_per_exception": 2.0}]
        text = render_figure5(rows)
        assert "Figure 5" in text and "minimal" in text

    def test_render_figure6_rows(self):
        rows = run_figure6(workloads=["Silo"], cores=1)
        text = render_figure6(rows)
        assert "Silo" in text and "%" in text
