"""Static happens-before analysis: soundness against the axiomatic
enumerator and the operational explorer.

The contracts pinned here (the PR 4 acceptance results):

* **classifier soundness** — an ``SC_EQUIVALENT`` verdict implies a
  bit-identical allowed set under the model and SC, checked by full
  enumeration over the hand-written library, the generated suite, and
  a fuzzed mutant corpus, for every supported model;
* **drain detector has no false negatives** — wherever exhaustive
  split-stream exploration (:func:`check_drain_policy`) finds a
  PC-forbidden outcome, the static detector reports a hazard, over
  every library test × faulting subset; the Figure 2a witness is
  pinned structurally;
* **fence advisor property** — for every ``RELAXABLE`` library test
  the advised (patched) test classifies ``SC_EQUIVALENT``, its
  allowed set collapses to SC's, and the spotlight relaxed outcome
  becomes forbidden.
"""

import itertools
import random

import pytest

from repro.explore import check_drain_policy, crosscheck_test
from repro.explore.fuzz import mutate
from repro.litmus.dsl import LitmusTest
from repro.litmus.generator import generate_all
from repro.litmus.harness import allowed_set, check_test
from repro.litmus.library import (all_library_tests, message_passing,
                                  store_buffering)
from repro.litmus.runner import RunConfig
from repro.memmodel.axioms import get_model
from repro.memmodel.imprecise import DrainPolicy
from repro.staticanalysis import (DrainVerdict, Verdict, advise_fences,
                                  classify, detect_drain_hazards)

LIBRARY = all_library_tests()
GENERATED = generate_all()
#: Models the pre-filter must be sound for (TSO aliases PC; RVWMO is
#: the WC reference).
MODELS = ("SC", "PC", "WC", "RVWMO")


def fault_subsets(test):
    locs = test.locations
    for r in range(1, len(locs) + 1):
        yield from itertools.combinations(locs, r)


def mutant_corpus(n=200, seed=4):
    """Deterministic fuzzed corpus seeded from the small tests."""
    rng = random.Random(seed)
    bases = [t for t in GENERATED + LIBRARY
             if sum(len(ops) for ops in t.threads) <= 8]
    return [mutate(rng.choice(bases), rng) for _ in range(n)]


def outcome_matches(spotlight, outcome) -> bool:
    values = dict(outcome)
    return all(values.get(reg) == val
               for reg, val in spotlight.as_tuple())


# ----------------------------------------------------------------------
# Classifier: pinned verdicts
# ----------------------------------------------------------------------
class TestClassifierVerdicts:
    def test_mp_is_sc_equivalent_under_pc(self):
        assert classify(message_passing(), "PC").sc_equivalent

    def test_mp_is_relaxable_under_wc(self):
        cls = classify(message_passing(), "WC")
        assert cls.verdict is Verdict.RELAXABLE
        assert cls.delay_pairs and cls.cycles

    def test_sb_is_relaxable_under_pc_with_witness(self):
        cls = classify(store_buffering(), "PC")
        assert cls.verdict is Verdict.RELAXABLE
        # The witnessing cycle is the classic SB shape: a W->R delay
        # on each core joined by cross-core conflict edges.
        assert cls.cycle_descriptions
        assert all("delay" in d for d in cls.cycle_descriptions)

    def test_everything_is_sc_equivalent_under_sc(self):
        for test in LIBRARY + GENERATED:
            assert classify(test, "SC").sc_equivalent, test.name

    def test_library_relaxable_set_under_pc_is_exact(self):
        relaxable = {t.name for t in LIBRARY
                     if classify(t, "PC").verdict is Verdict.RELAXABLE}
        assert relaxable == {"SB", "SB+rfi", "RWC-2", "SB+onefence"}

    def test_fenced_sb_is_sc_equivalent_under_pc(self):
        fenced = next(t for t in LIBRARY if t.name == "SB+fences")
        assert classify(fenced, "PC").sc_equivalent

    def test_unknown_on_unparseable_test(self):
        broken = LitmusTest(name="broken", category="x",
                            threads=[[("Z", "x", 1)]])
        cls = classify(broken, "PC")
        assert cls.verdict is Verdict.UNKNOWN
        assert cls.reason

    def test_as_dict_is_json_ready(self):
        import json
        payload = classify(store_buffering(), "PC").as_dict()
        json.dumps(payload)
        assert payload["verdict"] == "relaxable"
        assert payload["delay_pairs"] >= 2


# ----------------------------------------------------------------------
# Classifier: soundness against the enumerator (the acceptance sweep)
# ----------------------------------------------------------------------
class TestClassifierSoundness:
    """``SC_EQUIVALENT`` must imply ``allowed(M) == allowed(SC)``.

    Zero disagreements are tolerated; a single counterexample is an
    unsoundness bug in :mod:`repro.staticanalysis.cycles`, not noise.
    """

    @pytest.mark.parametrize("model_name", ["PC", "WC", "RVWMO"])
    def test_library_and_generated(self, model_name):
        model = get_model(model_name)
        checked = 0
        for test in LIBRARY + GENERATED:
            cls = classify(test, model)
            if not cls.sc_equivalent:
                continue
            checked += 1
            assert allowed_set(test, model) == \
                allowed_set(test, get_model("SC")), \
                f"{test.name}: classifier unsound under {model_name}"
        assert checked >= 20  # the sweep really exercised the claim

    def test_fuzzed_mutants(self):
        mutants = mutant_corpus(n=200)
        assert len(mutants) >= 200
        disagreements = []
        for test in mutants:
            sc_allowed = None
            for model_name in ("PC", "WC", "RVWMO"):
                model = get_model(model_name)
                cls = classify(test, model)
                if not cls.sc_equivalent:
                    continue
                if sc_allowed is None:
                    sc_allowed = allowed_set(test, get_model("SC"))
                if allowed_set(test, model) != sc_allowed:
                    disagreements.append((test.name, model_name))
        assert disagreements == []

    def test_relaxable_is_complete_on_the_library(self):
        """Contrapositive sanity: whenever the allowed sets *differ*,
        the verdict must be RELAXABLE (never SC_EQUIVALENT/UNKNOWN by
        accident of the witness search)."""
        for test in LIBRARY:
            for model_name in ("PC", "WC", "RVWMO"):
                model = get_model(model_name)
                if allowed_set(test, model) != \
                        allowed_set(test, get_model("SC")):
                    cls = classify(test, model)
                    assert cls.verdict is Verdict.RELAXABLE, \
                        f"{test.name}/{model_name}: sets differ but " \
                        f"verdict is {cls.verdict}"


# ----------------------------------------------------------------------
# Fence advisor
# ----------------------------------------------------------------------
class TestFenceAdvisor:
    @pytest.mark.parametrize("model_name", MODELS)
    def test_advised_tests_become_sc_equivalent(self, model_name):
        model = get_model(model_name)
        advised = 0
        for test in LIBRARY:
            advice = advise_fences(test, model)
            if not advice.needed:
                assert advice.patched is test
                continue
            advised += 1
            assert advice.patched_verdict is Verdict.SC_EQUIVALENT, \
                f"{test.name}/{model_name}"
            assert allowed_set(advice.patched, model) == \
                allowed_set(advice.patched, get_model("SC")), \
                f"{test.name}/{model_name}: patched sets differ"
        if model_name != "SC":
            assert advised >= 4

    @pytest.mark.parametrize("model_name", ["PC", "WC", "RVWMO"])
    def test_patched_test_forbids_the_spotlight_outcome(self,
                                                       model_name):
        """The satellite property: the spotlight (relaxed) outcome of
        every RELAXABLE library test is forbidden after patching —
        unless SC itself allows it, in which case no fence can (or
        should) forbid it."""
        model = get_model(model_name)
        checked = 0
        for test in LIBRARY:
            if test.spotlight is None:
                continue
            advice = advise_fences(test, model)
            if not advice.needed:
                continue
            sc_allowed = allowed_set(advice.patched, get_model("SC"))
            if any(outcome_matches(test.spotlight, o)
                   for o in sc_allowed):
                continue  # SC-allowed: out of the advisor's power
            patched_allowed = allowed_set(advice.patched, model)
            assert not any(outcome_matches(test.spotlight, o)
                           for o in patched_allowed), \
                f"{test.name}/{model_name}: spotlight survives fences"
            checked += 1
        assert checked >= 1

    def test_sb_placements_are_minimal_directional(self):
        advice = advise_fences(store_buffering(), "PC")
        placed = [(p.thread, p.gap, p.kind.value)
                  for p in advice.placements]
        # One w,r fence per thread, between the store and the load —
        # the textbook SB repair, not a blanket full-fence spray.
        assert placed == [(0, 1, "sl"), (1, 1, "sl")]

    def test_advice_dict_is_json_ready(self):
        import json
        json.dumps(advise_fences(store_buffering(), "PC").as_dict())


# ----------------------------------------------------------------------
# Drain-hazard detector
# ----------------------------------------------------------------------
class TestDrainDetector:
    def test_figure2a_is_detected_statically(self):
        """The pinned Figure 2a shape: MP with the data store
        faulting must produce a hazard whose faulting store is the
        data store and whose younger store is the flag store."""
        mp = message_passing()
        report = detect_drain_hazards(
            mp, DrainPolicy.SPLIT_STREAM, faulting_locs=("y",))
        assert report.verdict is DrainVerdict.POSSIBLE_RACE
        hazard = report.hazards[0]
        assert hazard.faulting_addr == mp.location_addr("y")
        assert hazard.younger_addr == mp.location_addr("x")
        # Observer path closes the cycle through core 1.
        assert 1 in hazard.observer_cores

    def test_figure2a_flag_fault_is_race_free(self):
        report = detect_drain_hazards(
            message_passing(), DrainPolicy.SPLIT_STREAM,
            faulting_locs=("x",))
        assert report.race_free

    def test_same_stream_is_race_free_everywhere(self):
        for test in LIBRARY:
            for subset in fault_subsets(test):
                report = detect_drain_hazards(
                    test, DrainPolicy.SAME_STREAM, subset)
                assert report.race_free, f"{test.name} {subset}"

    def test_no_false_negatives_against_exploration(self):
        """Acceptance: wherever exhaustive split-stream exploration
        finds a PC-forbidden outcome, the static detector must have
        flagged the pair (POSSIBLE_RACE or UNKNOWN — never
        RACE_FREE).  The reverse direction (static hazard, no
        explored violation) is allowed and counted for reporting."""
        pairs = false_positives = races = 0
        for test in LIBRARY:
            for subset in fault_subsets(test):
                pairs += 1
                static = detect_drain_hazards(
                    test, DrainPolicy.SPLIT_STREAM, subset)
                dynamic = check_drain_policy(
                    test, DrainPolicy.SPLIT_STREAM, subset)
                if dynamic.violations_pc:
                    races += 1
                    assert not static.race_free, (
                        f"{test.name} faults={subset}: explorer found "
                        f"{sorted(dynamic.violations_pc)} but static "
                        f"verdict is race-free")
                elif not static.race_free:
                    false_positives += 1
        assert pairs >= 70
        assert races >= 1  # Figure 2a exists in the library
        # Conservatism is expected but must not be vacuous: the
        # detector proves strictly more pairs race-free than not.
        assert false_positives < pairs / 2

    def test_fence_between_stores_suppresses_hazard(self):
        fenced = LitmusTest(
            name="MP+ssfence", category="t",
            threads=[[("W", "y", 1), ("F",), ("W", "x", 1)],
                     [("R", "x", "r0"), ("R", "y", "r1")]])
        report = detect_drain_hazards(
            fenced, DrainPolicy.SPLIT_STREAM, faulting_locs=("y",))
        assert report.race_free

    def test_report_dict_is_json_ready(self):
        import json
        report = detect_drain_hazards(message_passing(),
                                      DrainPolicy.SPLIT_STREAM)
        json.dumps(report.as_dict())
        assert report.as_dict()["policy"] == DrainPolicy.SPLIT_STREAM.value

    def test_all_hazard_pairs_are_surfaced(self):
        """Regression: a program with two faulting stores overtaken
        by younger drains must report *both* pairs, structured, in
        the JSON — not just the first or a prose-only list."""
        multi = LitmusTest(
            name="multihazard", category="t",
            threads=[[("W", "x", 1), ("W", "y", 1), ("W", "z", 1)],
                     [("R", "z", "r0"), ("R", "y", "r1"),
                      ("R", "x", "r2")]])
        report = detect_drain_hazards(
            multi, DrainPolicy.SPLIT_STREAM, faulting_locs=("x", "y"))
        assert report.verdict is DrainVerdict.POSSIBLE_RACE
        assert len(report.hazards) == 2
        faulting = {h.faulting_addr for h in report.hazards}
        assert faulting == {multi.location_addr("x"),
                            multi.location_addr("y")}
        # Both faulting stores are overtaken by the one non-faulting
        # younger store z (y→x stays FIFO: both route to the FSB).
        assert {h.younger_addr for h in report.hazards} == \
            {multi.location_addr("z")}
        payload = report.as_dict()["hazards"]
        assert len(payload) == 2
        for entry, hazard in zip(payload, report.hazards):
            assert entry["faulting_store"] == hazard.faulting_store
            assert entry["younger_store"] == hazard.younger_store
            assert entry["observer_path"] == list(hazard.observer_path)
            assert entry["observer_cores"] == list(hazard.observer_cores)
            assert entry["description"] == hazard.description
        import json
        json.dumps(payload)


# ----------------------------------------------------------------------
# Pre-filter integration (harness + explorer)
# ----------------------------------------------------------------------
class TestPrefilterIntegration:
    def test_check_test_short_circuits_sc_equivalent(self):
        mp = message_passing()
        base = check_test(mp, RunConfig(seeds=2, clean_pass=False))
        pre = check_test(mp, RunConfig(seeds=2, clean_pass=False,
                                       prefilter=True))
        assert pre.static_check is not None
        assert pre.static_check["short_circuited"] is True
        assert pre.conformance.allowed == base.conformance.allowed
        assert pre.ok

    def test_check_test_does_not_short_circuit_relaxable(self):
        verdict = check_test(store_buffering(),
                             RunConfig(seeds=2, clean_pass=False,
                                       prefilter=True))
        assert verdict.static_check["verdict"] == "relaxable"
        assert verdict.static_check["short_circuited"] is False
        assert verdict.ok

    def test_cached_allowed_set_skips_classification(self):
        mp = message_passing()
        allowed = allowed_set(mp, get_model("PC"))
        verdict = check_test(mp, RunConfig(seeds=2, clean_pass=False,
                                           prefilter=True),
                             allowed=allowed)
        assert verdict.static_check is None

    def test_crosscheck_prefilter_explores_sc_machine(self):
        check = crosscheck_test(message_passing(), "PC",
                                prefilter=True)
        assert check.prefiltered
        assert check.model_name == "SC"
        assert check.ok

    def test_crosscheck_prefilter_keeps_relaxable_on_pc(self):
        check = crosscheck_test(store_buffering(), "PC",
                                prefilter=True)
        assert not check.prefiltered
        assert check.model_name == "PC"
        assert check.ok

    def test_crosscheck_prefilter_agrees_with_unfiltered(self):
        for test in LIBRARY:
            plain = crosscheck_test(test, "PC")
            pre = crosscheck_test(test, "PC", prefilter=True)
            assert pre.operational == plain.operational, test.name
            assert pre.ok == plain.ok

    def test_suite_static_totals_and_v5_report(self, tmp_path):
        from repro.analysis.postprocess import (
            CAMPAIGN_REPORT_SCHEMA, read_campaign_report,
            write_campaign_report)
        from repro.litmus.campaign import AllowedSetCache
        from repro.litmus.harness import check_suite

        tests = LIBRARY[:6]
        # Fresh cache: the process-wide memo would serve allowed sets
        # from earlier tests and (correctly) skip classification.
        report = check_suite(tests, RunConfig(
            seeds=2, clean_pass=False, prefilter=True),
            cache=AllowedSetCache())
        totals = report.static_totals()
        assert totals["tests_classified"] == len(tests)
        assert totals["sc_equivalent"] + totals["relaxable"] + \
            totals["unknown"] == len(tests)
        assert totals["short_circuited"] >= 1

        path = tmp_path / "report.json"
        payload = write_campaign_report(path, report)
        assert payload["schema"] == CAMPAIGN_REPORT_SCHEMA
        assert payload["schema"].endswith("/v8")
        assert payload["static"] == totals
        assert all("static" in r for r in payload["results"])
        assert read_campaign_report(path)["static"] == totals
