"""Incremental-vs-naive enumerator equivalence (the PR's guard).

The incremental strategy must produce allowed sets *bit-identical* to
the naive cross-product for every program it can see: the full litmus
library under all four models, imprecise-protocol programs with extra
events and protocol edges, and randomly generated programs.  Witness
executions must reproduce the outcome they witness.
"""

import math

import pytest

from repro.litmus.generator import generate_all
from repro.memmodel import (MODELS, EnumerationStats, enumerate_executions,
                            program)
from repro.memmodel.enumerator import (STRATEGIES, build_events,
                                       canonical_outcome)
from repro.memmodel.events import FenceKind
from repro.memmodel.imprecise import DrainPolicy, transform
from repro.memmodel.relations import count_co_choices, count_rf_choices

ALL_MODELS = [MODELS[name] for name in ("SC", "PC", "WC", "RVWMO")]


def both_strategies(threads, model, **kwargs):
    inc = enumerate_executions(threads, model, strategy="incremental",
                               **kwargs)
    naive = enumerate_executions(threads, model, strategy="naive",
                                 **kwargs)
    return inc, naive


def assert_equivalent(threads, model, **kwargs):
    inc, naive = both_strategies(threads, model, **kwargs)
    assert inc.allowed == naive.allowed, (
        f"{model.name}: incremental-only={inc.allowed - naive.allowed} "
        f"naive-only={naive.allowed - inc.allowed}")
    # Every allowed outcome carries a witness that reproduces it.
    assert set(inc.witnesses) == inc.allowed
    for outcome, execution in inc.witnesses.items():
        assert execution.outcome() == outcome
        assert model.allows(execution)
    return inc, naive


class TestLitmusLibrary:
    """Every generated test × all four models, bit-identical."""

    @pytest.mark.parametrize("model", ALL_MODELS,
                             ids=lambda m: m.name)
    def test_library_equivalence(self, model):
        for test in generate_all():
            threads, deps = test.to_events()
            assert_equivalent(threads, model, extra_ppo=deps)

    def test_verify_strategy_smoke(self):
        for test in generate_all()[:10]:
            threads, deps = test.to_events()
            for model in ALL_MODELS:
                res = enumerate_executions(threads, model,
                                           extra_ppo=deps,
                                           strategy="verify")
                assert res.stats.strategy == "incremental"

    def test_unknown_strategy_rejected(self):
        threads = [program(0, [("S", 0xA, 1)])]
        with pytest.raises(ValueError, match="unknown strategy"):
            enumerate_executions(threads, MODELS["SC"],
                                 strategy="bogus")
        assert set(STRATEGIES) == {"incremental", "naive", "verify"}


class TestProtocolPrograms:
    """Imprecise-exception transforms: extra events + protocol edges."""

    @pytest.mark.parametrize("policy", [DrainPolicy.SPLIT_STREAM,
                                        DrainPolicy.SAME_STREAM])
    def test_transform_equivalence(self, policy):
        writer = program(0, [("S", 0xA, 1), ("S", 0xB, 1)])
        observer = program(1, [("L", 0xB), ("L", 0xA)])
        tr = transform([writer], [writer[0].uid], policy)
        for model in ALL_MODELS:
            assert_equivalent(
                tr.threads + [observer], model,
                extra_events=tr.extra_events,
                protocol_order=tr.protocol_order)

    def test_fenced_and_atomic_program(self):
        threads = [
            program(0, [("S", 0xA, 1), ("F",), ("A", 0xB, 2)]),
            program(1, [("A", 0xB, 3), ("F", FenceKind.LOAD_LOAD),
                        ("L", 0xA)]),
        ]
        for model in ALL_MODELS:
            assert_equivalent(threads, model)

    def test_init_values_respected(self):
        threads = [program(0, [("L", 0xA)]),
                   program(1, [("S", 0xA, 7)])]
        inc, naive = assert_equivalent(
            threads, MODELS["SC"], init_values={0xA: 5})
        values = {dict(o)["r0.0"] for o in inc.allowed}
        assert values == {5, 7}


class TestMaxCandidatesWraparound:
    """Both strategies enforce the guard at exactly the same size."""

    def make_threads(self):
        return [
            program(0, [("S", 0xA, 1), ("L", 0xA)]),
            program(1, [("S", 0xA, 2), ("L", 0xA)]),
        ]

    def total(self, threads):
        events = build_events(threads)
        return count_rf_choices(events) * count_co_choices(events)

    @pytest.mark.parametrize("strategy", ["incremental", "naive"])
    def test_exact_limit_passes(self, strategy):
        threads = self.make_threads()
        total = self.total(threads)
        res = enumerate_executions(threads, MODELS["SC"],
                                   max_candidates=total,
                                   strategy=strategy)
        assert res.allowed

    @pytest.mark.parametrize("strategy", ["incremental", "naive"])
    def test_one_below_limit_raises(self, strategy):
        threads = self.make_threads()
        total = self.total(threads)
        with pytest.raises(ValueError, match="exceed max_candidates"):
            enumerate_executions(threads, MODELS["SC"],
                                 max_candidates=total - 1,
                                 strategy=strategy)

    def test_identical_guard_messages(self):
        threads = self.make_threads()
        messages = {}
        for strategy in ("incremental", "naive"):
            with pytest.raises(ValueError) as exc:
                enumerate_executions(threads, MODELS["SC"],
                                     max_candidates=1,
                                     strategy=strategy)
            messages[strategy] = str(exc.value)
        assert messages["incremental"] == messages["naive"]


class TestStats:
    def test_stats_attached_and_consistent(self):
        threads = [program(0, [("S", 0xA, 1)]),
                   program(1, [("L", 0xA)])]
        inc, naive = both_strategies(threads, MODELS["SC"])
        assert isinstance(inc.stats, EnumerationStats)
        assert inc.stats.strategy == "incremental"
        assert naive.stats.strategy == "naive"
        # The naive path never prunes.
        assert naive.stats.rf_partial_prunes == 0
        assert naive.stats.addr_co_prunes == 0
        assert naive.stats.candidates_examined == \
            self_product_size(threads)
        # The incremental path can only examine fewer candidates.
        assert inc.stats.candidates_examined <= \
            naive.stats.candidates_examined
        d = inc.stats.as_dict()
        assert d["strategy"] == "incremental"
        assert d["wall_time_s"] >= 0

    def test_partial_prune_on_load_before_store(self):
        # A load po-before a same-address store: reading from that
        # later store closes a po_loc ∪ rf cycle on a *partial*
        # assignment, which the DFS prunes before touching co.
        threads = [
            program(0, [("L", 0xA), ("S", 0xA, 1)]),
            program(1, [("S", 0xA, 2), ("L", 0xA)]),
        ]
        inc, naive = assert_equivalent(threads, MODELS["SC"])
        assert inc.stats.rf_partial_prunes > 0
        assert inc.stats.candidates_examined < \
            naive.stats.candidates_examined

    def test_co_prune_on_conflicting_reads(self):
        # Two same-address writes + interleaved reads: incoherent rf
        # slices leave an address with no coherent co order.
        threads = [
            program(0, [("S", 0xA, 1), ("L", 0xA), ("L", 0xA)]),
            program(1, [("S", 0xA, 2), ("L", 0xA)]),
        ]
        inc, naive = assert_equivalent(threads, MODELS["SC"])
        assert inc.stats.addr_co_prunes > 0
        assert inc.stats.candidates_examined < \
            naive.stats.candidates_examined


def self_product_size(threads):
    events = build_events(threads)
    return count_rf_choices(events) * count_co_choices(events)


# ----------------------------------------------------------------------
# Property-style randomised equivalence
# ----------------------------------------------------------------------
hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st  # noqa: E402

OPS = st.one_of(
    st.tuples(st.just("S"), st.sampled_from([0xA, 0xB]),
              st.integers(min_value=1, max_value=3)),
    st.tuples(st.just("L"), st.sampled_from([0xA, 0xB])),
    st.tuples(st.just("A"), st.sampled_from([0xA, 0xB]),
              st.integers(min_value=1, max_value=3)),
    st.tuples(st.just("F")),
)


@given(st.lists(st.lists(OPS, min_size=1, max_size=3),
                min_size=1, max_size=2),
       st.sampled_from(["SC", "PC", "WC", "RVWMO"]))
@settings(max_examples=60, deadline=None)
def test_random_program_equivalence(op_lists, model_name):
    threads = [program(core, ops)
               for core, ops in enumerate(op_lists)]
    if self_product_size(threads) > 50_000:
        return  # keep the naive oracle tractable
    inc, naive = both_strategies(threads, MODELS[model_name])
    assert inc.allowed == naive.allowed
    for outcome, execution in inc.witnesses.items():
        assert canonical_outcome(execution.outcome()) == outcome
