"""Operational-surface tests for ``repro serve``: health/ready
probes, the Prometheus ``metrics`` exposition, the ``trace`` lookup
op, end-to-end trace propagation (client → server → campaign worker
processes under one trace id, exported as a valid Chrome trace), and
the shutdown telemetry summary."""

import asyncio
import io
import logging
import threading

import pytest

from repro import obs
from repro.litmus import RunConfig, all_library_tests
from repro.serve import ServeClient, ServeError, VerdictServer
from repro.serve.protocol import decode_line, encode_line


@pytest.fixture()
def served(tmp_path):
    """A live UDS server (jobs=2, console sink) + connected client."""
    uds = tmp_path / "serve.sock"
    console = io.StringIO()
    server = VerdictServer(
        tmp_path / "store",
        RunConfig(seeds=3, clean_pass=False),
        tests=all_library_tests(),
        jobs=2,
        batch_window_s=0.02,
        sinks=[obs.ConsoleSummarySink(stream=console)])
    server.console = console  # test-side handle
    ready = threading.Event()
    thread = threading.Thread(
        target=lambda: asyncio.run(
            server.run(uds=uds, ready=lambda addr: ready.set())),
        daemon=True)
    thread.start()
    assert ready.wait(10), "server never came up"
    client = ServeClient(uds=uds)
    yield server, client, uds
    try:
        client.shutdown()
    except ServeError:
        pass
    client.close()
    thread.join(10)
    assert not thread.is_alive(), "server failed to shut down"


class TestOperationalEndpoints:
    def test_health(self, served):
        _server, client, _uds = served
        health = client.health()
        assert health["status"] == "ok"
        assert health["server"] == "repro-serve"
        assert health["uptime_s"] >= 0

    def test_ready(self, served):
        _server, client, _uds = served
        readiness = client.ready()
        assert readiness["ready"] is True
        assert readiness["pending"] == 0

    def test_metrics_is_parseable_prometheus_text(self, served):
        _server, client, _uds = served
        client.ping()
        client.query(name="SB")
        body = client.metrics_text()
        samples = {}
        for line in body.splitlines():
            assert line, "blank line in exposition"
            if line.startswith("#"):
                parts = line.split()
                assert parts[0] == "#" and parts[1] == "TYPE", line
                assert parts[3] in ("counter", "gauge", "histogram")
                continue
            name_labels, _, value = line.rpartition(" ")
            float(value) if value != "+Inf" else None
            samples[name_labels] = value
        assert "repro_serve_uptime_seconds" in samples
        assert float(samples["repro_serve_requests_ping_total"]) >= 1
        assert float(samples["repro_serve_requests_query_total"]) >= 1
        # Lifetime latency histogram with +Inf bucket + SLO windows.
        assert any(k.startswith("repro_serve_request_latency_s_bucket")
                   and 'le="+Inf"' in k for k in samples)
        p50 = [k for k in samples
               if k.startswith("repro_serve_slo_latency_seconds")
               and 'quantile="p50"' in k]
        p99 = [k for k in samples
               if k.startswith("repro_serve_slo_latency_seconds")
               and 'quantile="p99"' in k]
        assert p50 and p99, sorted(samples)[:20]
        # Store + retention gauges are exposed.
        assert "repro_serve_store_hit_rate" in samples
        assert "repro_serve_trace_retained" in samples

    def test_malformed_requests_are_counted_errors(self, served):
        _server, client, _uds = served
        # Invalid trace id -> protocol error, connection stays usable.
        client._file.write(encode_line({"op": "ping",
                                        "trace": "bad trace!"}))
        client._file.flush()
        response = decode_line(client._file.readline())
        assert response["ok"] is False
        assert "trace" in response["error"]
        # Unknown op -> error, still counted.
        client._file.write(encode_line({"op": "frobnicate"}))
        client._file.flush()
        response = decode_line(client._file.readline())
        assert response["ok"] is False
        body = client.metrics_text()
        assert "repro_serve_errors_total" in body
        registry = _server.telemetry.metrics
        assert registry.counter("serve.errors").value >= 2

    def test_trace_op_requires_id(self, served):
        _server, client, _uds = served
        with pytest.raises(ServeError, match="trace"):
            client.request("trace")


class TestTracePropagation:
    def test_submit_propagates_one_trace_end_to_end(self, served,
                                                    tmp_path):
        server, client, _uds = served
        client_sink = obs.MemorySink()
        client_tel = obs.Telemetry(sinks=[client_sink])
        names = [t.name for t in all_library_tests()[:4]]
        with obs.use(client_tel):
            response = client.submit(names=names)
        assert all(r["verdict"]["ok"] for r in response["results"])
        trace_id = response["trace"]
        assert obs.is_trace_id(trace_id)

        # Client side: the submit wait span carries the same id.
        (client_span,) = [r for r in client_sink.records
                          if r.get("type") == "span"]
        assert client_span["name"] == "serve.client.submit"
        assert client_span["trace"] == trace_id

        # Server side: request handling, batching, and the campaign
        # worker *processes* all stamped with the one id.
        records = client.fetch_trace(trace_id, lane_base=1000)
        assert records, "server retained nothing for the trace"
        assert all(r["trace"] == trace_id for r in records)
        names_seen = {r["name"] for r in records}
        for expected in ("serve.request", "serve.store.lookup",
                         "serve.submit.wait", "serve.batch.window",
                         "serve.batch", "campaign.run",
                         "campaign.chunk", "campaign.test"):
            assert expected in names_seen, (expected, names_seen)
        # campaign.chunk spans come from worker processes on their
        # own (re-based) wall lanes.
        chunk_lanes = {r["lane"] for r in records
                       if r["name"] == "campaign.chunk"}
        assert chunk_lanes and all(lane > 1000 for lane in chunk_lanes)

        # One Chrome trace over both processes validates.
        merged = list(client_sink.records) + records
        payload = obs.chrome_trace_events(
            [r for r in merged if r["type"] == "span"],
            [r for r in merged if r["type"] == "event"],
            [r for r in merged if r["type"] == "sample"])
        obs.assert_valid_chrome_trace(payload)
        traced_args = {(e.get("args") or {}).get("trace")
                       for e in payload["traceEvents"]
                       if e.get("ph") == "B"}
        assert traced_args == {trace_id}

    def test_caller_supplied_trace_is_continued(self, served):
        _server, client, _uds = served
        response = client.submit(name="SB", trace="my-trace-1")
        assert response["trace"] == "my-trace-1"
        records = client.fetch_trace("my-trace-1")
        assert records
        assert {r["trace"] for r in records} == {"my-trace-1"}

    def test_distinct_submits_get_distinct_traces(self, served):
        _server, client, _uds = served
        first = client.submit(name="SB")
        second = client.submit(name="MP")
        assert first["trace"] != second["trace"]
        # Each trace sees only its own request records.
        for response, name in ((first, "SB"), (second, "MP")):
            records = client.fetch_trace(response["trace"])
            lookups = [r for r in records
                       if r["name"] == "serve.store.lookup"]
            assert len(lookups) == 1

    def test_untraced_query_leaves_no_trace(self, served):
        _server, client, _uds = served
        client.query(name="SB")
        retained = _server.retainer.retained()
        query_spans = [r for r in retained
                       if r.get("attrs", {}).get("op") == "query"]
        assert query_spans
        assert all("trace" not in r for r in query_spans)


class TestShutdownSummary:
    def test_shutdown_emits_summary_and_retention_log(self, tmp_path,
                                                      caplog):
        uds = tmp_path / "serve.sock"
        console = io.StringIO()
        server = VerdictServer(
            tmp_path / "store",
            RunConfig(seeds=2, clean_pass=False),
            tests=all_library_tests(),
            batch_window_s=0.02,
            sinks=[obs.ConsoleSummarySink(stream=console)])
        ready = threading.Event()
        thread = threading.Thread(
            target=lambda: asyncio.run(
                server.run(uds=uds, ready=lambda addr: ready.set())),
            daemon=True)
        with caplog.at_level(logging.INFO, logger="repro.serve"):
            thread.start()
            assert ready.wait(10)
            with ServeClient(uds=uds) as client:
                client.submit(name="SB")
                client.shutdown()
            thread.join(10)
        assert not thread.is_alive()
        # The final summary went through the active sink...
        text = console.getvalue()
        assert "telemetry summary" in text
        assert "serve.request" in text
        assert "top spans by total wall time" in text
        # ...and retention/latency accounting was logged.
        logged = "\n".join(r.getMessage() for r in caplog.records)
        assert "serve trace retention" in logged
        assert "sampled out" in logged
        assert "serve request latency" in logged
