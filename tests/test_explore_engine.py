"""Exploration engine: DPOR soundness, litmus cross-checks, and the
drain-policy acceptance results of the exploration subsystem.

The two headline results pinned here:

* **same-stream admits no consistency violation** — exhaustive
  exploration of the imprecise machine over every hand-written
  library test and every non-empty faulting-location subset finds
  only PC/WC-allowed outcomes;
* **split-stream races on Figure 2a** — the MP shape with the data
  store faulting explores a PC-forbidden outcome, and the engine
  emits the witnessing schedule (pinned as a regression below).
"""

import itertools
import random

import pytest
from hypothesis import HealthCheck, assume, given, settings
from hypothesis import strategies as st

from repro.explore import (ExplorationBudgetExceeded, ExplorationStats,
                           check_drain_policy, crosscheck_test,
                           explore, machine_for, sample_schedules)
from repro.litmus.dsl import LitmusTest
from repro.litmus.library import all_library_tests, message_passing
from repro.memmodel.imprecise import DrainPolicy
from repro.memmodel.operational import sc_outcomes, tso_outcomes

LIBRARY = all_library_tests()

#: Figure 2a witness under split-stream with the data store ('y')
#: faulting: the data store is routed to the FSB (DETECT+PUT), the
#: younger flag store drains straight to memory, the observer reads
#: flag=1 then data=0, and only afterwards does the OS apply resolve
#: the routed store.  DPOR traversal is deterministic, so the exact
#: trace is a stable regression anchor.
FIG2A_WITNESS = (
    "C0: issue S(0x101000,1)",
    "C0: DETECT+PUT S(0x101000,1)",
    "C0: issue S(0x100000,1)",
    "C0: drain S(0x100000,1)",
    "C1: L(0x100000)=1",
    "C1: L(0x101000)=0",
    "OS@C0: S_OS+RESOLVE(0x101000,1)",
)


def fault_subsets(test):
    locs = test.locations
    for r in range(1, len(locs) + 1):
        yield from itertools.combinations(locs, r)


class TestLibraryCrossCheck:
    """Acceptance: operational exploration is bit-identical to the
    axiomatic enumerator on every library test for the exact
    machines, and sound for WC."""

    @pytest.mark.parametrize("model", ["SC", "PC"])
    def test_verify_bit_identical(self, model):
        for test in LIBRARY:
            check = crosscheck_test(test, model, strategy="verify")
            assert check.require_equality
            assert check.ok, (
                f"{test.name}/{model}: violations={check.violations} "
                f"missing={check.missing}")
            assert not check.violations and not check.missing

    def test_wc_sound(self):
        for test in LIBRARY:
            check = crosscheck_test(test, "WC")
            assert not check.require_equality
            assert check.ok, f"{test.name}/WC: {check.violations}"


class TestDrainPolicies:
    def test_same_stream_admits_no_violation_anywhere(self):
        """Every library test x every non-empty faulting subset."""
        pairs = 0
        for test in LIBRARY:
            for subset in fault_subsets(test):
                check = check_drain_policy(
                    test, DrainPolicy.SAME_STREAM, subset)
                assert check.preserves_model, (
                    f"{test.name} faults={subset}: "
                    f"{sorted(check.violations_pc)}")
                pairs += 1
        assert pairs >= 70  # the sweep really covered the library

    def test_split_stream_races_on_fig2a(self):
        check = check_drain_policy(message_passing(),
                                   DrainPolicy.SPLIT_STREAM, ("y",))
        assert sorted(check.violations_pc) == [(("r0", 1), ("r1", 0))]
        # The WC model allows the raced outcome: split-stream weakens
        # PC towards WC rather than into the totally unordered.
        assert not check.violations_wc

    def test_fig2a_witness_schedule_pinned(self):
        check = check_drain_policy(message_passing(),
                                   DrainPolicy.SPLIT_STREAM, ("y",))
        [(outcome, schedule)] = check.violation_schedules.items()
        assert outcome == (("r0", 1), ("r1", 0))
        assert schedule == FIG2A_WITNESS

    def test_witness_schedule_is_causally_shaped(self):
        """Structural (refactor-proof) form of the pinned witness."""
        check = check_drain_policy(message_passing(),
                                   DrainPolicy.SPLIT_STREAM, ("y",))
        for schedule in check.violation_schedules.values():
            routed = next(i for i, s in enumerate(schedule)
                          if "DETECT+PUT" in s)
            flag_read = next(i for i, s in enumerate(schedule)
                             if "L(0x100000)=1" in s)
            resolve = next(i for i, s in enumerate(schedule)
                           if "RESOLVE" in s)
            assert routed < flag_read < resolve


class TestBudgets:
    def test_engine_budget_raises_typed_error(self):
        threads, deps = message_passing().to_events()
        machine = machine_for("PC", threads, extra_ppo=deps)
        for strategy in ("dpor", "naive"):
            with pytest.raises(ExplorationBudgetExceeded):
                explore(machine, strategy=strategy, max_states=3)

    def test_crosscheck_budget(self):
        with pytest.raises(ExplorationBudgetExceeded):
            crosscheck_test(message_passing(), "PC", max_states=3)

    def test_operational_layer_budget(self):
        threads, _ = message_passing().to_events()
        with pytest.raises(ExplorationBudgetExceeded):
            sc_outcomes(threads, max_states=2)
        with pytest.raises(ExplorationBudgetExceeded):
            tso_outcomes(threads, max_states=2)
        # Default budget is ample for litmus-sized programs.
        assert sc_outcomes(threads) <= tso_outcomes(threads)


class TestStrategies:
    def test_dpor_never_exceeds_naive_interleavings(self):
        for test in LIBRARY[:8]:
            threads, deps = test.to_events()
            machine = machine_for("PC", threads, extra_ppo=deps)
            dpor = explore(machine, strategy="dpor")
            naive = explore(machine, strategy="naive",
                            dedupe_states=False)
            assert dpor.outcomes == naive.outcomes
            assert (dpor.stats.interleavings
                    <= naive.stats.interleavings)

    def test_every_outcome_has_a_schedule(self):
        threads, deps = message_passing().to_events()
        machine = machine_for("PC", threads, extra_ppo=deps)
        result = explore(machine)
        assert set(result.schedules) == result.outcomes
        assert all(result.schedules.values())

    def test_sample_schedules_subset_of_exhaustive(self):
        threads, deps = message_passing().to_events()
        machine = machine_for("PC", threads, extra_ppo=deps)
        exhaustive = explore(machine).outcomes
        stats = ExplorationStats(strategy="sample")
        sampled, schedules = sample_schedules(machine,
                                              random.Random(7), 50,
                                              200, stats)
        assert sampled <= exhaustive
        assert set(schedules) == sampled

    def test_stats_merge(self):
        a = ExplorationStats(strategy="dpor", states_visited=3,
                             interleavings=2, wall_time_s=0.5)
        b = ExplorationStats(strategy="dpor", states_visited=4,
                             interleavings=1, wall_time_s=0.25,
                             max_depth=9)
        a.merge(b)
        assert a.states_visited == 7
        assert a.interleavings == 3
        assert a.max_depth == 9
        assert a.as_dict()["wall_time_s"] == pytest.approx(0.75)


# ----------------------------------------------------------------------
# Property-based: DPOR is a sound and complete reduction
# ----------------------------------------------------------------------
LOCS = ("x", "y")


@st.composite
def small_programs(draw):
    n_threads = draw(st.integers(min_value=2, max_value=3))
    threads = []
    budget = 6  # total ops, keeps the naive oracle tractable
    for tid in range(n_threads):
        # Leave at least one op of budget for every later thread.
        cap = min(3, budget - (n_threads - tid - 1))
        n_ops = draw(st.integers(min_value=1, max_value=cap))
        budget -= n_ops
        ops = []
        for i in range(n_ops):
            loc = draw(st.sampled_from(LOCS))
            if draw(st.booleans()):
                ops.append(("W", loc, draw(st.integers(1, 2))))
            else:
                ops.append(("R", loc, f"t{tid}r{i}"))
        threads.append(ops)
    return LitmusTest(name="prop", category="fuzz", threads=threads)


class TestDPORProperty:
    @settings(max_examples=40, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(test=small_programs(), model=st.sampled_from(["SC", "PC"]))
    def test_dpor_equals_naive(self, test, model):
        threads, deps = test.to_events()
        machine = machine_for(model, threads, extra_ppo=deps)
        dpor = explore(machine, strategy="dpor", max_states=200_000)
        try:
            naive = explore(machine, strategy="naive",
                            max_states=200_000, dedupe_states=False)
        except ExplorationBudgetExceeded:
            # Rare draws (e.g. five same-address stores over three
            # threads under PC) are tractable for DPOR but not for
            # the dedupe-free naive oracle; skip rather than flake.
            assume(False)
        assert dpor.outcomes == naive.outcomes
        assert dpor.stats.interleavings <= naive.stats.interleavings
