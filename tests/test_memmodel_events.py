"""Unit tests for repro.memmodel.events."""

import pytest

from repro.memmodel.events import (
    Event,
    EventKind,
    FenceKind,
    InitialWrite,
    initial_writes,
    program,
)


class TestProgramBuilder:
    def test_builds_loads_and_stores(self):
        evs = program(0, [("S", 0x10, 7), ("L", 0x10)])
        assert evs[0].kind is EventKind.STORE
        assert evs[0].addr == 0x10
        assert evs[0].value == 7
        assert evs[1].kind is EventKind.LOAD
        assert evs[1].value is None

    def test_indices_follow_program_order(self):
        evs = program(2, [("S", 1, 1), ("F",), ("L", 1)])
        assert [e.index for e in evs] == [0, 1, 2]
        assert all(e.core == 2 for e in evs)

    def test_full_fence_default(self):
        (fence,) = program(0, [("F",)])
        assert fence.kind is EventKind.FENCE
        assert fence.fence is FenceKind.FULL

    def test_directional_fence(self):
        (fence,) = program(0, [("F", FenceKind.STORE_STORE)])
        assert fence.fence is FenceKind.STORE_STORE

    def test_atomic(self):
        (amo,) = program(0, [("A", 0x20, 5)])
        assert amo.kind is EventKind.ATOMIC
        assert amo.is_read and amo.is_write

    def test_unknown_mnemonic_rejected(self):
        with pytest.raises(ValueError, match="unknown op"):
            program(0, [("X", 1)])


class TestEventProperties:
    def test_uids_are_unique(self):
        evs = program(0, [("S", 1, 1)] * 5)
        assert len({e.uid for e in evs}) == 5

    def test_load_is_read_not_write(self):
        (ld,) = program(0, [("L", 1)])
        assert ld.is_read and not ld.is_write and ld.is_memory_access

    def test_store_is_write_not_read(self):
        (st,) = program(0, [("S", 1, 2)])
        assert st.is_write and not st.is_read

    def test_fence_is_not_memory_access(self):
        (fence,) = program(0, [("F",)])
        assert not fence.is_memory_access
        assert fence.is_fence

    def test_with_value_preserves_uid(self):
        (ld,) = program(0, [("L", 1)])
        bound = ld.with_value(42)
        assert bound.uid == ld.uid
        assert bound.value == 42

    def test_str_formats(self):
        (st,) = program(3, [("S", 0xA, 1)])
        assert "C3" in str(st) and "S(0xa,1)" in str(st)


class TestInitialWrites:
    def test_defaults_to_zero(self):
        inits = initial_writes([0x1, 0x2])
        assert all(e.value == 0 for e in inits)
        assert all(e.core == -1 for e in inits)

    def test_override_values(self):
        inits = initial_writes([0x1, 0x2], {0x2: 9})
        by_addr = {e.addr: e.value for e in inits}
        assert by_addr == {0x1: 0, 0x2: 9}

    def test_initial_write_is_store_event(self):
        ev = InitialWrite(0x5, 3).as_event()
        assert ev.kind is EventKind.STORE
        assert ev.is_write
