"""Tests for the constrained-random litmus generator
(``repro.litmus.randgen``): the determinism contract, lint-cleanliness
by construction, feature gating, corpus manifests, and the campaign
integration that scales the corpus to paper-scale runs."""

import json

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.litmus import RunConfig, check_suite
from repro.litmus.generator import program_digest
from repro.litmus.randgen import (ALL_FEATURES, Corpus, ManifestError,
                                  ManifestMismatchError, RandGenConfig,
                                  RandGenError, corpus_from_manifest,
                                  generate_corpus, generate_one,
                                  read_manifest, write_manifest)
from repro.staticanalysis.lint import lint_test

_DEP_OPS = {"Raddr", "Rctrl", "Waddr", "Wdata", "Wctrl"}


class TestDeterminism:
    """Same seed -> bit-identical corpus; the contract every manifest
    and nightly campaign leans on."""

    def test_same_seed_same_corpus(self):
        a = generate_corpus(seed=5, count=80)
        b = generate_corpus(seed=5, count=80)
        assert a.digests() == b.digests()
        assert a.corpus_digest() == b.corpus_digest()
        assert [e.header for e in a.tests] == [e.header for e in b.tests]
        assert [e.test.threads for e in a.tests] == \
            [e.test.threads for e in b.tests]

    def test_different_seeds_differ(self):
        a = generate_corpus(seed=5, count=40)
        b = generate_corpus(seed=6, count=40)
        assert a.corpus_digest() != b.corpus_digest()

    def test_generate_one_regenerates_any_entry(self):
        corpus = generate_corpus(seed=9, count=50)
        for entry in corpus.tests[::7]:
            attempt = int(entry.header.name.split("-")[1])
            again = generate_one(corpus.config, attempt)
            assert again.digest == entry.digest
            assert again.header == entry.header
            assert again.test.threads == entry.test.threads

    def test_config_does_not_leak_global_random_state(self):
        import random
        random.seed(123)
        before = random.random()
        random.seed(123)
        generate_corpus(seed=1, count=10)
        assert random.random() == before


class TestCorpusProperties:
    def test_unique_and_lint_clean(self):
        corpus = generate_corpus(seed=2, count=200)
        digests = corpus.digests()
        assert len(digests) == len(set(digests))
        for entry in corpus.tests:
            assert lint_test(entry.test) == [], entry.header.name
            assert entry.digest == program_digest(entry.test)

    def test_attempt_accounting(self):
        corpus = generate_corpus(seed=2, count=120)
        assert corpus.attempts == len(corpus) + corpus.dedup_dropped
        assert corpus.wall_time_s > 0
        assert corpus.throughput > 0

    def test_headers_describe_their_programs(self):
        corpus = generate_corpus(seed=4, count=120)
        names = set()
        for entry in corpus.tests:
            header = entry.header
            names.add(header.name)
            assert header.cores == len(entry.test.threads)
            assert 2 <= header.cores <= 4
            assert header.category == entry.test.category
            assert header.features == ALL_FEATURES
            assert header.arch == "rv64-rvwmo"
            assert header.expected_verdict_source == \
                "axiomatic-enumerator"
            assert header.name == entry.test.name
            assert ";#test.name" in header.render()
        assert len(names) == len(corpus)

    def test_template_mix_covers_catalogue(self):
        corpus = generate_corpus(seed=0, count=400)
        mix = corpus.template_mix()
        assert sum(mix.values()) == 400
        # Every template should fire over a 400-test corpus.
        assert set(mix) == {"mp-chain", "sb-ring", "lb-ring",
                            "coherence", "wrc", "iriw", "atomic-mix",
                            "exception-suite"}

    def test_programs_compile_both_ways(self):
        corpus = generate_corpus(seed=8, count=60)
        for entry in corpus.tests:
            program = entry.test.to_program()
            assert program.cores == len(entry.test.threads)
            events, extra_ppo = entry.test.to_events()
            assert len(events) == len(entry.test.threads)


class TestFeatureGating:
    @staticmethod
    def _ops(corpus):
        for entry in corpus.tests:
            for thread in entry.test.threads:
                for op in thread:
                    yield entry, op

    def test_no_atomics_without_feature(self):
        corpus = generate_corpus(
            seed=1, count=60, features=("fences", "deps"))
        assert not any(op[0] == "A" for _, op in self._ops(corpus))

    def test_no_deps_without_feature(self):
        corpus = generate_corpus(
            seed=1, count=60, features=("fences", "atomics"))
        assert not any(op[0] in _DEP_OPS for _, op in self._ops(corpus))

    def test_no_fences_without_feature(self):
        corpus = generate_corpus(
            seed=1, count=60, features=("deps", "atomics"))
        assert not any(op[0] == "F" for _, op in self._ops(corpus))

    def test_no_faulting_locs_without_faults(self):
        corpus = generate_corpus(
            seed=1, count=60, features=("fences",))
        assert all(e.header.faulting_locs == () for e in corpus.tests)

    def test_faults_feature_marks_faulting_locs(self):
        corpus = generate_corpus(seed=1, count=200)
        faulting = [e for e in corpus.tests if e.header.faulting_locs]
        assert faulting, "no exception-suite tests in 200"
        for entry in faulting:
            locs = {op[1] for thread in entry.test.threads
                    for op in thread if op[0] != "F"}
            assert set(entry.header.faulting_locs) <= locs

    def test_core_range_is_respected(self):
        corpus = generate_corpus(seed=3, count=60, cores=(2, 2))
        assert all(len(e.test.threads) == 2 for e in corpus.tests)
        wide = generate_corpus(seed=3, count=120, cores=(3, 4))
        assert {len(e.test.threads) for e in wide.tests} == {3, 4}


class TestConfigValidation:
    def test_bad_cores(self):
        with pytest.raises(RandGenError):
            RandGenConfig(cores=(1, 4))
        with pytest.raises(RandGenError):
            RandGenConfig(cores=(3, 2))
        with pytest.raises(RandGenError):
            RandGenConfig(cores=(2, 5))

    def test_unknown_feature(self):
        with pytest.raises(RandGenError, match="unknown feature"):
            RandGenConfig(features=("fences", "lasers"))

    def test_config_and_kwargs_are_exclusive(self):
        with pytest.raises(TypeError):
            generate_corpus(RandGenConfig(count=5), seed=1)

    def test_config_round_trips_through_dict(self):
        config = RandGenConfig(seed=7, count=9, cores=(2, 3),
                               features=("fences",))
        assert RandGenConfig.from_dict(config.as_dict()) == config


class TestManifest:
    def _corpus(self):
        return generate_corpus(seed=17, count=30)

    def test_write_read_round_trip(self, tmp_path):
        corpus = self._corpus()
        path = tmp_path / "corpus.json"
        payload = write_manifest(path, corpus)
        back = read_manifest(path)
        assert back == payload
        assert back["schema"] == "repro.litmus.corpus/v1"
        assert back["count"] == 30
        assert back["corpus_digest"] == corpus.corpus_digest()
        assert len(back["tests"]) == 30

    def test_regeneration_verifies(self, tmp_path):
        corpus = self._corpus()
        path = tmp_path / "corpus.json"
        write_manifest(path, corpus)
        again = corpus_from_manifest(path)
        assert again.digests() == corpus.digests()
        assert again.corpus_digest() == corpus.corpus_digest()
        assert [e.header for e in again.tests] == \
            [e.header for e in corpus.tests]

    def test_tampered_digest_is_detected(self, tmp_path):
        corpus = self._corpus()
        path = tmp_path / "corpus.json"
        payload = write_manifest(path, corpus)
        payload["tests"][3]["digest"] = "0" * 64
        path.write_text(json.dumps(payload))
        with pytest.raises(ManifestMismatchError) as exc:
            corpus_from_manifest(path)
        # Names the first divergent test.
        assert corpus.tests[3].header.name in str(exc.value)

    def test_tampered_config_is_detected(self, tmp_path):
        corpus = self._corpus()
        path = tmp_path / "corpus.json"
        payload = write_manifest(path, corpus)
        payload["config"]["seed"] = 999
        path.write_text(json.dumps(payload))
        with pytest.raises(ManifestMismatchError):
            corpus_from_manifest(path)

    def test_wrong_schema_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"schema": "something/else"}))
        with pytest.raises(ManifestError, match="not a corpus manifest"):
            read_manifest(path)

    def test_count_mismatch_rejected(self, tmp_path):
        corpus = self._corpus()
        path = tmp_path / "corpus.json"
        payload = write_manifest(path, corpus)
        payload["count"] = 31
        path.write_text(json.dumps(payload))
        with pytest.raises(ManifestError, match="31"):
            read_manifest(path)

    def test_not_json_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("not json {")
        with pytest.raises(ManifestError, match="not valid JSON"):
            read_manifest(path)


class TestCampaignIntegration:
    """Generated tests flow through the full campaign: static
    prefilter, incremental enumerator, DPOR explorer cross-check —
    with zero axiomatic/operational/static disagreements."""

    def _config(self):
        return RunConfig(seeds=2, clean_pass=False, prefilter=True,
                         explore="dpor")

    def test_campaign_over_random_corpus_is_clean(self):
        corpus = generate_corpus(seed=23, count=30)
        report = check_suite(corpus.litmus_tests(), self._config())
        assert report.ok
        assert report.explorer_totals()["mismatches"] == 0
        assert report.explorer_totals()["tests_explored"] == 30

    def test_incremental_rerun_hits_the_store(self, tmp_path):
        from repro.store import VerdictStore
        corpus = generate_corpus(seed=29, count=20)
        store = VerdictStore(tmp_path / "store")
        first = check_suite(corpus.litmus_tests(), self._config(),
                            store=store, incremental=True)
        assert first.ok and first.store["misses"] == 20
        again = check_suite(corpus.litmus_tests(), self._config(),
                            store=store, incremental=True)
        assert again.ok
        assert again.store["hits"] == 20
        assert again.store["misses"] == 0

    def test_report_v8_carries_the_corpus_block(self, tmp_path):
        from repro.analysis.postprocess import (CAMPAIGN_REPORT_SCHEMA,
                                                read_campaign_report,
                                                write_campaign_report)
        corpus = generate_corpus(seed=31, count=10)
        report = check_suite(corpus.litmus_tests(), self._config())
        report.corpus = corpus.report_block()
        path = tmp_path / "report.json"
        write_campaign_report(path, report)
        back = read_campaign_report(path)
        assert back["schema"] == CAMPAIGN_REPORT_SCHEMA
        assert back["schema"].endswith("/v8")
        block = back["corpus"]
        assert block["seed"] == 31
        assert block["count"] == 10
        assert block["corpus_digest"] == corpus.corpus_digest()
        assert block["generator"] == "repro.litmus.randgen/1"
        assert sum(block["template_mix"].values()) == 10
        assert block["attempts"] >= 10

    def test_reports_without_corpus_serialise_null(self):
        from repro.analysis.postprocess import campaign_report_dict
        from repro.litmus.library import message_passing
        report = check_suite([message_passing()],
                             RunConfig(seeds=2, clean_pass=False))
        assert campaign_report_dict(report)["corpus"] is None


class TestSeedStabilityProperty:
    """Hypothesis: for arbitrary seeds, every emitted program parses,
    round-trips through the DSL, is lint-clean, and keeps a stable
    digest across two same-seed instantiations."""

    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(seed=st.integers(min_value=0, max_value=2**63 - 1))
    def test_arbitrary_seed_corpus_is_well_formed(self, seed):
        corpus = generate_corpus(seed=seed, count=4)
        twin = generate_corpus(seed=seed, count=4)
        assert corpus.digests() == twin.digests()
        assert corpus.corpus_digest() == twin.corpus_digest()
        from repro.litmus.parser import (LitmusRenderError,
                                         parse_litmus, render_litmus)
        for entry in corpus.tests:
            assert lint_test(entry.test) == []
            # Dual compilation: operational program + axiomatic events.
            entry.test.to_program()
            entry.test.to_events()
            try:
                text = render_litmus(entry.test)
            except LitmusRenderError:
                # Dependency ops have no .litmus encoding; the DSL
                # round trip above is the contract for those.
                assert any(op[0] in _DEP_OPS
                           for thread in entry.test.threads
                           for op in thread)
                continue
            reparsed = parse_litmus(text)
            assert reparsed.threads == entry.test.threads
            assert reparsed.spotlight == entry.test.spotlight

    @settings(max_examples=10, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(seed=st.integers(min_value=0, max_value=2**32 - 1),
           lo=st.integers(min_value=2, max_value=4),
           span=st.integers(min_value=0, max_value=2))
    def test_arbitrary_core_ranges(self, seed, lo, span):
        hi = min(4, lo + span)
        corpus = generate_corpus(seed=seed, count=3, cores=(lo, hi))
        for entry in corpus.tests:
            assert lo <= len(entry.test.threads) <= hi
