"""Unit tests for the telemetry subsystem (repro.obs)."""

import io
import json

import pytest

from repro import obs
from repro.obs import (ChromeTraceSink, ConsoleSummarySink, Counter,
                       Gauge, Histogram, JsonlSink, MemorySink,
                       MetricsRegistry, NULL, NullTelemetry, SIM,
                       Telemetry, WALL, assert_valid_chrome_trace,
                       chrome_trace_events, figure5_from_spans,
                       load_stats_input, read_jsonl, render_summary,
                       summarize_jsonl, summarize_records,
                       validate_chrome_trace)


# ----------------------------------------------------------------------
# Metrics
# ----------------------------------------------------------------------
class TestCounter:
    def test_inc(self):
        c = Counter("x")
        c.inc()
        c.inc(4)
        assert c.value == 5

    def test_registry_returns_same_instance(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert reg.counter("a") is not reg.counter("b")


class TestGauge:
    def test_tracks_last_and_max(self):
        g = Gauge("occ")
        g.set(3)
        g.set(9)
        g.set(1)
        assert g.value == 1
        assert g.max == 9
        assert g.samples == 3


class TestHistogram:
    def test_mean_min_max(self):
        h = Histogram("h")
        for v in (1, 2, 3, 10):
            h.observe(v)
        d = h.as_dict()
        assert d["count"] == 4
        assert d["mean"] == 4.0
        assert d["min"] == 1 and d["max"] == 10

    def test_percentiles_with_unit_buckets(self):
        h = Histogram("h", buckets=list(range(1, 101)))
        for v in range(1, 101):
            h.observe(v)
        assert h.percentile(50) == 50
        assert h.percentile(90) == 90
        assert h.percentile(99) == 99
        assert h.percentile(100) == 100

    def test_empty_percentile_is_zero(self):
        assert Histogram("h").percentile(50) == 0.0

    def test_overflow_bucket_reports_observed_max(self):
        h = Histogram("h", buckets=[1.0])
        h.observe(123456.0)
        assert h.percentile(99) == 123456.0

    def test_unsorted_buckets_rejected(self):
        with pytest.raises(ValueError):
            Histogram("h", buckets=[2.0, 1.0])


class TestRegistryMerge:
    def test_counter_and_histogram_merge_exactly(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        for reg, values in ((a, (1, 5, 9)), (b, (2, 4))):
            reg.counter("n").inc(len(values))
            for v in values:
                reg.histogram("h").observe(v)
        for record in b.records():
            a.merge_record(record)
        assert a.counter("n").value == 5
        merged = a.histogram("h").as_dict()
        assert merged["count"] == 5
        assert merged["total"] == 21
        assert merged["min"] == 1 and merged["max"] == 9

    def test_gauge_merge_keeps_max(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.gauge("g").set(2)
        b.gauge("g").set(7)
        b.gauge("g").set(1)
        for record in b.records():
            a.merge_record(record)
        assert a.gauge("g").max == 7

    def test_unknown_record_kind_rejected(self):
        with pytest.raises(ValueError):
            MetricsRegistry().merge_record(
                {"metric": "nope", "name": "x"})

    def test_namespace_projection(self):
        reg = MetricsRegistry()
        reg.counter("enum.a").inc(3)
        reg.counter("enum.b").inc(4)
        reg.counter("other.c").inc(5)
        assert reg.namespace("enum") == {"a": 3, "b": 4}


# ----------------------------------------------------------------------
# Telemetry context
# ----------------------------------------------------------------------
class TestTelemetry:
    def test_wall_span_records_duration(self):
        sink = MemorySink()
        tel = Telemetry(sinks=[sink])
        with tel.span("work", step=1):
            pass
        (record,) = sink.records
        assert record["type"] == "span"
        assert record["name"] == "work"
        assert record["track"] == WALL
        assert record["dur"] >= 0
        assert record["attrs"] == {"step": 1}

    def test_record_span_virtual_time(self):
        sink = MemorySink()
        tel = Telemetry(sinks=[sink])
        tel.record_span("fault.drain", 100, 228, track=SIM, lane=2,
                        attrs={"phase": "uarch"})
        (record,) = sink.records
        assert record["ts"] == 100 and record["dur"] == 128
        assert record["track"] == SIM and record["lane"] == 2

    def test_event_and_sample(self):
        sink = MemorySink()
        tel = Telemetry(sinks=[sink])
        tel.event("progress", chunk=3)
        tel.sample("occ", 17.0, ts=5.0, track=SIM)
        kinds = [r["type"] for r in sink.records]
        assert kinds == ["event", "sample"]
        assert tel.gauge("occ").value == 17.0

    def test_drain_ingest_round_trip(self):
        worker = Telemetry(sinks=[MemorySink()])
        worker.counter("enum.calls").inc(3)
        worker.record_span("t", 0.0, 1.0)
        worker.event("e", k=1)
        parent_sink = MemorySink()
        parent = Telemetry(sinks=[parent_sink])
        parent.counter("enum.calls").inc(2)
        parent.ingest(worker.drain_records())
        assert parent.counter("enum.calls").value == 5
        assert parent.spans_recorded == 1
        assert parent.events_recorded == 1
        # Spans/events forward to the sinks; metric records merge
        # into the registry instead (re-emitted at close).
        forwarded = {r["type"] for r in parent_sink.records}
        assert forwarded == {"span", "event"}

    def test_close_emits_summary_and_is_idempotent(self):
        sink = MemorySink()
        tel = Telemetry(sinks=[sink])
        tel.counter("c").inc()
        tel.close()
        tel.close()
        assert sink.summary["enabled"] is True
        assert sink.summary["metrics"]["counters"] == {"c": 1}

    def test_ambient_default_is_null(self):
        assert obs.current() is NULL
        assert not obs.current().enabled

    def test_use_installs_and_restores(self):
        tel = Telemetry()
        with obs.use(tel) as installed:
            assert installed is tel
            assert obs.current() is tel
        assert obs.current() is NULL

    def test_reset_current(self):
        obs.set_current(Telemetry())
        obs.reset_current()
        assert obs.current() is NULL

    def test_null_telemetry_is_inert(self):
        tel = NullTelemetry()
        with tel.span("x"):
            pass
        tel.record_span("x", 0, 1)
        tel.event("x")
        tel.sample("x", 1.0)
        tel.counter("x").inc()
        tel.gauge("x").set(5)
        tel.histogram("x").observe(2)
        assert tel.drain_records() == []
        assert tel.summary()["enabled"] is False
        assert len(tel.metrics) == 0


# ----------------------------------------------------------------------
# Sinks + Chrome trace export
# ----------------------------------------------------------------------
class TestJsonlSink:
    def test_stream_and_read_back(self, tmp_path):
        path = tmp_path / "t.jsonl"
        tel = Telemetry(sinks=[JsonlSink(path)])
        tel.record_span("s", 0.0, 0.5)
        tel.event("e", n=1)
        tel.counter("c").inc(2)
        tel.close()
        records = read_jsonl(path)
        kinds = [r["type"] for r in records]
        assert kinds[:2] == ["span", "event"]
        assert kinds[-1] == "summary"
        assert any(r["type"] == "metric" and r["name"] == "c"
                   for r in records)


class TestChromeTrace:
    def _spans(self):
        # Parent span plus two children, recorded child-first (the
        # completion order a context-manager tracer produces).
        return [
            {"type": "span", "name": "child1", "track": SIM, "lane": 0,
             "ts": 10, "dur": 5, "attrs": {}},
            {"type": "span", "name": "child2", "track": SIM, "lane": 0,
             "ts": 20, "dur": 5, "attrs": {}},
            {"type": "span", "name": "parent", "track": SIM, "lane": 0,
             "ts": 0, "dur": 100, "attrs": {"k": 1}},
        ]

    def test_balanced_nested_pairs(self):
        payload = chrome_trace_events(self._spans())
        assert validate_chrome_trace(payload) == []
        names = [(e["ph"], e["name"]) for e in payload["traceEvents"]
                 if e["ph"] in "BE"]
        assert names == [("B", "parent"), ("B", "child1"),
                         ("E", "child1"), ("B", "child2"),
                         ("E", "child2"), ("E", "parent")]

    def test_sim_track_is_cycle_microseconds(self):
        payload = chrome_trace_events(self._spans())
        begins = {e["name"]: e["ts"] for e in payload["traceEvents"]
                  if e["ph"] == "B"}
        assert begins["child1"] == 10.0   # cycles map 1:1 to us

    def test_wall_track_scales_seconds_to_us(self):
        span = {"type": "span", "name": "w", "track": WALL, "lane": 0,
                "ts": 1.5, "dur": 0.25, "attrs": {}}
        payload = chrome_trace_events([span])
        (begin,) = [e for e in payload["traceEvents"] if e["ph"] == "B"]
        assert begin["ts"] == pytest.approx(1.5e6)

    def test_instants_and_counters(self):
        payload = chrome_trace_events(
            [], [{"type": "event", "name": "e", "track": WALL,
                  "lane": 0, "ts": 1.0, "fields": {"n": 1}}],
            [{"type": "sample", "name": "occ", "track": SIM, "lane": 0,
              "ts": 5, "value": 3.0}])
        phases = sorted(e["ph"] for e in payload["traceEvents"])
        assert "i" in phases and "C" in phases
        assert validate_chrome_trace(payload) == []

    def test_sink_writes_loadable_file(self, tmp_path):
        path = tmp_path / "trace.json"
        tel = Telemetry(sinks=[ChromeTraceSink(path)])
        tel.record_span("a", 0, 10, track=SIM)
        tel.close()
        payload = json.loads(path.read_text())
        assert_valid_chrome_trace(payload)
        assert payload["metadata"]["spans"] == 1


class TestChromeValidator:
    def test_rejects_missing_trace_events(self):
        assert validate_chrome_trace({}) != []

    def test_rejects_unknown_phase(self):
        bad = [{"name": "x", "ph": "Z", "ts": 0, "pid": 1, "tid": 0}]
        assert any("unknown phase" in p
                   for p in validate_chrome_trace(bad))

    def test_rejects_backwards_timestamps(self):
        bad = [{"name": "a", "ph": "i", "s": "t", "ts": 5, "pid": 1,
                "tid": 0},
               {"name": "b", "ph": "i", "s": "t", "ts": 1, "pid": 1,
                "tid": 0}]
        assert any("non-decreasing" in p
                   for p in validate_chrome_trace(bad))

    def test_rejects_unbalanced_begin(self):
        bad = [{"name": "a", "ph": "B", "ts": 0, "pid": 1, "tid": 0}]
        assert any("unclosed" in p for p in validate_chrome_trace(bad))

    def test_rejects_mismatched_end(self):
        bad = [{"name": "a", "ph": "B", "ts": 0, "pid": 1, "tid": 0},
               {"name": "b", "ph": "E", "ts": 1, "pid": 1, "tid": 0}]
        assert any("closes B" in p for p in validate_chrome_trace(bad))

    def test_rejects_stray_end(self):
        bad = [{"name": "a", "ph": "E", "ts": 0, "pid": 1, "tid": 0}]
        assert any("no open B" in p for p in validate_chrome_trace(bad))

    def test_assert_helper_raises(self):
        with pytest.raises(ValueError):
            assert_valid_chrome_trace([{"ph": "B"}])


class TestConsoleSummarySink:
    def test_renders_spans_and_counters(self):
        stream = io.StringIO()
        tel = Telemetry(sinks=[ConsoleSummarySink(stream)])
        tel.record_span("phase", 0, 10, track=SIM)
        tel.event("tick")
        tel.counter("n").inc(3)
        tel.close()
        text = stream.getvalue()
        assert "telemetry summary" in text
        assert "phase" in text and "cycles" in text
        assert "tick" in text and "n" in text


# ----------------------------------------------------------------------
# Offline stats
# ----------------------------------------------------------------------
class TestStats:
    def _fault_records(self):
        mk = lambda name, dur, phase, faults=0: {
            "type": "span", "name": name, "track": SIM, "lane": 0,
            "ts": 0, "dur": dur,
            "attrs": {"phase": phase, **({"faults": faults}
                                         if faults else {})}}
        return [mk("fault.drain", 100, "uarch", faults=2),
                mk("fault.os_dispatch", 300, "os_other"),
                mk("fault.os_resolve", 60, "os_resolve"),
                mk("fault.os_apply", 80, "os_apply")]

    def test_figure5_from_spans_buckets_and_normalises(self):
        breakdown = figure5_from_spans(self._fault_records())
        assert breakdown == {"uarch": 50.0, "os_apply": 40.0,
                             "os_other": 180.0}

    def test_figure5_empty_stream_is_zero(self):
        assert figure5_from_spans([]) == {
            "uarch": 0.0, "os_apply": 0.0, "os_other": 0.0}

    def test_summarize_and_render(self, tmp_path):
        path = tmp_path / "t.jsonl"
        tel = Telemetry(sinks=[JsonlSink(path)])
        for record in self._fault_records():
            tel.record_span(record["name"], record["ts"],
                            record["ts"] + record["dur"], track=SIM,
                            attrs=record["attrs"])
        tel.counter("enum.calls").inc(7)
        tel.close()
        summary = summarize_jsonl(path)
        assert summary["spans"]["fault.drain"]["count"] == 1
        assert summary["metrics"]["counters"]["enum.calls"] == 7
        assert summary["figure5_per_fault"]["uarch"] == 50.0
        text = render_summary(summary)
        assert "fault.drain" in text and "figure5" in text

    def test_render_empty(self):
        assert "empty" in render_summary(summarize_records([]))

    def test_load_stats_input_detects_kinds(self, tmp_path):
        stream = tmp_path / "t.jsonl"
        stream.write_text('{"type":"event","name":"e","track":"wall",'
                          '"lane":0,"ts":0,"fields":{}}\n')
        assert load_stats_input(stream)["kind"] == "telemetry"
        report = tmp_path / "r.json"
        report.write_text(json.dumps(
            {"schema": "repro.litmus.campaign-report/v5"}))
        assert load_stats_input(report)["kind"] == "campaign"


class TestSloWindow:
    def test_rolling_quantiles(self):
        slo = obs.SloWindow("lat", size=4)
        for v in (1.0, 2.0, 3.0, 4.0):
            slo.observe(v)
        assert slo.quantile(0.5) == 2.0
        assert slo.quantile(0.99) == 4.0
        # Window rolls: the 1.0 falls out.
        slo.observe(10.0)
        assert slo.total == 5
        assert slo.quantile(0.99) == 10.0
        assert slo.quantile(0.5) == 3.0

    def test_empty_window_is_zero(self):
        slo = obs.SloWindow("lat")
        assert slo.quantile(0.5) == 0.0
        d = slo.as_dict()
        assert d["window"] == 0 and d["p50"] == 0.0

    def test_as_dict(self):
        slo = obs.SloWindow("lat", size=8)
        for v in range(1, 5):
            slo.observe(float(v))
        d = slo.as_dict()
        assert d == {"total": 4, "window": 4, "p50": 2.0,
                     "p99": 4.0, "max": 4.0}


class TestPrometheusRendering:
    def test_name_sanitisation(self):
        assert obs.prometheus_name("serve.request_latency_s") == \
            "repro_serve_request_latency_s"
        assert obs.prometheus_name("9lives", prefix="") == "_9lives"

    def test_sample_escapes_label_values(self):
        line = obs.prometheus_sample("m", {"op": 'a"b\\c'}, 1.5)
        assert line == 'm{op="a\\"b\\\\c"} 1.5'
        assert obs.prometheus_sample("m", None, float("inf")) == "m +Inf"

    def test_render_registry(self):
        reg = MetricsRegistry()
        reg.counter("serve.requests.ping").inc(3)
        reg.gauge("queue.depth").set(2.0)
        reg.gauge("queue.depth").set(1.0)
        reg.histogram("lat", buckets=(0.1, 1.0)).observe(0.05)
        reg.histogram("lat", buckets=(0.1, 1.0)).observe(0.5)
        text = obs.render_prometheus(reg)
        lines = text.splitlines()
        assert text.endswith("\n")
        assert "# TYPE repro_serve_requests_ping_total counter" in lines
        assert "repro_serve_requests_ping_total 3.0" in lines
        assert "repro_queue_depth 1.0" in lines
        assert "repro_queue_depth_max 2.0" in lines
        # Cumulative buckets end at +Inf and agree with _count.
        assert 'repro_lat_bucket{le="0.1"} 1.0' in lines
        assert 'repro_lat_bucket{le="1.0"} 2.0' in lines
        assert 'repro_lat_bucket{le="+Inf"} 2.0' in lines
        assert "repro_lat_count 2.0" in lines

    def test_extra_lines_appended(self):
        text = obs.render_prometheus(MetricsRegistry(),
                                     extra_lines=["custom_metric 7"])
        assert text == "custom_metric 7\n"


class TestChromeTraceInverse:
    def _traced_payload(self):
        tel = Telemetry(sinks=[sink := MemorySink()])
        with tel.span("outer"):
            with tel.span("inner"):
                pass
            tel.event("mark", k=2)
        tel.record_span("drain", 100, 160, track=SIM)
        tel.sample("depth", 3.0)
        spans = [r for r in sink.records if r["type"] == "span"]
        events = [r for r in sink.records if r["type"] == "event"]
        samples = [r for r in sink.records if r["type"] == "sample"]
        return sink.records, chrome_trace_events(spans, events, samples)

    def test_round_trip_preserves_records(self):
        records, payload = self._traced_payload()
        back = obs.chrome_trace_to_records(payload)
        names = lambda rs, t: sorted(r["name"] for r in rs
                                     if r["type"] == t)
        for kind in ("span", "event", "sample"):
            assert names(back, kind) == names(records, kind)
        drain = next(r for r in back if r["name"] == "drain")
        assert drain["track"] == SIM
        assert drain["ts"] == 100 and drain["dur"] == 60
        mark = next(r for r in back if r["name"] == "mark")
        assert mark["fields"]["k"] == 2

    def test_summarize_chrome_trace(self):
        _, payload = self._traced_payload()
        summary = obs.summarize_chrome_trace(payload)
        assert summary["spans"]["drain"]["count"] == 1
        assert "mark" in summary["events"]

    def test_unbalanced_events_skipped(self):
        payload = {"traceEvents": [
            {"name": "a", "ph": "B", "ts": 0, "pid": 1, "tid": 0},
            {"name": "b", "ph": "X", "ts": 0, "dur": 5, "pid": 1,
             "tid": 0}]}
        back = obs.chrome_trace_to_records(payload)
        assert [r["name"] for r in back] == ["b"]

    def test_load_stats_input_detects_chrome(self, tmp_path):
        _, payload = self._traced_payload()
        path = tmp_path / "trace.json"
        path.write_text(json.dumps(payload))
        loaded = load_stats_input(path)
        assert loaded["kind"] == "chrome"
        assert loaded["payload"]["traceEvents"]


class TestConsoleSummaryHighlights:
    def test_top_wall_spans_and_metric_highlights(self):
        stream = io.StringIO()
        tel = Telemetry(sinks=[ConsoleSummarySink(stream)])
        tel.record_span("slow.phase", 0.0, 2.0)
        tel.record_span("fast.phase", 0.0, 0.5)
        tel.record_span("sim.phase", 0, 10, track=SIM)
        tel.counter("big.counter").inc(100)
        tel.counter("small.counter").inc(2)
        tel.close()
        text = stream.getvalue()
        top = text.index("top spans by total wall time")
        # Wall spans ranked by total time; sim spans stay out.
        assert top < text.index("slow.phase") < text.index("fast.phase")
        assert "sim.phase" not in text[top:text.index("metric highlights")]
        hi = text.index("metric highlights")
        assert hi < text.index("big.counter") < text.index("small.counter")

    def test_no_highlight_sections_when_empty(self):
        stream = io.StringIO()
        tel = Telemetry(sinks=[ConsoleSummarySink(stream)])
        tel.event("only.event")
        tel.close()
        text = stream.getvalue()
        assert "top spans by total wall time" not in text
        assert "metric highlights" not in text
