"""Focused tests on timing-engine internals: deferred detection,
end-of-trace finalisation, drain ordering, and checkpoint stalls."""

import pytest

from repro.core.handler import MinimalHandler
from repro.sim.config import ConsistencyModel, table2_config
from repro.sim.devices.einject import EInject, PAGE_SIZE
from repro.sim.timing import TimingSystem, run_trace
from repro.sim.trace import TraceOp

BASE = 1 << 20


def cfg_wc(cores=1):
    cfg = table2_config().with_consistency(ConsistencyModel.WC)
    cfg.cores = max(cores, 1)
    return cfg


def poisoned(pages):
    einject = EInject()
    for p in pages:
        einject.mmio_set(p)
    return einject


class TestDeferredDetection:
    def test_detection_batches_consecutive_faulting_stores(self):
        """A run of stores into one faulting page lands in a single
        exception (the detection window)."""
        einject = poisoned([BASE])
        trace = [TraceOp("S", BASE + i * 64) for i in range(8)]
        trace += [TraceOp("A")] * 400
        res = run_trace(cfg_wc(), [trace], einject=einject)
        stats = res.core_stats[0]
        assert stats.faulting_stores == 8
        assert stats.imprecise_exceptions < 8  # batched

    def test_trailing_faults_flushed_at_end_of_trace(self):
        """Faults whose detection would land after the last trace op
        still surface (finalize)."""
        einject = poisoned([BASE])
        trace = [TraceOp("S", BASE)]  # nothing after the store
        res = run_trace(cfg_wc(), [trace], einject=einject)
        assert res.core_stats[0].imprecise_exceptions == 1
        assert res.core_stats[0].faulting_stores == 1

    def test_sync_surfaces_pending_faults(self):
        einject = poisoned([BASE])
        trace = [TraceOp("S", BASE), TraceOp("F")] + [TraceOp("A")] * 10
        res = run_trace(cfg_wc(), [trace], einject=einject)
        assert res.core_stats[0].imprecise_exceptions == 1

    def test_fault_pages_resolved_exactly_once(self):
        einject = poisoned([BASE, BASE + PAGE_SIZE])
        trace = []
        for rep in range(3):  # re-touch the same pages
            trace += [TraceOp("S", BASE + 8 * rep),
                      TraceOp("S", BASE + PAGE_SIZE + 8 * rep)]
            trace += [TraceOp("A")] * 300
        res = run_trace(cfg_wc(), [trace], einject=einject)
        # Once cleared, later stores to the page do not fault.
        assert res.core_stats[0].faulting_stores == 2
        assert einject.faulting_page_count == 0

    def test_sb_full_of_faults_fires_exception(self):
        cfg = cfg_wc()
        cfg.core.store_buffer_entries = 4
        einject = poisoned([BASE, BASE + PAGE_SIZE])
        trace = [TraceOp("S", BASE + i * 64) for i in range(12)]
        res = run_trace(cfg, [trace], einject=einject)
        assert res.core_stats[0].imprecise_exceptions >= 1


class TestRobAndBufferPressure:
    def test_rob_full_stalls_on_slow_head(self):
        cfg = cfg_wc()
        cfg.core.rob_entries = 4
        # Dependent loads to cold lines: the tiny ROB must stall.
        trace = [TraceOp("L", BASE + i * 4096, dep=True)
                 for i in range(50)]
        small = run_trace(cfg, [trace])
        cfg_big = cfg_wc()
        trace2 = [TraceOp("L", BASE + i * 4096, dep=True)
                  for i in range(50)]
        big = run_trace(cfg_big, [trace2])
        assert small.total_cycles >= big.total_cycles

    def test_sb_full_stall_counted(self):
        cfg = cfg_wc()
        cfg.core.store_buffer_entries = 2
        trace = [TraceOp("S", BASE + i * 4096) for i in range(40)]
        res = run_trace(cfg, [trace])
        assert res.core_stats[0].sb_full_stall_cycles > 0

    def test_wc_coalesces_same_block_stores(self):
        trace_same = [TraceOp("S", BASE + (i % 8) * 8)
                      for i in range(64)]
        trace_diff = [TraceOp("S", BASE + i * 4096) for i in range(64)]
        same = run_trace(cfg_wc(), [trace_same])
        diff = run_trace(cfg_wc(), [trace_diff])
        assert same.total_cycles < diff.total_cycles


class TestPcDrainOrdering:
    def test_pc_commits_slower_than_wc_on_scattered_stores(self):
        cfg_pc = table2_config().with_consistency(ConsistencyModel.PC)
        cfg_pc.cores = 1
        def mk():
            return [TraceOp("S", BASE + i * 4096) for i in range(60)]
        pc = run_trace(cfg_pc, [mk()])
        wc = run_trace(cfg_wc(), [mk()])
        assert wc.total_cycles <= pc.total_cycles


class TestCheckpointCapEdges:
    def test_cap_zero_like_behaviour_with_cap_one(self):
        trace = [TraceOp("S", BASE + i * 4096) for i in range(30)]
        res = run_trace(cfg_wc(), [trace], checkpoint_cap=1)
        assert res.core_stats[0].sb_full_stall_cycles > 0

    def test_cap_does_not_affect_l1_hit_stores(self):
        # Same-block stores hit L1 after the first: no checkpoints.
        trace = [TraceOp("S", BASE)] * 40
        capped = run_trace(cfg_wc(), [trace], checkpoint_cap=1)
        free = run_trace(cfg_wc(), [trace])
        assert capped.total_cycles <= free.total_cycles * 1.6


class TestHandlerAccounting:
    def test_exception_cycles_sum_matches_breakdown(self):
        einject = poisoned([BASE])
        trace = [TraceOp("S", BASE)] + [TraceOp("A")] * 50
        system = TimingSystem(cfg_wc(), [trace], einject=einject,
                              handler=MinimalHandler())
        res = system.run()
        stats = res.core_stats[0]
        assert stats.exception_cycles == pytest.approx(
            stats.uarch_cycles + stats.os_apply_cycles
            + stats.os_resolve_cycles + stats.os_other_cycles)
        breakdown = res.overhead_breakdown_per_fault()
        assert breakdown["uarch"] > 0
        assert breakdown["os_other"] > 0


class TestSerialization:
    def test_to_dict_roundtrips_through_json(self):
        import json
        trace = [TraceOp("S", BASE), TraceOp("L", BASE), TraceOp("A")]
        res = run_trace(cfg_wc(), [trace])
        data = json.loads(json.dumps(res.to_dict()))
        assert data["total_instructions"] == 3
        assert data["consistency"] == "WC"
        assert len(data["per_core"]) == 1
        assert data["per_core"][0]["instructions"] == 3
