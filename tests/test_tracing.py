"""Tests for distributed request tracing (``repro.obs.tracing``):
trace contexts, record stamping, the bounded head-sampling span
retainer, and cross-process propagation through campaign workers."""

import pickle

from repro import obs
from repro.litmus import RunConfig, all_library_tests
from repro.litmus.campaign import run_campaign
from repro.obs.tracing import (SpanRetainer, TraceContext,
                               current_trace, is_trace_id,
                               new_span_id, new_trace_id, use_trace)


class TestTraceContext:
    def test_ids_are_distinct_hex(self):
        ids = {new_trace_id() for _ in range(64)}
        assert len(ids) == 64
        assert all(is_trace_id(t) and len(t) == 16 for t in ids)
        assert len(new_span_id()) == 8

    def test_is_trace_id_rejects_junk(self):
        assert is_trace_id("abc-DEF_1.2:3")
        assert not is_trace_id("")
        assert not is_trace_id("x" * 65)
        assert not is_trace_id("has space")
        assert not is_trace_id(42)
        assert not is_trace_id(None)

    def test_child_shares_trace_id(self):
        parent = TraceContext()
        child = parent.child()
        assert child.trace_id == parent.trace_id
        assert child.span_id != parent.span_id

    def test_use_trace_nesting_and_restore(self):
        assert current_trace() is None
        with use_trace("outer") as outer:
            assert current_trace() is outer
            assert outer.trace_id == "outer"
            with use_trace(TraceContext("inner")):
                assert current_trace().trace_id == "inner"
            assert current_trace() is outer
            with use_trace(None):
                # None *clears* the ambient trace for the block.
                assert current_trace() is None
            assert current_trace() is outer
        assert current_trace() is None


class TestRecordStamping:
    def test_records_carry_active_trace(self):
        sink = obs.MemorySink()
        tel = obs.Telemetry(sinks=[sink])
        with use_trace("t1"):
            with tel.span("phase"):
                pass
            tel.event("tick", n=1)
            tel.sample("depth", 3.0)
        kinds = {r["type"]: r for r in sink.records}
        assert set(kinds) == {"span", "event", "sample"}
        assert all(r["trace"] == "t1" for r in sink.records)

    def test_untraced_records_have_no_trace_key(self):
        sink = obs.MemorySink()
        tel = obs.Telemetry(sinks=[sink])
        with tel.span("phase"):
            pass
        tel.event("tick", n=1)
        assert all("trace" not in r for r in sink.records)

    def test_metric_records_never_stamped(self):
        sink = obs.MemorySink()
        tel = obs.Telemetry(sinks=[sink])
        with use_trace("t1"):
            tel.counter("c").inc()
            tel.close()
        metric_records = [r for r in sink.records
                          if r["type"] == "metric"]
        assert metric_records
        assert all("trace" not in r for r in metric_records)

    def test_chrome_export_round_trips_trace(self):
        sink = obs.MemorySink()
        tel = obs.Telemetry(sinks=[sink])
        with use_trace("t42"):
            with tel.span("work"):
                tel.event("mark", k=1)
                tel.sample("gauge", 2.0)
        spans = [r for r in sink.records if r["type"] == "span"]
        instants = [r for r in sink.records if r["type"] == "event"]
        counters = [r for r in sink.records if r["type"] == "sample"]
        payload = obs.chrome_trace_events(spans, instants, counters)
        obs.assert_valid_chrome_trace(payload)
        traced = [e for e in payload["traceEvents"]
                  if (e.get("args") or {}).get("trace")]
        assert traced, "no trace args in exported events"
        assert {e["args"]["trace"] for e in traced} == {"t42"}
        back = obs.chrome_trace_to_records(payload)
        assert {r["trace"] for r in back} == {"t42"}


class TestSpanRetainer:
    def _span(self, trace=None, name="s"):
        record = {"type": "span", "name": name, "track": "wall",
                  "lane": 0, "ts": 0.0, "dur": 1.0, "attrs": {}}
        if trace is not None:
            record["trace"] = trace
        return record

    def test_retains_and_looks_up_by_trace(self):
        retainer = SpanRetainer(max_records=10)
        retainer.on_record(self._span("a", name="one"))
        retainer.on_record(self._span("b", name="two"))
        retainer.on_record(self._span(name="untr"))
        retainer.on_record({"type": "metric", "name": "m"})  # ignored
        assert [r["name"] for r in retainer.for_trace("a")] == ["one"]
        assert len(retainer.retained()) == 3
        assert retainer.live_traces() == ["a", "b"]

    def test_ring_evicts_oldest_and_counts(self):
        retainer = SpanRetainer(max_records=3)
        for i in range(5):
            retainer.on_record(self._span("t", name=f"s{i}"))
        stats = retainer.stats()
        assert stats["retained"] == 3
        assert stats["evicted"] == 2
        assert stats["retained_total"] == 5
        assert [r["name"] for r in retainer.for_trace("t")] == \
            ["s2", "s3", "s4"]

    def test_head_sampling_drops_whole_new_traces(self):
        retainer = SpanRetainer(max_records=100, max_traces=2)
        retainer.on_record(self._span("a"))
        retainer.on_record(self._span("b"))
        # Trace table full: 'c' is sampled out at its head, and every
        # later 'c' record stays dropped.
        retainer.on_record(self._span("c"))
        retainer.on_record(self._span("c"))
        assert retainer.for_trace("c") == []
        stats = retainer.stats()
        assert stats["sampled_out_traces"] == 1
        assert stats["sampled_out_records"] == 2
        # Retained traces stay complete.
        assert len(retainer.for_trace("a")) == 1

    def test_eviction_frees_trace_slots(self):
        retainer = SpanRetainer(max_records=1, max_traces=1)
        retainer.on_record(self._span("a"))
        retainer.on_record(self._span("b"))  # head-sampled out
        assert retainer.stats()["sampled_out_traces"] == 1
        # 'a' still occupies the ring; a *new* record of 'a' evicts
        # the old one, keeping exactly one live trace.
        retainer.on_record(self._span("a", name="fresh"))
        assert [r["name"] for r in retainer.for_trace("a")] == ["fresh"]
        assert retainer.stats()["live_traces"] == 1

    def test_close_keeps_summary(self):
        retainer = SpanRetainer()
        retainer.close({"spans": 3})
        assert retainer.summary == {"spans": 3}


class TestCampaignPropagation:
    def test_worker_records_carry_parent_trace(self):
        sink = obs.MemorySink()
        tel = obs.Telemetry(sinks=[sink])
        tests = all_library_tests()[:4]
        config = RunConfig(seeds=2, clean_pass=False)
        with obs.use(tel), use_trace("campaign-trace"):
            report = run_campaign(tests, config, jobs=2, chunk_size=2)
        assert report.ok
        spans = [r for r in sink.records if r.get("type") == "span"]
        names = {r["name"] for r in spans}
        assert "campaign.chunk" in names  # worker-process records
        assert all(r.get("trace") == "campaign-trace" for r in spans), \
            [r for r in spans if r.get("trace") != "campaign-trace"][:3]

    def test_untraced_campaign_has_no_trace_keys(self):
        sink = obs.MemorySink()
        tel = obs.Telemetry(sinks=[sink])
        tests = all_library_tests()[:2]
        config = RunConfig(seeds=2, clean_pass=False)
        with obs.use(tel):
            run_campaign(tests, config, jobs=2, chunk_size=1)
        assert all("trace" not in r for r in sink.records)

    def test_chunk_payload_trace_id_pickles(self):
        # Worker payloads must stay picklable for any start method.
        payload = (0, [], RunConfig(), [], True, new_trace_id())
        assert pickle.loads(pickle.dumps(payload)) == payload
