"""Semantics of the pluggable operational machines (repro.explore)."""

import pytest

from repro.explore import (ImpreciseMachine, Transition, explore,
                           independent, machine_for)
from repro.litmus.library import (amo_ordering, load_buffering,
                                  message_passing,
                                  message_passing_fenced, mp_addr_dep,
                                  sb_with_forwarding, store_buffering,
                                  store_buffering_fenced)
from repro.memmodel.axioms import get_model
from repro.memmodel.enumerator import allowed_outcomes
from repro.memmodel.imprecise import DrainPolicy


def explored(test, model, **kwargs):
    threads, deps = test.to_events()
    machine = machine_for(model, threads, extra_ppo=deps, **kwargs)
    return explore(machine).outcomes


def allowed(test, model_name):
    threads, deps = test.to_events()
    return allowed_outcomes(threads, get_model(model_name),
                            extra_ppo=deps)


def outcome(**regs):
    return tuple(sorted(regs.items()))


class TestCleanMachines:
    def test_sc_matches_axiomatic(self):
        for test in (store_buffering(), message_passing(),
                     load_buffering()):
            assert explored(test, "SC") == allowed(test, "SC")

    def test_sc_forbids_sb_relaxation(self):
        assert outcome(r0=0, r1=0) not in explored(store_buffering(),
                                                   "SC")

    def test_tso_allows_sb_relaxation(self):
        test = store_buffering()
        outs = explored(test, "PC")
        assert outcome(r0=0, r1=0) in outs
        assert outs == allowed(test, "PC")

    def test_fences_restore_sc_on_sb(self):
        test = store_buffering_fenced()
        assert explored(test, "PC") == allowed(test, "SC")

    def test_store_forwarding(self):
        test = sb_with_forwarding()
        assert explored(test, "PC") == allowed(test, "PC")

    def test_atomics_globally_ordered(self):
        test = amo_ordering()
        assert explored(test, "PC") == allowed(test, "PC")

    def test_wc_allows_mp_relaxation(self):
        assert outcome(r0=1, r1=0) in explored(message_passing(), "WC")

    def test_wc_sound_wrt_rvwmo(self):
        for test in (message_passing(), message_passing_fenced(),
                     mp_addr_dep(), load_buffering()):
            assert explored(test, "WC") <= allowed(test, "RVWMO")

    def test_wc_respects_addr_dependency(self):
        test = mp_addr_dep()
        assert outcome(r0=1, r1=0) not in explored(test, "WC")


class TestImpreciseMachine:
    def test_same_stream_preserves_pc(self):
        for test in (message_passing(), store_buffering()):
            threads, deps = test.to_events()
            faults = frozenset(test.location_addr(loc)
                               for loc in test.locations)
            machine = machine_for("PC", threads, extra_ppo=deps,
                                  faulting=faults,
                                  policy=DrainPolicy.SAME_STREAM)
            assert explore(machine).outcomes <= allowed(test, "PC")

    def test_same_stream_keeps_sb_relaxation_observable(self):
        test = store_buffering()
        threads, deps = test.to_events()
        faults = frozenset(test.location_addr(loc)
                           for loc in test.locations)
        machine = machine_for("PC", threads, extra_ppo=deps,
                              faulting=faults,
                              policy=DrainPolicy.SAME_STREAM)
        assert outcome(r0=0, r1=0) in explore(machine).outcomes

    def test_split_stream_breaks_pc_on_mp(self):
        test = message_passing()
        threads, deps = test.to_events()
        machine = machine_for("PC", threads, extra_ppo=deps,
                              faulting={test.location_addr("y")},
                              policy=DrainPolicy.SPLIT_STREAM)
        outs = explore(machine).outcomes
        assert outcome(r0=1, r1=0) in outs
        assert outcome(r0=1, r1=0) not in allowed(test, "PC")

    def test_all_locations_faulting_makes_policies_equal(self):
        # When every store faults, split-stream degenerates to a
        # single in-order stream: both policies explore the same set.
        for test in (message_passing(), store_buffering()):
            threads, deps = test.to_events()
            faults = frozenset(test.location_addr(loc)
                               for loc in test.locations)
            per_policy = []
            for policy in (DrainPolicy.SAME_STREAM,
                           DrainPolicy.SPLIT_STREAM):
                machine = machine_for("PC", threads, extra_ppo=deps,
                                      faulting=faults, policy=policy)
                per_policy.append(explore(machine).outcomes)
            assert per_policy[0] == per_policy[1]

    def test_faulting_requires_tso_base(self):
        threads, deps = message_passing().to_events()
        for model in ("SC", "WC"):
            with pytest.raises(ValueError):
                machine_for(model, threads, extra_ppo=deps,
                            faulting={0x100000})

    def test_machine_for_rejects_unknown_model(self):
        with pytest.raises(KeyError):
            machine_for("POWER", [[]])

    def test_imprecise_machine_is_inexact(self):
        threads, deps = message_passing().to_events()
        machine = machine_for("PC", threads, extra_ppo=deps,
                              faulting={0x100000})
        assert isinstance(machine, ImpreciseMachine)
        assert machine.exact is False


class TestIndependence:
    @staticmethod
    def t(group, key, reads=(), writes=()):
        return Transition(group=group, key=key, kind="step",
                          reads=frozenset(reads),
                          writes=frozenset(writes), label=str(key))

    def test_same_group_never_independent(self):
        a = self.t(0, ("step", 0, 0), writes={1})
        b = self.t(0, ("drain", 0, 1), writes={2})
        assert not independent(a, b)

    def test_disjoint_footprints_commute(self):
        a = self.t(0, ("step", 0, 0), writes={1})
        b = self.t(1, ("step", 1, 0), writes={2})
        assert independent(a, b)

    def test_write_write_conflict(self):
        a = self.t(0, ("step", 0, 0), writes={1})
        b = self.t(1, ("step", 1, 0), writes={1})
        assert not independent(a, b)

    def test_write_read_conflict(self):
        a = self.t(0, ("step", 0, 0), writes={1})
        b = self.t(1, ("step", 1, 0), reads={1})
        assert not independent(a, b)

    def test_read_read_commutes(self):
        a = self.t(0, ("step", 0, 0), reads={1})
        b = self.t(1, ("step", 1, 0), reads={1})
        assert independent(a, b)
