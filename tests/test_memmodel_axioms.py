"""Model-level tests: classic litmus shapes under SC / PC / WC / RVWMO.

Each test checks the *defining* relaxation of a model using exact
enumeration, mirroring the §4.2 rules.
"""

import pytest

from repro.memmodel import (
    PC,
    RVWMO_MODEL,
    SC,
    WC,
    allowed_outcomes,
    compare_models,
    get_model,
)
from repro.memmodel.events import FenceKind, program

A, B = 0xA0, 0xB0


def outcome(**kv):
    return tuple(sorted(kv.items()))


def sb_threads():
    """Store buffering (Dekker): S(A);L(B) || S(B);L(A)."""
    t0 = list(program(0, [("S", A, 1), ("L", B)]))
    t1 = list(program(1, [("S", B, 1), ("L", A)]))
    return t0, t1


def mp_threads(fenced=False):
    """Message passing: S(B);S(A) || L(A);L(B)."""
    w = [("S", B, 1)] + ([("F",)] if fenced else []) + [("S", A, 1)]
    r = [("L", A)] + ([("F",)] if fenced else []) + [("L", B)]
    return list(program(0, w)), list(program(1, r))


class TestStoreBuffering:
    def test_sc_forbids_both_zero(self):
        t0, t1 = sb_threads()
        allowed = allowed_outcomes([t0, t1], SC)
        assert outcome(**{"r0.1": 0, "r1.1": 0}) not in allowed

    def test_pc_allows_both_zero(self):
        t0, t1 = sb_threads()
        allowed = allowed_outcomes([t0, t1], PC)
        assert outcome(**{"r0.1": 0, "r1.1": 0}) in allowed

    def test_pc_is_strictly_weaker_than_sc_on_sb(self):
        t0, t1 = sb_threads()
        extra = compare_models([t0, t1], PC, SC)
        assert extra == {outcome(**{"r0.1": 0, "r1.1": 0})}

    def test_fenced_sb_restores_sc(self):
        t0 = list(program(0, [("S", A, 1), ("F",), ("L", B)]))
        t1 = list(program(1, [("S", B, 1), ("F",), ("L", A)]))
        allowed = allowed_outcomes([t0, t1], PC)
        assert outcome(**{"r0.2": 0, "r1.2": 0}) not in allowed


class TestMessagePassing:
    def test_pc_forbids_stale_flag(self):
        """PC keeps store->store and load->load: L(A)=1 ⟹ L(B)=1."""
        t0, t1 = mp_threads()
        allowed = allowed_outcomes([t0, t1], PC)
        assert outcome(**{"r1.0": 1, "r1.1": 0}) not in allowed

    def test_wc_allows_stale_flag(self):
        t0, t1 = mp_threads()
        allowed = allowed_outcomes([t0, t1], WC)
        assert outcome(**{"r1.0": 1, "r1.1": 0}) in allowed

    def test_fences_make_wc_behave_like_pc(self):
        """Figure 1: with both fences, the violating result is gone."""
        t0, t1 = mp_threads(fenced=True)
        allowed = allowed_outcomes([t0, t1], WC)
        assert outcome(**{"r1.0": 1, "r1.2": 0}) not in allowed

    def test_figure1_other_three_results_allowed(self):
        t0, t1 = mp_threads(fenced=True)
        allowed = allowed_outcomes([t0, t1], WC)
        for la, lb in [(0, 0), (0, 1), (1, 1)]:
            assert outcome(**{"r1.0": la, "r1.2": lb}) in allowed


class TestCoherence:
    """All models are coherent (SC per location)."""

    @pytest.mark.parametrize("model", [SC, PC, WC, RVWMO_MODEL])
    def test_coww_single_core_order(self, model):
        # Two stores to the same address on one core: final value must
        # be the second store's under every model.
        t0 = list(program(0, [("S", A, 1), ("S", A, 2), ("L", A)]))
        allowed = allowed_outcomes([t0], model)
        assert allowed == {outcome(**{"r0.2": 2})}

    @pytest.mark.parametrize("model", [SC, PC, WC, RVWMO_MODEL])
    def test_corr_no_backwards_reads(self, model):
        # Reads of the same address on one core may not go backwards.
        t0 = list(program(0, [("S", A, 1)]))
        t1 = list(program(1, [("L", A), ("L", A)]))
        allowed = allowed_outcomes([t0, t1], model)
        assert outcome(**{"r1.0": 1, "r1.1": 0}) not in allowed

    @pytest.mark.parametrize("model", [SC, PC, WC])
    def test_read_own_write(self, model):
        t0 = list(program(0, [("S", A, 3), ("L", A)]))
        allowed = allowed_outcomes([t0], model)
        assert allowed == {outcome(**{"r0.1": 3})}


class TestWeakConsistency:
    def test_wc_relaxes_store_store(self):
        t0, t1 = mp_threads()
        extra = compare_models([t0, t1], WC, PC)
        assert outcome(**{"r1.0": 1, "r1.1": 0}) in extra

    def test_wc_keeps_same_address_order(self):
        t0 = list(program(0, [("S", A, 1), ("S", A, 2)]))
        t1 = list(program(1, [("L", A), ("L", A)]))
        allowed = allowed_outcomes([t0, t1], WC)
        # Coherence: cannot read 2 then 1.
        assert outcome(**{"r1.0": 2, "r1.1": 1}) not in allowed

    def test_directional_fence_orders_stores_only(self):
        w = list(program(0, [("S", B, 1), ("F", FenceKind.STORE_STORE),
                             ("S", A, 1)]))
        r = list(program(1, [("L", A), ("F", FenceKind.LOAD_LOAD),
                             ("L", B)]))
        allowed = allowed_outcomes([w, r], WC)
        assert outcome(**{"r1.0": 1, "r1.2": 0}) not in allowed


class TestRVWMO:
    def test_atomics_are_ordered(self):
        # AMO acts as both fence-like pivot under RVWMO-lite.
        w = list(program(0, [("S", B, 1), ("A", A, 1)]))
        r = list(program(1, [("L", A), ("L", B)]))
        rv = allowed_outcomes([w, r], RVWMO_MODEL)
        # Under plain WC, seeing A=1 with B=0 is fine; RVWMO orders the
        # AMO after the store, and PC-like load order is still relaxed
        # on the reader, so add a fence on the reader to observe it.
        w2 = list(program(0, [("S", B, 1), ("A", A, 1)]))
        r2 = list(program(1, [("L", A), ("F",), ("L", B)]))
        rv2 = allowed_outcomes([w2, r2], RVWMO_MODEL)
        assert outcome(**{"r1.0": 1, "r1.2": 0}) not in rv2

    def test_dependency_edges_respected(self):
        # Address dependency: L(A) -> L(B) via extra_ppo forbids the
        # stale read even under WC-like relaxation.
        w = list(program(0, [("S", B, 1), ("F",), ("S", A, 1)]))
        r = list(program(1, [("L", A), ("L", B)]))
        dep = [(r[0].uid, r[1].uid)]
        allowed = allowed_outcomes([w, r], RVWMO_MODEL, extra_ppo=dep)
        assert outcome(**{"r1.0": 1, "r1.1": 0}) not in allowed


class TestModelRegistry:
    def test_lookup_case_insensitive(self):
        assert get_model("pc") is PC
        assert get_model("tso") is PC
        assert get_model("RVWMO") is RVWMO_MODEL

    def test_unknown_model_raises(self):
        with pytest.raises(KeyError, match="unknown memory model"):
            get_model("PSO")

    def test_model_names(self):
        assert SC.name == "SC" and PC.name == "PC" and WC.name == "WC"
