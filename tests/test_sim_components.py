"""Unit tests for simulator components: config, engine, caches, MSHRs,
mesh, coherence, EInject, memory, VM."""

import pytest

from repro.core.osconfig import OsConfig
from repro.sim.cache.cache import SetAssociativeCache
from repro.sim.cache.coherence import CoherentHierarchy
from repro.sim.cache.mshr import MshrFile
from repro.sim.config import (
    CacheConfig,
    ConsistencyModel,
    SystemConfig,
    small_config,
    table2_config,
)
from repro.sim.devices.einject import EInject, PAGE_SIZE
from repro.sim.engine import Engine, SimulationError
from repro.sim.mem.memory import FlatMemory, MemoryController
from repro.sim.noc.mesh import Mesh
from repro.sim.vm.mmu import LateTranslationPoint, Mmu
from repro.sim.vm.pagetable import FaultType, PageTable
from repro.sim.vm.tlb import Tlb
from repro.sim.config import MemoryConfig, NocConfig, TlbConfig


class TestConfig:
    def test_table2_defaults(self):
        cfg = table2_config()
        assert cfg.cores == 16
        assert cfg.core.width == 4
        assert cfg.core.rob_entries == 128
        assert cfg.core.store_buffer_entries == 32
        assert cfg.l1d.size_bytes == 64 * 1024 and cfg.l1d.ways == 4
        assert cfg.l2.size_bytes == 1024 * 1024 and cfg.l2.ways == 16
        assert cfg.noc.tiles == 16 and cfg.noc.hop_latency == 3
        assert cfg.memory.access_latency == 80
        assert cfg.tlb.l1_entries == 48 and cfg.tlb.l2_entries == 1024

    def test_consistency_validation(self):
        cfg = table2_config()
        cfg.core.consistency = "PSO"
        with pytest.raises(ValueError, match="unknown consistency"):
            cfg.validate()

    def test_too_many_cores_rejected(self):
        cfg = SystemConfig(cores=20)
        with pytest.raises(ValueError, match="exceed"):
            cfg.validate()

    def test_variants_do_not_mutate_base(self):
        base = table2_config()
        scaled = base.with_memory_latency_scale(2)
        skewed = base.with_store_load_skew(4)
        assert base.memory.access_latency == 80
        assert scaled.memory.access_latency == 160
        assert skewed.memory.store_extra_latency == 240
        assert base.memory.store_extra_latency == 0

    def test_with_consistency(self):
        wc = table2_config().with_consistency(ConsistencyModel.SC)
        assert wc.core.consistency == "SC"

    def test_fsb_defaults_to_store_buffer_size(self):
        cfg = table2_config()
        assert cfg.fsb_entries == cfg.core.store_buffer_entries


class TestEngine:
    def test_events_run_in_time_order(self):
        engine = Engine()
        order = []
        engine.schedule(10, lambda: order.append("b"))
        engine.schedule(5, lambda: order.append("a"))
        engine.schedule(20, lambda: order.append("c"))
        engine.run()
        assert order == ["a", "b", "c"]
        assert engine.now == 20

    def test_ties_break_by_insertion(self):
        engine = Engine()
        order = []
        engine.schedule(5, lambda: order.append(1))
        engine.schedule(5, lambda: order.append(2))
        engine.run()
        assert order == [1, 2]

    def test_negative_delay_rejected(self):
        with pytest.raises(SimulationError):
            Engine().schedule(-1, lambda: None)

    def test_cancel(self):
        engine = Engine()
        fired = []
        ev = engine.schedule(5, lambda: fired.append(1))
        Engine.cancel(ev)
        engine.run()
        assert fired == []

    def test_run_until(self):
        engine = Engine()
        fired = []
        engine.schedule(5, lambda: fired.append(1))
        engine.schedule(50, lambda: fired.append(2))
        engine.run(until=10)
        assert fired == [1]
        assert engine.now == 10

    def test_chained_scheduling(self):
        engine = Engine()
        times = []
        def tick():
            times.append(engine.now)
            if len(times) < 3:
                engine.schedule(7, tick)
        engine.schedule(0, tick)
        engine.run()
        assert times == [0, 7, 14]

    def test_pending_counts_live_events_only(self):
        engine = Engine()
        events = [engine.schedule(i + 1, lambda: None) for i in range(10)]
        assert engine.pending == 10
        Engine.cancel(events[3])
        Engine.cancel(events[7])
        assert engine.pending == 8
        Engine.cancel(events[3])  # double-cancel must not double-count
        assert engine.pending == 8

    def test_cancel_heavy_schedule_compacts(self):
        # Cancel-heavy pattern (e.g. timers that almost always get
        # rescheduled): tombstones must not accumulate in the queue.
        engine = Engine()
        fired = []
        keeper = engine.schedule(10_000, lambda: fired.append("keep"))
        for i in range(5_000):
            ev = engine.schedule(i + 1, lambda: fired.append("dead"))
            Engine.cancel(ev)
        # Compaction keeps queued entries within 2x the live count.
        assert engine.pending == 1
        assert engine._size <= 2 * engine.pending + 1
        engine.run()
        assert fired == ["keep"]
        assert engine.events_processed == 1
        assert keeper.cancelled is False

    def test_cancel_after_fire_is_noop(self):
        engine = Engine()
        ev = engine.schedule(1, lambda: None)
        engine.run()
        Engine.cancel(ev)  # already fired: must not corrupt counters
        assert engine.pending == 0
        engine.schedule(1, lambda: None)
        assert engine.pending == 1

    def test_max_events_bound_is_exact(self):
        engine = Engine()
        for i in range(5):
            engine.schedule(i + 1, lambda: None)
        with pytest.raises(SimulationError):
            engine.run(max_events=4)
        # Exactly max_events live events drain without raising.
        engine = Engine()
        hits = []
        for i in range(4):
            engine.schedule(i + 1, lambda: hits.append(1))
        engine.run(max_events=4)
        assert len(hits) == 4

    def test_same_cycle_burst_preserves_insertion_order(self):
        engine = Engine()
        order = []
        def burst():
            for i in range(3):
                engine.schedule(0, lambda i=i: order.append(("late", i)))
        engine.schedule(5, burst)
        for i in range(3):
            engine.schedule(5, lambda i=i: order.append(("early", i)))
        engine.run()
        assert order == [("early", 0), ("early", 1), ("early", 2),
                         ("late", 0), ("late", 1), ("late", 2)]
        assert engine.now == 5


class TestSetAssociativeCache:
    def _cache(self, size=1024, ways=2, block=64):
        return SetAssociativeCache(CacheConfig(size_bytes=size, ways=ways,
                                               block_bytes=block))

    def test_miss_then_hit(self):
        c = self._cache()
        assert c.lookup(0x100) is None
        c.insert(0x100)
        assert c.lookup(0x100) is not None
        assert c.hits == 1 and c.misses == 1

    def test_same_block_hits(self):
        c = self._cache()
        c.insert(0x100)
        assert c.lookup(0x13F) is not None  # same 64B block
        assert c.lookup(0x140) is None      # next block

    def test_lru_eviction(self):
        c = self._cache(size=256, ways=2, block=64)  # 2 sets, 2 ways
        # Three blocks mapping to the same set (stride = sets*block).
        stride = c.config.sets * 64
        c.insert(0x0)
        c.insert(stride)
        c.lookup(0x0)            # refresh LRU of 0x0
        victim = c.insert(2 * stride)
        assert victim is not None
        victim_addr, _ = victim
        assert victim_addr * 64 == stride  # the non-refreshed one

    def test_invalidate(self):
        c = self._cache()
        c.insert(0x100)
        assert c.invalidate(0x100) is not None
        assert c.peek(0x100) is None

    def test_bad_geometry_rejected(self):
        with pytest.raises(ValueError, match="not divisible"):
            SetAssociativeCache(CacheConfig(size_bytes=1000, ways=3))


class TestMshr:
    def test_allocate_and_merge(self):
        m = MshrFile(capacity=2)
        assert m.allocate(1, 0, 100) is not None
        entry = m.allocate(1, 5, 100)
        assert entry.merged == 1
        assert m.merges == 1
        assert m.occupancy == 1

    def test_capacity_limits(self):
        m = MshrFile(capacity=1)
        m.allocate(1, 0, 100)
        assert m.allocate(2, 0, 100) is None
        assert m.allocation_failures == 1

    def test_release_ready(self):
        m = MshrFile(capacity=4)
        m.allocate(1, 0, 50)
        m.allocate(2, 0, 100)
        done = m.release_ready(now=60)
        assert [e.block_addr for e in done] == [1]
        assert m.occupancy == 1
        assert m.earliest_ready_time() == 100


class TestMesh:
    def test_hop_counts(self):
        mesh = Mesh(NocConfig(rows=4, cols=4))
        assert mesh.hops(0, 0) == 0
        assert mesh.hops(0, 3) == 3
        assert mesh.hops(0, 15) == 6  # corner to corner
        assert mesh.hops(5, 10) == 2

    def test_latency_includes_serialization(self):
        mesh = Mesh(NocConfig(rows=4, cols=4, hop_latency=3, link_bytes=16))
        lat16 = mesh.latency(0, 1, payload_bytes=16)
        lat64 = mesh.latency(0, 1, payload_bytes=64)
        assert lat16 == 3
        assert lat64 == 3 + 3  # 4 flits -> 3 extra cycles

    def test_home_tile_interleaving(self):
        mesh = Mesh(NocConfig())
        homes = {mesh.home_tile(b) for b in range(64)}
        assert homes == set(range(16))

    def test_out_of_range_tile(self):
        with pytest.raises(ValueError):
            Mesh(NocConfig()).coordinates(16)


class TestCoherentHierarchy:
    def _system(self):
        cfg = table2_config()
        cfg.cores = 4
        mem = MemoryController(cfg.memory)
        return CoherentHierarchy(cfg, mem), cfg

    def test_cold_miss_goes_to_memory(self):
        h, cfg = self._system()
        res = h.access(0, 0x1000, False)
        assert res.hit_level == "MEM"
        assert res.latency > cfg.memory.access_latency

    def test_second_access_hits_l1(self):
        h, _ = self._system()
        h.access(0, 0x1000, False)
        res = h.access(0, 0x1000, False)
        assert res.hit_level == "L1"
        assert res.latency == 2

    def test_write_to_shared_invalidates(self):
        h, _ = self._system()
        h.access(0, 0x1000, False)
        h.access(1, 0x1000, False)   # both share
        res = h.access(0, 0x1000, True)
        assert res.invalidations == 1
        # Core 1 lost its copy.
        assert h.l1d[1].peek(0x1000) is None

    def test_dirty_forwarding(self):
        h, _ = self._system()
        h.access(0, 0x1000, True)    # core 0 owns dirty
        res = h.access(1, 0x1000, False)
        assert res.hit_level == "FWD"

    def test_store_slower_than_load_when_shared(self):
        """The organic store-vs-load latency skew (§3.3)."""
        h, _ = self._system()
        # Warm: every core shares the block.
        for core in range(4):
            h.access(core, 0x2000, False)
        load = h.access(3, 0x2000, False)
        store = h.access(3, 0x2000, True)
        assert load.latency < store.latency

    def test_einject_denial_propagates(self):
        cfg = table2_config()
        einject = EInject()
        einject.mmio_set(0x5000)
        mem = MemoryController(cfg.memory, einject)
        h = CoherentHierarchy(cfg, mem)
        res = h.access(0, 0x5000, True)
        assert res.denied
        assert res.error_code == 0x1F
        # Nothing installed: a retry still goes to memory.
        res2 = h.access(0, 0x5000, True)
        assert res2.denied


class TestEInject:
    def test_set_and_check(self):
        e = EInject()
        e.mmio_set(0x4000)
        assert e.check(0x4000).denied
        assert e.check(0x4008).denied       # same page
        assert not e.check(0x4000 + PAGE_SIZE).denied

    def test_clr(self):
        e = EInject()
        e.mmio_set(0x4000)
        e.mmio_clr(0x4FFF)
        assert not e.check(0x4000).denied

    def test_region_bounds(self):
        e = EInject(region_base=0x10000, region_size=0x10000)
        with pytest.raises(ValueError, match="outside"):
            e.mmio_set(0x5000)
        e.mmio_set(0x10000)
        assert not e.check(0x5000).denied   # outside region passes

    def test_mark_range(self):
        e = EInject()
        pages = e.mark_range(0x10000, 3 * PAGE_SIZE)
        assert pages == 3
        assert e.faulting_page_count == 3

    def test_error_code(self):
        e = EInject()
        e.mmio_set(0)
        assert e.check(0).error_code == 0x1F


class TestMemory:
    def test_default_zero(self):
        assert FlatMemory().read(0x123) == 0

    def test_write_read(self):
        m = FlatMemory()
        m.write(0x10, 42)
        assert m.read(0x10) == 42

    def test_initial_image(self):
        m = FlatMemory({0x1: 7})
        assert m.peek(0x1) == 7

    def test_controller_store_skew(self):
        mem = MemoryController(MemoryConfig(access_latency=80,
                                            store_extra_latency=240))
        assert mem.access(0, False).latency == 80
        assert mem.access(0, True).latency == 320


class TestVirtualMemory:
    def test_translate_present_page(self):
        pt = PageTable()
        pt.map_page(0x4000, frame=7)
        res = pt.translate(0x4123)
        assert res.fault is FaultType.NONE
        assert res.physical == (7 << 12) | 0x123

    def test_unmapped_is_segfault(self):
        assert PageTable().translate(0x9000).fault is FaultType.UNMAPPED

    def test_lazy_vs_swapped(self):
        pt = PageTable()
        pt.map_page(0x1000, present=False)
        pt.map_page(0x2000, present=False, swapped=True)
        assert pt.translate(0x1000).fault is FaultType.NOT_PRESENT_LAZY
        assert pt.translate(0x2000).fault is FaultType.NOT_PRESENT_SWAPPED
        pt.make_present(0x1000)
        assert pt.translate(0x1000).fault is FaultType.NONE

    def test_write_protection(self):
        pt = PageTable()
        pt.map_page(0x1000, writable=False)
        assert pt.translate(0x1000, is_write=True).fault is FaultType.PROTECTION
        assert pt.translate(0x1000, is_write=False).fault is FaultType.NONE

    def test_tlb_two_levels(self):
        tlb = Tlb(TlbConfig(l1_entries=2, l2_entries=4))
        tlb.fill(0x1000, 1)
        assert tlb.lookup(0x1000).level == "L1"
        tlb.fill(0x2000, 2)
        tlb.fill(0x3000, 3)  # evicts 0x1000 from tiny L1
        res = tlb.lookup(0x1000)
        assert res.level == "L2"

    def test_tlb_walk_on_full_miss(self):
        tlb = Tlb(TlbConfig())
        res = tlb.lookup(0x8000)
        assert res.frame is None and res.level == "WALK"
        assert res.latency == 1 + 4 + 40

    def test_tlb_shootdown(self):
        tlb = Tlb(TlbConfig())
        tlb.fill(0x1000, 1)
        tlb.shootdown(0x1000)
        assert tlb.lookup(0x1000).frame is None

    def test_mmu_fills_tlb_after_walk(self):
        pt = PageTable()
        pt.map_page(0x5000, frame=9)
        mmu = Mmu(TlbConfig(), pt)
        first = mmu.translate(0x5000)
        second = mmu.translate(0x5000)
        assert first.tlb_level == "WALK"
        assert second.tlb_level == "L1"
        assert second.physical == 9 << 12

    def test_late_translation_point_counts_faults(self):
        pt = PageTable()
        pt.map_page(0x5000, present=False)
        late = LateTranslationPoint(pt)
        res = late.check(0x5000, is_write=True)
        assert res.fault is FaultType.NOT_PRESENT_LAZY
        assert late.late_faults == 1
