"""Tests for the parallel campaign engine, seed derivation, the
allowed-set cache, and the dual clean+injected harness pass."""

import json

import pytest

from repro.analysis.postprocess import (
    CAMPAIGN_REPORT_SCHEMA,
    campaign_report_dict,
    read_campaign_report,
    write_campaign_report,
)
from repro.litmus import (
    AllowedSetCache,
    DEFAULT_SEEDS,
    LitmusTest,
    RunConfig,
    all_library_tests,
    canonical_test_digest,
    check_suite,
    check_test,
    derive_seed,
    derive_seeds,
    run_campaign,
)
from repro.litmus.library import message_passing, store_buffering
from repro.sim.config import ConsistencyModel


def small_suite():
    return all_library_tests()[:5]


def outcome_sets(report):
    return [(v.run.outcomes,
             v.clean_run.outcomes if v.clean_run else None)
            for v in report.verdicts]


class TestSeedDerivation:
    def test_deterministic(self):
        assert derive_seed("MP", "PC", 3) == derive_seed("MP", "PC", 3)

    def test_varies_with_test_model_and_index(self):
        base = derive_seed("MP", "PC", 0)
        assert derive_seed("SB", "PC", 0) != base
        assert derive_seed("MP", "WC", 0) != base
        assert derive_seed("MP", "PC", 1) != base

    def test_schedule_is_prefix_stable(self):
        assert derive_seeds("MP", "PC", 5) == derive_seeds("MP", "PC", 8)[:5]

    def test_default_seeds_documented_value(self):
        assert DEFAULT_SEEDS == 20
        assert RunConfig().seeds == DEFAULT_SEEDS

    def test_cli_seeds_default_matches_runner(self):
        from repro.cli import build_parser
        args = build_parser().parse_args(["litmus"])
        assert args.seeds == DEFAULT_SEEDS


class TestDualPass:
    def test_injected_config_runs_clean_pass_too(self):
        verdict = check_test(message_passing(), RunConfig(seeds=5))
        assert verdict.run.injected
        assert verdict.clean_run is not None
        assert not verdict.clean_run.injected
        assert verdict.clean_conformance is not None
        assert verdict.clean_run.imprecise_exceptions == 0
        assert verdict.wall_time > 0
        assert verdict.ok

    def test_clean_pass_flag_skips_it(self):
        verdict = check_test(message_passing(),
                             RunConfig(seeds=5, clean_pass=False))
        assert verdict.clean_run is None
        assert verdict.ok

    def test_no_faults_config_has_single_clean_pass(self):
        verdict = check_test(message_passing(),
                             RunConfig(seeds=5, inject_faults=False))
        assert not verdict.run.injected
        assert verdict.clean_run is None

    def test_clean_violation_fails_verdict(self):
        """A verdict whose clean pass shows a negative difference is
        not ok even if the injected pass conforms."""
        from repro.memmodel.checker import check_outcome_set

        verdict = check_test(message_passing(), RunConfig(seeds=5))
        bad = check_outcome_set(verdict.conformance.allowed,
                                {(("r0", 9), ("r1", 9))})
        verdict.clean_conformance = bad
        assert not verdict.ok


class TestParallelCampaign:
    def test_parallel_matches_serial(self):
        cfg = RunConfig(seeds=4)
        serial = check_suite(small_suite(), cfg)
        parallel = check_suite(small_suite(), cfg, jobs=3)
        assert outcome_sets(serial) == outcome_sets(parallel)
        assert [v.test.name for v in serial.verdicts] == \
               [v.test.name for v in parallel.verdicts]
        assert parallel.jobs == 3
        assert serial.ok and parallel.ok

    def test_chunking_preserves_suite_order(self):
        tests = small_suite()
        cfg = RunConfig(seeds=2, clean_pass=False)
        for chunk_size in (1, 2, 7):
            report = run_campaign(tests, cfg, jobs=2,
                                  chunk_size=chunk_size)
            assert [v.test.name for v in report.verdicts] == \
                   [t.name for t in tests]

    def test_serial_fallback_without_pool(self):
        report = run_campaign(small_suite(), RunConfig(seeds=2), jobs=1)
        assert report.tests == 5
        assert report.wall_time > 0

    def test_progress_logged(self, caplog):
        import logging
        with caplog.at_level(logging.INFO, logger="repro.litmus.campaign"):
            run_campaign(small_suite(), RunConfig(seeds=2), jobs=1)
        text = caplog.text
        assert "campaign start" in text
        assert "campaign progress" in text
        assert "campaign done" in text


class TestCanonicalDigest:
    def test_name_independent(self):
        a = LitmusTest("one", "x", [[("W", "x", 1)], [("R", "x", "r0")]])
        b = LitmusTest("two", "x", [[("W", "x", 1)], [("R", "x", "r0")]])
        assert canonical_test_digest(a, "PC") == \
               canonical_test_digest(b, "PC")

    def test_model_and_structure_dependent(self):
        a = LitmusTest("t", "x", [[("W", "x", 1)], [("R", "x", "r0")]])
        c = LitmusTest("t", "x", [[("W", "x", 2)], [("R", "x", "r0")]])
        assert canonical_test_digest(a, "PC") != \
               canonical_test_digest(a, "RVWMO")
        assert canonical_test_digest(a, "PC") != \
               canonical_test_digest(c, "PC")

    def test_stable_across_uid_counters(self):
        test = message_passing()
        first = canonical_test_digest(test, "PC")
        # to_events() mints fresh uids every call; the digest must not
        # depend on them.
        assert canonical_test_digest(message_passing(), "PC") == first


class TestAllowedSetCache:
    def test_memoises_within_campaign(self, tmp_path):
        cache = AllowedSetCache(tmp_path / "allowed.json")
        tests = small_suite()
        cfg = RunConfig(seeds=2, clean_pass=False)
        first = run_campaign(tests, cfg, cache=cache)
        assert first.cache_misses == len(tests)
        second = run_campaign(tests, cfg, cache=cache)
        assert second.cache_hits == len(tests)
        assert second.cache_misses == 0
        assert outcome_sets(first) == outcome_sets(second)

    def test_persists_across_instances(self, tmp_path):
        path = tmp_path / "allowed.json"
        tests = small_suite()
        cfg = RunConfig(seeds=2, clean_pass=False)
        run_campaign(tests, cfg, cache=AllowedSetCache(path))
        reloaded = AllowedSetCache(path)
        assert len(reloaded) == len(
            {canonical_test_digest(t, "PC") for t in tests})
        report = run_campaign(tests, cfg, cache=reloaded)
        assert report.cache_misses == 0

    def test_cache_path_accepted_directly(self, tmp_path):
        path = tmp_path / "allowed.json"
        run_campaign(small_suite()[:2],
                     RunConfig(seeds=2, clean_pass=False), cache=path)
        assert path.exists()
        payload = json.loads(path.read_text())
        assert payload["schema"] == "repro.litmus.allowed-cache/v1"

    def test_corrupt_cache_file_ignored_loudly(self, tmp_path, caplog):
        import logging
        path = tmp_path / "allowed.json"
        path.write_text("{not json")
        with caplog.at_level(logging.WARNING,
                             logger="repro.litmus.campaign"):
            cache = AllowedSetCache(path)
        assert len(cache) == 0
        assert any("corrupt allowed-set cache" in r.message
                   for r in caplog.records)

    def test_schema_mismatch_warns_with_found_schema(self, tmp_path,
                                                     caplog):
        import logging
        path = tmp_path / "allowed.json"
        path.write_text(json.dumps(
            {"schema": "repro.litmus.allowed-cache/v99", "entries": {}}))
        with caplog.at_level(logging.WARNING,
                             logger="repro.litmus.campaign"):
            cache = AllowedSetCache(path)
        assert len(cache) == 0
        assert any("repro.litmus.allowed-cache/v99" in r.message
                   for r in caplog.records)

    def test_orphaned_tmp_removed_on_load(self, tmp_path, caplog):
        import logging
        path = tmp_path / "allowed.json"
        tmp = tmp_path / "allowed.json.tmp"
        tmp.write_text("{half-written")
        with caplog.at_level(logging.WARNING,
                             logger="repro.litmus.campaign"):
            AllowedSetCache(path)
        assert not tmp.exists()
        assert any("orphaned cache temp file" in r.message
                   for r in caplog.records)

    def test_concurrent_saves_merge_not_clobber(self, tmp_path):
        # Regression: two campaigns sharing one cache file, loaded
        # before either saved.  The second save used to clobber the
        # first writer's entries; save() must merge on-disk state.
        path = tmp_path / "allowed.json"
        first, second = AllowedSetCache(path), AllowedSetCache(path)
        tests = small_suite()
        cfg = RunConfig(seeds=2, clean_pass=False)
        mid = len(tests) // 2
        run_campaign(tests[:mid], cfg, cache=first)   # saves half...
        run_campaign(tests[mid:], cfg, cache=second)  # ...then the rest
        merged = AllowedSetCache(path)
        assert len(merged) == len(
            {canonical_test_digest(t, "PC") for t in tests})
        report = run_campaign(tests, cfg, cache=merged)
        assert report.cache_misses == 0  # zero entries lost

    def test_interleaved_save_order_keeps_all_entries(self, tmp_path):
        path = tmp_path / "allowed.json"
        first, second = AllowedSetCache(path), AllowedSetCache(path)
        first.put("a" * 64, {(("r0", 0),)})
        second.put("b" * 64, {(("r0", 1),)})
        second.save()
        first.save()  # reverse arrival order: both must survive
        merged = AllowedSetCache(path)
        assert merged.get("a" * 64) == {(("r0", 0),)}
        assert merged.get("b" * 64) == {(("r0", 1),)}

    def test_hit_accounting_single_source(self, tmp_path):
        # Regression: report counters were recomputed independently of
        # the cache's own hits/misses and could disagree.  They are now
        # the same numbers by construction (per-campaign deltas).
        from repro import obs
        cache = AllowedSetCache(tmp_path / "allowed.json")
        tests = small_suite()
        cfg = RunConfig(seeds=2, clean_pass=False)
        run_campaign(tests, cfg, cache=cache)
        hits_before, misses_before = cache.hits, cache.misses
        tel = obs.Telemetry()
        with obs.use(tel):
            report = run_campaign(tests, cfg, cache=cache)
        assert report.cache_hits == cache.hits - hits_before
        assert report.cache_misses == cache.misses - misses_before
        assert tel.metrics.counter("campaign.cache_hits").value == \
            report.cache_hits
        payload = campaign_report_dict(report)
        assert payload["cache"]["hits"] == report.cache_hits
        assert payload["cache"]["hit_rate"] == 1.0

    def test_cached_campaign_matches_uncached(self, tmp_path):
        tests = small_suite()
        cfg = RunConfig(seeds=3)
        uncached = run_campaign(tests, cfg,
                                cache=AllowedSetCache())  # fresh memo
        warm = AllowedSetCache(tmp_path / "c.json")
        run_campaign(tests, cfg, cache=warm)
        cached = run_campaign(tests, cfg, cache=warm)
        assert outcome_sets(uncached) == outcome_sets(cached)
        for u, c in zip(uncached.verdicts, cached.verdicts):
            assert u.conformance.allowed == c.conformance.allowed


class TestCampaignReport:
    def _report(self, **cfg_kwargs):
        cfg = RunConfig(seeds=3, **cfg_kwargs)
        return check_suite([message_passing(), store_buffering()], cfg)

    def test_schema_and_totals(self, tmp_path):
        report = self._report()
        path = tmp_path / "campaign.json"
        payload = write_campaign_report(path, report)
        back = read_campaign_report(path)
        assert back == payload
        assert back["schema"] == CAMPAIGN_REPORT_SCHEMA
        assert back["tests"] == 2
        assert back["ok"] is True
        assert back["totals"]["clean_passes"] == 2
        assert back["totals"]["imprecise_exceptions"] == \
            report.total_imprecise_exceptions

    def test_per_test_wall_time_and_both_passes(self):
        payload = campaign_report_dict(self._report())
        for result in payload["results"]:
            assert result["wall_time_s"] > 0
            assert result["injected"]["runs"] == 3
            assert result["clean"]["runs"] == 3
            assert result["clean"]["imprecise_exceptions"] == 0
            assert "precise_exceptions" in result["injected"]

    def test_clean_only_campaign(self):
        payload = campaign_report_dict(self._report(inject_faults=False))
        for result in payload["results"]:
            assert result["injected"] is None
            assert result["clean"]["runs"] == 3

    def test_skip_clean_campaign(self):
        payload = campaign_report_dict(self._report(clean_pass=False))
        for result in payload["results"]:
            assert result["clean"] is None

    def test_read_rejects_other_schemas(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text(json.dumps({"schema": "something/else"}))
        with pytest.raises(ValueError, match="not a campaign report"):
            read_campaign_report(path)


class TestExplorerIntegration:
    def _report(self, strategy="verify"):
        cfg = RunConfig(seeds=3, explore=strategy)
        return check_suite([message_passing(), store_buffering()], cfg)

    def test_verdicts_carry_exploration_check(self):
        report = self._report()
        for v in report.verdicts:
            assert v.explore_ok is True
            assert v.explore_check["strategy"] == "verify"
            assert v.explore_check["stats"]["interleavings"] > 0
        totals = report.explorer_totals()
        assert totals["tests_explored"] == 2
        assert totals["tests_skipped"] == 0
        assert totals["mismatches"] == 0

    def test_off_by_default(self):
        cfg = RunConfig(seeds=2, clean_pass=False)
        report = check_suite([message_passing()], cfg)
        assert report.verdicts[0].explore_ok is None
        assert report.explorer_totals()["tests_skipped"] == 1

    def test_report_json_has_explorer_blocks(self, tmp_path):
        payload = campaign_report_dict(self._report())
        assert payload["schema"] == CAMPAIGN_REPORT_SCHEMA
        assert payload["explorer"]["tests_explored"] == 2
        for result in payload["results"]:
            assert result["explorer"]["ok"] is True

    def test_v2_reports_still_readable(self, tmp_path):
        path = tmp_path / "v2.json"
        path.write_text(json.dumps(
            {"schema": "repro.litmus.campaign-report/v2", "tests": 0}))
        assert read_campaign_report(path)["tests"] == 0

    def test_cli_explore_flag(self, tmp_path, capsys):
        from repro.cli import main
        out = tmp_path / "out.json"
        assert main(["litmus", "--quick", "--seeds", "2",
                     "--skip-clean", "--explore", "dpor",
                     "--json", str(out)]) == 0
        report = read_campaign_report(out)
        assert report["explorer"]["tests_explored"] == 40
        assert report["explorer"]["mismatches"] == 0


class TestCliCampaignFlags:
    def test_quick_parallel_json(self, tmp_path, capsys):
        from repro.cli import main
        out = tmp_path / "out.json"
        assert main(["litmus", "--quick", "--seeds", "2", "--jobs", "2",
                     "--json", str(out)]) == 0
        report = read_campaign_report(out)
        assert report["jobs"] == 2
        assert report["ok"] is True
        assert all(r["wall_time_s"] > 0 for r in report["results"])
        assert "campaign report written" in capsys.readouterr().out

    def test_skip_clean_and_cache_flags(self, tmp_path, capsys):
        from repro.cli import main
        cache = tmp_path / "cache.json"
        argv = ["litmus", "--quick", "--seeds", "2", "--skip-clean",
                "--cache", str(cache)]
        assert main(argv) == 0
        assert cache.exists()
        capsys.readouterr()
        # Second run hits the persisted cache.
        assert main(argv) == 0
        assert "hits=40" in capsys.readouterr().out

    def test_store_and_incremental_flags(self, tmp_path, capsys):
        from repro.cli import main
        out = tmp_path / "report.json"
        argv = ["litmus", "--quick", "--seeds", "2", "--skip-clean",
                "--store", str(tmp_path / "store"), "--incremental",
                "--json", str(out)]
        assert main(argv) == 0
        first = read_campaign_report(out)
        assert first["incremental"] is True
        assert first["store"]["misses"] == 40
        capsys.readouterr()
        # No-op re-campaign: everything replays from the store.
        assert main(argv) == 0
        second = read_campaign_report(out)
        assert second["store"]["hits"] == 40
        assert second["store"]["hit_rate"] == 1.0
        assert second["enumerator"]["tests_enumerated"] == 0
        assert "replays=40" in capsys.readouterr().out
        # Verdicts replay bit-identically.
        for a, b in zip(first["results"], second["results"]):
            assert a["ok"] == b["ok"]
            assert a["injected"] == b["injected"]

    def test_incremental_requires_store(self):
        from repro.cli import main
        with pytest.raises(SystemExit, match="--store"):
            main(["litmus", "--quick", "--incremental"])
