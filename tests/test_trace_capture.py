"""Capture/replay split: artifact round-trips are bit-identical.

The trace artifact is only worth having if replaying it is
indistinguishable — in simulated time — from running the build
directly.  These tests pin that equivalence across the registered
workloads and both handler drain policies, plus the cache semantics
(key sensitivity, digest verification, capture-span presence) that
docs/simulation.md documents.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import obs
from repro.core.handler import BatchingHandler, MinimalHandler
from repro.obs.sinks import MemorySink
from repro.sim.config import ConsistencyModel, table2_config
from repro.sim.devices.einject import EInject
from repro.sim.timing import run_trace
from repro.sim.trace import TraceArtifactError, trace_digest
from repro.workloads import build_workload, figure6_workload_names
from repro.workloads.capture import (TraceCache, capture_workload,
                                     replay_trace, workload_cache_key)


def _wc_config():
    return table2_config().with_consistency(ConsistencyModel.WC)


def _sim_key(result):
    """Everything a timing run decides, including the Figure 5
    phase breakdown."""
    return (
        result.total_cycles,
        [s.cycles for s in result.core_stats],
        [s.instructions for s in result.core_stats],
        result.total_imprecise_exceptions,
        result.total_faulting_stores,
        [s.precise_exceptions for s in result.core_stats],
        result.overhead_breakdown_per_fault(),
    )


def _run_direct(workload, handler_cls, cfg):
    einject = EInject()
    for page in workload.injectable_pages():
        einject.mmio_set(page)
    return run_trace(cfg, workload.traces, einject=einject,
                     handler=handler_cls(cfg.os))


class TestRoundTrip:
    @pytest.mark.parametrize("name", figure6_workload_names())
    @pytest.mark.parametrize("handler_cls", [MinimalHandler,
                                             BatchingHandler])
    def test_replay_matches_direct_simulation(self, tmp_path, name,
                                              handler_cls):
        cfg = _wc_config()
        params = dict(scale=0.25, inject=True)
        direct = _run_direct(
            build_workload(name, cores=2, seed=5, **params),
            handler_cls, cfg)

        cache = TraceCache(tmp_path / "traces")
        captured = capture_workload(name, cores=2, seed=5, cache=cache,
                                    **params)
        # Round-trip through the on-disk artifact, not the memory map.
        cache.clear_memory()
        reloaded = capture_workload(name, cores=2, seed=5, cache=cache,
                                    **params)
        assert reloaded.from_cache
        assert reloaded.digest == captured.digest

        einject = EInject()
        for page in reloaded.injectable_pages():
            einject.mmio_set(page)
        replayed = replay_trace(cfg, reloaded, einject=einject,
                                handler=handler_cls(cfg.os))
        assert _sim_key(replayed) == _sim_key(direct)

    @settings(max_examples=8, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    @given(seed=st.integers(min_value=1, max_value=2 ** 16),
           batching=st.booleans())
    def test_seeded_round_trip(self, tmp_path, seed, batching):
        """Any build seed round-trips bit-identically (Silo keeps the
        example budget affordable; the parametrized test above covers
        every workload at a fixed seed)."""
        cfg = _wc_config()
        handler_cls = BatchingHandler if batching else MinimalHandler
        params = dict(scale=0.2, inject=True)
        direct = _run_direct(
            build_workload("Silo", cores=2, seed=seed, **params),
            handler_cls, cfg)

        cache = TraceCache(tmp_path / f"traces-{seed}-{batching}")
        capture_workload("Silo", cores=2, seed=seed, cache=cache,
                         **params)
        cache.clear_memory()
        reloaded = capture_workload("Silo", cores=2, seed=seed,
                                    cache=cache, **params)
        assert reloaded.from_cache
        einject = EInject()
        for page in reloaded.injectable_pages():
            einject.mmio_set(page)
        replayed = replay_trace(cfg, reloaded, einject=einject,
                                handler=handler_cls(cfg.os))
        assert _sim_key(replayed) == _sim_key(direct)

    def test_artifact_digest_matches_content(self, tmp_path):
        cache = TraceCache(tmp_path / "traces")
        captured = capture_workload("Silo", cores=2, seed=9, cache=cache,
                                    scale=0.2)
        assert captured.digest == trace_digest(captured.traces)


class TestCacheSemantics:
    def test_capture_span_absent_on_warm_run(self, tmp_path):
        """The observable cold/warm difference: ``workload.capture``
        is emitted exactly once, ``workload.replay`` every time."""
        cache = TraceCache(tmp_path / "traces")
        cfg = _wc_config()

        def spans(run):
            sink = MemorySink()
            with obs.use(obs.Telemetry([sink])):
                run()
            return [r["name"] for r in sink.records
                    if r.get("type") == "span"]

        cold = spans(lambda: replay_trace(cfg, capture_workload(
            "Silo", cores=2, seed=2, cache=cache, scale=0.2)))
        warm = spans(lambda: replay_trace(cfg, capture_workload(
            "Silo", cores=2, seed=2, cache=cache, scale=0.2)))

        assert "workload.capture" in cold
        assert "workload.replay" in cold
        assert "workload.capture" not in warm
        assert "workload.replay" in warm

    def test_key_sensitive_to_every_build_input(self):
        base = workload_cache_key("Silo", 2, 1, {"scale": 0.5})
        assert base != workload_cache_key("BFS", 2, 1, {"scale": 0.5})
        assert base != workload_cache_key("Silo", 4, 1, {"scale": 0.5})
        assert base != workload_cache_key("Silo", 2, 7, {"scale": 0.5})
        assert base != workload_cache_key("Silo", 2, 1, {"scale": 1.0})
        assert base == workload_cache_key("Silo", 2, 1, {"scale": 0.5})

    def test_distinct_params_capture_distinct_artifacts(self, tmp_path):
        cache = TraceCache(tmp_path / "traces")
        a = capture_workload("Silo", cores=2, seed=1, cache=cache,
                             scale=0.2)
        b = capture_workload("Silo", cores=2, seed=2, cache=cache,
                             scale=0.2)
        assert a.cache_key != b.cache_key
        assert a.digest != b.digest

    def test_corrupt_artifact_raises_not_replays(self, tmp_path):
        cache = TraceCache(tmp_path / "traces")
        captured = capture_workload("Silo", cores=2, seed=4, cache=cache,
                                    scale=0.2)
        path = cache.path_for(captured.cache_key)
        blob = bytearray(path.read_bytes())
        blob[-10] ^= 0xFF              # flip a payload byte
        path.write_bytes(bytes(blob))
        cache.clear_memory()
        with pytest.raises(TraceArtifactError):
            capture_workload("Silo", cores=2, seed=4, cache=cache,
                             scale=0.2)

    def test_force_rebuilds_over_a_hit(self, tmp_path):
        cache = TraceCache(tmp_path / "traces")
        first = capture_workload("Silo", cores=2, seed=6, cache=cache,
                                 scale=0.2)
        again = capture_workload("Silo", cores=2, seed=6, cache=cache,
                                 force=True, scale=0.2)
        assert not again.from_cache
        assert again.digest == first.digest   # deterministic build
