"""Static FSB taint analyzer vs the speculative taint explorer.

The contract under test (``repro.staticanalysis.taint`` /
``repro.explore.spectaint``): a static ``leak-free`` verdict implies
the exhaustive speculative taint-tracking machine finds **no** leaking
schedule for that (test, drain policy) — zero false negatives over the
hand-written library, the generated structural suite, and a seeded
500-test randgen slice, under both FSB drain policies.  The converse
(``leak-hazard`` the explorer cannot realise) is the allowed
conservative direction.

The soundness sweeps use the contrapositive structure: the static pass
runs on *everything*, and the expensive dynamic explorer runs exactly
where the static verdict is ``leak-free`` — a hazard/unknown verdict
makes a false negative impossible by definition, so this covers the
full zero-FN claim while keeping the suite fast.
"""

import json

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.explore import (LEAK_MARKER, check_taint_policy,
                           leak_predicate, shrink_test)
from repro.litmus import RunConfig, check_suite, check_test
from repro.litmus.dsl import LitmusTest
from repro.litmus.generator import generate_all
from repro.litmus.library import (all_library_tests, message_passing,
                                  message_passing_fenced)
from repro.memmodel.axioms import get_model
from repro.memmodel.imprecise import DrainPolicy
from repro.staticanalysis import (TaintVerdict, advise_fences,
                                  analyze_taint)

POLICIES = tuple(DrainPolicy)
LIBRARY = all_library_tests()


def assert_no_false_negative(test, policy, report):
    """The one inadmissible outcome: static leak-free, dynamic leak."""
    if report.verdict is not TaintVerdict.LEAK_FREE:
        return None  # hazard/unknown: a false negative is impossible
    check = check_taint_policy(test, policy)
    assert not check.leak, (
        f"FALSE NEGATIVE: {test.name} [{policy.value}] statically "
        f"leak-free but the explorer leaks via "
        f"{check.witness_schedule}")
    return check


# ----------------------------------------------------------------------
# Dynamic ground truth (the speculative taint machine)
# ----------------------------------------------------------------------
class TestSpecTaintMachine:
    def test_mp_leaks_under_both_policies(self):
        """The Store-to-Leak shape: a concurrent reader transiently
        observes MP's pre-apply FSB entries under either policy."""
        for policy in POLICIES:
            check = check_taint_policy(message_passing(), policy)
            assert check.leak, policy
            assert check.witness_schedule, policy
            assert any("!leak" in step
                       for step in check.witness_schedule), \
                check.witness_schedule
            assert check.leak_outcomes > 0
            assert (LEAK_MARKER, 1) in check.witness_outcome

    def test_fences_do_not_close_the_transient_channel(self):
        """The honest finding: writer/reader fences order *commits*;
        the transient FSB forward happens before the fence's drain
        can matter on the observer side."""
        for policy in POLICIES:
            assert check_taint_policy(message_passing_fenced(),
                                      policy).leak, policy

    def test_no_faulting_locations_no_leak(self):
        check = check_taint_policy(message_passing(),
                                   DrainPolicy.SAME_STREAM,
                                   faulting_locs=())
        assert not check.leak
        assert check.witness_schedule is None

    def test_single_core_cannot_leak(self):
        solo = LitmusTest(name="solo", category="t",
                          threads=[[("W", "x", 1), ("R", "x", "r0")]])
        for policy in POLICIES:
            assert not check_taint_policy(solo, policy).leak

    def test_strategies_agree(self):
        """DPOR with the TAINT_TOKEN footprints must match the naive
        verify oracle outcome-for-outcome."""
        for test in (message_passing(), LIBRARY[0]):
            for policy in POLICIES:
                dpor = check_taint_policy(test, policy, strategy="dpor")
                verify = check_taint_policy(test, policy,
                                            strategy="verify")
                assert dpor.outcomes == verify.outcomes, \
                    (test.name, policy)
                assert dpor.leak == verify.leak


# ----------------------------------------------------------------------
# Static analyzer units + edge cases
# ----------------------------------------------------------------------
class TestAnalyzeTaint:
    def test_mp_is_a_leak_hazard_with_fsb_spec_flow(self):
        report = analyze_taint(message_passing())
        assert report.verdict is TaintVerdict.LEAK_HAZARD
        channels = {flow.channel for flow in report.flows}
        assert "fsb-spec" in channels
        flow = report.flows[0]
        assert "=>" in flow.describe()
        json.dumps(report.as_dict())

    def test_empty_program_is_leak_free(self):
        for threads in ([], [[]], [[], []]):
            test = LitmusTest(name="empty", category="t",
                              threads=threads)
            for policy in POLICIES:
                report = analyze_taint(test, policy)
                assert report.verdict is TaintVerdict.LEAK_FREE, \
                    (threads, policy)
                assert report.flows == ()

    def test_single_core_faulting_program_is_leak_free(self):
        """No concurrent observer => nothing to leak to, even with
        every location faulting and a gadget-shaped body."""
        solo = LitmusTest(name="solo-gadget", category="t", threads=[
            [("W", "x", 1), ("R", "x", "r0"),
             ("Raddr", "y", "r1", "r0")]])
        for policy in POLICIES:
            report = analyze_taint(solo, policy)
            assert report.verdict is TaintVerdict.LEAK_FREE
            assert_no_false_negative(solo, policy, report)

    def test_atomic_only_sanitization(self):
        """An atomic is an FSB barrier: with it between the forwarded
        faulting-store data and the address use, the transmit channel
        closes and the program is leak-free (cores share no
        location, so no observe channel exists either)."""
        gadget = [("W", "x", 1), ("R", "x", "r0"),
                  ("Raddr", "y", "r1", "r0")]
        sanitized = gadget[:2] + [("A", "z", 1, "a0")] + gadget[2:]
        other = [("W", "q", 1)]
        leaky = LitmusTest(name="gadget", category="t",
                           threads=[list(gadget), list(other)])
        clean = LitmusTest(name="gadget+amo", category="t",
                           threads=[sanitized, list(other)])
        for policy in POLICIES:
            assert analyze_taint(leaky, policy).verdict \
                is TaintVerdict.LEAK_HAZARD
            channels = {f.channel
                        for f in analyze_taint(leaky, policy).flows}
            assert channels == {"transmit"}
            report = analyze_taint(clean, policy)
            assert report.verdict is TaintVerdict.LEAK_FREE, policy
            assert_no_false_negative(clean, policy, report)

    def test_unsupported_op_is_unknown_never_a_guess(self):
        weird = LitmusTest(name="weird", category="t",
                           threads=[[("Q", "x", 1)]])
        report = analyze_taint(weird)
        assert report.verdict is TaintVerdict.UNKNOWN
        assert "unsupported" in report.reason

    def test_report_dict_round_trips_through_json(self):
        report = analyze_taint(message_passing(),
                               DrainPolicy.SPLIT_STREAM)
        payload = json.loads(json.dumps(report.as_dict()))
        assert payload["policy"] == "split"
        assert payload["verdict"] == "leak-hazard"
        assert payload["flows"][0]["channel"] == "fsb-spec"
        assert payload["flows"][0]["steps"]


# ----------------------------------------------------------------------
# Soundness: zero false negatives, per corpus, per policy
# ----------------------------------------------------------------------
class TestSoundnessLibrary:
    def test_library_full_crosscheck_both_ways(self):
        """Small enough to run the explorer on *every* check: pins
        exact agreement (currently zero false positives too — relax
        only the FP half if the analyzer ever grows conservative)."""
        disagreements = []
        for test in LIBRARY:
            for policy in POLICIES:
                report = analyze_taint(test, policy)
                assert report.verdict is not TaintVerdict.UNKNOWN, \
                    (test.name, report.reason)
                check = check_taint_policy(test, policy)
                if report.leak_free == check.leak:
                    disagreements.append(
                        (test.name, policy.value, report.verdict.value,
                         check.leak))
        assert disagreements == []

    def test_leak_verdicts_coincide_across_policies(self):
        """Drain policy changes *when* entries apply, not whether a
        pre-apply transient window exists — the leak verdict is
        policy-independent on this corpus (pinned observation)."""
        for test in LIBRARY:
            verdicts = {analyze_taint(test, p).verdict for p in POLICIES}
            assert len(verdicts) == 1, test.name


class TestSoundnessGenerated:
    def test_generated_suite_contrapositive(self):
        tests = generate_all()
        assert len(tests) >= 260
        free = hazards = 0
        for test in tests:
            for policy in POLICIES:
                report = analyze_taint(test, policy)
                assert report.verdict is not TaintVerdict.UNKNOWN, \
                    (test.name, report.reason)
                if report.verdict is TaintVerdict.LEAK_FREE:
                    free += 1
                    assert_no_false_negative(test, policy, report)
                else:
                    hazards += 1
        assert free > 0, "vacuous: no leak-free verdicts to check"
        assert hazards > 0, "vacuous: no hazards in the suite"


class TestSoundnessRandgen:
    # The pinned slice: seed/count are part of the acceptance
    # criterion (>= 500 tests), regenerated bit-identically per run.
    SEED, COUNT = 90210, 500

    def test_randgen_slice_contrapositive(self):
        from repro.litmus.randgen import generate_corpus
        corpus = generate_corpus(seed=self.SEED, count=self.COUNT)
        assert len(corpus.tests) == self.COUNT
        free = hazards = 0
        for entry in corpus.tests:
            for policy in POLICIES:
                report = analyze_taint(entry.test, policy)
                assert report.verdict is not TaintVerdict.UNKNOWN, \
                    (entry.test.name, report.reason)
                if report.verdict is TaintVerdict.LEAK_FREE:
                    free += 1
                    assert_no_false_negative(entry.test, policy, report)
                else:
                    hazards += 1
        assert free + hazards == 2 * self.COUNT
        assert free > 0 and hazards > 0


# ----------------------------------------------------------------------
# Pinned witnesses: minimized leak schedule / no-leak verdict
# ----------------------------------------------------------------------
class TestPinnedWitnesses:
    def test_mp_minimized_leak_witness_per_policy(self):
        """MP leaks under both policies; ddmin strips it to the
        2-op essence (one faulting store, one remote load) with a
        replayable transient-forward schedule."""
        for policy in POLICIES:
            shrunk = shrink_test(message_passing(),
                                 leak_predicate(policy))
            assert shrunk is not None, policy
            assert shrunk.final_ops == 2, (policy, shrunk.test.threads)
            kinds = sorted(op[0] for ops in shrunk.test.threads
                           for op in ops)
            assert kinds == ["R", "W"], shrunk.test.threads
            assert (LEAK_MARKER, 1) in shrunk.outcome
            assert any("!leak" in step for step in shrunk.schedule), \
                shrunk.schedule

    def test_pinned_no_leak_program_per_policy(self):
        """The no-leak side of the acceptance criterion: a two-core
        program with disjoint footprints and no dependency sinks is
        leak-free statically AND dynamically under each policy."""
        quiet = LitmusTest(name="quiet", category="t", threads=[
            [("W", "x", 1), ("R", "x", "r0")],
            [("W", "y", 1), ("R", "y", "r1")]])
        for policy in POLICIES:
            report = analyze_taint(quiet, policy)
            assert report.verdict is TaintVerdict.LEAK_FREE, policy
            check = assert_no_false_negative(quiet, policy, report)
            assert check is not None and not check.leak


# ----------------------------------------------------------------------
# Property: fence insertion never creates a hazard
# ----------------------------------------------------------------------
class TestFenceInsertionProperty:
    _CORPUS = {t.name: t for t in LIBRARY + generate_all()[:60]}

    @settings(max_examples=40, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(name=st.sampled_from(sorted(_CORPUS)),
           policy=st.sampled_from(POLICIES))
    def test_advised_fences_never_convert_free_to_hazard(self, name,
                                                         policy):
        """Barriers only *kill* taint — the fence advisor's patched
        program can never turn a leak-free verdict into a hazard."""
        test = self._CORPUS[name]
        before = analyze_taint(test, policy).verdict
        patched = advise_fences(test, get_model("PC")).patched
        after = analyze_taint(patched, policy).verdict
        if before is TaintVerdict.LEAK_FREE:
            assert after is TaintVerdict.LEAK_FREE, name


# ----------------------------------------------------------------------
# Harness / campaign wiring
# ----------------------------------------------------------------------
class TestHarnessWiring:
    CONFIG = dict(seeds=2, clean_pass=False)

    def test_check_test_records_taint_check(self):
        verdict = check_test(message_passing(),
                             RunConfig(taint=True, **self.CONFIG))
        tc = verdict.taint_check
        assert tc is not None
        assert sorted(tc["policies"]) == ["same", "split"]
        assert tc["hazard"] is True
        assert tc["leak_free"] is False
        assert tc["flows"] >= 2
        for policy_report in tc["policies"].values():
            assert policy_report["verdict"] == "leak-hazard"
        # A hazard is a report, never a conformance failure.
        assert verdict.ok

    def test_taint_off_by_default(self):
        verdict = check_test(message_passing(),
                             RunConfig(**self.CONFIG))
        assert verdict.taint_check is None

    def test_suite_report_taint_totals_and_v8_schema(self):
        from repro.analysis.postprocess import (
            CAMPAIGN_REPORT_SCHEMA, campaign_report_dict)
        tests = LIBRARY[:3]
        report = check_suite(tests, RunConfig(taint=True, **self.CONFIG))
        totals = report.taint_totals()
        assert totals["tests_analyzed"] == 3
        assert totals["tests_skipped"] == 0
        assert totals["leak_hazard"] + totals["leak_free"] \
            + totals["unknown"] == 3
        payload = campaign_report_dict(report)
        assert payload["schema"] == CAMPAIGN_REPORT_SCHEMA
        assert payload["schema"].endswith("/v8")
        assert payload["taint"] == totals
        for entry in payload["results"]:
            assert entry["taint"]["policies"]
        json.dumps(payload)

    def test_totals_count_skips_when_disabled(self):
        report = check_suite(LIBRARY[:2], RunConfig(**self.CONFIG))
        totals = report.taint_totals()
        assert totals["tests_analyzed"] == 0
        assert totals["tests_skipped"] == 2
        payload_taint = [
            entry["taint"] for entry in
            __import__("repro.analysis.postprocess",
                       fromlist=["campaign_report_dict"])
            .campaign_report_dict(report)["results"]]
        assert payload_taint == [None, None]


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
class TestTaintCli:
    def test_taint_command_reports_hazard(self, capsys):
        from repro.cli import main
        assert main(["taint", "MP", "--policy", "same"]) == 0
        out = capsys.readouterr().out
        assert "leak-hazard" in out
        assert "fsb-spec" in out

    def test_crosscheck_agrees_and_exits_zero(self, capsys):
        from repro.cli import main
        assert main(["taint", "MP", "CoRR", "--crosscheck"]) == 0
        out = capsys.readouterr().out
        assert "agrees" in out
        assert "FALSE NEGATIVE" not in out

    def test_json_report(self, tmp_path, capsys):
        from repro.cli import main
        path = tmp_path / "taint.json"
        assert main(["taint", "MP", "--json", str(path)]) == 0
        payload = json.loads(path.read_text())
        assert payload["schema"] == "repro.taint-report/v1"
        assert {c["policy"] for c in payload["checks"]} == \
            {"same", "split"}

    def test_shrink_prints_minimized_witness(self, capsys):
        from repro.cli import main
        assert main(["taint", "MP", "--policy", "same",
                     "--shrink"]) == 0
        out = capsys.readouterr().out
        assert "shrink: 4 -> 2 op(s)" in out
        assert "witness:" in out
