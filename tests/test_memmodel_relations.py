"""Unit tests for repro.memmodel.relations."""

import pytest

from repro.memmodel.events import FenceKind, initial_writes, program
from repro.memmodel.relations import (
    Execution,
    candidate_co_choices,
    candidate_rf_choices,
    is_acyclic,
    transitive_closure,
)


def make_inits(threads):
    flat = [e for th in threads for e in th]
    addrs = {e.addr for e in flat if e.addr is not None}
    return initial_writes(sorted(addrs))


def make_exec(threads, rf=None, co=None, inits=None):
    if inits is None:
        inits = make_inits(threads)
    flat = [e for th in threads for e in th]
    return Execution(events=tuple(inits) + tuple(flat), rf=rf or {},
                     co=co or {}), inits


class TestProgramOrder:
    def test_po_within_core(self):
        t0 = list(program(0, [("S", 1, 1), ("S", 2, 1), ("L", 1)]))
        ex, _ = make_exec([t0])
        po = ex.po_edges()
        assert (t0[0].uid, t0[1].uid) in po
        assert (t0[0].uid, t0[2].uid) in po
        assert (t0[1].uid, t0[2].uid) in po
        assert (t0[2].uid, t0[0].uid) not in po

    def test_no_po_across_cores(self):
        t0 = list(program(0, [("S", 1, 1)]))
        t1 = list(program(1, [("L", 1)]))
        ex, _ = make_exec([t0, t1])
        assert not any(
            (a, b) in ex.po_edges()
            for a in [t0[0].uid] for b in [t1[0].uid]
        )

    def test_initial_writes_outside_po(self):
        t0 = list(program(0, [("L", 1)]))
        ex, inits = make_exec([t0])
        po = ex.po_edges()
        assert all(inits[0].uid not in edge for edge in po)

    def test_po_loc_filters_different_addresses(self):
        t0 = list(program(0, [("S", 1, 1), ("S", 2, 1), ("L", 1)]))
        ex, _ = make_exec([t0])
        po_loc = ex.po_loc_edges()
        assert (t0[0].uid, t0[2].uid) in po_loc
        assert (t0[0].uid, t0[1].uid) not in po_loc


class TestCommunicationRelations:
    def test_rf_internal_vs_external(self):
        t0 = list(program(0, [("S", 1, 1), ("L", 1)]))
        t1 = list(program(1, [("L", 1)]))
        ex, inits = make_exec(
            [t0, t1],
            rf={t0[1].uid: t0[0].uid, t1[0].uid: t0[0].uid},
        )
        assert (t0[0].uid, t0[1].uid) in ex.rfi_edges()
        assert (t0[0].uid, t1[0].uid) in ex.rfe_edges()

    def test_initial_write_reads_are_external(self):
        t0 = list(program(0, [("L", 1)]))
        inits = make_inits([t0])
        ex, _ = make_exec([t0], rf={t0[0].uid: inits[0].uid}, inits=inits)
        assert (inits[0].uid, t0[0].uid) in ex.rfe_edges()

    def test_co_edges_transitive(self):
        t0 = list(program(0, [("S", 1, 1), ("S", 1, 2)]))
        inits = make_inits([t0])
        ex, _ = make_exec(
            [t0], co={1: [inits[0].uid, t0[0].uid, t0[1].uid]}, inits=inits
        )
        co = ex.co_edges()
        assert (inits[0].uid, t0[0].uid) in co
        assert (inits[0].uid, t0[1].uid) in co
        assert (t0[0].uid, t0[1].uid) in co

    def test_fr_derivation(self):
        # r reads init; a later write w is co-after init => r fr w.
        t0 = list(program(0, [("L", 1)]))
        t1 = list(program(1, [("S", 1, 5)]))
        inits = make_inits([t0, t1])
        ex, _ = make_exec(
            [t0, t1],
            rf={t0[0].uid: inits[0].uid},
            co={1: [inits[0].uid, t1[0].uid]},
            inits=inits,
        )
        assert (t0[0].uid, t1[0].uid) in ex.fr_edges()

    def test_fr_empty_when_read_sees_last_write(self):
        t0 = list(program(0, [("L", 1)]))
        t1 = list(program(1, [("S", 1, 5)]))
        inits = make_inits([t0, t1])
        ex, _ = make_exec(
            [t0, t1],
            rf={t0[0].uid: t1[0].uid},
            co={1: [inits[0].uid, t1[0].uid]},
            inits=inits,
        )
        assert ex.fr_edges() == set()


class TestFenceEdges:
    def test_full_fence_orders_across(self):
        t0 = list(program(0, [("S", 1, 1), ("F",), ("L", 2)]))
        ex, _ = make_exec([t0])
        assert (t0[0].uid, t0[2].uid) in ex.fence_edges()

    def test_store_store_fence_ignores_loads(self):
        t0 = list(program(0, [
            ("L", 1), ("S", 1, 1), ("F", FenceKind.STORE_STORE),
            ("L", 2), ("S", 2, 1),
        ]))
        ex, _ = make_exec([t0])
        fe = ex.fence_edges()
        assert (t0[1].uid, t0[4].uid) in fe        # S -> S ordered
        assert (t0[0].uid, t0[3].uid) not in fe    # L -> L not ordered
        assert (t0[0].uid, t0[4].uid) not in fe    # L -> S not ordered
        assert (t0[1].uid, t0[3].uid) not in fe    # S -> L not ordered

    def test_load_load_fence(self):
        t0 = list(program(0, [
            ("L", 1), ("S", 1, 1), ("F", FenceKind.LOAD_LOAD),
            ("L", 2), ("S", 2, 1),
        ]))
        ex, _ = make_exec([t0])
        fe = ex.fence_edges()
        assert (t0[0].uid, t0[3].uid) in fe
        assert (t0[1].uid, t0[4].uid) not in fe


class TestFinalState:
    def test_final_memory_is_co_max(self):
        t0 = list(program(0, [("S", 1, 1), ("S", 1, 2)]))
        inits = make_inits([t0])
        ex, _ = make_exec(
            [t0], co={1: [inits[0].uid, t0[1].uid, t0[0].uid]}, inits=inits
        )
        assert ex.final_memory()[1] == 1  # t0[0] is co-last

    def test_outcome_uses_tags_or_positions(self):
        t0 = list(program(0, [("S", 1, 7)]))
        t1 = list(program(1, [("L", 1)]))
        ex, inits = make_exec([t1, t0], rf={t1[0].uid: t0[0].uid})
        assert ex.outcome() == (("r1.0", 7),)


class TestCandidateEnumeration:
    def test_rf_choices_cover_all_writers(self):
        t0 = list(program(0, [("S", 1, 1)]))
        t1 = list(program(1, [("L", 1)]))
        inits = initial_writes([1])
        events = tuple(inits) + tuple(t0) + tuple(t1)
        choices = candidate_rf_choices(events)
        sources = {c[t1[0].uid] for c in choices}
        assert sources == {inits[0].uid, t0[0].uid}

    def test_read_without_writer_raises(self):
        t1 = list(program(1, [("L", 99)]))
        with pytest.raises(ValueError, match="no candidate writer"):
            candidate_rf_choices(tuple(t1))

    def test_co_choices_keep_init_first(self):
        t0 = list(program(0, [("S", 1, 1), ("S", 1, 2)]))
        inits = initial_writes([1])
        events = tuple(inits) + tuple(t0)
        for co in candidate_co_choices(events):
            assert co[1][0] == inits[0].uid
        assert len(candidate_co_choices(events)) == 2  # 2! permutations

    def test_co_count_grows_factorially(self):
        t0 = list(program(0, [("S", 1, v) for v in range(4)]))
        inits = initial_writes([1])
        events = tuple(inits) + tuple(t0)
        assert len(candidate_co_choices(events)) == 24


class TestGraphHelpers:
    def test_is_acyclic_true(self):
        assert is_acyclic([(1, 2), (2, 3)])

    def test_is_acyclic_false(self):
        assert not is_acyclic([(1, 2), (2, 3), (3, 1)])

    def test_transitive_closure(self):
        closure = transitive_closure([(1, 2), (2, 3)])
        assert (1, 3) in closure
