"""Tests for the Faulting Store Buffer and its controller."""

import pytest

from repro.core.exceptions import ExceptionCode
from repro.core.fsb import FaultingStoreBuffer, FsbEntry, FsbOverflowError
from repro.core.fsbc import FsbController


def entry(addr=0x1000, data=7, code=ExceptionCode.EINJECT_BUS_ERROR, seq=0):
    return FsbEntry(addr=addr, data=data, error_code=code, seq=seq)


class TestFsbRing:
    def test_capacity_must_be_power_of_two(self):
        with pytest.raises(ValueError, match="power of two"):
            FaultingStoreBuffer(capacity=12)

    def test_empty_when_head_equals_tail(self):
        fsb = FaultingStoreBuffer(8)
        assert fsb.is_empty
        fsb.drain(entry())
        assert not fsb.is_empty
        fsb.pop()
        assert fsb.is_empty
        assert fsb.head == fsb.tail

    def test_fifo_order(self):
        fsb = FaultingStoreBuffer(8)
        for i in range(5):
            fsb.drain(entry(addr=0x1000 + i, seq=i))
        assert [fsb.pop().seq for _ in range(5)] == [0, 1, 2, 3, 4]

    def test_wraps_around(self):
        fsb = FaultingStoreBuffer(4)
        for round_ in range(3):
            for i in range(4):
                fsb.drain(entry(seq=round_ * 4 + i))
            for i in range(4):
                assert fsb.pop().seq == round_ * 4 + i

    def test_overflow_raises(self):
        fsb = FaultingStoreBuffer(2)
        fsb.drain(entry())
        fsb.drain(entry())
        with pytest.raises(FsbOverflowError):
            fsb.drain(entry())

    def test_read_head_does_not_consume(self):
        fsb = FaultingStoreBuffer(4)
        fsb.drain(entry(seq=9))
        assert fsb.read_head().seq == 9
        assert fsb.read_head().seq == 9
        assert fsb.occupancy == 1

    def test_pop_empty_returns_none(self):
        assert FaultingStoreBuffer(4).pop() is None

    def test_snapshot_preserves_order_and_content(self):
        fsb = FaultingStoreBuffer(8)
        for i in range(3):
            fsb.drain(entry(seq=i))
        snap = fsb.snapshot()
        assert [e.seq for e in snap] == [0, 1, 2]
        assert fsb.occupancy == 3  # not consumed

    def test_footprint_is_entries_times_16B(self):
        fsb = FaultingStoreBuffer(32)
        assert fsb.footprint_bytes == 32 * 16

    def test_peak_occupancy_tracked(self):
        fsb = FaultingStoreBuffer(8)
        for i in range(6):
            fsb.drain(entry(seq=i))
        for _ in range(6):
            fsb.pop()
        assert fsb.peak_occupancy == 6

    def test_non_faulting_entry(self):
        e = entry(code=ExceptionCode.NONE)
        assert not e.is_faulting
        assert entry().is_faulting


class TestFsbRegisterWraparound:
    """head/tail are fixed-width system registers: the ring must stay
    correct when the counters themselves wrap modulo 2**reg_bits, far
    past mere slot-index wraparound."""

    def test_register_width_must_exceed_capacity(self):
        with pytest.raises(ValueError, match="reg_bits"):
            FaultingStoreBuffer(capacity=16, reg_bits=4)
        FaultingStoreBuffer(capacity=16, reg_bits=5)  # ok

    def test_counters_stay_within_register_width(self):
        fsb = FaultingStoreBuffer(capacity=4, reg_bits=4)
        for i in range(100):
            fsb.drain(entry(seq=i))
            fsb.pop()
        assert 0 <= fsb.head < 16
        assert 0 <= fsb.tail < 16
        assert fsb.total_drained == fsb.total_read == 100

    def test_fifo_survives_many_counter_wraps(self):
        fsb = FaultingStoreBuffer(capacity=8, reg_bits=5)
        seq = 0
        for _ in range(50):  # 400 entries through a 32-count register
            for _ in range(8):
                fsb.drain(entry(seq=seq))
                seq += 1
            assert fsb.is_full
            expect = list(range(seq - 8, seq))
            assert [fsb.pop().seq for _ in range(8)] == expect
            assert fsb.is_empty

    def test_occupancy_across_register_wrap(self):
        fsb = FaultingStoreBuffer(capacity=4, reg_bits=3)
        # Park head/tail right below the register wrap point.
        for i in range(6):
            fsb.drain(entry(seq=i))
            fsb.pop()
        assert fsb.head == fsb.tail == 6
        for i in range(4):
            fsb.drain(entry(seq=10 + i))
        assert fsb.tail == (6 + 4) % 8 == 2  # tail wrapped past head
        assert fsb.occupancy == 4
        assert fsb.is_full and not fsb.is_empty

    def test_snapshot_and_pop_across_register_wrap(self):
        fsb = FaultingStoreBuffer(capacity=4, reg_bits=3)
        for i in range(7):
            fsb.drain(entry(seq=i))
            fsb.pop()
        for i in range(3):
            fsb.drain(entry(seq=100 + i))
        assert [e.seq for e in fsb.snapshot()] == [100, 101, 102]
        assert [fsb.pop().seq for _ in range(3)] == [100, 101, 102]
        assert fsb.pop() is None

    def test_overflow_still_detected_after_wraps(self):
        fsb = FaultingStoreBuffer(capacity=2, reg_bits=2)
        for i in range(9):
            fsb.drain(entry(seq=i))
            fsb.pop()
        fsb.drain(entry())
        fsb.drain(entry())
        with pytest.raises(FsbOverflowError):
            fsb.drain(entry())

    def test_os_write_head_across_register_wrap(self):
        fsb = FaultingStoreBuffer(capacity=4, reg_bits=3)
        ctl = FsbController(0, fsb)
        for i in range(7):
            ctl.drain_store(0x10 + i, i)
            fsb.pop()
        ctl.drain_store(0x80, 1)
        ctl.drain_store(0x81, 2)
        assert fsb.head == 7 and fsb.tail == 1  # tail wrapped
        ctl.os_write_head(0)  # consume one entry across the wrap
        assert fsb.read_head().addr == 0x81
        with pytest.raises(ValueError, match="outside"):
            ctl.os_write_head(2)  # past the tail


class TestFsbController:
    def test_registers_reflect_ring(self):
        fsb = FaultingStoreBuffer(16, base=0xABC000)
        ctl = FsbController(0, fsb)
        assert ctl.reg_base == 0xABC000
        assert ctl.reg_mask == 15
        assert ctl.reg_head == 0 and ctl.reg_tail == 0

    def test_drain_increments_tail_and_returns_latency(self):
        ctl = FsbController(0, FaultingStoreBuffer(8),
                            drain_cycles_per_entry=4)
        latency = ctl.drain_store(0x10, 1)
        assert latency == 4
        assert ctl.reg_tail == 1

    def test_drain_all_in_order(self):
        ctl = FsbController(0, FaultingStoreBuffer(8))
        total = ctl.drain_all([
            (0x10, 1, 0xFF, ExceptionCode.EINJECT_BUS_ERROR),
            (0x20, 2, 0xFF, ExceptionCode.NONE),
        ])
        assert total == 2 * ctl.drain_cycles_per_entry
        snap = ctl.fsb.snapshot()
        assert [e.addr for e in snap] == [0x10, 0x20]
        assert [e.seq for e in snap] == [0, 1]

    def test_os_write_head_consumes(self):
        ctl = FsbController(0, FaultingStoreBuffer(8))
        ctl.drain_store(0x10, 1)
        ctl.drain_store(0x20, 2)
        ctl.os_write_head(1)
        assert ctl.reg_head == 1
        assert ctl.fsb.read_head().addr == 0x20

    def test_os_write_head_rejects_overrun(self):
        ctl = FsbController(0, FaultingStoreBuffer(8))
        ctl.drain_store(0x10, 1)
        with pytest.raises(ValueError, match="outside"):
            ctl.os_write_head(5)

    def test_exception_counts_faulting_entries_only(self):
        ctl = FsbController(3, FaultingStoreBuffer(8))
        ctl.drain_store(0x10, 1, error_code=ExceptionCode.EINJECT_BUS_ERROR)
        ctl.drain_store(0x20, 2, error_code=ExceptionCode.NONE)
        exc = ctl.raise_exception(pinned_pc=0x400)
        assert exc.core == 3
        assert exc.pinned_pc == 0x400
        assert exc.fault_count == 1
        assert exc.code == ExceptionCode.IMPRECISE_STORE

    def test_prototype_cost_constants(self):
        # §6.1: 354 LUTs / 763 registers, 0.12% / 0.48% of the core.
        assert FsbController.PROTOTYPE_LUTS == 354
        assert FsbController.PROTOTYPE_REGISTERS == 763
        assert FsbController.PROTOTYPE_LUT_FRACTION < 0.01
