"""Cross-module integration tests: the full software stack wired the
way a user would wire it."""

import pytest

from repro.core.exceptions import ExceptionCode
from repro.core.handler import BatchingHandler, MinimalHandler
from repro.core.interface import ArchitecturalInterface
from repro.core.osconfig import OsConfig
from repro.sim import isa
from repro.sim.config import ConsistencyModel, small_config, table2_config
from repro.sim.devices.einject import EInject, PAGE_SIZE
from repro.sim.devices.faultsource import (
    CompositeFaultSource,
    MidgardLateTranslation,
    TakoAccelerator,
)
from repro.sim.multicore import MulticoreSystem
from repro.sim.os.kernel import Kernel
from repro.sim.program import make_program
from repro.sim.timing import run_trace
from repro.sim.trace import TraceOp
from repro.sim.vm.pagetable import PageTable
from repro.workloads import build_workload


class TestKernelWithInterface:
    """Kernel + ArchitecturalInterface + EInject as a software stack."""

    def test_full_trap_flow(self):
        einject = EInject()
        einject.mmio_set(0x4000)
        kernel = Kernel(cores=1)
        iface = ArchitecturalInterface(0)
        kernel.pin_fsb(0, iface)

        # Hardware side: a store to the poisoned page is denied and
        # drained into the FSB with its error code.
        iface.put(0x4008, 99, error_code=ExceptionCode.EINJECT_BUS_ERROR)
        applied = {}

        def resolve(entry):
            einject.mmio_clr(entry.addr)
            return kernel.config.resolve_fault_cycles

        def apply(entry):
            applied[entry.addr] = entry.data

        invocation = kernel.imprecise_store_trap(0, iface, resolve, apply)
        assert invocation.stores_handled == 1
        assert applied == {0x4008: 99}
        assert not einject.is_faulting(0x4008)
        assert kernel.imprecise_traps == 1
        assert kernel.ie[0].in_user_mode

    def test_batching_kernel_on_many_faults(self):
        kernel = Kernel(cores=1, batching=True)
        iface = ArchitecturalInterface(0)
        for i in range(8):
            iface.put(0x8000 + i * 8, i,
                      error_code=ExceptionCode.EINJECT_BUS_ERROR)
        invocation = kernel.imprecise_store_trap(
            0, iface, resolve=lambda e: 500, apply=lambda e: None)
        assert invocation.stores_handled == 8
        # One page -> one resolution despite 8 faulting stores.
        assert invocation.costs.os_resolve < 8 * 500


class TestTimingWithFullStack:
    def test_workload_with_composite_sources(self):
        """A workload whose memory is covered by two different fault
        generators at once (accelerator + demand paging)."""
        workload = build_workload("Masstree", cores=1, scale=0.3,
                                  inject=True)
        pages = workload.injectable_pages()
        assert len(pages) >= 2
        half = len(pages) // 2

        einject = EInject()
        for page in pages[:half]:
            einject.mmio_set(page)
        pt = PageTable()
        for page in pages[half:]:
            pt.map_page(page, present=False)
        midgard = MidgardLateTranslation(pt)
        combo = CompositeFaultSource(einject, midgard)

        cfg = table2_config().with_consistency(ConsistencyModel.WC)
        result = run_trace(cfg, workload.traces, einject=combo,
                           handler=BatchingHandler(cfg.os))
        total_exc = (result.total_imprecise_exceptions
                     + sum(s.precise_exceptions
                           for s in result.core_stats))
        assert total_exc >= 1
        # Every fault got resolved: a second identical run over the
        # now-clean sources sees no denials.
        result2 = run_trace(cfg, workload.traces, einject=combo)
        assert result2.total_imprecise_exceptions == 0


class TestFunctionalEndToEnd:
    def test_produce_consume_queue_with_faults(self):
        """A lock-free-style producer/consumer over a poisoned page:
        values must arrive intact and in order despite imprecise
        exceptions on every queue cell."""
        QUEUE, HEAD = 0x10000, 0x20000
        n = 4
        producer = []
        for i in range(n):
            producer.append(isa.store(QUEUE + i * 8, value=10 + i))
            producer.append(isa.store(HEAD, value=i + 1))
        consumer = []
        for i in range(n):
            consumer.append(isa.load(1 + i, QUEUE + i * 8,
                                     label=f"q{i}"))
        program = make_program([producer, consumer])
        final = {}
        for seed in range(40):
            system = MulticoreSystem(
                program, small_config(2, ConsistencyModel.PC), seed=seed)
            system.inject_faults([QUEUE, HEAD])
            result = system.run()
            for i in range(n):
                final[QUEUE + i * 8] = result.memory_value(QUEUE + i * 8)
            assert result.contract_report.ok
        assert final == {QUEUE + i * 8: 10 + i for i in range(n)}

    def test_tako_poison_kills_only_offender(self):
        """An irrecoverable accelerator fault terminates the core that
        hit it; the other core finishes normally."""
        MANAGED = 0x100000
        tako = TakoAccelerator(MANAGED, 0x10000,
                               poison_pages={MANAGED >> 12})
        t0 = [isa.store(MANAGED, value=1)]           # will be killed
        t1 = [isa.store(0x5000, value=7),
              isa.load(1, 0x5000, label="ok")]
        system = MulticoreSystem(make_program([t0, t1]),
                                 small_config(2), fault_source=tako)
        result = system.run()
        assert system.terminated
        assert result.observations["ok"] == 7
        assert result.memory_value(MANAGED) == 0


class TestScaleVariants:
    @pytest.mark.parametrize("cores", [1, 2, 4, 8, 16])
    def test_timing_engine_scales_to_table2_cores(self, cores):
        cfg = table2_config().with_consistency(ConsistencyModel.WC)
        traces = [[TraceOp("S", 0x1000 * (i + 1)), TraceOp("A"),
                   TraceOp("L", 0x1000 * (i + 1))] * 50
                  for i in range(cores)]
        result = run_trace(cfg, traces)
        assert len(result.core_stats) == cores
        assert result.total_instructions == cores * 150

    def test_functional_engine_four_core_program(self):
        threads = []
        for core in range(4):
            threads.append([isa.store(0x1000 + core * 0x1000, value=core),
                            isa.load(1, 0x1000 + ((core + 1) % 4) * 0x1000,
                                     label=f"c{core}")])
        system = MulticoreSystem(make_program(threads),
                                 small_config(4, ConsistencyModel.PC),
                                 seed=3)
        result = system.run()
        assert len(result.observations) == 4
