"""Smoke tests: every shipped example runs clean end to end."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parents[1] / "examples"


def run_example(name, *args, timeout=300):
    return subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True, text=True, timeout=timeout)


class TestExamples:
    def test_quickstart(self):
        result = run_example("quickstart.py")
        assert result.returncode == 0, result.stderr
        assert "quickstart OK" in result.stdout
        assert "contract OK" in result.stdout

    def test_formal_model(self):
        result = run_example("formal_model.py")
        assert result.returncode == 0, result.stderr
        assert "formal model demo OK" in result.stdout
        assert "FAILS" not in result.stdout

    def test_litmus_campaign_quick(self):
        result = run_example("litmus_campaign.py", "--seeds", "5")
        assert result.returncode == 0, result.stderr
        assert "litmus suite [OK]" in result.stdout

    def test_midgard_scenario(self):
        result = run_example("midgard_scenario.py")
        assert result.returncode == 0, result.stderr
        assert "PC guarantee held" in result.stdout

    def test_exploration(self):
        result = run_example("exploration.py")
        assert result.returncode == 0, result.stderr
        assert "exploration demo OK" in result.stdout
        assert "MISMATCH" not in result.stdout
        assert "DETECT+PUT" in result.stdout

    def test_accelerator_faults_small(self):
        result = run_example("accelerator_faults.py", "--kernel", "SSSP",
                             "--trials", "2")
        assert result.returncode == 0, result.stderr
        assert "imprecise handling keeps" in result.stdout
