"""Tests for the trace-driven timing engine and OS models."""

import random

import pytest

from repro.core.handler import BatchingHandler, MinimalHandler
from repro.core.osconfig import OsConfig
from repro.sim.config import ConsistencyModel, table2_config
from repro.sim.devices.einject import EInject, PAGE_SIZE
from repro.sim.os.kernel import Kernel
from repro.sim.os.pagefault import (
    DEMAND_PAGING_CYCLES,
    LAZY_ALLOC_CYCLES,
    resolve_batch,
    resolve_one,
)
from repro.sim.timing import TimingSystem, run_trace
from repro.sim.trace import InstructionMix, TraceOp, measure_mix, validate_trace
from repro.sim.vm.pagetable import FaultType, PageTable
from repro.core.interface import ArchitecturalInterface
from repro.core.exceptions import ExceptionCode


def make_trace(n, store_frac=0.1, load_frac=0.3, seed=0,
               hot_bytes=1 << 15, cold_bytes=1 << 22, hot_frac=0.9,
               base=0):
    rng = random.Random(seed)
    ops = []
    for _ in range(n):
        r = rng.random()
        if rng.random() < hot_frac:
            addr = base + (rng.randrange(hot_bytes) & ~7)
        else:
            addr = base + hot_bytes + (rng.randrange(cold_bytes) & ~7)
        if r < store_frac:
            ops.append(TraceOp("S", addr))
        elif r < store_frac + load_frac:
            ops.append(TraceOp("L", addr, dep=rng.random() < 0.3))
        else:
            ops.append(TraceOp("A"))
    return ops


def cfg_with(model, cores=2):
    cfg = table2_config()
    cfg.cores = cores
    return cfg.with_consistency(model)


class TestTraceUtilities:
    def test_measure_mix(self):
        trace = [TraceOp("S"), TraceOp("L"), TraceOp("L"), TraceOp("A")]
        mix = measure_mix(trace)
        assert mix.store == 0.25 and mix.load == 0.5 and mix.other == 0.25
        mix.validate()

    def test_empty_trace_mix(self):
        assert measure_mix([]).store == 0.0

    def test_validate_trace_rejects_bad_kind(self):
        with pytest.raises(ValueError, match="bad trace op"):
            validate_trace([TraceOp("X")])

    def test_mix_validation_rejects_bad_sum(self):
        with pytest.raises(ValueError):
            InstructionMix(0.5, 0.5, 0.5, 0.5).validate()


class TestTimingModes:
    def test_wc_not_slower_than_pc_not_slower_than_sc(self):
        traces = [make_trace(5000, store_frac=0.2, seed=i)
                  for i in range(2)]
        ipcs = {}
        for model in (ConsistencyModel.SC, ConsistencyModel.PC,
                      ConsistencyModel.WC):
            ipcs[model] = run_trace(cfg_with(model), traces).ipc
        assert ipcs["WC"] >= ipcs["PC"] >= ipcs["SC"]

    def test_store_heavy_gains_more_from_wc(self):
        heavy = [make_trace(5000, store_frac=0.25, seed=1)]
        light = [make_trace(5000, store_frac=0.03, load_frac=0.22, seed=2)]
        def speedup(traces):
            sc = run_trace(cfg_with(ConsistencyModel.SC, 1), traces).ipc
            wc = run_trace(cfg_with(ConsistencyModel.WC, 1), traces).ipc
            return wc / sc
        assert speedup(heavy) > speedup(light)

    def test_sync_heavy_trace_limits_wc(self):
        rng = random.Random(3)
        base = make_trace(3000, store_frac=0.2, seed=3)
        fenced = []
        for op in base:
            fenced.append(op)
            if rng.random() < 0.2:
                fenced.append(TraceOp("F"))
        wc_plain = run_trace(cfg_with(ConsistencyModel.WC, 1), [base]).ipc
        wc_fenced = run_trace(cfg_with(ConsistencyModel.WC, 1), [fenced]).ipc
        assert wc_fenced < wc_plain

    def test_alu_only_trace_hits_width(self):
        trace = [TraceOp("A")] * 4000
        res = run_trace(cfg_with(ConsistencyModel.WC, 1), [trace])
        assert res.ipc == pytest.approx(4.0, rel=0.05)

    def test_results_deterministic(self):
        traces = [make_trace(2000, seed=7)]
        a = run_trace(cfg_with(ConsistencyModel.WC, 1), traces)
        b = run_trace(cfg_with(ConsistencyModel.WC, 1), traces)
        assert a.total_cycles == b.total_cycles

    def test_too_many_traces_rejected(self):
        with pytest.raises(ValueError, match="traces"):
            run_trace(cfg_with(ConsistencyModel.WC, 1),
                      [[TraceOp("A")], [TraceOp("A")]])


class TestSpeculationState:
    def test_tracked_only_when_requested(self):
        traces = [make_trace(2000, seed=5)]
        res = run_trace(cfg_with(ConsistencyModel.WC, 1), traces)
        assert res.speculation is None
        res2 = run_trace(cfg_with(ConsistencyModel.WC, 1), traces,
                         track_speculation=True)
        assert res2.speculation is not None

    def test_skew_increases_state(self):
        """Table 3: 4× store-to-load skew inflates the requirement;
        2× overall memory latency does not (Little's law)."""
        traces = [make_trace(8000, store_frac=0.11, load_frac=0.22, seed=6)]
        base_cfg = cfg_with(ConsistencyModel.WC, 1)
        base = run_trace(base_cfg, traces, track_speculation=True)
        skew = run_trace(base_cfg.with_store_load_skew(4), traces,
                         track_speculation=True)
        mem2 = run_trace(base_cfg.with_memory_latency_scale(2), traces,
                         track_speculation=True)
        assert skew.speculation_peak_kb() > base.speculation_peak_kb()
        growth_mem = mem2.speculation_peak_kb() / base.speculation_peak_kb()
        growth_skew = skew.speculation_peak_kb() / base.speculation_peak_kb()
        assert growth_skew > growth_mem


class TestTimingFaults:
    def _run(self, handler=None, pages=4, n=4000, store_frac=0.15):
        einject = EInject()
        base = 1 << 20
        for p in range(pages):
            einject.mmio_set(base + p * PAGE_SIZE)
        traces = [make_trace(n, store_frac=store_frac, seed=9, base=base)]
        cfg = cfg_with(ConsistencyModel.WC, 1)
        return run_trace(cfg, traces, einject=einject, handler=handler)

    def test_faults_handled_and_counted(self):
        res = self._run()
        assert res.total_imprecise_exceptions >= 1
        assert res.total_faulting_stores >= 1

    def test_fault_free_run_has_no_exception_cycles(self):
        traces = [make_trace(2000, seed=11)]
        res = run_trace(cfg_with(ConsistencyModel.WC, 1), traces)
        assert res.total_imprecise_exceptions == 0
        assert res.core_stats[0].exception_cycles == 0

    def test_injection_slows_execution(self):
        einject = EInject()
        base = 1 << 20
        for p in range(16):
            einject.mmio_set(base + p * PAGE_SIZE)
        traces = [make_trace(4000, store_frac=0.15, seed=9, base=base)]
        cfg = cfg_with(ConsistencyModel.WC, 1)
        clean = run_trace(cfg, traces)
        faulty = run_trace(cfg, traces, einject=einject)
        assert faulty.total_cycles > clean.total_cycles

    def test_breakdown_dominated_by_os(self):
        """Figure 5: the microarchitectural part is a tiny fraction."""
        res = self._run()
        br = res.overhead_breakdown_per_fault()
        total = sum(br.values())
        assert br["uarch"] / total < 0.35
        assert br["os_other"] > br["uarch"]

    def test_batching_handler_reduces_overhead(self):
        minimal = self._run(handler=MinimalHandler(OsConfig()), pages=16,
                            store_frac=0.3)
        batching = self._run(handler=BatchingHandler(OsConfig()), pages=16,
                             store_frac=0.3)
        per_min = (sum(s.exception_cycles for s in minimal.core_stats)
                   / max(1, minimal.total_faulting_stores))
        per_bat = (sum(s.exception_cycles for s in batching.core_stats)
                   / max(1, batching.total_faulting_stores))
        assert per_bat <= per_min

    def test_precise_faults_on_loads(self):
        einject = EInject()
        base = 1 << 20
        einject.mmio_set(base)
        traces = [[TraceOp("L", base + 8)] + [TraceOp("A")] * 10]
        res = run_trace(cfg_with(ConsistencyModel.WC, 1), traces,
                        einject=einject)
        assert res.core_stats[0].precise_exceptions == 1


class TestKernel:
    def _interface_with_faults(self, n=3):
        iface = ArchitecturalInterface(0)
        for i in range(n):
            iface.put(0x1000 + i * 8, i,
                      error_code=ExceptionCode.EINJECT_BUS_ERROR)
        return iface

    def test_imprecise_trap_logs_and_unmasks(self):
        kernel = Kernel(cores=1)
        iface = self._interface_with_faults()
        inv = kernel.imprecise_store_trap(
            0, iface, resolve=lambda e: 10, apply=lambda e: None)
        assert inv.stores_handled == 3
        assert kernel.imprecise_traps == 1
        assert kernel.ie[0].in_user_mode

    def test_precise_trap_cost(self):
        kernel = Kernel(cores=1, config=OsConfig())
        cost = kernel.precise_trap(0, resolve_cycles=60)
        cfg = OsConfig()
        assert cost == (cfg.trap_entry_cycles + cfg.dispatch_cycles + 60
                        + cfg.context_switch_cycles)
        assert kernel.precise_traps == 1

    def test_batching_flag_selects_handler(self):
        assert isinstance(Kernel(1, batching=True).handler, BatchingHandler)
        assert isinstance(Kernel(1).handler, MinimalHandler)

    def test_pin_fsb(self):
        kernel = Kernel(cores=2)
        iface = ArchitecturalInterface(0)
        kernel.pin_fsb(0, iface)
        assert kernel.fsb_is_pinned(0)
        assert not kernel.fsb_is_pinned(1)

    def test_guarded_kernel_sequence_contains_exceptions(self):
        kernel = Kernel(cores=1)
        iface = self._interface_with_faults(2)
        cycles = kernel.guarded_kernel_store_sequence(
            0, iface, resolve=lambda e: 5, apply=lambda e: None)
        assert cycles > 0
        assert iface.pending == 0
        # Nothing pending: the fence costs nothing.
        assert kernel.guarded_kernel_store_sequence(
            0, iface, resolve=lambda e: 5, apply=lambda e: None) == 0


class TestPageFaultModels:
    def test_lazy_vs_demand_costs(self):
        pt = PageTable()
        pt.map_page(0x1000, present=False)
        pt.map_page(0x2000, present=False, swapped=True)
        lazy = resolve_one(pt, 0x1000, FaultType.NOT_PRESENT_LAZY)
        demand = resolve_one(pt, 0x2000, FaultType.NOT_PRESENT_SWAPPED)
        assert lazy.cycles == LAZY_ALLOC_CYCLES
        assert demand.cycles == DEMAND_PAGING_CYCLES
        assert demand.cycles > 1000 * lazy.cycles

    def test_batch_overlaps_io(self):
        def faults():
            pt = PageTable()
            fs = []
            for i in range(4):
                vaddr = 0x10000 + i * 0x1000
                pt.map_page(vaddr, present=False, swapped=True)
                fs.append((vaddr, FaultType.NOT_PRESENT_SWAPPED))
            return pt, fs
        pt1, fs1 = faults()
        overlapped, ok1 = resolve_batch(pt1, fs1, overlap_io=True)
        pt2, fs2 = faults()
        serial, ok2 = resolve_batch(pt2, fs2, overlap_io=False)
        assert ok1 and ok2
        assert serial == 4 * DEMAND_PAGING_CYCLES
        assert overlapped < serial / 2

    def test_batch_dedups_pages(self):
        pt = PageTable()
        pt.map_page(0x5000, present=False)
        faults = [(0x5000 + i * 8, FaultType.NOT_PRESENT_LAZY)
                  for i in range(10)]
        cycles, ok = resolve_batch(pt, faults)
        assert ok
        assert cycles == LAZY_ALLOC_CYCLES  # one page, one fix-up

    def test_protection_not_recoverable(self):
        pt = PageTable()
        pt.map_page(0x1000, writable=False)
        cycles, ok = resolve_batch(
            pt, [(0x1000, FaultType.PROTECTION)])
        assert not ok
