"""Cross-layer telemetry integration: timing spans vs Figure 5,
subsystem counters vs their legacy stats, the campaign event bus, the
v5 report schema, and the profile/stats CLI pair."""

import json

import pytest

from repro import obs
from repro.litmus.campaign import AllowedSetCache, run_campaign
from repro.litmus.library import all_library_tests
from repro.litmus.runner import RunConfig
from repro.memmodel import get_model
from repro.workloads import run_microbenchmark


def _capture(fn, *args, **kwargs):
    """Run ``fn`` under a fresh buffered telemetry; returns
    (result, telemetry, records)."""
    sink = obs.MemorySink()
    tel = obs.Telemetry(sinks=[sink])
    with obs.use(tel):
        result = fn(*args, **kwargs)
    return result, tel, sink.records


# ----------------------------------------------------------------------
# Timing engine: per-fault phase spans == cycle accounting
# ----------------------------------------------------------------------
class TestTimingSpans:
    def test_figure5_breakdown_matches_cycle_accounting(self):
        res, tel, records = _capture(
            run_microbenchmark, faulting_page_fraction=0.1, stores=600)
        breakdown = obs.figure5_from_spans(
            records + list(tel.drain_records()))
        # Acceptance criterion: span-derived breakdown within one
        # cycle per phase of the timing engine's own accounting.
        assert breakdown["uarch"] == pytest.approx(
            res.uarch_per_fault, abs=1.0)
        assert breakdown["os_apply"] == pytest.approx(
            res.os_apply_per_fault, abs=1.0)
        assert breakdown["os_other"] == pytest.approx(
            res.os_other_per_fault, abs=1.0)

    def test_fault_span_sequence_per_exception(self):
        res, tel, records = _capture(
            run_microbenchmark, faulting_page_fraction=0.1, stores=600)
        spans = [r for r in records if r["type"] == "span"
                 and r["track"] == obs.SIM]
        names = {r["name"] for r in spans}
        assert {"fault.drain", "fault.flush", "fault.os_dispatch",
                "fault.os_resolve", "fault.os_apply"} <= names
        per_name = {}
        for r in spans:
            per_name[r["name"]] = per_name.get(r["name"], 0) + 1
        assert per_name["fault.drain"] == res.imprecise_exceptions
        assert per_name["fault.os_apply"] == res.imprecise_exceptions
        assert (tel.counter("timing.imprecise_exceptions").value
                == res.imprecise_exceptions)
        assert (tel.counter("timing.faulting_stores").value
                == res.faulting_stores)

    def test_fsb_instruments_populated(self):
        _, tel, _ = _capture(
            run_microbenchmark, faulting_page_fraction=0.1, stores=600)
        assert tel.counter("fsb.drains").value > 0
        assert tel.gauge("fsb.ring_occupancy").max > 0
        batches = tel.histogram("fsb.drain_batch")
        assert batches.count == tel.counter("fsb.activations").value

    def test_chrome_export_of_timing_run_is_valid(self):
        _, tel, records = _capture(
            run_microbenchmark, faulting_page_fraction=0.1, stores=600)
        payload = obs.chrome_trace_events(
            [r for r in records if r["type"] == "span"],
            [r for r in records if r["type"] == "event"],
            [r for r in records if r["type"] == "sample"])
        assert obs.validate_chrome_trace(payload) == []

    def test_disabled_telemetry_changes_nothing(self):
        enabled, _, _ = _capture(
            run_microbenchmark, faulting_page_fraction=0.1, stores=600)
        disabled = run_microbenchmark(faulting_page_fraction=0.1,
                                      stores=600)
        assert enabled.total_cycles == disabled.total_cycles
        assert enabled.imprecise_exceptions == \
            disabled.imprecise_exceptions


# ----------------------------------------------------------------------
# Enumerator / explorer counters mirror their stats objects
# ----------------------------------------------------------------------
class TestSearchCounters:
    def test_enumerator_counters_match_stats(self):
        from repro.litmus.library import message_passing
        from repro.memmodel.enumerator import enumerate_executions

        test = message_passing()
        threads, deps = test.to_events()
        result, tel, records = _capture(
            enumerate_executions, threads, get_model("PC"),
            extra_ppo=deps)
        stats = result.stats.as_dict()
        assert tel.counter("enum.calls").value == 1
        for key in ("rf_assignments", "candidates_examined",
                    "candidates_consistent"):
            assert tel.counter(f"enum.{key}").value == stats[key]
        span = [r for r in records if r["type"] == "span"
                and r["name"] == "enum.enumerate"]
        assert len(span) == 1
        assert span[0]["attrs"]["model"] == result.model_name
        assert tel.histogram("enum.wall_time_s").count == 1

    def test_explorer_counters_match_stats(self):
        from repro.explore import crosscheck_test
        from repro.litmus.library import store_buffering

        check, tel, records = _capture(
            crosscheck_test, store_buffering(), "PC")
        stats = check.stats
        assert tel.counter("explore.calls").value >= 1
        assert (tel.counter("explore.states_visited").value
                == stats.states_visited)
        assert (tel.counter("explore.interleavings").value
                == stats.interleavings)
        assert tel.gauge("explore.max_depth").max >= stats.max_depth
        assert any(r["type"] == "span" and r["name"] == "explore.run"
                   for r in records)


# ----------------------------------------------------------------------
# Campaign event bus + report schema v5
# ----------------------------------------------------------------------
def _suite():
    return all_library_tests()[:5]


def _events(records, name=None):
    return sorted(
        (r["name"], json.dumps(r["fields"], sort_keys=True))
        for r in records if r.get("type") == "event"
        and (name is None or r["name"] == name))


def _campaign(jobs, chunk_size=None, **cfg):
    sink = obs.MemorySink()
    tel = obs.Telemetry(sinks=[sink])
    with obs.use(tel):
        report = run_campaign(_suite(),
                              RunConfig(seeds=2, **cfg), jobs=jobs,
                              cache=AllowedSetCache(),
                              chunk_size=chunk_size)
    return report, sink.records


class TestCampaignEventBus:
    def test_parallel_event_stream_matches_serial(self):
        _, serial = _campaign(1, chunk_size=2)
        _, parallel = _campaign(3, chunk_size=2)
        assert _events(serial) == _events(parallel)

    def test_per_test_events_invariant_across_chunking(self):
        _, pinned = _campaign(1, chunk_size=2)
        _, default = _campaign(2)
        assert (_events(pinned, "campaign.test")
                == _events(default, "campaign.test"))

    def test_test_event_payloads_are_deterministic_fields_only(self):
        _, records = _campaign(1, chunk_size=2)
        events = [r for r in records if r["type"] == "event"
                  and r["name"] == "campaign.test"]
        assert len(events) == len(_suite())
        for event in events:
            fields = event["fields"]
            assert set(fields) == {"index", "test", "ok", "outcomes",
                                   "imprecise", "precise", "cached"}

    def test_worker_spans_merge_on_own_lanes(self):
        _, records = _campaign(2, chunk_size=2)
        lanes = {r["lane"] for r in records
                 if r["type"] == "span" and r["name"] == "campaign.test"}
        assert lanes == {1, 3, 5}   # one wall lane per chunk
        payload = obs.chrome_trace_events(
            [r for r in records if r["type"] == "span"])
        assert obs.validate_chrome_trace(payload) == []

    def test_report_telemetry_block(self):
        report, _ = _campaign(1, chunk_size=2)
        assert report.telemetry is not None
        assert report.telemetry["enabled"] is True
        counters = report.telemetry["metrics"]["counters"]
        assert counters["campaign.tests"] == len(_suite())
        # Worker enumerator metrics merged into the parent registry.
        assert counters["enum.calls"] == len(_suite())

    def test_no_telemetry_means_no_block(self):
        report = run_campaign(_suite(), RunConfig(seeds=2),
                              cache=AllowedSetCache())
        assert report.telemetry is None


class TestReportSchemaV7:
    def test_roundtrip_with_telemetry(self, tmp_path):
        from repro.analysis.postprocess import (
            CAMPAIGN_REPORT_SCHEMA, read_campaign_report,
            write_campaign_report)

        report, _ = _campaign(1, chunk_size=2)
        path = tmp_path / "report.json"
        payload = write_campaign_report(path, report)
        assert payload["schema"] == CAMPAIGN_REPORT_SCHEMA
        assert payload["schema"].endswith("/v8")
        loaded = read_campaign_report(path)
        assert loaded["telemetry"]["metrics"]["counters"][
            "campaign.tests"] == len(_suite())

    def test_older_schemas_still_readable(self, tmp_path):
        from repro.analysis.postprocess import read_campaign_report

        for version in ("v1", "v2", "v3", "v4", "v5", "v6", "v7"):
            path = tmp_path / f"{version}.json"
            path.write_text(json.dumps(
                {"schema": f"repro.litmus.campaign-report/{version}",
                 "tests": 0}))
            assert read_campaign_report(path)["tests"] == 0
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"schema": "other/v1"}))
        with pytest.raises(ValueError):
            read_campaign_report(bad)


class TestTotalsThinViews:
    """The legacy totals accessors must keep their exact dict layout
    now that they project out of the metrics registry."""

    @pytest.fixture(scope="class")
    def report(self):
        return run_campaign(_suite()[:3],
                            RunConfig(seeds=2, explore="dpor",
                                      prefilter=True),
                            cache=AllowedSetCache())

    def test_enumerator_totals_match_direct_sum(self, report):
        expected = {
            "tests_enumerated": 0, "tests_cached": 0,
            "rf_assignments": 0, "rf_partial_prunes": 0,
            "addr_co_prunes": 0, "known_outcome_skips": 0,
            "candidates_examined": 0, "candidates_consistent": 0,
            "relation_cache_hits": 0, "wall_time_s": 0.0,
        }
        for v in report.verdicts:
            if v.enum_stats is None:
                expected["tests_cached"] += 1
                continue
            expected["tests_enumerated"] += 1
            for key, value in v.enum_stats.items():
                if key in expected and key != "tests_enumerated":
                    expected[key] += value
        expected["wall_time_s"] = round(expected["wall_time_s"], 6)
        assert report.enumerator_totals() == expected

    def test_explorer_totals_match_direct_sum(self, report):
        expected = {
            "tests_explored": 0, "tests_skipped": 0, "mismatches": 0,
            "states_visited": 0, "transitions_executed": 0,
            "interleavings": 0, "sleep_set_blocks": 0,
            "races_detected": 0, "wall_time_s": 0.0,
        }
        for v in report.verdicts:
            if v.explore_check is None:
                expected["tests_skipped"] += 1
                continue
            expected["tests_explored"] += 1
            if not v.explore_check["ok"]:
                expected["mismatches"] += 1
            for key, value in v.explore_check["stats"].items():
                if key in expected:
                    expected[key] += value
        expected["wall_time_s"] = round(expected["wall_time_s"], 6)
        assert report.explorer_totals() == expected

    def test_static_totals_match_direct_sum(self, report):
        expected = {
            "tests_classified": 0, "tests_skipped": 0,
            "sc_equivalent": 0, "relaxable": 0, "unknown": 0,
            "short_circuited": 0, "wall_time_s": 0.0,
        }
        for v in report.verdicts:
            if v.static_check is None:
                expected["tests_skipped"] += 1
                continue
            expected["tests_classified"] += 1
            key = str(v.static_check.get("verdict", "")).replace(
                "-", "_")
            if key in expected:
                expected[key] += 1
            if v.static_check.get("short_circuited"):
                expected["short_circuited"] += 1
            expected["wall_time_s"] += v.static_check.get(
                "wall_time_s", 0.0)
        expected["wall_time_s"] = round(expected["wall_time_s"], 6)
        assert report.static_totals() == expected

    def test_counts_are_ints(self, report):
        for totals in (report.enumerator_totals(),
                       report.explorer_totals(),
                       report.static_totals()):
            for key, value in totals.items():
                if key != "wall_time_s":
                    assert isinstance(value, int), (key, value)

    def test_registry_namespaces(self, report):
        reg = report.metrics_registry()
        assert reg.namespace("enum")  # non-empty projections
        assert reg.namespace("explore")
        assert reg.namespace("static")


# ----------------------------------------------------------------------
# CLI: repro profile / repro stats
# ----------------------------------------------------------------------
class TestProfileCli:
    def test_profile_mbench_writes_stream_and_trace(self, tmp_path,
                                                    capsys):
        from repro.cli import main

        jsonl = tmp_path / "t.jsonl"
        chrome = tmp_path / "t.json"
        code = main(["profile", "--quiet", "--jsonl", str(jsonl),
                     "--chrome", str(chrome), "mbench",
                     "--stores", "400", "--fault-fraction", "0.1"])
        assert code == 0
        out = capsys.readouterr().out
        assert "telemetry stream written" in out
        assert "chrome trace written" in out
        records = obs.read_jsonl(jsonl)
        assert any(r.get("name") == "fault.drain" for r in records)
        assert records[-1]["type"] == "summary"
        obs.assert_valid_chrome_trace(json.loads(chrome.read_text()))

    def test_profile_requires_a_command(self):
        from repro.cli import main

        with pytest.raises(SystemExit):
            main(["profile", "--quiet"])
        with pytest.raises(SystemExit):
            main(["profile", "profile", "mbench"])

    def test_profile_restores_ambient_telemetry(self, tmp_path):
        from repro.cli import main

        main(["profile", "--quiet", "mbench", "--stores", "300"])
        assert obs.current() is obs.NULL

    def test_stats_on_telemetry_stream(self, tmp_path, capsys):
        from repro.cli import main

        jsonl = tmp_path / "t.jsonl"
        main(["profile", "--quiet", "--jsonl", str(jsonl), "mbench",
              "--stores", "400", "--fault-fraction", "0.1"])
        capsys.readouterr()
        assert main(["stats", str(jsonl)]) == 0
        out = capsys.readouterr().out
        assert "fault.drain" in out
        assert "figure5 per-fault breakdown" in out

    def test_stats_on_campaign_report(self, tmp_path, capsys):
        from repro.analysis.postprocess import write_campaign_report
        from repro.cli import main

        report, _ = _campaign(1, chunk_size=2)
        path = tmp_path / "report.json"
        write_campaign_report(path, report)
        assert main(["stats", str(path)]) == 0
        out = capsys.readouterr().out
        assert "campaign report" in out
        assert "telemetry: enabled=True" in out
