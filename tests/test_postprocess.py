"""Tests for the artifact-style log post-processing."""

import json

import pytest

from repro.analysis.figure6 import Figure6Row
from repro.analysis.postprocess import (
    NEGATIVE_DIFF_PREFIX,
    analyse_mbench_log,
    analyse_workload_logs,
    compare_litmus_logs,
    litmus_verdict,
    read_litmus_log,
    write_litmus_log,
    write_mbench_log,
    write_workload_log,
)
from repro.litmus import RunConfig, allowed_set, load_litmus_directory, run_test
from repro.memmodel import PC
from repro.sim.config import ConsistencyModel


class TestLitmusLogs:
    def _outcome(self, **kv):
        return tuple(sorted(kv.items()))

    def test_roundtrip(self, tmp_path):
        path = tmp_path / "hw.log"
        results = {"MP": {self._outcome(r0=0, r1=0),
                          self._outcome(r0=1, r1=1)}}
        write_litmus_log(path, results)
        back = read_litmus_log(path)
        assert back == results

    def test_compare_clean(self, tmp_path):
        hw = tmp_path / "hw.log"
        model = tmp_path / "model.log"
        write_litmus_log(hw, {"T": {self._outcome(r0=0)}})
        write_litmus_log(model, {"T": {self._outcome(r0=0),
                                       self._outcome(r0=1)}})
        lines = compare_litmus_logs(hw, model)
        assert litmus_verdict(lines) == "OK"
        assert "1 allowed-but-unseen" in lines[0]

    def test_compare_negative_difference(self, tmp_path):
        hw = tmp_path / "hw.log"
        model = tmp_path / "model.log"
        write_litmus_log(hw, {"T": {self._outcome(r0=7)}})
        write_litmus_log(model, {"T": {self._outcome(r0=0)}})
        lines = compare_litmus_logs(hw, model)
        assert lines[0].startswith(NEGATIVE_DIFF_PREFIX)
        assert litmus_verdict(lines).startswith("FAIL")

    def test_missing_test_reported(self, tmp_path):
        hw = tmp_path / "hw.log"
        model = tmp_path / "model.log"
        write_litmus_log(hw, {"T": set()})
        write_litmus_log(model, {})
        assert "missing from model" in compare_litmus_logs(hw, model)[0]

    def test_model_only_test_is_a_coverage_failure(self, tmp_path):
        """Tests in the model log but absent from the hardware log
        must not vanish — the paper's criterion quantifies over all
        tests, so they count as failures."""
        from repro.analysis.postprocess import MISSING_FROM_HARDWARE_PREFIX
        hw = tmp_path / "hw.log"
        model = tmp_path / "model.log"
        write_litmus_log(hw, {"A": {self._outcome(r0=0)}})
        write_litmus_log(model, {"A": {self._outcome(r0=0)},
                                 "B": {self._outcome(r0=0)},
                                 "C": {self._outcome(r0=0)}})
        lines = compare_litmus_logs(hw, model)
        missing = [ln for ln in lines
                   if ln.startswith(MISSING_FROM_HARDWARE_PREFIX)]
        assert len(missing) == 2
        assert any("B" in ln for ln in missing)
        assert any("C" in ln for ln in missing)
        assert litmus_verdict(lines) == "FAIL (2 tests)"

    def test_mixed_negative_and_missing_counted_together(self, tmp_path):
        hw = tmp_path / "hw.log"
        model = tmp_path / "model.log"
        write_litmus_log(hw, {"A": {self._outcome(r0=7)}})
        write_litmus_log(model, {"A": {self._outcome(r0=0)},
                                 "B": {self._outcome(r0=0)}})
        assert litmus_verdict(compare_litmus_logs(hw, model)) == \
            "FAIL (2 tests)"

    def test_end_to_end_with_shipped_files(self, tmp_path):
        """The full artifact workflow: run the shipped .litmus files,
        write hardware + model logs, post-process, expect OK."""
        tests = load_litmus_directory("litmus_files")[:4]
        config = RunConfig(model=ConsistencyModel.PC, seeds=15,
                           inject_faults=True)
        hardware = {}
        model = {}
        for test in tests:
            run = run_test(test, config)
            hardware[test.name] = run.outcomes
            model[test.name] = allowed_set(test, PC)
        hw_path = tmp_path / "litmus.log"
        model_path = tmp_path / "herd.log"
        write_litmus_log(hw_path, hardware)
        write_litmus_log(model_path, model)
        lines = compare_litmus_logs(hw_path, model_path)
        assert litmus_verdict(lines) == "OK", "\n".join(lines)


class TestMbenchLogs:
    def test_roundtrip_and_analysis(self, tmp_path):
        rows = [
            {"fault_fraction": 0.05, "mode": "minimal", "uarch": 100.0,
             "os_apply": 50.0, "os_other": 400.0, "total": 550.0,
             "stores_per_exception": 1.2},
        ]
        path = tmp_path / "mbench.log"
        write_mbench_log(path, rows)
        data = analyse_mbench_log(path)
        assert data["0.05/minimal"]["total"] == 550.0


class TestWorkloadLogs:
    def _rows(self):
        return [Figure6Row("BFS", baseline_cycles=1000.0,
                           imprecise_cycles=1050.0,
                           imprecise_exceptions=4, faulting_stores=4,
                           precise_exceptions=10, work_items=100)]

    def test_roundtrip(self, tmp_path):
        path = tmp_path / "gap.log"
        write_workload_log(path, self._rows())
        analysed = analyse_workload_logs(path)
        assert analysed[0]["workload"] == "BFS"
        assert analysed[0]["relative"] == pytest.approx(1000 / 1050)

    def test_reference_log_overrides_baseline(self, tmp_path):
        run_path = tmp_path / "gap.log"
        ref_path = tmp_path / "gap-ref.log"
        write_workload_log(run_path, self._rows())
        ref = self._rows()
        ref[0].baseline_cycles = 900.0
        write_workload_log(ref_path, ref)
        analysed = analyse_workload_logs(run_path, ref_path)
        assert analysed[0]["relative"] == pytest.approx(900 / 1050)
