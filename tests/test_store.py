"""Tests for the content-addressed verdict store (``repro.store``):
record round-trips, content addressing, commutative index merges,
damage tolerance, legacy-cache import, and incremental replay."""

import json
import logging

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.litmus import (
    AllowedSetCache,
    RunConfig,
    all_library_tests,
    canonical_test_digest,
    check_test,
    run_campaign,
)
from repro.litmus.library import message_passing, store_buffering
from repro.store import (
    FINGERPRINT_CONFIG_FIELDS,
    INDEX_SCHEMA,
    RECORD_SCHEMA,
    VerdictRecord,
    VerdictStore,
    verdict_fingerprint,
)


def make_record(test=None, config=None):
    test = test or message_passing()
    config = config or RunConfig(seeds=3)
    verdict = check_test(test, config)
    digest = canonical_test_digest(test, "PC")
    fingerprint = verdict_fingerprint(digest, config)
    return VerdictRecord.from_verdict(verdict, config, fingerprint,
                                      digest), verdict


class TestFingerprint:
    def test_deterministic(self):
        cfg = RunConfig(seeds=3)
        assert verdict_fingerprint("d" * 64, cfg) == \
            verdict_fingerprint("d" * 64, cfg)

    def test_sensitive_to_verdict_relevant_config(self):
        base = verdict_fingerprint("d" * 64, RunConfig(seeds=3))
        assert verdict_fingerprint("e" * 64, RunConfig(seeds=3)) != base
        assert verdict_fingerprint(
            "d" * 64, RunConfig(seeds=4)) != base
        assert verdict_fingerprint(
            "d" * 64, RunConfig(seeds=3, model="WC")) != base
        assert verdict_fingerprint(
            "d" * 64, RunConfig(seeds=3, clean_pass=False)) != base
        assert verdict_fingerprint(
            "d" * 64, RunConfig(seeds=3, inject_faults=False)) != base

    def test_sensitive_to_test_name(self):
        # Structurally identical tests run name-derived seed
        # schedules, so the name is a verdict input.
        cfg = RunConfig(seeds=3)
        assert verdict_fingerprint("d" * 64, cfg, name="SB") != \
            verdict_fingerprint("d" * 64, cfg, name="SB-copy")

    def test_field_list_is_the_contract(self):
        # Every fingerprinted field must exist on RunConfig; a rename
        # there must update FINGERPRINT_CONFIG_FIELDS consciously.
        cfg = RunConfig()
        for field in FINGERPRINT_CONFIG_FIELDS:
            assert hasattr(cfg, field), field


class TestRecordRoundTrip:
    def test_dict_round_trip_bit_identical(self):
        record, _ = make_record()
        clone = VerdictRecord.from_dict(record.as_dict())
        assert clone.as_dict() == record.as_dict()
        assert clone.canonical_blob() == record.canonical_blob()
        assert clone.content_digest() == record.content_digest()

    def test_schema_stamped_and_enforced(self):
        record, _ = make_record()
        payload = record.as_dict()
        assert payload["schema"] == RECORD_SCHEMA
        payload["schema"] = "repro.store.verdict-record/v999"
        with pytest.raises(ValueError, match="v999"):
            VerdictRecord.from_dict(payload)

    def test_replay_preserves_verdict(self):
        test = store_buffering()
        record, verdict = make_record(test)
        replay = record.to_verdict(test)
        assert replay.ok == verdict.ok
        assert replay.run.outcomes == verdict.run.outcomes
        assert replay.clean_run.outcomes == verdict.clean_run.outcomes
        assert replay.conformance.allowed == verdict.conformance.allowed
        # Nothing was enumerated or statically classified on replay.
        assert replay.enum_stats is None
        assert replay.static_check is None

    def test_replay_flags_explorer_block(self):
        test = store_buffering()
        record, verdict = make_record(
            test, RunConfig(seeds=3, explore="verify"))
        replay = record.to_verdict(test)
        assert replay.ok == verdict.ok
        assert replay.explore_check["replayed"] is True


class TestContentAddressing:
    def test_same_record_same_blob(self, tmp_path):
        store = VerdictStore(tmp_path / "store")
        record, _ = make_record()
        blob_a = store.put(record)
        blob_b = store.put(VerdictRecord.from_dict(record.as_dict()))
        assert blob_a == blob_b
        blobs = list((tmp_path / "store" / "objects").glob("*/*.json"))
        assert len(blobs) == 1
        assert blobs[0].stem == blob_a

    def test_put_get_save_load_bit_identical(self, tmp_path):
        root = tmp_path / "store"
        store = VerdictStore(root)
        record, _ = make_record()
        store.put(record)
        store.save()
        reloaded = VerdictStore(root)
        back = reloaded.get(record.fingerprint)
        assert back is not None
        assert back.canonical_blob() == record.canonical_blob()
        assert reloaded.hits == 1 and reloaded.misses == 0

    def test_miss_counts(self, tmp_path):
        store = VerdictStore(tmp_path / "store")
        assert store.get("0" * 64) is None
        assert store.misses == 1
        assert store.peek("0" * 64) is None
        assert store.misses == 1  # peek never counts

    def test_allowed_granularity_served_by_verdicts(self, tmp_path):
        store = VerdictStore(tmp_path / "store")
        record, verdict = make_record()
        store.put(record)
        assert store.get_allowed(record.test_digest) == \
            verdict.conformance.allowed


class TestMergeCommutes:
    def _stores(self, tmp_path):
        root = tmp_path / "shared"
        a, b = VerdictStore(root), VerdictStore(root)
        tests = all_library_tests()
        record_a, _ = make_record(tests[0])
        record_b, _ = make_record(tests[1])
        return root, a, b, record_a, record_b

    def test_concurrent_writers_lose_nothing(self, tmp_path):
        root, a, b, record_a, record_b = self._stores(tmp_path)
        a.put(record_a)
        b.put(record_b)
        a.save()
        b.save()  # must not clobber a's entry
        final = VerdictStore(root)
        assert final.peek(record_a.fingerprint) is not None
        assert final.peek(record_b.fingerprint) is not None
        assert len(final) == 2

    def test_save_order_converges(self, tmp_path):
        # One fixed pair of records (wall times make re-derived
        # records distinct blobs), merged in both orders.
        tests = all_library_tests()
        record_a, _ = make_record(tests[0])
        record_b, _ = make_record(tests[1])
        results = []
        for order in ("ab", "ba"):
            root = tmp_path / order
            a, b = VerdictStore(root), VerdictStore(root)
            a.put(record_a)
            b.put(record_b)
            for who in order:
                (a if who == "a" else b).save()
            results.append(json.loads(
                (root / "index.json").read_text()))
        assert results[0] == results[1]

    def test_conflicting_blobs_resolve_commutatively(self, tmp_path):
        root = tmp_path / "shared"
        a, b = VerdictStore(root), VerdictStore(root)
        fingerprint = "f" * 64
        # Same key, different content: allowed-only records with the
        # fingerprint forced, giving two distinct blobs for one key.
        rec_a = VerdictRecord.allowed_only("d" * 64, {(("x", 1),)})
        rec_b = VerdictRecord.allowed_only("d" * 64, {(("x", 2),)})
        rec_a.fingerprint = rec_b.fingerprint = fingerprint
        a.put(rec_a)
        b.put(rec_b)
        winner = max(rec_a.content_digest(), rec_b.content_digest())
        a.save()
        b.save()
        first = json.loads((root / "index.json").read_text())
        assert first["verdicts"][fingerprint]["blob"] == winner
        # And in the opposite order in a fresh directory.
        root2 = tmp_path / "shared2"
        c, d = VerdictStore(root2), VerdictStore(root2)
        c.put(rec_a)
        d.put(rec_b)
        d.save()
        c.save()
        second = json.loads((root2 / "index.json").read_text())
        assert second["verdicts"][fingerprint]["blob"] == winner


class TestDamageTolerance:
    def test_corrupt_index_warns_and_starts_empty(self, tmp_path,
                                                  caplog):
        root = tmp_path / "store"
        root.mkdir()
        (root / "index.json").write_text("{not json")
        with caplog.at_level(logging.WARNING, logger="repro.store"):
            store = VerdictStore(root)
        assert len(store) == 0
        assert any("corrupt JSON" in r.message for r in caplog.records)

    def test_unknown_schema_warns_with_found_schema(self, tmp_path,
                                                    caplog):
        root = tmp_path / "store"
        root.mkdir()
        (root / "index.json").write_text(json.dumps(
            {"schema": "repro.store.index/v99", "verdicts": {}}))
        with caplog.at_level(logging.WARNING, logger="repro.store"):
            store = VerdictStore(root)
        assert len(store) == 0
        assert any("repro.store.index/v99" in r.message
                   for r in caplog.records)

    def test_orphaned_tmp_files_removed(self, tmp_path, caplog):
        root = tmp_path / "store"
        (root / "objects" / "ab").mkdir(parents=True)
        (root / "index.json.tmp").write_text("{")
        (root / "objects" / "ab" / "abcd.json.tmp").write_text("{")
        with caplog.at_level(logging.WARNING, logger="repro.store"):
            VerdictStore(root)
        assert not (root / "index.json.tmp").exists()
        assert not (root / "objects" / "ab" / "abcd.json.tmp").exists()
        assert sum("orphaned temp file" in r.message
                   for r in caplog.records) == 2

    def test_missing_blob_is_a_loud_miss(self, tmp_path, caplog):
        root = tmp_path / "store"
        store = VerdictStore(root)
        record, _ = make_record()
        store.put(record)
        store.save()
        for blob in (root / "objects").glob("*/*.json"):
            blob.unlink()
        reloaded = VerdictStore(root)
        with caplog.at_level(logging.WARNING, logger="repro.store"):
            assert reloaded.get(record.fingerprint) is None
        assert any("missing blob" in r.message for r in caplog.records)


class TestLegacyImport:
    def test_imports_allowed_cache(self, tmp_path):
        cache_path = tmp_path / "allowed.json"
        tests = all_library_tests()[:3]
        cache = AllowedSetCache(cache_path)
        run_campaign(tests, RunConfig(seeds=2, clean_pass=False),
                     cache=cache)
        store = VerdictStore(tmp_path / "store")
        assert store.import_allowed_cache(cache_path) == len(cache)
        for test in tests:
            digest = canonical_test_digest(test, "PC")
            assert store.get_allowed(digest) == cache.get(digest)

    def test_rejects_wrong_schema(self, tmp_path, caplog):
        bogus = tmp_path / "bogus.json"
        bogus.write_text(json.dumps({"schema": "nope/v1"}))
        store = VerdictStore(tmp_path / "store")
        with caplog.at_level(logging.WARNING, logger="repro.store"):
            assert store.import_allowed_cache(bogus) == 0
        assert any("nope/v1" in r.message for r in caplog.records)


class TestIncrementalCampaign:
    def test_noop_recampaign_is_all_store_hits(self, tmp_path):
        tests = all_library_tests()[:6]
        cfg = RunConfig(seeds=3)
        store = VerdictStore(tmp_path / "store")
        first = run_campaign(tests, cfg, store=store, incremental=True)
        assert first.store["misses"] == len(tests)
        # Fresh instance: replay must come from disk, not memory.
        second = run_campaign(tests, cfg,
                              store=VerdictStore(tmp_path / "store"),
                              incremental=True)
        assert second.store["hits"] == len(tests)
        assert second.store["misses"] == 0
        assert second.store["hit_rate"] == 1.0
        assert second.ok == first.ok
        for u, v in zip(first.verdicts, second.verdicts):
            assert u.run.outcomes == v.run.outcomes
            assert u.ok == v.ok
            assert v.enum_stats is None  # nothing enumerated on replay

    def test_config_change_invalidates(self, tmp_path):
        tests = all_library_tests()[:2]
        store_root = tmp_path / "store"
        # Fresh caches so the allowed-set fallback is really the
        # store's, not the process-wide memo's.
        run_campaign(tests, RunConfig(seeds=3),
                     cache=AllowedSetCache(),
                     store=VerdictStore(store_root), incremental=True)
        report = run_campaign(tests, RunConfig(seeds=4),
                              cache=AllowedSetCache(),
                              store=VerdictStore(store_root),
                              incremental=True)
        assert report.store["hits"] == 0
        assert report.store["misses"] == len(tests)
        # ... but the allowed sets still came from the store.
        assert report.store["allowed_served"] == len(tests)

    def test_without_incremental_store_only_records(self, tmp_path):
        tests = all_library_tests()[:2]
        store = VerdictStore(tmp_path / "store")
        run_campaign(tests, RunConfig(seeds=3), store=store)
        report = run_campaign(tests, RunConfig(seeds=3), store=store)
        assert report.store["hits"] == 0  # replay requires opt-in
        assert report.incremental is False


OUTCOME_SETS = st.sets(
    st.tuples(st.tuples(st.just("r0"), st.integers(0, 3)),
              st.tuples(st.just("r1"), st.integers(0, 3))),
    min_size=0, max_size=6)


class TestProperties:
    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    @given(allowed=OUTCOME_SETS)
    def test_allowed_round_trip(self, tmp_path, allowed):
        record = VerdictRecord.allowed_only("a" * 64, allowed)
        clone = VerdictRecord.from_dict(
            json.loads(record.canonical_blob()))
        assert set(clone.allowed) == set(allowed)
        assert clone.content_digest() == record.content_digest()

    @settings(max_examples=25, deadline=None)
    @given(allowed=OUTCOME_SETS)
    def test_content_digest_is_representation_independent(self, allowed):
        # Outcome order must not leak into the address.
        rec_a = VerdictRecord.allowed_only("a" * 64, set(allowed))
        rec_b = VerdictRecord.allowed_only(
            "a" * 64, set(reversed(sorted(allowed))))
        assert rec_a.content_digest() == rec_b.content_digest()


class TestIndexSchema:
    def test_saved_index_carries_schema(self, tmp_path):
        store = VerdictStore(tmp_path / "store")
        store.put_allowed("b" * 64, {(("x", 1),)})
        store.save()
        payload = json.loads(
            (tmp_path / "store" / "index.json").read_text())
        assert payload["schema"] == INDEX_SCHEMA
