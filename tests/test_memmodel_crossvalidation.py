"""Cross-validation: axiomatic models vs independent operational
machines.

For litmus-sized programs the axiomatic SC/PC allowed sets must equal
the exhaustively enumerated outcome sets of the interleaving machine
and the TSO store-buffer machine respectively.  Agreement over random
programs is strong evidence the axiomatic enumerator (the arbiter for
the whole litmus harness) is right.
"""

import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.memmodel import PC, SC, allowed_outcomes
from repro.memmodel.events import FenceKind, program
from repro.memmodel.operational import sc_outcomes, tso_outcomes

A, B = 0xA, 0xB


def both(t0_ops, t1_ops):
    t0 = list(program(0, t0_ops))
    t1 = list(program(1, t1_ops))
    return [t0, t1]


CLASSICS = {
    "SB": ([("S", A, 1), ("L", B)], [("S", B, 1), ("L", A)]),
    "MP": ([("S", B, 1), ("S", A, 1)], [("L", A), ("L", B)]),
    "LB": ([("L", A), ("S", B, 1)], [("L", B), ("S", A, 1)]),
    "S": ([("S", B, 2), ("S", A, 1)], [("L", A), ("S", B, 1)]),
    "R": ([("S", A, 1), ("S", B, 1)], [("S", B, 2), ("L", A)]),
    "2+2W": ([("S", A, 1), ("S", B, 2)], [("S", B, 1), ("S", A, 2)]),
    "CoRR": ([("S", A, 1)], [("L", A), ("L", A)]),
    "CoWR": ([("S", A, 1), ("L", A)], [("S", A, 2)]),
    "SB+fences": ([("S", A, 1), ("F",), ("L", B)],
                  [("S", B, 1), ("F",), ("L", A)]),
    "MP+amo": ([("S", B, 1), ("A", A, 1)], [("L", A), ("L", B)]),
}


class TestClassicShapes:
    @pytest.mark.parametrize("name", sorted(CLASSICS))
    def test_sc_axioms_equal_interleavings(self, name):
        t0_ops, t1_ops = CLASSICS[name]
        threads = both(t0_ops, t1_ops)
        axiomatic = allowed_outcomes(threads, SC)
        threads2 = both(t0_ops, t1_ops)
        operational = sc_outcomes(threads2)
        assert axiomatic == operational, name

    @pytest.mark.parametrize("name", sorted(CLASSICS))
    def test_pc_axioms_equal_tso_machine(self, name):
        t0_ops, t1_ops = CLASSICS[name]
        threads = both(t0_ops, t1_ops)
        axiomatic = allowed_outcomes(threads, PC)
        threads2 = both(t0_ops, t1_ops)
        operational = tso_outcomes(threads2)
        assert axiomatic == operational, name


def _ops(addr_pool, rng, n):
    ops = []
    for _ in range(n):
        roll = rng.random()
        if roll < 0.4:
            ops.append(("S", rng.choice(addr_pool), rng.randint(1, 2)))
        elif roll < 0.85:
            ops.append(("L", rng.choice(addr_pool)))
        else:
            ops.append(("F",))
    return ops


class TestRandomPrograms:
    @pytest.mark.parametrize("seed", range(25))
    def test_random_program_agreement(self, seed):
        rng = random.Random(seed)
        t0_ops = _ops([A, B], rng, rng.randint(1, 3))
        t1_ops = _ops([A, B], rng, rng.randint(1, 3))

        threads = both(t0_ops, t1_ops)
        sc_ax = allowed_outcomes(threads, SC)
        threads = both(t0_ops, t1_ops)
        pc_ax = allowed_outcomes(threads, PC)
        threads = both(t0_ops, t1_ops)
        sc_op = sc_outcomes(threads)
        threads = both(t0_ops, t1_ops)
        pc_op = tso_outcomes(threads)

        assert sc_ax == sc_op, (t0_ops, t1_ops)
        assert pc_ax == pc_op, (t0_ops, t1_ops)
        assert sc_op <= pc_op  # TSO is weaker than SC


class TestInitialValues:
    def test_nonzero_initial_memory(self):
        threads = both([("L", A)], [("S", A, 5)])
        ax = allowed_outcomes(threads, SC, init_values={A: 9})
        threads = both([("L", A)], [("S", A, 5)])
        op = sc_outcomes(threads, init={A: 9})
        assert ax == op
        values = {dict(o)["r0.0"] for o in op}
        assert values == {9, 5}


class TestTsoMachineSpecifics:
    def test_forwarding_reads_own_buffer(self):
        threads = both([("S", A, 7), ("L", A)], [])
        outcomes = tso_outcomes(threads)
        assert all(dict(o)["r0.1"] == 7 for o in outcomes)

    def test_fence_forces_drain(self):
        threads = both([("S", A, 1), ("F",), ("L", B)],
                       [("S", B, 1), ("F",), ("L", A)])
        outcomes = tso_outcomes(threads)
        both_zero = tuple(sorted([("r0.2", 0), ("r1.2", 0)]))
        assert both_zero not in outcomes

    def test_sb_shape_differs_between_machines(self):
        threads = both(*CLASSICS["SB"])
        sc_set = sc_outcomes(threads)
        threads = both(*CLASSICS["SB"])
        tso_set = tso_outcomes(threads)
        assert sc_set < tso_set  # strictly weaker on SB
