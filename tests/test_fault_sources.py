"""Tests for the täkō / Midgard fault-source models and their
integration with both engines (§2.2's motivating examples)."""

import pytest

from repro.core.exceptions import ExceptionCode
from repro.sim import isa
from repro.sim.config import ConsistencyModel, small_config, table2_config
from repro.sim.devices.einject import EInject
from repro.sim.devices.faultsource import (
    CompositeFaultSource,
    MidgardLateTranslation,
    TakoAccelerator,
)
from repro.sim.multicore import CoreStatus, MulticoreSystem
from repro.sim.program import make_program
from repro.sim.timing import run_trace
from repro.sim.trace import TraceOp
from repro.sim.vm.pagetable import PageTable

MANAGED = 0x100000


class TestTakoAccelerator:
    def _tako(self, absent=(), poison=()):
        return TakoAccelerator(
            MANAGED, 0x10000,
            metadata_absent_pages={a >> 12 for a in absent},
            poison_pages={p >> 12 for p in poison})

    def test_unmanaged_addresses_pass(self):
        tako = self._tako(absent=[MANAGED])
        assert not tako.check(0x1000).denied
        assert not tako.is_faulting(0x1000)

    def test_managed_clean_pages_transform(self):
        tako = self._tako()
        assert not tako.check(MANAGED + 0x2000).denied
        assert tako.transformations == 1

    def test_absent_metadata_faults_until_resolved(self):
        tako = self._tako(absent=[MANAGED])
        verdict = tako.check(MANAGED + 8)
        assert verdict.denied
        assert verdict.error_code == ExceptionCode.PAGE_FAULT_LAZY
        tako.mmio_clr(MANAGED)
        assert not tako.check(MANAGED + 8).denied

    def test_poison_is_not_resolvable(self):
        tako = self._tako(poison=[MANAGED])
        assert tako.check(MANAGED).error_code == ExceptionCode.ACCEL_DIVIDE
        tako.mmio_clr(MANAGED)
        assert tako.check(MANAGED).denied  # still poisoned

    def test_functional_engine_recovers_metadata_fault(self):
        tako = self._tako(absent=[MANAGED])
        prog = make_program([[isa.store(MANAGED, value=7),
                              isa.load(1, MANAGED, label="x")]])
        system = MulticoreSystem(prog, small_config(1),
                                 fault_source=tako)
        result = system.run()
        assert result.memory_value(MANAGED) == 7
        assert result.stats.imprecise_exceptions >= 1

    def test_functional_engine_terminates_on_poison_store(self):
        tako = self._tako(poison=[MANAGED])
        prog = make_program([[isa.store(MANAGED, value=7)]])
        system = MulticoreSystem(prog, small_config(1),
                                 fault_source=tako)
        result = system.run()
        assert system.terminated
        assert system.cores[0].status is CoreStatus.TERMINATED
        # The faulting store was discarded (§4.1).
        assert result.memory_value(MANAGED) == 0

    def test_functional_engine_terminates_on_poison_load(self):
        tako = self._tako(poison=[MANAGED])
        prog = make_program([[isa.load(1, MANAGED, label="x")]])
        system = MulticoreSystem(prog, small_config(1),
                                 fault_source=tako)
        system.run()
        assert system.terminated

    def test_timing_engine_with_tako(self):
        tako = self._tako(absent=[MANAGED, MANAGED + 0x1000])
        trace = [TraceOp("S", MANAGED + i * 64) for i in range(64)]
        trace += [TraceOp("A")] * 200
        cfg = table2_config().with_consistency(ConsistencyModel.WC)
        result = run_trace(cfg, [trace], einject=tako)
        assert result.total_imprecise_exceptions >= 1
        assert result.core_stats[0].faulting_stores >= 1


class TestMidgardLateTranslation:
    def _midgard(self):
        pt = PageTable()
        pt.map_page(MANAGED, present=True)
        pt.map_page(MANAGED + 0x1000, present=False)          # lazy
        pt.map_page(MANAGED + 0x2000, present=False, swapped=True)
        return MidgardLateTranslation(pt), pt

    def test_present_pages_translate(self):
        midgard, _ = self._midgard()
        assert not midgard.check(MANAGED + 8).denied
        assert midgard.translations == 1

    def test_late_fault_codes(self):
        midgard, _ = self._midgard()
        lazy = midgard.check(MANAGED + 0x1000)
        swapped = midgard.check(MANAGED + 0x2000)
        assert lazy.error_code == ExceptionCode.PAGE_FAULT_LAZY
        assert swapped.error_code == ExceptionCode.PAGE_FAULT_SWAPPED
        assert midgard.late_faults == 2

    def test_unmapped_is_segfault(self):
        midgard, _ = self._midgard()
        assert midgard.check(0x9999000).error_code == ExceptionCode.SEGFAULT

    def test_resolution_maps_page(self):
        midgard, pt = self._midgard()
        midgard.mmio_clr(MANAGED + 0x1000)
        assert not midgard.check(MANAGED + 0x1000).denied
        # Resolving an unmapped address creates the mapping (mmap-ish).
        midgard.mmio_clr(0x5000000)
        assert not midgard.check(0x5000000).denied

    def test_functional_engine_midgard_store_fault(self):
        """The paper's Example 2: a store passes the front-side
        translation, misses the hierarchy, and faults in the page-level
        translation after retiring — handled imprecisely."""
        midgard, pt = self._midgard()
        addr = MANAGED + 0x1000 + 8
        prog = make_program([[isa.store(addr, value=5),
                              isa.load(1, addr, label="x")]])
        system = MulticoreSystem(prog, small_config(1),
                                 fault_source=midgard)
        result = system.run()
        assert result.memory_value(addr) == 5
        assert result.stats.imprecise_exceptions >= 1
        assert pt.entry(addr).present  # OS made it present

    def test_functional_engine_segfault_terminates(self):
        midgard, pt = self._midgard()
        pt.map_page(0x700000, writable=False)
        prog = make_program([[isa.store(0x9990000, value=1)]])
        system = MulticoreSystem(prog, small_config(1),
                                 fault_source=midgard)
        system.run()
        assert system.terminated


class TestCompositeFaultSource:
    def test_first_denial_wins(self):
        einject = EInject(region_base=0, region_size=0x1000)
        einject.mmio_set(0)
        tako = TakoAccelerator(MANAGED, 0x1000,
                               metadata_absent_pages={MANAGED >> 12})
        combo = CompositeFaultSource(einject, tako)
        assert combo.check(0).error_code == ExceptionCode.EINJECT_BUS_ERROR
        assert combo.check(MANAGED).error_code == ExceptionCode.PAGE_FAULT_LAZY
        assert not combo.check(0x500000).denied

    def test_clr_broadcast(self):
        einject = EInject(region_base=0, region_size=0x1000)
        einject.mmio_set(0)
        combo = CompositeFaultSource(einject)
        combo.mmio_clr(0)
        assert not combo.is_faulting(0)

    def test_engine_with_two_sources(self):
        einject = EInject(region_base=0x200000, region_size=0x10000)
        einject.mmio_set(0x200000)
        tako = TakoAccelerator(MANAGED, 0x10000,
                               metadata_absent_pages={MANAGED >> 12})
        combo = CompositeFaultSource(einject, tako)
        prog = make_program([[isa.store(MANAGED, value=1),
                              isa.store(0x200000, value=2)]])
        system = MulticoreSystem(prog, small_config(1),
                                 fault_source=combo)
        result = system.run()
        assert result.memory_value(MANAGED) == 1
        assert result.memory_value(0x200000) == 2
        assert result.stats.imprecise_exceptions >= 1
