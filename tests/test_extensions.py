"""Tests for engine extensions: interrupts, checkpoint caps, and
batched-IO demand paging."""

import pytest

from repro.core.exceptions import ExceptionCode
from repro.core.handler import BatchingHandler
from repro.core.interface import ArchitecturalInterface
from repro.core.osconfig import OsConfig
from repro.sim import isa
from repro.sim.config import ConsistencyModel, small_config, table2_config
from repro.sim.multicore import MulticoreSystem
from repro.sim.program import make_program
from repro.sim.timing import run_trace
from repro.workloads import build_workload

A, B = 0x1000, 0x2000


class TestInterrupts:
    def _mp(self):
        t0 = [isa.store(B, value=1), isa.store(A, value=1)]
        t1 = [isa.load(1, A, label="ra"), isa.load(2, B, label="rb")]
        return make_program([t0, t1])

    def test_interrupts_are_delivered(self):
        total = 0
        for seed in range(30):
            system = MulticoreSystem(self._mp(), small_config(2),
                                     seed=seed, interrupt_rate=0.3)
            total += system.run().stats.interrupts
        assert total > 0

    def test_interrupts_preserve_consistency(self):
        bad = (("ra", 1), ("rb", 0))
        for seed in range(150):
            system = MulticoreSystem(
                self._mp(), small_config(2, ConsistencyModel.PC),
                seed=seed, interrupt_rate=0.2)
            system.inject_faults([A, B])
            result = system.run()
            assert result.outcome != bad
            assert result.contract_report.ok

    def test_ie_bit_defers_during_handlers(self):
        """Interrupts arriving while a handler runs are deferred, not
        delivered mid-handler (§5.3)."""
        deferred = 0
        for seed in range(60):
            program = make_program([[isa.store(A, value=1),
                                     isa.store(B, value=2)]])
            system = MulticoreSystem(program, small_config(1),
                                     seed=seed, interrupt_rate=0.5)
            system.inject_faults([A, B])
            result = system.run()
            deferred += result.stats.interrupts_deferred
            assert result.memory_value(A) == 1
        assert deferred > 0

    def test_zero_rate_means_no_interrupts(self):
        system = MulticoreSystem(self._mp(), small_config(2), seed=1)
        assert system.run().stats.interrupts == 0

    def test_deterministic_with_interrupts(self):
        a = MulticoreSystem(self._mp(), small_config(2), seed=9,
                            interrupt_rate=0.2).run()
        b = MulticoreSystem(self._mp(), small_config(2), seed=9,
                            interrupt_rate=0.2).run()
        assert a.outcome == b.outcome
        assert a.stats.interrupts == b.stats.interrupts


class TestCheckpointCap:
    @pytest.fixture(scope="class")
    def workload(self):
        return build_workload("BC", cores=1, scale=0.25)

    @pytest.fixture(scope="class")
    def cfg(self):
        cfg = table2_config().with_consistency(ConsistencyModel.WC)
        cfg.cores = 1
        return cfg

    def test_performance_monotone_in_cap(self, workload, cfg):
        ipcs = [run_trace(cfg, workload.traces, checkpoint_cap=cap).ipc
                for cap in (1, 4, 16)]
        assert ipcs[0] <= ipcs[1] <= ipcs[2]

    def test_large_cap_reaches_full_wc(self, workload, cfg):
        full = run_trace(cfg, workload.traces).ipc
        capped = run_trace(cfg, workload.traces, checkpoint_cap=64).ipc
        assert capped >= 0.99 * full

    def test_tiny_cap_approaches_sc(self, workload, cfg):
        sc = run_trace(cfg.with_consistency(ConsistencyModel.SC),
                       workload.traces).ipc
        one = run_trace(cfg, workload.traces, checkpoint_cap=1).ipc
        full = run_trace(cfg, workload.traces).ipc
        # cap=1 lands between SC and full WC, much nearer SC.
        assert sc * 0.8 <= one < 0.7 * full


class TestBatchedDemandPaging:
    """§5.3's batching-IO claim: one handler invocation schedules all
    the batch's IO requests, overlapping their latencies."""

    def _iface_with_swapped_faults(self, pages=6):
        iface = ArchitecturalInterface(0, fsb_capacity=32)
        for i in range(pages):
            iface.put(0x100000 + i * 4096, i,
                      error_code=ExceptionCode.PAGE_FAULT_SWAPPED)
        return iface

    def test_io_overlap_amortises_demand_paging(self):
        io = 2_000_000  # ~10 ms at 2 GHz / per the OsConfig default
        overlap = BatchingHandler(OsConfig(batch_io=True)).handle(
            self._iface_with_swapped_faults(),
            resolve=lambda e: io, apply=lambda e: None)
        serial = BatchingHandler(OsConfig(batch_io=False)).handle(
            self._iface_with_swapped_faults(),
            resolve=lambda e: io, apply=lambda e: None)
        assert serial.costs.os_resolve == 6 * io
        assert overlap.costs.os_resolve < 1.1 * io
        # > 5x IO throughput improvement from batching, as §5.3 argues.
        assert serial.costs.total / overlap.costs.total > 4
