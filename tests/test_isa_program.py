"""Tests for the ISA helpers, program containers, and enumerator
guard rails."""

import pytest

from repro.memmodel import SC, allowed_outcomes
from repro.memmodel.events import program as ev_program
from repro.memmodel.enumerator import enumerate_executions
from repro.sim import isa
from repro.sim.config import ConsistencyModel, small_config
from repro.sim.isa import Op
from repro.sim.multicore import MulticoreSystem
from repro.sim.program import Program, ThreadProgram, make_program


class TestIsaHelpers:
    def test_store_requires_exactly_one_source(self):
        with pytest.raises(ValueError, match="exactly one"):
            isa.store(0x10)
        with pytest.raises(ValueError, match="exactly one"):
            isa.store(0x10, value=1, src_reg=2)

    def test_instruction_classification(self):
        assert isa.load(1, 0x10).is_read
        assert isa.store(0x10, value=1).is_write
        assert isa.amoadd(1, 0x10, imm=1).is_atomic
        assert isa.amoadd(1, 0x10, imm=1).is_read
        assert isa.amoadd(1, 0x10, imm=1).is_write
        assert isa.fence().is_fence
        assert isa.beq(1, 2, 1).is_branch
        assert not isa.nop().is_memory

    def test_str_representations(self):
        assert "load r1" in str(isa.load(1, 0x20))
        assert "fence" in str(isa.fence())
        assert "store" in str(isa.store(0x20, value=3))

    def test_alu_ops_via_engine(self):
        prog = make_program([[
            isa.li(1, 6), isa.li(2, 3),
            isa.add(3, 1, 2), isa.xor(4, 1, 2), isa.addi(5, 3, -4),
            isa.store(0x100, src_reg=3),
            isa.store(0x108, src_reg=4),
            isa.store(0x110, src_reg=5),
        ]])
        result = MulticoreSystem(prog, small_config(1)).run()
        assert result.memory_value(0x100) == 9
        assert result.memory_value(0x108) == 6 ^ 3
        assert result.memory_value(0x110) == 5


class TestProgramValidation:
    def test_branch_out_of_range_rejected(self):
        with pytest.raises(ValueError, match="out of range"):
            make_program([[isa.beq(1, 1, 5), isa.nop()]])

    def test_branch_to_program_end_allowed(self):
        prog = make_program([[isa.beq(0, 0, 1), isa.nop()]])
        assert prog.instruction_count() == 2

    def test_memory_op_without_address_rejected(self):
        from repro.sim.isa import Instruction
        bad = Instruction(Op.LOAD, rd=1)
        with pytest.raises(ValueError, match="no address"):
            make_program([[bad]])

    def test_shared_addresses_include_initial_memory(self):
        prog = make_program([[isa.load(1, 0x10)]],
                            initial_memory={0x20: 5})
        assert prog.shared_addresses == [0x10, 0x20]

    def test_thread_metadata(self):
        t = ThreadProgram(core=0, instructions=[
            isa.store(0x10, value=1), isa.load(1, 0x20, label="x")])
        assert t.memory_addresses == [0x10, 0x20]
        assert t.observation_labels == ["x"]
        assert len(t) == 2


class TestEnumeratorGuards:
    def test_max_candidates_enforced(self):
        # 6 stores to one address: 6! = 720 co orders; many reads too.
        t0 = list(ev_program(0, [("S", 1, v) for v in range(6)]))
        t1 = list(ev_program(1, [("L", 1)] * 4))
        with pytest.raises(ValueError, match="max_candidates"):
            enumerate_executions([t0, t1], SC, max_candidates=100)

    def test_counts_reported(self):
        t0 = list(ev_program(0, [("S", 1, 1)]))
        t1 = list(ev_program(1, [("L", 1)]))
        result = enumerate_executions([t0, t1], SC)
        assert result.candidates_examined == 2  # 2 rf choices x 1 co
        assert result.candidates_consistent >= 1
        assert result.model_name == "SC"


class TestWcBarrierSegments:
    def test_ss_fence_creates_drain_barrier(self):
        """Under WC a store-store fence splits the buffer into
        segments: the young segment cannot drain before the old one."""
        from repro.memmodel.events import FenceKind

        A, B = 0x1000, 0x2000
        bad_seen = False
        for seed in range(200):
            t0 = [isa.store(A, value=1),
                  isa.fence(FenceKind.STORE_STORE),
                  isa.store(B, value=1)]
            # The reader needs its own load-load fence, else WC's load
            # reordering alone produces the outcome legally.
            t1 = [isa.load(1, B, label="rb"),
                  isa.fence(FenceKind.LOAD_LOAD),
                  isa.load(2, A, label="ra")]
            system = MulticoreSystem(
                make_program([t0, t1]),
                small_config(2, ConsistencyModel.WC), seed=seed)
            out = dict(system.run().outcome)
            if out == {"ra": 0, "rb": 1}:
                bad_seen = True
        assert not bad_seen
