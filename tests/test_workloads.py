"""Tests for the workload models."""

import random

import pytest

from repro.sim.config import ConsistencyModel, table2_config
from repro.sim.timing import run_trace
from repro.sim.trace import measure_mix, validate_trace
from repro.workloads import (
    PAPER_TABLE3,
    AddressMap,
    build_workload,
    figure6_workload_names,
    gap_workload,
    generate_graph,
    run_microbenchmark,
    table3_workload_names,
)
from repro.workloads.base import Region, TraceBuilder, calibrate_mix, skewed_index
from repro.sim.trace import TraceOp


class TestAddressMap:
    def test_regions_page_aligned_and_disjoint(self):
        amap = AddressMap()
        a = amap.alloc("a", 1000)
        b = amap.alloc("b", 5000)
        assert a.base % 4096 == 0
        assert b.base >= a.end

    def test_injectable_regions_separated(self):
        amap = AddressMap()
        low = amap.alloc("low", 4096)
        high = amap.alloc("high", 4096, injectable=True)
        assert low.base < amap.einject_base <= high.base
        assert amap.injectable_regions() == [high]

    def test_injectable_span(self):
        amap = AddressMap()
        amap.alloc("a", 4096, injectable=True)
        amap.alloc("b", 8192, injectable=True)
        base, size = amap.injectable_span()
        assert size >= 4096 + 8192

    def test_region_addr_wraps(self):
        region = Region("r", 0x1000, 64)
        assert region.addr(0) == 0x1000
        assert region.addr(8) == 0x1000  # wraps at 64 bytes / 8 words


class TestCalibrateMix:
    def test_hits_target_mix(self):
        tb = TraceBuilder()
        for i in range(100):
            tb.load(0x1000 + i * 8)
        stack = Region("stack", 0x9000, 4096)
        out = calibrate_mix(tb.build(), stack, store_pct=10, load_pct=25)
        mix = measure_mix(out)
        assert abs(100 * mix.store - 10) < 1.5
        assert abs(100 * mix.load - 25) < 1.5

    def test_preserves_algorithmic_ops_in_order(self):
        tb = TraceBuilder()
        addrs = [0x1000, 0x2000, 0x3000]
        for a in addrs:
            tb.store(a)
        stack = Region("stack", 0x9000, 4096)
        out = calibrate_mix(tb.build(), stack, 30, 30)
        algo = [op.addr for op in out if op.kind == "S"
                and op.addr in addrs]
        assert algo == addrs

    def test_cold_fraction_places_in_cold_region(self):
        tb = TraceBuilder()
        for i in range(50):
            tb.load(0x1000)
        stack = Region("stack", 0x9000, 4096)
        cold = Region("cold", 0x100000, 1 << 16)
        out = calibrate_mix(tb.build(), stack, 20, 30,
                            rng=random.Random(1),
                            cold_region=cold, cold_fraction=1.0)
        pad_stores = [op for op in out if op.kind == "S"]
        assert all(cold.base <= op.addr < cold.end for op in pad_stores)

    def test_skewed_index_hits_hot_set(self):
        rng = random.Random(0)
        hits = sum(1 for _ in range(1000)
                   if skewed_index(rng, 1000, 0.05, 0.85) < 50)
        assert hits > 700


class TestGapWorkloads:
    def test_graph_generation(self):
        g = generate_graph(nodes=100, degree=4, seed=0)
        assert g.nodes == 100
        assert g.edges == 400
        assert len(g.neighbors(0)) == 4
        assert all(0 <= v < 100 for v in g.targets)

    @pytest.mark.parametrize("kernel", ["BFS", "SSSP", "BC"])
    def test_kernel_produces_valid_traces(self, kernel):
        w = gap_workload(kernel, cores=2, nodes=256, seed=3)
        assert w.cores == 2
        for trace in w.traces:
            assert validate_trace(trace) > 100

    @pytest.mark.parametrize("kernel,store_pct,load_pct", [
        ("BFS", 11, 22), ("SSSP", 3, 22), ("BC", 25, 25)])
    def test_kernel_mix_matches_table3(self, kernel, store_pct, load_pct):
        w = gap_workload(kernel, cores=1, nodes=512, seed=1)
        mix = measure_mix(w.traces[0])
        assert abs(100 * mix.store - store_pct) < 2.0
        assert abs(100 * mix.load - load_pct) < 2.0

    def test_inject_graph_marks_csr_regions(self):
        w = gap_workload("BFS", cores=1, nodes=256, inject_graph=True)
        pages = w.injectable_pages()
        assert len(pages) >= 2  # offsets + targets
        w2 = gap_workload("BFS", cores=1, nodes=256, inject_graph=False)
        assert w2.injectable_pages() == []

    def test_unknown_kernel_raises(self):
        with pytest.raises(KeyError, match="unknown GAP kernel"):
            gap_workload("TC")

    def test_bfs_visits_whole_component(self):
        w = gap_workload("BFS", cores=1, nodes=256, seed=1)
        # On a random degree-8 graph virtually all nodes are reached.
        assert w.work_items > 200


class TestRegistry:
    def test_all_table3_workloads_build(self):
        for name in table3_workload_names():
            w = build_workload(name, cores=2, scale=0.2)
            assert w.total_ops() > 500, name

    def test_mixes_match_paper(self):
        for name, ref in PAPER_TABLE3.items():
            w = build_workload(name, cores=2, scale=0.3)
            mix = measure_mix(w.traces[0])
            assert abs(100 * mix.store - ref.store_pct) < 3.0, name
            assert abs(100 * mix.load - ref.load_pct) < 3.0, name

    def test_figure6_names_subset(self):
        assert set(figure6_workload_names()) <= set(table3_workload_names())

    def test_unknown_workload(self):
        with pytest.raises(KeyError, match="unknown workload"):
            build_workload("Nginx")

    def test_deterministic_given_seed(self):
        a = build_workload("Silo", cores=1, scale=0.2, seed=5)
        b = build_workload("Silo", cores=1, scale=0.2, seed=5)
        assert a.traces[0] == b.traces[0]

    def test_inject_flag_gap_and_tailbench(self):
        for name in ("BFS", "Silo", "Masstree"):
            w = build_workload(name, cores=1, scale=0.2, inject=True)
            assert w.injectable_pages(), name


class TestTable3Shape:
    """The WC-speedup ordering of Table 3 (shape, not exact values)."""

    @pytest.fixture(scope="class")
    def speedups(self):
        cfg = table2_config()
        cfg.cores = 2
        out = {}
        for name in ("BC", "SSSP", "Masstree"):
            w = build_workload(name, cores=2, scale=0.3)
            sc = run_trace(cfg.with_consistency(ConsistencyModel.SC),
                           w.traces)
            wc = run_trace(cfg.with_consistency(ConsistencyModel.WC),
                           w.traces)
            out[name] = wc.ipc / sc.ipc
        return out

    def test_bc_gains_most(self, speedups):
        assert speedups["BC"] > speedups["Masstree"] > speedups["SSSP"]

    def test_sssp_near_unity(self, speedups):
        assert speedups["SSSP"] < 1.25

    def test_bc_substantial(self, speedups):
        assert speedups["BC"] > 1.8


class TestMicrobenchmark:
    def test_runs_and_reports_breakdown(self):
        res = run_microbenchmark(faulting_page_fraction=0.05,
                                 stores=800, array_bytes=1 << 20)
        assert res.faulting_stores > 0
        assert res.imprecise_exceptions > 0
        assert res.total_per_fault > 0

    def test_os_dominates_uarch(self):
        """Figure 5: microarchitectural overhead is a tiny fraction."""
        res = run_microbenchmark(faulting_page_fraction=0.05,
                                 stores=800, array_bytes=1 << 20)
        assert res.os_other_per_fault > res.uarch_per_fault

    def test_batching_reduces_per_fault_cost(self):
        minimal = run_microbenchmark(faulting_page_fraction=0.3,
                                     batching=False, stores=1500,
                                     array_bytes=1 << 20)
        batched = run_microbenchmark(faulting_page_fraction=0.3,
                                     batching=True, stores=1500,
                                     array_bytes=1 << 20)
        assert batched.total_per_fault < minimal.total_per_fault

    def test_minimal_near_600_cycles(self):
        """§6.4: roughly 600 cycles per faulting store with the
        minimal handler at low exception rates (we accept a 2x band —
        the absolute number depends on the OS cost calibration)."""
        res = run_microbenchmark(faulting_page_fraction=0.01,
                                 batching=False, stores=2000,
                                 array_bytes=1 << 21)
        assert 300 <= res.total_per_fault <= 1200
