"""Tests for the litmus DSL, library, generators, runner, and harness."""

import pytest

from repro.litmus import (
    LitmusOutcome,
    LitmusTest,
    RunConfig,
    all_library_tests,
    allowed_set,
    check_suite,
    check_test,
    generate_all,
    run_test,
)
from repro.litmus.generator import tests_by_category as group_by_category
from repro.litmus.generator import (
    generate_barrier_tests,
    generate_co_tests,
    generate_dependency_tests,
    generate_fr_tests,
    generate_po_loc_tests,
    generate_ppo_tests,
    generate_rfe_tests,
    generate_rfi_tests,
)
from repro.litmus.library import (
    CAT_BARRIER,
    CAT_DEPS,
    corr,
    message_passing,
    message_passing_fenced,
    mp_addr_dep,
    store_buffering,
)
from repro.memmodel.axioms import PC, RVWMO_MODEL
from repro.sim.config import ConsistencyModel
from repro.sim.isa import Op


class TestDsl:
    def test_locations_and_registers(self):
        test = message_passing()
        assert test.locations == ["x", "y"]
        assert set(test.registers) == {"r0", "r1"}

    def test_location_addresses_page_separated(self):
        test = message_passing()
        addrs = [test.location_addr(loc) for loc in test.locations]
        assert addrs[1] - addrs[0] == 0x1000

    def test_to_program_compiles(self):
        prog = message_passing().to_program()
        assert prog.cores == 2
        kinds = [i.op for i in prog.threads[0].instructions]
        assert kinds == [Op.STORE, Op.STORE]

    def test_addr_dep_compiles_to_xor_chain(self):
        prog = mp_addr_dep().to_program()
        reader = prog.threads[1].instructions
        assert [i.op for i in reader] == [Op.LOAD, Op.XOR, Op.LOAD]
        assert reader[2].rs1 is not None  # indexed on the xor result

    def test_to_events_produces_dep_edges(self):
        threads, edges = mp_addr_dep().to_events()
        assert len(edges) == 1
        (src, dst), = edges
        reader_events = threads[1]
        assert src == reader_events[0].uid
        assert dst == reader_events[1].uid

    def test_ctrl_dep_load_has_no_edge(self):
        test = LitmusTest(
            name="ctrl-load", category=CAT_DEPS,
            threads=[
                [("W", "x", 1)],
                [("R", "x", "r0"), ("Rctrl", "y", "r1", "r0")],
            ])
        _, edges = test.to_events()
        assert edges == set()

    def test_ctrl_dep_store_has_edge(self):
        test = LitmusTest(
            name="ctrl-store", category=CAT_DEPS,
            threads=[
                [("W", "x", 1)],
                [("R", "x", "r0"), ("Wctrl", "y", 1, "r0")],
            ])
        _, edges = test.to_events()
        assert len(edges) == 1

    def test_unknown_op_rejected(self):
        test = LitmusTest("bad", "x", [[("Z", "x", 1)]])
        with pytest.raises(ValueError):
            test.to_program()
        with pytest.raises(ValueError):
            test.to_events()

    def test_outcome_helper(self):
        out = LitmusOutcome.of(r1=0, r0=1)
        assert out.as_tuple() == (("r0", 1), ("r1", 0))


class TestAllowedSets:
    def test_mp_pc_allowed(self):
        allowed = allowed_set(message_passing(), PC)
        assert (("r0", 1), ("r1", 0)) not in allowed
        assert (("r0", 0), ("r1", 1)) in allowed

    def test_mp_rvwmo_allows_reorder(self):
        allowed = allowed_set(message_passing(), RVWMO_MODEL)
        assert (("r0", 1), ("r1", 0)) in allowed

    def test_fenced_mp_rvwmo_forbids_reorder(self):
        allowed = allowed_set(message_passing_fenced(), RVWMO_MODEL)
        assert (("r0", 1), ("r1", 0)) not in allowed

    def test_addr_dep_forbids_reorder_under_rvwmo(self):
        allowed = allowed_set(mp_addr_dep(), RVWMO_MODEL)
        assert (("r0", 1), ("r1", 0)) not in allowed


class TestRunner:
    def test_run_collects_outcomes(self):
        run = run_test(store_buffering(),
                       RunConfig(seeds=60, inject_faults=False))
        assert run.runs == 60
        assert len(run.outcomes) >= 2

    def test_fault_injection_generates_exceptions(self):
        run = run_test(message_passing(),
                       RunConfig(seeds=20, inject_faults=True))
        assert run.imprecise_exceptions > 0

    def test_clean_run_has_no_exceptions(self):
        run = run_test(message_passing(),
                       RunConfig(seeds=20, inject_faults=False))
        assert run.imprecise_exceptions == 0
        assert run.precise_exceptions == 0


class TestHarness:
    @pytest.mark.parametrize("model", [ConsistencyModel.PC,
                                       ConsistencyModel.WC])
    @pytest.mark.parametrize("inject", [False, True])
    def test_library_conforms(self, model, inject):
        cfg = RunConfig(model=model, seeds=30, inject_faults=inject)
        for test in all_library_tests():
            verdict = check_test(test, cfg)
            assert verdict.ok, (
                f"{test.name}: {verdict.conformance.summary()}")

    def test_sc_engine_conforms_to_sc(self):
        cfg = RunConfig(model=ConsistencyModel.SC, seeds=20,
                        inject_faults=True)
        for test in (message_passing(), store_buffering(), corr()):
            assert check_test(test, cfg).ok

    def test_summary_explains_negative_differences(self):
        """A staged violation (WC engine judged against the PC
        reference) produces a witness + forbidding cycle."""
        from repro.litmus.harness import SuiteReport, TestVerdict
        from repro.memmodel.checker import check_outcome_set

        test = message_passing()
        wc_run = run_test(test, RunConfig(model=ConsistencyModel.WC,
                                          seeds=300,
                                          inject_faults=False))
        pc_allowed = allowed_set(test, PC)
        conformance = check_outcome_set(pc_allowed, wc_run.outcomes,
                                        model_name="PC")
        assert not conformance.conforms  # WC exhibits the MP reorder
        report = SuiteReport(model=ConsistencyModel.PC, injected=False)
        report.verdicts.append(TestVerdict(test=test, run=wc_run,
                                           conformance=conformance))
        text = report.summary(explain=True)
        assert "negative differences" in text
        assert "FORBIDDEN" in text
        assert "cycle:" in text

    def test_suite_report_aggregates(self):
        tests = [message_passing(), store_buffering()]
        report = check_suite(tests, RunConfig(seeds=15))
        assert report.ok
        assert report.tests == 2
        assert "OK" in report.summary()

    def test_pc_exhibits_its_relaxation(self):
        """Coverage: the engine actually shows the SB outcome PC allows."""
        run = run_test(store_buffering(),
                       RunConfig(seeds=150, inject_faults=False))
        assert (("r0", 0), ("r1", 0)) in run.outcomes

    def test_wc_exhibits_mp_relaxation(self):
        cfg = RunConfig(model=ConsistencyModel.WC, seeds=300,
                        inject_faults=False)
        run = run_test(message_passing(), cfg)
        assert (("r0", 1), ("r1", 0)) in run.outcomes


class TestGenerator:
    def test_all_categories_present(self):
        by_cat = group_by_category(generate_all())
        assert len(by_cat) == 8
        assert all(len(v) >= 5 for v in by_cat.values())

    def test_names_unique(self):
        names = [t.name for t in generate_all()]
        assert len(names) == len(set(names))

    def test_every_generated_test_compiles_both_ways(self):
        for test in generate_all():
            prog = test.to_program()
            assert prog.cores == 2
            threads, _ = test.to_events()
            assert len(threads) == 2

    def test_barrier_family_covers_all_fence_pairs(self):
        tests = generate_barrier_tests()
        # 6 shapes x (6x6 fence pairs - the both-none base shape).
        assert len(tests) == 6 * 35

    @pytest.mark.parametrize("gen", [
        generate_dependency_tests, generate_po_loc_tests,
        generate_ppo_tests, generate_rfe_tests, generate_rfi_tests,
        generate_co_tests, generate_fr_tests,
    ])
    def test_family_conforms_under_pc_with_faults(self, gen):
        cfg = RunConfig(model=ConsistencyModel.PC, seeds=15,
                        inject_faults=True)
        report = check_suite(gen(), cfg)
        assert report.ok, report.summary()
