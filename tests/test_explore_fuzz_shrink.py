"""Fuzzer + ddmin shrinker over the exploration subsystem."""

import pytest

from repro.explore import (check_drain_policy, fuzz, mutate,
                           rebuild_test, sanitise_threads, shrink_test)
from repro.litmus.dsl import LitmusTest
from repro.litmus.library import message_passing
from repro.memmodel.imprecise import DrainPolicy

import random


def split_stream_race(test):
    """Predicate: does any single faulting location make the test
    race under split-stream?  Returns the (outcome, schedule) witness."""
    for loc in test.locations:
        check = check_drain_policy(test, DrainPolicy.SPLIT_STREAM,
                                   (loc,), max_states=60_000)
        for outcome in sorted(check.violations_pc):
            return outcome, check.violation_schedules[outcome]
    return None


def mp_with_junk():
    """MP plus irrelevant ops the shrinker must strip."""
    mp = message_passing()
    threads = [list(mp.threads[0]) + [("W", "z", 2), ("R", "z", "r9")],
               [("R", "z", "r8")] + list(mp.threads[1]),
               [("W", "z", 3)]]
    return LitmusTest(name="MP+junk", category="fuzz",
                      threads=sanitise_threads(threads))


class TestSanitise:
    def test_renames_registers_uniquely(self):
        threads = sanitise_threads([
            [("R", "x", "r0")], [("R", "y", "r0")],
        ])
        regs = [op[2] for ops in threads for op in ops]
        assert len(set(regs)) == 2

    def test_drops_empty_threads(self):
        assert sanitise_threads([[], [("W", "x", 1)], []]) == \
            [[("W", "x", 1)]]

    def test_strips_dangling_dependencies(self):
        threads = sanitise_threads([
            [("Raddr", "x", "r1", "r_gone"), ("Wdata", "y", 1, "r_gone")],
        ])
        assert threads[0][0][0] == "R"
        assert threads[0][1] == ("W", "y", 1)

    def test_rewires_live_dependencies(self):
        threads = sanitise_threads([
            [("R", "x", "a"), ("Raddr", "y", "b", "a")],
        ])
        first_reg = threads[0][0][2]
        assert threads[0][1] == ("Raddr", "y", threads[0][1][2],
                                 first_reg)

    def test_sanitised_output_compiles(self):
        test = mp_with_junk()
        test.to_events()
        test.to_program()


class TestShrink:
    def test_uninteresting_test_returns_none(self):
        # No store ever faults under an always-False predicate.
        assert shrink_test(message_passing(), lambda t: None) is None

    def test_shrinks_mp_junk_to_the_race_core(self):
        base = mp_with_junk()
        result = shrink_test(base, split_stream_race)
        assert result is not None
        assert result.original_ops == 8
        # The Figure 2a race needs exactly data-W, flag-W, flag-R,
        # data-R; everything else must go.
        assert result.final_ops == 4
        assert result.removed_ops == 4
        assert len(result.test.threads) == 2
        # The witness belongs to the *minimal* program: replay it.
        assert split_stream_race(result.test) is not None
        assert result.schedule
        assert any("DETECT+PUT" in step for step in result.schedule)

    def test_shrink_normalises_store_values(self):
        base = mp_with_junk()
        # Make the racing data store use a non-canonical value.
        threads = [list(ops) for ops in base.threads]
        threads[0][0] = ("W", "y", 7)
        noisy = LitmusTest(name="MP+v7", category="fuzz",
                           threads=threads)
        result = shrink_test(noisy, split_stream_race)
        assert result is not None
        values = [op[2] for ops in result.test.threads
                  for op in ops if op[0] == "W"]
        assert set(values) == {1}

    def test_describe_carries_schedule(self):
        result = shrink_test(mp_with_junk(), split_stream_race)
        text = result.describe()
        assert "schedule:" in text and "outcome:" in text


class TestMutate:
    def test_mutants_are_well_formed(self):
        rng = random.Random(0)
        test = message_passing()
        for _ in range(50):
            test = mutate(test, rng)
            test.to_events()  # compiles axiomatically
            total = sum(len(ops) for ops in test.threads)
            assert 1 <= total
            assert len(test.threads) <= 3


class TestFuzz:
    def test_deterministic_for_fixed_seed(self):
        kwargs = dict(seed=11, iterations=12, shrink=False)
        a = fuzz(**kwargs)
        b = fuzz(**kwargs)
        assert a.mutants_explored == b.mutants_explored
        assert [(f.kind, f.test.name, f.outcome) for f in a.findings] \
            == [(f.kind, f.test.name, f.outcome) for f in b.findings]

    def test_no_model_divergences_on_seeded_run(self):
        """Operational and axiomatic layers agree on every mutant —
        a divergence here is an engine bug."""
        report = fuzz(seed=5, iterations=40,
                      policies=())  # conformance only
        assert report.model_divergences == []

    def test_finds_and_shrinks_split_stream_race(self):
        report = fuzz(seed=3, iterations=30,
                      models=(),  # policy sweep only
                      base_tests=[message_passing()],
                      policies=(DrainPolicy.SAME_STREAM,
                                DrainPolicy.SPLIT_STREAM))
        races = report.policy_races
        assert races, "fuzzer failed to find the Figure 2a race class"
        # Same-stream must stay quiet: the paper's design admits no
        # consistency-violating race.
        assert all(f.policy == DrainPolicy.SPLIT_STREAM.value
                   for f in races)
        shrunk = [f for f in races if f.shrunk is not None]
        assert shrunk, "no finding could be shrunk"
        best = min(f.shrunk.final_ops for f in shrunk)
        assert best == 4  # the minimal MP race core
        for f in shrunk:
            assert f.shrunk.schedule
            assert f.shrunk.final_ops <= f.shrunk.original_ops

    def test_summary_mentions_findings(self):
        report = fuzz(seed=3, iterations=10, models=(),
                      base_tests=[message_passing()],
                      policies=(DrainPolicy.SPLIT_STREAM,))
        text = report.summary()
        assert "model divergences" in text
        if report.findings:
            assert "policy-race" in text

    def test_max_findings_cap(self):
        report = fuzz(seed=3, iterations=40, models=(),
                      base_tests=[message_passing()],
                      policies=(DrainPolicy.SPLIT_STREAM,),
                      shrink=False, max_findings=1)
        assert len(report.findings) == 1
