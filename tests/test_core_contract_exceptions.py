"""Tests for the Table 5 contract checker, taxonomy, and IE bit."""

import pytest

from repro.core.contract import ContractChecker, ContractEventKind
from repro.core.exceptions import (
    RECOVERABLE_CODES,
    X86_EXCEPTIONS,
    ExceptionClass,
    ExceptionCode,
    InterruptEnable,
    PipelineStage,
    exceptions_by_stage,
    is_recoverable,
)


class TestContractChecker:
    def _clean_sequence(self, checker):
        for seq in (0, 1, 2):
            checker.sb_send(0, seq)
            checker.put(0, seq)
        for seq in (0, 1, 2):
            checker.get(0, seq)
            checker.apply(0, seq)
        checker.resume(0)

    def test_clean_run_passes(self):
        checker = ContractChecker(ordered=True)
        self._clean_sequence(checker)
        report = checker.check()
        assert report.ok, report.summary()

    def test_interface_reorder_detected(self):
        checker = ContractChecker(ordered=True)
        checker.sb_send(0, 0); checker.put(0, 0)
        checker.sb_send(0, 1); checker.put(0, 1)
        checker.get(0, 1)  # out of order
        checker.get(0, 0)
        checker.apply(0, 1); checker.apply(0, 0)
        checker.resume(0)
        report = checker.check()
        assert any(v.rule == "interface-order" for v in report.violations)

    def test_core_order_violation(self):
        checker = ContractChecker(ordered=True)
        checker.sb_send(0, 0); checker.sb_send(0, 1)
        checker.put(0, 1); checker.put(0, 0)  # FSBC reordered
        report = checker.check()
        assert any(v.rule == "core-order" for v in report.violations)

    def test_apply_order_violation(self):
        checker = ContractChecker(ordered=True)
        checker.sb_send(0, 0); checker.put(0, 0)
        checker.sb_send(0, 1); checker.put(0, 1)
        checker.get(0, 0); checker.get(0, 1)
        checker.apply(0, 1); checker.apply(0, 0)
        report = checker.check()
        assert any(v.rule == "os-apply-order" for v in report.violations)

    def test_unapplied_store_detected(self):
        checker = ContractChecker()
        checker.sb_send(0, 0); checker.put(0, 0)
        checker.get(0, 0)
        checker.resume(0)  # resumed without applying
        report = checker.check()
        rules = {v.rule for v in report.violations}
        assert "os-apply-all" in rules
        assert "os-resume-after-handling" in rules

    def test_resume_before_handling_detected(self):
        checker = ContractChecker()
        checker.sb_send(0, 0); checker.put(0, 0)
        checker.resume(0)
        checker.get(0, 0); checker.apply(0, 0)
        report = checker.check()
        assert any(v.rule == "os-resume-after-handling"
                   for v in report.violations)

    def test_wc_mode_ignores_order_but_not_completeness(self):
        checker = ContractChecker(ordered=False)
        checker.sb_send(0, 0); checker.sb_send(0, 1)
        checker.put(0, 1); checker.put(0, 0)   # fine under WC
        checker.get(0, 0); checker.get(0, 1)
        checker.apply(0, 1); checker.apply(0, 0)
        checker.resume(0)
        assert checker.check().ok

    def test_per_core_independence(self):
        checker = ContractChecker(ordered=True)
        # core 0 clean; core 1 violates.
        self._clean_sequence(checker)
        checker.sb_send(1, 0); checker.put(1, 0)
        checker.get(1, 0)
        checker.resume(1)
        report = checker.check()
        assert all(v.core == 1 for v in report.violations)


class TestTable1Taxonomy:
    def test_total_exception_count(self):
        assert len(X86_EXCEPTIONS) == 23

    def test_machine_check_is_only_imprecise(self):
        imprecise = [d for d in X86_EXCEPTIONS if not d.precise]
        assert [d.name for d in imprecise] == ["Machine check"]
        assert imprecise[0].stage is PipelineStage.HIERARCHY

    def test_stage_buckets_match_table1(self):
        buckets = exceptions_by_stage()
        assert len(buckets[PipelineStage.FETCH]) == 3
        assert len(buckets[PipelineStage.DECODE]) == 3
        assert len(buckets[PipelineStage.EXECUTE]) == 6
        assert len(buckets[PipelineStage.MEMORY]) == 5

    def test_traps_and_aborts(self):
        traps = [d for d in X86_EXCEPTIONS if d.klass is ExceptionClass.TRAP]
        aborts = [d for d in X86_EXCEPTIONS if d.klass is ExceptionClass.ABORT]
        assert len(traps) == 3
        assert len(aborts) == 3

    def test_page_fault_recoverable(self):
        pf = next(d for d in X86_EXCEPTIONS if d.name == "Page fault")
        assert pf.recoverable


class TestExceptionCodes:
    def test_recoverable_classification(self):
        assert is_recoverable(ExceptionCode.PAGE_FAULT_LAZY)
        assert is_recoverable(ExceptionCode.EINJECT_BUS_ERROR)
        assert not is_recoverable(ExceptionCode.SEGFAULT)
        assert not is_recoverable(ExceptionCode.PROTECTION)

    def test_dedicated_imprecise_code_is_distinct(self):
        assert ExceptionCode.IMPRECISE_STORE not in RECOVERABLE_CODES
        assert ExceptionCode.IMPRECISE_STORE == 0x20


class TestInterruptEnable:
    def test_user_mode_hardwired_unmasked(self):
        ie = InterruptEnable()
        assert ie.in_user_mode
        assert not ie.masked

    def test_handler_entry_masks(self):
        ie = InterruptEnable()
        ie.enter_handler()
        assert ie.masked
        assert not ie.in_user_mode

    def test_user_mode_cannot_write_ie(self):
        ie = InterruptEnable()
        with pytest.raises(PermissionError):
            ie.enter_critical_section()

    def test_critical_section_protocol(self):
        ie = InterruptEnable()
        ie.enter_handler()
        ie.exit_critical_section()
        assert not ie.masked
        ie.enter_critical_section()
        assert ie.masked

    def test_pending_imprecise_blocks_user_return(self):
        ie = InterruptEnable()
        ie.enter_handler()
        assert not ie.return_to_user(pending_imprecise=True)
        assert not ie.in_user_mode
        assert ie.return_to_user(pending_imprecise=False)
        assert ie.in_user_mode
