"""Tests for the execution-witness renderer."""

import pytest

from repro.memmodel import PC, SC, WC, enumerate_executions
from repro.memmodel.events import program
from repro.memmodel.witness import explain_forbidden, find_cycle, render_execution

A, B = 0xA0, 0xB0


def mp_threads():
    t0 = list(program(0, [("S", B, 1), ("S", A, 1)]))
    t1 = list(program(1, [("L", A), ("L", B)]))
    return [t0, t1]


class TestRenderExecution:
    def _witness(self, model):
        threads = mp_threads()
        result = enumerate_executions(threads, model)
        outcome = next(iter(result.allowed))
        return result.witnesses[outcome], outcome

    def test_renders_all_sections(self):
        execution, _ = self._witness(PC)
        text = render_execution(execution, PC)
        assert "events:" in text
        assert "reads-from:" in text
        assert "coherence:" in text
        assert "verdict under PC: consistent" in text

    def test_init_writes_labelled(self):
        execution, _ = self._witness(PC)
        text = render_execution(execution)
        assert "init[" in text


class TestExplainForbidden:
    def test_forbidden_outcome_gets_cycle(self):
        text = explain_forbidden(
            mp_threads(), PC, [("r1.0", 1), ("r1.1", 0)])
        assert "FORBIDDEN" in text
        assert "cycle:" in text

    def test_allowed_outcome_reported(self):
        text = explain_forbidden(
            mp_threads(), WC, [("r1.0", 1), ("r1.1", 0)])
        assert "ALLOWED" in text

    def test_unconstructible_outcome(self):
        text = explain_forbidden(
            mp_threads(), PC, [("r1.0", 7), ("r1.1", 7)])
        assert "no candidate execution" in text

    def test_sb_forbidden_under_sc(self):
        t0 = list(program(0, [("S", A, 1), ("L", B)]))
        t1 = list(program(1, [("S", B, 1), ("L", A)]))
        text = explain_forbidden(
            [t0, t1], SC, [("r0.1", 0), ("r1.1", 0)])
        assert "FORBIDDEN" in text


class TestFindCycle:
    def test_consistent_execution_has_no_cycle(self):
        threads = mp_threads()
        result = enumerate_executions(threads, PC)
        execution = next(iter(result.witnesses.values()))
        assert find_cycle(execution, PC) is None
