"""Tests for the second wave of extensions: early detection, ASO
rollback, and the PageRank exclusion claim."""

import pytest

from repro.sim.config import ConsistencyModel, table2_config
from repro.sim.devices.einject import EInject, PAGE_SIZE
from repro.sim.timing import TimingSystem, run_trace
from repro.sim.trace import TraceOp, measure_mix
from repro.workloads import gap_workload

BASE = 1 << 20


def cfg_wc(cores=1):
    cfg = table2_config().with_consistency(ConsistencyModel.WC)
    cfg.cores = cores
    return cfg


def poisoned(n_pages):
    einject = EInject()
    for p in range(n_pages):
        einject.mmio_set(BASE + p * PAGE_SIZE)
    return einject


def fault_trace(n_pages, pad=200):
    trace = [TraceOp("S", BASE + p * PAGE_SIZE) for p in range(n_pages)]
    trace += [TraceOp("A")] * pad
    return trace


class TestEarlyDetection:
    def test_full_fraction_all_precise(self):
        system = TimingSystem(cfg_wc(), [fault_trace(6)],
                              einject=poisoned(6),
                              early_detection_fraction=1.0)
        res = system.run()
        stats = res.core_stats[0]
        assert stats.imprecise_exceptions == 0
        assert stats.precise_exceptions == 6
        assert stats.faulting_stores == 0

    def test_half_fraction_splits(self):
        system = TimingSystem(cfg_wc(), [fault_trace(8)],
                              einject=poisoned(8),
                              early_detection_fraction=0.5)
        res = system.run()
        stats = res.core_stats[0]
        assert stats.precise_exceptions == 4
        assert stats.faulting_stores == 4

    def test_zero_fraction_all_imprecise(self):
        system = TimingSystem(cfg_wc(), [fault_trace(5)],
                              einject=poisoned(5),
                              early_detection_fraction=0.0)
        res = system.run()
        assert res.core_stats[0].precise_exceptions == 0
        assert res.core_stats[0].faulting_stores == 5

    def test_invalid_fraction_rejected(self):
        with pytest.raises(ValueError, match="early_detection_fraction"):
            TimingSystem(cfg_wc(), [[TraceOp("A")]],
                         early_detection_fraction=1.5)


class TestAsoPrecise:
    def test_no_fsb_usage(self):
        system = TimingSystem(cfg_wc(), [fault_trace(5)],
                              einject=poisoned(5), aso_precise=True)
        res = system.run()
        stats = res.core_stats[0]
        assert stats.imprecise_exceptions == 0
        assert stats.faulting_stores == 0
        assert stats.precise_exceptions == 5

    def test_faults_resolved(self):
        einject = poisoned(4)
        system = TimingSystem(cfg_wc(), [fault_trace(4)],
                              einject=einject, aso_precise=True)
        system.run()
        assert einject.faulting_page_count == 0

    def test_rollback_costs_exceed_plain_trap(self):
        """The rollback penalty (squashed speculated work) makes ASO
        fault handling dearer than an isolated precise trap."""
        einject = poisoned(1)
        # Plenty of in-flight work when the fault lands.
        trace = ([TraceOp("S", BASE + 0x100000 + i * 4096)
                  for i in range(8)]
                 + [TraceOp("S", BASE)] + [TraceOp("A")] * 100)
        system = TimingSystem(cfg_wc(), [trace], einject=einject,
                              aso_precise=True)
        res = system.run()
        assert res.core_stats[0].uarch_cycles > 0  # rollback charged

    def test_fault_free_aso_matches_wc(self):
        trace = [TraceOp("S", BASE + i * 4096) for i in range(30)]
        plain = run_trace(cfg_wc(), [trace])
        aso = TimingSystem(cfg_wc(), [trace], aso_precise=True).run()
        assert aso.total_cycles == pytest.approx(plain.total_cycles,
                                                 rel=0.01)


class TestPageRankExclusion:
    """§3.3: 'PR, CC, and TC ... have <1 % stores and no performance
    benefits from WC, we do not evaluate them further.'"""

    @pytest.fixture(scope="class")
    def pr(self):
        return gap_workload("PR", cores=1, nodes=1024)

    def test_under_one_percent_stores(self, pr):
        mix = measure_mix(pr.traces[0])
        assert 100 * mix.store < 1.2

    def test_no_wc_benefit(self, pr):
        cfg = table2_config()
        cfg.cores = 1
        sc = run_trace(cfg.with_consistency(ConsistencyModel.SC),
                       pr.traces)
        wc = run_trace(cfg.with_consistency(ConsistencyModel.WC),
                       pr.traces)
        assert wc.ipc / sc.ipc < 1.1

    def test_negligible_speculation_state(self, pr):
        cfg = cfg_wc()
        res = run_trace(cfg, pr.traces, track_speculation=True)
        assert res.speculation_peak_kb() < 3.0
