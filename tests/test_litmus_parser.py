"""Tests for the .litmus text-format parser."""

import pytest

from repro.litmus import RunConfig, check_test
from repro.litmus.parser import (LitmusParseError, LitmusRenderError,
                                 parse_litmus, render_litmus)
from repro.memmodel import PC
from repro.litmus.harness import allowed_set
from repro.sim.config import ConsistencyModel

MP_TEXT = """
RISCV MP
{
0:x5=1; x=0; y=0;
}
 P0          | P1          ;
 sw x5,0(y)  | lw x6,0(x)  ;
 fence w,w   | fence r,r   ;
 sw x5,0(x)  | lw x7,0(y)  ;

exists (1:x6=1 /\\ 1:x7=0)
"""

SB_TEXT = """
RISCV SB
{
0:x5=1; 1:x5=1;
}
 P0          | P1          ;
 sw x5,0(x)  | sw x5,0(y)  ;
 lw x6,0(y)  | lw x6,0(x)  ;

exists (0:x6=0 /\\ 1:x6=0)
"""

AMO_TEXT = """
RISCV AMO-swap
{
0:x5=3;
}
 P0                 | P1          ;
 amoswap x6,x5,(x)  | lw x6,0(x)  ;
"""


class TestParser:
    def test_parses_mp(self):
        test = parse_litmus(MP_TEXT)
        assert test.name == "MP"
        assert len(test.threads) == 2
        assert test.threads[0] == [
            ("W", "y", 1),
            ("F", pytest.importorskip("repro.memmodel.events").FenceKind.STORE_STORE),
            ("W", "x", 1),
        ]
        assert test.threads[1][0] == ("R", "x", "1:x6")

    def test_exists_becomes_spotlight(self):
        test = parse_litmus(MP_TEXT)
        assert test.spotlight is not None
        assert dict(test.spotlight.as_tuple()) == {"1:x6": 1, "1:x7": 0}

    def test_li_sets_store_value(self):
        text = """RISCV VAL
 P0          ;
 li x5,7     ;
 sw x5,0(x)  ;
"""
        test = parse_litmus(text)
        assert test.threads[0] == [("W", "x", 7)]

    def test_amoswap(self):
        test = parse_litmus(AMO_TEXT)
        assert test.threads[0] == [("A", "x", 3, "0:x6")]

    def test_parsed_mp_allowed_set_is_correct(self):
        test = parse_litmus(MP_TEXT)
        allowed = allowed_set(test, PC)
        prohibited = test.spotlight.as_tuple()
        assert prohibited not in allowed

    def test_parsed_test_runs_through_harness(self):
        test = parse_litmus(SB_TEXT)
        verdict = check_test(test, RunConfig(model=ConsistencyModel.PC,
                                             seeds=40,
                                             inject_faults=True))
        assert verdict.ok
        # The SB relaxed outcome is PC-allowed and observable.
        assert test.spotlight.as_tuple() in verdict.conformance.allowed

    def test_errors(self):
        with pytest.raises(LitmusParseError):
            parse_litmus("")
        with pytest.raises(LitmusParseError):
            parse_litmus("RISCV X\n P0 ;\n bogus x1,x2 ;\n")
        with pytest.raises(LitmusParseError):
            parse_litmus("RISCV X\n P0 ;\n fence q,q ;\n")
        with pytest.raises(LitmusParseError):
            parse_litmus("RISCV X\n{\nnot an init\n}\n P0 ;\n li x1,1 ;\n")

    def test_round_trip_with_init_values(self):
        text = """RISCV INIT
{
x=5;
}
 P0          ;
 lw x6,0(x)  ;
"""
        test = parse_litmus(text)
        # Initial memory values arrive via the program, not the DSL —
        # locations default to 0 in the harness, so the init block for
        # memory is informational. The load should still compile.
        assert test.threads[0] == [("R", "x", "0:x6")]


class TestClassicFixtures:
    """The shipped classic shapes (R, WRC, ISA2, IRIW, LB+fences) —
    the on-disk corpus covers the patterns the randgen templates are
    seeded from, and each round-trips through the writer exactly."""

    FIXTURES = ("R", "WRC", "ISA2", "IRIW", "LB+fences")

    def _load(self, name):
        from pathlib import Path
        path = (Path(__file__).resolve().parents[1] / "litmus_files"
                / f"{name}.litmus")
        return parse_litmus(path.read_text())

    @pytest.mark.parametrize("name", FIXTURES)
    def test_parses_and_lints_clean(self, name):
        from repro.staticanalysis.lint import lint_test
        test = self._load(name)
        assert test.name == name
        assert lint_test(test) == []

    @pytest.mark.parametrize("name", FIXTURES)
    def test_render_round_trip_is_exact(self, name):
        from repro.litmus.generator import program_digest
        test = self._load(name)
        reparsed = parse_litmus(render_litmus(test))
        assert reparsed.name == test.name
        assert reparsed.threads == test.threads
        assert reparsed.spotlight == test.spotlight
        assert program_digest(reparsed) == program_digest(test)

    def test_thread_shapes(self):
        assert len(self._load("WRC").threads) == 3
        assert len(self._load("ISA2").threads) == 3
        assert len(self._load("IRIW").threads) == 4
        assert len(self._load("LB+fences").threads) == 2

    def test_iriw_spotlight_forbidden_under_pc(self):
        test = self._load("IRIW")
        allowed = allowed_set(test, PC)
        assert test.spotlight.as_tuple() not in allowed

    def test_lb_fences_spotlight_forbidden_under_pc(self):
        test = self._load("LB+fences")
        allowed = allowed_set(test, PC)
        assert test.spotlight.as_tuple() not in allowed


class TestRenderLitmus:
    """render_litmus: the plain-subset writer."""

    def test_mp_round_trip(self):
        from repro.litmus.generator import program_digest
        test = parse_litmus(MP_TEXT)
        reparsed = parse_litmus(render_litmus(test))
        assert program_digest(reparsed) == program_digest(test)
        assert reparsed.spotlight == test.spotlight

    def test_amoswap_round_trip(self):
        test = parse_litmus(AMO_TEXT)
        reparsed = parse_litmus(render_litmus(test))
        assert reparsed.threads == test.threads

    def test_dependency_ops_render_as_xor_idioms(self):
        from repro.litmus.library import mp_addr_dep
        text = render_litmus(mp_addr_dep())
        assert "xor x30,r0,r0" in text
        assert "lw r1,0(y,x30)" in text

    def test_unrenderable_op_is_refused(self):
        from repro.litmus.dsl import LitmusTest
        test = LitmusTest(name="BOGUS", category="co",
                          threads=[[("Q", "x", 1)]])
        with pytest.raises(LitmusRenderError):
            render_litmus(test)

    def test_value_preloads_avoid_observation_registers(self):
        # Thread writes 2 and reads into x5 — the preload register
        # allocator must not reuse x5 for the value 2.
        from repro.litmus.dsl import LitmusTest
        test = LitmusTest(name="CLASH", category="co", threads=[
            [("W", "x", 2), ("R", "x", "0:x5")],
        ])
        text = render_litmus(test)
        reparsed = parse_litmus(text)
        assert reparsed.threads == test.threads

    def test_generated_corpus_plain_subset_round_trips(self):
        from repro.litmus.randgen import generate_corpus
        corpus = generate_corpus(seed=11, count=60, features=("fences",
                                                              "atomics"))
        for entry in corpus.tests:
            reparsed = parse_litmus(render_litmus(entry.test))
            assert reparsed.threads == entry.test.threads, \
                entry.header.name
            assert reparsed.spotlight == entry.test.spotlight
            assert reparsed.name == entry.test.name

    def test_random_corpus_with_deps_round_trips_exactly(self):
        # The deps feature emits Raddr/Wdata/Wctrl/... ops; with the
        # xor idioms the full corpus round-trips bit-exactly (randgen
        # registers live in the parser's {tid}:x{N} namespace).
        from repro.litmus.randgen import generate_corpus
        corpus = generate_corpus(seed=11, count=60)
        dep_kinds = {"Raddr", "Waddr", "Wdata", "Rctrl", "Wctrl"}
        saw_deps = 0
        for entry in corpus.tests:
            kinds = {op[0] for ops in entry.test.threads for op in ops}
            saw_deps += bool(kinds & dep_kinds)
            reparsed = parse_litmus(render_litmus(entry.test))
            assert reparsed.threads == entry.test.threads, \
                entry.header.name
            assert reparsed.spotlight == entry.test.spotlight
        assert saw_deps > 0, "corpus slice exercised no dependency ops"


class TestDependencyIdioms:
    """The xor/beq dependency encodings (parser module docstring)."""

    def test_addr_dependency_parses(self):
        text = ("RISCV ADDR\n"
                " P0             ;\n"
                " lw x6,0(x)     ;\n"
                " xor x30,x6,x6  ;\n"
                " lw x7,0(y,x30) ;\n")
        test = parse_litmus(text)
        assert test.threads[0] == [("R", "x", "0:x6"),
                                   ("Raddr", "y", "0:x7", "0:x6")]

    def test_store_addr_dependency_parses(self):
        text = ("RISCV WADDR\n"
                " P0             ;\n"
                " lw x6,0(x)     ;\n"
                " xor x30,x6,x6  ;\n"
                " sw x5,0(y,x30) ;\n")
        test = parse_litmus(text)
        assert test.threads[0] == [("R", "x", "0:x6"),
                                   ("Waddr", "y", 1, "0:x6")]

    def test_data_dependency_parses(self):
        text = ("RISCV DATA\n"
                " P0             ;\n"
                " lw x6,0(x)     ;\n"
                " xor x30,x6,x6  ;\n"
                " addi x30,x30,7 ;\n"
                " sw x30,0(y)    ;\n")
        test = parse_litmus(text)
        assert test.threads[0] == [("R", "x", "0:x6"),
                                   ("Wdata", "y", 7, "0:x6")]

    def test_ctrl_dependencies_parse(self):
        text = ("RISCV CTRL\n"
                " P0           | P1           ;\n"
                " lw x6,0(x)   | lw x6,0(y)   ;\n"
                " beq x6,x6,0  | beq x6,x6,0  ;\n"
                " sw x5,0(y)   | lw x7,0(x)   ;\n")
        test = parse_litmus(text)
        assert test.threads[0] == [("R", "x", "0:x6"),
                                   ("Wctrl", "y", 1, "0:x6")]
        assert test.threads[1] == [("R", "y", "1:x6"),
                                   ("Rctrl", "x", "1:x7", "1:x6")]

    def test_dangling_idiom_is_a_parse_error(self):
        with pytest.raises(LitmusParseError) as exc:
            parse_litmus("RISCV X\n P0 ;\n lw x6,0(x) ;\n"
                         " xor x30,x6,x6 ;\n")
        assert "dangling" in str(exc.value)
        with pytest.raises(LitmusParseError) as exc:
            parse_litmus("RISCV X\n P0 ;\n lw x6,0(x) ;\n"
                         " beq x6,x6,0 ;\n")
        assert "dangling" in str(exc.value)

    def test_idiom_errors(self):
        # addi outside an xor idiom
        with pytest.raises(LitmusParseError):
            parse_litmus("RISCV X\n P0 ;\n addi x30,x30,1 ;\n"
                         " sw x30,0(y) ;\n")
        # xor with mismatched sources is not the idiom
        with pytest.raises(LitmusParseError):
            parse_litmus("RISCV X\n P0 ;\n lw x6,0(x) ;\n"
                         " xor x30,x6,x7 ;\n lw x8,0(y,x30) ;\n")
        # offset register without a preceding xor
        with pytest.raises(LitmusParseError):
            parse_litmus("RISCV X\n P0 ;\n lw x8,0(y,x30) ;\n")
        # a fence may not split an idiom from its consumer
        with pytest.raises(LitmusParseError):
            parse_litmus("RISCV X\n P0 ;\n lw x6,0(x) ;\n"
                         " xor x30,x6,x6 ;\n fence w,w ;\n"
                         " lw x7,0(y,x30) ;\n")

    def test_all_shipped_fixtures_round_trip(self):
        # Every .litmus artifact in litmus_files/ — including the
        # dependency-bearing ones — must be a render/parse fixpoint.
        from pathlib import Path
        paths = sorted((Path(__file__).resolve().parents[1]
                        / "litmus_files").glob("*.litmus"))
        assert len(paths) >= 17
        dep_fixtures = 0
        for path in paths:
            test = parse_litmus(path.read_text())
            text = render_litmus(test)
            reparsed = parse_litmus(text)
            assert reparsed.threads == test.threads, path.name
            assert reparsed.spotlight == test.spotlight, path.name
            assert render_litmus(reparsed) == text, path.name
            if {op[0] for ops in test.threads for op in ops} & \
                    {"Raddr", "Waddr", "Wdata", "Rctrl", "Wctrl"}:
                dep_fixtures += 1
        assert dep_fixtures >= 4, \
            "expected the dependency-bearing fixture set on disk"


class TestGeneratedSuiteUniqueness:
    """generate_all() must not hand the campaign duplicate programs."""

    def test_no_duplicate_programs(self):
        from repro.litmus.generator import generate_all, program_digest
        tests = generate_all()
        digests = [program_digest(t) for t in tests]
        assert len(digests) == len(set(digests)), \
            "generate_all() returned structurally identical programs"

    def test_names_still_unique(self):
        from repro.litmus.generator import generate_all
        names = [t.name for t in generate_all()]
        assert len(names) == len(set(names))

    def test_dedupe_keeps_first_occurrence(self):
        from repro.litmus.generator import dedupe_tests, generate_co_tests
        tests = generate_co_tests()
        doubled = tests + tests
        assert [t.name for t in dedupe_tests(doubled)] == \
            [t.name for t in tests]


class TestDuplicateInitialisers:
    """A duplicate key in the ``{...}`` init block is a parse error
    naming both lines, not a silent last-one-wins."""

    def test_duplicate_register_init_raises_with_lines(self):
        text = ("RISCV DUP\n"
                "{\n"
                "0:x5=1;\n"
                "x=0;\n"
                "0:x5=2;\n"
                "}\n"
                " P0          ;\n"
                " sw x5,0(x)  ;\n")
        with pytest.raises(LitmusParseError) as exc:
            parse_litmus(text)
        msg = str(exc.value)
        assert "line 5" in msg and "0:x5" in msg
        assert "first defined at line 3" in msg

    def test_duplicate_location_init_raises_with_lines(self):
        text = ("RISCV DUP\n"
                "{\n"
                "x=0; y=0;\n"
                "x=1;\n"
                "}\n"
                " P0          ;\n"
                " lw x6,0(x)  ;\n")
        with pytest.raises(LitmusParseError) as exc:
            parse_litmus(text)
        assert "line 4: duplicate initialiser for x" in str(exc.value)
        assert "line 3" in str(exc.value)

    def test_same_register_on_different_threads_is_fine(self):
        test = parse_litmus(SB_TEXT)  # 0:x5 and 1:x5 both init to 1
        assert test.init == {(0, "x5"): 1, (1, "x5"): 1}

    def test_bad_init_statement_reports_line(self):
        text = "RISCV X\n{\nx=0;\nnot an init;\n}\n P0 ;\n li x1,1 ;\n"
        with pytest.raises(LitmusParseError) as exc:
            parse_litmus(text)
        assert "line 4" in str(exc.value)

    def test_invalid_fixture_files_raise(self):
        from pathlib import Path
        fixtures = sorted((Path(__file__).resolve().parents[1]
                           / "litmus_files" / "invalid").glob("*.litmus"))
        assert len(fixtures) >= 2
        for path in fixtures:
            with pytest.raises(LitmusParseError) as exc:
                parse_litmus(path.read_text())
            assert "duplicate initialiser" in str(exc.value)

    def test_parsed_init_lands_on_the_test(self):
        test = parse_litmus(MP_TEXT)
        assert test.init == {(0, "x5"): 1, "x": 0, "y": 0}
