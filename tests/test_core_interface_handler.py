"""Tests for the architectural interface, handlers, and drain policies."""

import pytest

from repro.core.exceptions import ExceptionCode
from repro.core.handler import BatchingHandler, MinimalHandler
from repro.core.interface import ArchitecturalInterface
from repro.core.streams import (
    DrainPolicy,
    DrainTarget,
    PendingStore,
    interface_volume,
    plan_drain,
)
from repro.sim.config import OsConfig


def put_stores(iface, n=3, faulting_every=1):
    for i in range(n):
        code = (ExceptionCode.EINJECT_BUS_ERROR
                if i % faulting_every == 0 else ExceptionCode.NONE)
        iface.put(0x1000 * (i + 1), i, error_code=code)


class TestArchitecturalInterface:
    def test_get_returns_put_order(self):
        iface = ArchitecturalInterface(0)
        put_stores(iface, 5)
        addrs = [iface.get().addr for _ in range(5)]
        assert addrs == [0x1000 * (i + 1) for i in range(5)]
        assert iface.fifo_respected()

    def test_get_empty_returns_none(self):
        assert ArchitecturalInterface(0).get() is None

    def test_peek_all_is_nondestructive(self):
        iface = ArchitecturalInterface(0)
        put_stores(iface, 3)
        assert len(iface.peek_all()) == 3
        assert iface.pending == 3

    def test_get_all_drains(self):
        iface = ArchitecturalInterface(0)
        put_stores(iface, 4)
        assert len(iface.get_all()) == 4
        assert iface.pending == 0

    def test_put_returns_drain_latency(self):
        iface = ArchitecturalInterface(0, drain_cycles_per_entry=7)
        assert iface.put(0x10, 1) == 7


class TestDrainPolicies:
    def make_entries(self):
        return [
            PendingStore(0x1000, 1, error_code=ExceptionCode.EINJECT_BUS_ERROR),
            PendingStore(0x2000, 2),
            PendingStore(0x3000, 3, error_code=ExceptionCode.EINJECT_BUS_ERROR),
            PendingStore(0x4000, 4),
        ]

    def test_no_faults_all_to_memory(self):
        entries = [PendingStore(0x10, 1), PendingStore(0x20, 2)]
        for policy in DrainPolicy:
            plan = plan_drain(entries, policy)
            assert all(a.target is DrainTarget.MEMORY for a in plan)

    def test_same_stream_routes_everything(self):
        plan = plan_drain(self.make_entries(), DrainPolicy.SAME_STREAM)
        assert all(a.target is DrainTarget.INTERFACE for a in plan)
        assert [a.store.addr for a in plan] == [0x1000, 0x2000, 0x3000, 0x4000]

    def test_split_stream_routes_only_faulting(self):
        plan = plan_drain(self.make_entries(), DrainPolicy.SPLIT_STREAM)
        targets = [a.target for a in plan]
        assert targets == [DrainTarget.INTERFACE, DrainTarget.MEMORY,
                           DrainTarget.INTERFACE, DrainTarget.MEMORY]

    def test_interface_volume(self):
        entries = self.make_entries()
        assert interface_volume(entries, DrainPolicy.SAME_STREAM) == (4, 0)
        assert interface_volume(entries, DrainPolicy.SPLIT_STREAM) == (2, 2)


class TestMinimalHandler:
    def _run(self, n_stores=4, faulting_every=1, config=None):
        iface = ArchitecturalInterface(0)
        put_stores(iface, n_stores, faulting_every)
        handler = MinimalHandler(config or OsConfig())
        applied = []
        resolved = []
        inv = handler.handle(
            iface,
            resolve=lambda e: resolved.append(e.addr) or 100,
            apply=lambda e: applied.append(e.addr),
        )
        return inv, applied, resolved, iface

    def test_applies_all_in_order(self):
        inv, applied, _, iface = self._run(4)
        assert applied == [0x1000, 0x2000, 0x3000, 0x4000]
        assert inv.stores_handled == 4
        assert iface.pending == 0

    def test_resolves_only_faulting(self):
        inv, _, resolved, _ = self._run(4, faulting_every=2)
        assert len(resolved) == 2
        assert inv.faults_resolved == 2

    def test_costs_accumulate_per_store(self):
        cfg = OsConfig()
        inv, _, _, _ = self._run(3, config=cfg)
        assert inv.costs.os_apply == 3 * cfg.apply_store_cycles
        assert inv.costs.os_resolve == 3 * 100
        base = (cfg.trap_entry_cycles + cfg.dispatch_cycles
                + cfg.context_switch_cycles)
        assert inv.costs.os_other == base + 3 * cfg.fsb_read_cycles

    def test_irrecoverable_terminates_and_discards(self):
        iface = ArchitecturalInterface(0)
        iface.put(0x10, 1, error_code=ExceptionCode.SEGFAULT)
        iface.put(0x20, 2)
        handler = MinimalHandler()
        applied = []
        inv = handler.handle(iface, resolve=lambda e: 0,
                             apply=lambda e: applied.append(e.addr))
        assert inv.terminated
        assert applied == []          # faulting stores discarded
        assert iface.pending == 0

    def test_total_near_paper_600_cycles_per_fault(self):
        """§6.4: the minimal handler costs ~600 cycles per faulting
        store; our OS cost model is calibrated to land in that range
        for a single-fault invocation."""
        iface = ArchitecturalInterface(0)
        iface.put(0x10, 1, error_code=ExceptionCode.EINJECT_BUS_ERROR)
        handler = MinimalHandler(OsConfig())
        inv = handler.handle(iface, resolve=lambda e: OsConfig().resolve_fault_cycles,
                             apply=lambda e: None)
        assert 350 <= inv.costs.total <= 750


class TestBatchingHandler:
    def _iface(self, n=8, pages=2):
        iface = ArchitecturalInterface(0, fsb_capacity=32)
        for i in range(n):
            addr = 0x10000 + (i % pages) * 4096 + i * 8
            iface.put(addr, i, error_code=ExceptionCode.EINJECT_BUS_ERROR)
        return iface

    def test_resolves_once_per_page(self):
        iface = self._iface(n=8, pages=2)
        handler = BatchingHandler(OsConfig())
        resolved = []
        inv = handler.handle(iface, resolve=lambda e: resolved.append(e.addr) or 500,
                             apply=lambda e: None)
        assert len(resolved) == 2
        assert inv.faults_resolved == 8

    def test_batching_cheaper_per_store_than_minimal(self):
        cfg = OsConfig()
        iface_a, iface_b = self._iface(8, 8), self._iface(8, 8)
        minimal = MinimalHandler(cfg).handle(
            iface_a, resolve=lambda e: 500, apply=lambda e: None)
        batched = BatchingHandler(cfg).handle(
            iface_b, resolve=lambda e: 500, apply=lambda e: None)
        per_min = minimal.costs.total / minimal.stores_handled
        per_bat = batched.costs.total / batched.stores_handled
        assert per_bat < per_min

    def test_io_overlap_vs_serial(self):
        cfg_overlap = OsConfig(batch_io=True)
        cfg_serial = OsConfig(batch_io=False)
        io = 10_000
        a = BatchingHandler(cfg_overlap).handle(
            self._iface(8, 8), resolve=lambda e: io, apply=lambda e: None)
        b = BatchingHandler(cfg_serial).handle(
            self._iface(8, 8), resolve=lambda e: io, apply=lambda e: None)
        assert a.costs.os_resolve < b.costs.os_resolve
        assert b.costs.os_resolve == 8 * io

    def test_applies_in_retrieved_order(self):
        iface = self._iface(6, 3)
        expected = [e.addr for e in iface.peek_all()]
        applied = []
        BatchingHandler().handle(iface, resolve=lambda e: 0,
                                 apply=lambda e: applied.append(e.addr))
        assert applied == expected

    def test_irrecoverable_batch_terminates(self):
        iface = ArchitecturalInterface(0)
        iface.put(0x10, 1, error_code=ExceptionCode.PROTECTION)
        inv = BatchingHandler().handle(iface, resolve=lambda e: 0,
                                       apply=lambda e: None)
        assert inv.terminated
