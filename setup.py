"""Legacy setup shim.

The sandboxed environment has no ``wheel`` package and no network, so
PEP 660 editable installs (which need ``bdist_wheel``) fail.  This shim
lets ``pip install -e .`` fall back to ``setup.py develop``.
"""

from setuptools import setup

setup()
