"""Constrained-random generator at paper scale.

Two acceptance gates from the randgen subsystem's contract:

* **Generation**: one ``generate_corpus`` call emits a 10k-test
  corpus — 100 % structurally unique (post-dedup) and 100 % lint-clean
  (asserted per program at emission) — deterministically (two
  same-seed instantiations produce bit-identical corpus digests) and
  above a throughput floor that keeps nightly regeneration free.
* **Campaign**: a 2k-test seeded slice runs the full nightly pipeline
  (static prefilter → incremental enumerator → DPOR explorer
  cross-check, verdict store attached) with **zero**
  axiomatic/operational/static disagreements, and an immediate
  incremental re-run replays 100 % of verdicts from the store without
  re-enumerating anything.

Set ``REPRO_BENCH_RECORD=1`` to append the measurements to
``BENCH_randgen.json`` (the cross-PR trajectory).
"""

import os
import time
from pathlib import Path

from conftest import run_once

from repro.litmus import RunConfig, check_suite
from repro.litmus.randgen import generate_corpus
from repro.staticanalysis.lint import lint_test
from repro.store import VerdictStore

TRAJECTORY = Path(__file__).resolve().parent.parent / \
    "BENCH_randgen.json"

GEN_SEED = 2023
GEN_COUNT = 10_000
#: Conservative floor — the generator sustains ~10k tests/s on one
#: core; 1 500/s keeps headroom for slow CI machines while still
#: catching an order-of-magnitude regression.
THROUGHPUT_FLOOR = 1_500

CAMPAIGN_SEED = 108
CAMPAIGN_COUNT = 2_000


def _record(entry):
    if not os.environ.get("REPRO_BENCH_RECORD"):
        return
    from repro.obs.perftrack import append_entry
    append_entry(TRAJECTORY, entry)


def test_10k_generation_determinism_and_throughput(benchmark):
    """Acceptance: a 10k corpus from one invocation, deterministic,
    unique, lint-clean, above the throughput floor."""
    corpus = run_once(benchmark, generate_corpus,
                      seed=GEN_SEED, count=GEN_COUNT)
    assert len(corpus) == GEN_COUNT
    digests = corpus.digests()
    assert len(set(digests)) == GEN_COUNT, "dedup failed"
    # emit() asserted lint-cleanliness per program during generation;
    # re-lint a deterministic slice end to end as a belt-and-braces
    # check that the assertion path is honest.
    for entry in corpus.tests[::97]:
        assert lint_test(entry.test) == [], entry.header.name

    twin = generate_corpus(seed=GEN_SEED, count=GEN_COUNT)
    assert twin.corpus_digest() == corpus.corpus_digest(), \
        "same seed must regenerate the bit-identical corpus"

    entry = {
        "bench": "randgen-generate",
        "seed": GEN_SEED,
        "tests": GEN_COUNT,
        "attempts": corpus.attempts,
        "dedup_dropped": corpus.dedup_dropped,
        "throughput_tests_per_s": round(corpus.throughput, 1),
        "wall_s": round(corpus.wall_time_s, 4),
        "corpus_digest": corpus.corpus_digest(),
        "template_mix": corpus.template_mix(),
    }
    benchmark.extra_info.update(entry)
    _record(entry)
    print(f"\n10k corpus: {corpus.attempts} attempts, "
          f"{corpus.dedup_dropped} duplicates dropped, "
          f"{corpus.wall_time_s:.2f}s "
          f"({corpus.throughput:.0f} tests/s)")
    assert corpus.throughput >= THROUGHPUT_FLOOR, (
        f"generation throughput {corpus.throughput:.0f} tests/s under "
        f"the {THROUGHPUT_FLOOR}/s floor")


def test_nightly_scale_campaign_zero_disagreements(benchmark, tmp_path):
    """Acceptance: the 2k nightly slice end to end — prefilter +
    enumerator + DPOR cross-check, zero disagreements — then a 100 %
    store-hit incremental re-run."""
    corpus = generate_corpus(seed=CAMPAIGN_SEED, count=CAMPAIGN_COUNT)
    config = RunConfig(seeds=2, clean_pass=False, prefilter=True,
                       explore="dpor")
    store = VerdictStore(tmp_path / "store")

    def campaign():
        return check_suite(corpus.litmus_tests(), config, jobs=2,
                           store=store, incremental=True)

    report = run_once(benchmark, campaign)
    assert report.ok, [v.test.name for v in report.failures]
    explorer = report.explorer_totals()
    assert explorer["mismatches"] == 0
    assert explorer["tests_explored"] == CAMPAIGN_COUNT
    assert report.store["misses"] == CAMPAIGN_COUNT

    started = time.perf_counter()
    rerun = check_suite(corpus.litmus_tests(), config, jobs=2,
                        store=store, incremental=True)
    rerun_s = time.perf_counter() - started
    assert rerun.ok
    assert rerun.store["hits"] == CAMPAIGN_COUNT, \
        "incremental re-run must replay every verdict from the store"
    assert rerun.store["misses"] == 0
    assert rerun.enumerator_totals()["tests_enumerated"] == 0

    entry = {
        "bench": "randgen-campaign",
        "seed": CAMPAIGN_SEED,
        "tests": CAMPAIGN_COUNT,
        "mismatches": explorer["mismatches"],
        "failures": len(report.failures),
        "campaign_s": round(report.wall_time, 3),
        "incremental_rerun_s": round(rerun_s, 3),
        "store_hits_on_rerun": rerun.store["hits"],
        "corpus_digest": corpus.corpus_digest(),
    }
    benchmark.extra_info.update(entry)
    _record(entry)
    print(f"\n2k nightly slice: campaign {report.wall_time:.2f}s, "
          f"incremental re-run {rerun_s:.2f}s "
          f"({rerun.store['hits']}/{CAMPAIGN_COUNT} store hits)")
