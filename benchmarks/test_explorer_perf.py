"""Explorer reduction: DPOR vs the naive full-interleaving oracle.

Both strategies explore bit-identical outcome sets (that is asserted
test-by-test); the benchmark measures how many complete interleavings
each had to execute over the hand-written litmus library on the TSO
machine.  Acceptance: DPOR runs ≥ 5× fewer interleavings than the
exact naive enumeration (typically ~20×).  Set
``REPRO_BENCH_RECORD=1`` to append the measurement to
``BENCH_explorer.json`` (the cross-PR trajectory).

A naive enumeration that blows the per-test state budget is counted
at the budget floor — a *lower* bound on its interleavings — so the
asserted ratio can only be understated, never inflated.
"""

import os
import time
from pathlib import Path

from conftest import run_once

from repro.explore import (ExplorationBudgetExceeded, explore,
                           machine_for)
from repro.litmus.library import all_library_tests

TRAJECTORY = Path(__file__).resolve().parent.parent / "BENCH_explorer.json"
NAIVE_BUDGET = 200_000


def _machines():
    out = []
    for test in all_library_tests():
        threads, deps = test.to_events()
        out.append((test.name,
                    machine_for("PC", threads, extra_ppo=deps)))
    return out


def _record(entry):
    if not os.environ.get("REPRO_BENCH_RECORD"):
        return
    from repro.obs.perftrack import append_entry
    append_entry(TRAJECTORY, entry)


def test_dpor_interleaving_reduction(benchmark):
    machines = _machines()

    naive_interleavings = 0
    naive_capped = 0
    naive_outcomes = {}
    naive_started = time.perf_counter()
    for name, machine in machines:
        try:
            result = explore(machine, strategy="naive",
                             max_states=NAIVE_BUDGET,
                             dedupe_states=False)
            naive_interleavings += result.stats.interleavings
            naive_outcomes[name] = frozenset(result.outcomes)
        except ExplorationBudgetExceeded:
            naive_capped += 1
            naive_interleavings += NAIVE_BUDGET  # lower bound
    naive_s = time.perf_counter() - naive_started

    def dpor_sweep():
        total = 0
        outcomes = {}
        for name, machine in machines:
            result = explore(machine, strategy="dpor")
            total += result.stats.interleavings
            outcomes[name] = frozenset(result.outcomes)
        return total, outcomes

    dpor_started = time.perf_counter()
    dpor_interleavings, dpor_outcomes = run_once(benchmark, dpor_sweep)
    dpor_s = time.perf_counter() - dpor_started

    for name in dpor_outcomes:
        if name in naive_outcomes:
            assert dpor_outcomes[name] == naive_outcomes[name], name

    ratio = naive_interleavings / max(1, dpor_interleavings)
    entry = {
        "bench": "library-dpor-vs-naive",
        "tests": len(machines),
        "machine": "tso",
        "naive_interleavings": naive_interleavings,
        "naive_capped_tests": naive_capped,
        "dpor_interleavings": dpor_interleavings,
        "reduction": round(ratio, 2),
        "naive_s": round(naive_s, 4),
        "dpor_s": round(dpor_s, 4),
    }
    benchmark.extra_info.update(entry)
    _record(entry)
    print(f"\nnaive={naive_interleavings} interleavings "
          f"({naive_capped} capped)  dpor={dpor_interleavings}  "
          f"-> {ratio:.1f}x reduction over {len(machines)} tests")
    assert ratio >= 5.0, (
        f"DPOR only reduced interleavings {ratio:.1f}x vs naive "
        f"(need >= 5x)")
