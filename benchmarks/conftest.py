"""Shared helpers for the reproduction benchmarks.

Every bench regenerates one of the paper's tables or figures and
prints the rows (run ``pytest benchmarks/ --benchmark-only -s`` to see
them).  Experiments are deterministic, so each is measured with a
single pedantic round — the interesting output is the table itself,
which is also attached to ``benchmark.extra_info``.
"""

import pytest


def run_once(benchmark, fn, *args, **kwargs):
    """Benchmark ``fn`` with one round and return its result."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                              rounds=1, iterations=1)
