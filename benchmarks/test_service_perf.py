"""Verdict-store service performance: incremental no-op re-campaigns
and warm ``repro serve`` query latency.

Two acceptance criteria pin the store's reason to exist:

* A **no-op incremental re-campaign** over the full 266-test
  generated library replays every verdict from the store — 100% store
  hits, zero enumerations, and at least a 3x wall-clock speedup over
  the cold campaign that populated it.
* A **warm serve query** (store resident, fingerprints memoised)
  answers in under 1 ms median over one query per library test on a
  Unix domain socket — the daemon must be cheap enough to sit inside
  an edit-verify loop.

Set ``REPRO_BENCH_RECORD=1`` to append the measurement to
``BENCH_service.json`` (the cross-PR trajectory).
"""

import asyncio
import os
import statistics
import threading
import time
from pathlib import Path

from conftest import run_once

from repro.litmus import RunConfig, run_campaign
from repro.litmus.generator import generate_all
from repro.serve import ServeClient, VerdictServer
from repro.store import VerdictStore

TRAJECTORY = Path(__file__).resolve().parent.parent / "BENCH_service.json"

#: Bench config: injected pass only, few seeds — the store criteria
#: (hit rate, replay speedup, query latency) are config-independent.
CONFIG = dict(seeds=3, clean_pass=False)


def _record(entry):
    if not os.environ.get("REPRO_BENCH_RECORD"):
        return
    from repro.obs.perftrack import append_entry
    append_entry(TRAJECTORY, entry)


def test_noop_incremental_recampaign_is_all_hits(benchmark, tmp_path):
    """Acceptance: re-verifying an unchanged library is pure replay —
    100% store hits, nothing enumerated, >= 3x faster."""
    tests = generate_all()
    config = RunConfig(**CONFIG)
    root = tmp_path / "store"

    started = time.perf_counter()
    cold = run_campaign(tests, config, store=VerdictStore(root),
                        incremental=True)
    cold_s = time.perf_counter() - started
    assert cold.store["misses"] == len(tests)

    def warm_recampaign():
        # Fresh store instance: replay comes from disk, not memory.
        return run_campaign(tests, config, store=VerdictStore(root),
                            incremental=True)

    started = time.perf_counter()
    warm = run_once(benchmark, warm_recampaign)
    warm_s = time.perf_counter() - started

    assert warm.store["hits"] == len(tests)
    assert warm.store["misses"] == 0
    assert warm.store["hit_rate"] == 1.0
    assert warm.enumerator_totals()["tests_enumerated"] == 0
    assert warm.ok == cold.ok
    for a, b in zip(cold.verdicts, warm.verdicts):
        assert a.run.outcomes == b.run.outcomes
    speedup = cold_s / max(warm_s, 1e-9)
    assert speedup > 3, (
        f"no-op re-campaign only {speedup:.1f}x faster "
        f"({cold_s:.2f}s cold vs {warm_s:.2f}s warm)")

    benchmark.extra_info["tests"] = len(tests)
    benchmark.extra_info["speedup"] = round(speedup, 1)
    _record({
        "bench": "service-incremental",
        "tests": len(tests),
        "store_hit_rate": warm.store["hit_rate"],
        "tests_enumerated": warm.enumerator_totals()["tests_enumerated"],
        "cold_s": round(cold_s, 4),
        "warm_s": round(warm_s, 4),
        "speedup": round(speedup, 1),
    })


def test_warm_serve_query_latency(benchmark, tmp_path):
    """Acceptance: warm verdict queries answer in < 1 ms median."""
    tests = generate_all()
    config = RunConfig(**CONFIG)
    root = tmp_path / "store"
    run_campaign(tests, config, store=VerdictStore(root),
                 incremental=True)  # populate

    uds = tmp_path / "serve.sock"
    server = VerdictServer(root, config, tests=tests,
                           batch_window_s=0.02)
    ready = threading.Event()
    thread = threading.Thread(
        target=lambda: asyncio.run(
            server.run(uds=uds, ready=lambda a: ready.set())),
        daemon=True)
    thread.start()
    assert ready.wait(10)

    try:
        with ServeClient(uds=uds) as client:
            names = [t.name for t in tests]
            # First sweep warms the server's fingerprint memo and the
            # blob cache; the measured sweep is the steady state.
            for name in names:
                assert client.query(name=name)["hit"]

            def warm_sweep():
                latencies = []
                for name in names:
                    started = time.perf_counter()
                    response = client.query(name=name)
                    latencies.append(time.perf_counter() - started)
                    assert response["hit"]
                return latencies

            latencies = run_once(benchmark, warm_sweep)
            with ServeClient(uds=uds) as admin:
                admin.shutdown()
    finally:
        thread.join(10)

    median_ms = statistics.median(latencies) * 1e3
    p99_ms = sorted(latencies)[int(0.99 * (len(latencies) - 1))] * 1e3
    assert median_ms < 1.0, (
        f"warm serve query median {median_ms:.3f} ms (budget 1 ms)")

    benchmark.extra_info["median_ms"] = round(median_ms, 4)
    benchmark.extra_info["queries"] = len(latencies)
    _record({
        "bench": "service-query",
        "queries": len(latencies),
        "median_ms": round(median_ms, 4),
        "p99_ms": round(p99_ms, 4),
    })
