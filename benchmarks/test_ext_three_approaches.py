"""Extension bench — the paper's three approaches, head to head (§1).

1. **Store-buffer elision** (forced precise exceptions, §2.3): run
   under SC — every store serialises its completion at retirement.
2. **Prefetch-based early detection** (Qiu & Dubois): run under WC
   with all faults discovered before retirement and handled as
   conventional precise exceptions.
3. **Post-retirement speculation** (ASO, §3): WC performance with
   precise exceptions via checkpoint rollback — the approach whose
   silicon bill Table 3 and the checkpoint sweep quantify.
4. **Imprecise store exceptions** (the paper's design): run under WC
   with the FSB/handler path.

Expected shape: imprecise handling preserves nearly all of WC's
performance; early detection sits between (it keeps the store buffer
but pays a full precise trap per fault and cannot batch); eliding the
store buffer costs the most on store-heavy work.
"""

from conftest import run_once

from repro.analysis.reporting import render_table
from repro.sim.config import ConsistencyModel, table2_config
from repro.sim.devices.einject import EInject
from repro.sim.timing import TimingSystem, run_trace
from repro.workloads import build_workload


def run_variants(workload_name="BC"):
    workload = build_workload(workload_name, cores=2, scale=0.4,
                              inject=True, trials=6)
    wc_cfg = table2_config().with_consistency(ConsistencyModel.WC)
    sc_cfg = table2_config().with_consistency(ConsistencyModel.SC)

    def einject():
        src = EInject()
        for page in workload.injectable_pages():
            src.mmio_set(page)
        return src

    baseline = run_trace(wc_cfg, workload.traces)
    imprecise = run_trace(wc_cfg, workload.traces, einject=einject())
    early = TimingSystem(wc_cfg, workload.traces, einject=einject(),
                         early_detection_fraction=1.0).run()
    aso = TimingSystem(wc_cfg, workload.traces, einject=einject(),
                       aso_precise=True).run()
    elided = run_trace(sc_cfg, workload.traces, einject=einject())

    def rel(result):
        return baseline.total_cycles / result.total_cycles

    return {
        "WC baseline (no faults)": (baseline, 1.0),
        "imprecise (FSB + handler)": (imprecise, rel(imprecise)),
        "ASO precise (rollback)": (aso, rel(aso)),
        "early detection (prefetch)": (early, rel(early)),
        "store-buffer elision (SC)": (elided, rel(elided)),
    }


def test_three_approaches(benchmark):
    results = run_once(benchmark, run_variants)
    rows = []
    for label, (res, rel) in results.items():
        precise = sum(s.precise_exceptions for s in res.core_stats)
        rows.append((label, f"{100 * rel:.1f}%",
                     res.total_imprecise_exceptions, precise))
    print()
    print(render_table(
        ["approach", "relative perf", "imprecise exc", "precise exc"],
        rows,
        title="Extension — the paper's three approaches on BC"))

    imprecise_rel = results["imprecise (FSB + handler)"][1]
    aso_rel = results["ASO precise (rollback)"][1]
    early_rel = results["early detection (prefetch)"][1]
    elided_rel = results["store-buffer elision (SC)"][1]
    # The paper's ordering: {imprecise, ASO} ≈ WC >> elision; ASO buys
    # its performance with the Table 3 silicon instead of semantics.
    assert imprecise_rel >= early_rel - 0.02
    assert aso_rel >= 0.9
    assert early_rel > elided_rel
    assert elided_rel < 0.75  # SC loses badly on the store-heavy kernel
    # Early detection produced only precise exceptions.
    early_result = results["early detection (prefetch)"][0]
    assert early_result.total_imprecise_exceptions == 0
    benchmark.extra_info["relative"] = {
        label: round(rel, 3) for label, (_, rel) in results.items()}
