"""Table 3 — instruction mix, WC speedup over SC, and ASO
speculation-state requirements (baseline / 2x memory latency /
4x store-to-load skew).

Expected shape (paper): speedups ordered by store fraction with BC
highest (3.24x) and SSSP lowest (1.06x); the 2x-memory system needs
about the same state as baseline; the 4x-skew system needs more.
Absolute state KBs run below the paper's (our scaled footprints keep
store-miss latencies shorter) — EXPERIMENTS.md records the deltas.
"""

import pytest
from conftest import run_once

from repro.analysis import render_table3, run_table3
from repro.workloads import PAPER_TABLE3


@pytest.fixture(scope="module")
def table3_rows():
    return run_table3(cores=4, scale=0.5, seed=1)


def test_table3_full(benchmark, table3_rows):
    rows = run_once(benchmark, lambda: table3_rows)
    print()
    print(render_table3(rows))
    by_name = {r.workload: r for r in rows}

    # Instruction mixes match the published ones.
    for name, ref in PAPER_TABLE3.items():
        row = by_name[name]
        assert abs(row.store_pct - ref.store_pct) < 3.0, name
        assert abs(row.load_pct - ref.load_pct) < 3.0, name

    # Speedup shape: BC the biggest winner, SSSP near unity.
    assert by_name["BC"].wc_speedup == max(r.wc_speedup for r in rows)
    assert by_name["SSSP"].wc_speedup < 1.2
    assert by_name["BC"].wc_speedup > 2.0

    benchmark.extra_info["speedups"] = {
        r.workload: round(r.wc_speedup, 2) for r in rows}


def test_table3_latency_studies(table3_rows):
    """2x memory latency: ~flat; 4x store-load skew: state grows."""
    grew_with_skew = 0
    flat_with_memory = 0
    for row in table3_rows:
        if row.state_kb_4x_skew >= row.state_kb_baseline:
            grew_with_skew += 1
        if row.state_kb_2x_memory <= 1.5 * row.state_kb_baseline:
            flat_with_memory += 1
    assert grew_with_skew >= 6, "4x skew should raise state broadly"
    assert flat_with_memory >= 6, "2x memory should not raise state much"
