"""Figure 2 — the split-stream race.

Reproduced twice:

* **axiomatically** — the executable formalism shows the split-stream
  transform admits the PC-violating outcome ``L(B)=1 ∧ L(A)=0``
  (Fig 2a) while the same-stream transform forbids it (Fig 2b);
* **operationally** — the functional engine running S(A);S(B) with a
  faulting A page under each drain policy observes exactly the same
  split.
"""

from conftest import run_once

from repro.analysis.reporting import render_table
from repro.core.streams import DrainPolicy
from repro.memmodel.proofs import demonstrate_figure2_race
from repro.sim import isa
from repro.sim.config import ConsistencyModel, small_config
from repro.sim.multicore import MulticoreSystem
from repro.sim.program import make_program

A, B = 0x1000, 0x2000


def operational_race(policy, seeds=400):
    outcomes = set()
    for seed in range(seeds):
        t0 = [isa.store(A, value=1), isa.store(B, value=1)]
        t1 = [isa.load(1, B, label="rb"), isa.load(2, A, label="ra")]
        system = MulticoreSystem(
            make_program([t0, t1]),
            small_config(2, ConsistencyModel.PC),
            seed=seed, drain_policy=policy)
        system.inject_faults([A])
        outcomes.add(system.run().outcome)
    return outcomes


def figure2_experiment():
    formal = demonstrate_figure2_race()
    violation = (("ra", 0), ("rb", 1))
    split = operational_race(DrainPolicy.SPLIT_STREAM)
    same = operational_race(DrainPolicy.SAME_STREAM)
    return formal, violation in split, violation in same


def test_figure2(benchmark):
    formal, split_observed, same_observed = run_once(
        benchmark, figure2_experiment)
    rows = [
        ("formalism (Fig 2a): split admits violation",
         formal.split_allows_violation, True),
        ("formalism (Fig 2b): same forbids violation",
         formal.same_forbids_violation, True),
        ("engine: split stream observed violation", split_observed, True),
        ("engine: same stream observed violation", same_observed, False),
    ]
    print()
    print(render_table(["check", "result", "expected"], rows,
                       title="Figure 2 — split- vs same-stream race "
                             "(violating outcome: L(B)=1, L(A)=0)"))
    assert formal.matches_paper
    assert split_observed
    assert not same_observed
