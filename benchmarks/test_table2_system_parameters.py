"""Table 2 — system parameters, validated by probing the simulator.

Beyond restating the configuration, this bench measures that the
built hierarchy actually exhibits the configured behaviour: L1/L2/
memory latencies in order, mesh hop costs, and the organic
store-vs-load latency skew that motivates the Table 3 skew study.
It also reports the FSBC's prototype silicon cost (§6.1).
"""

from conftest import run_once

from repro.analysis.reporting import render_table
from repro.core.fsbc import FsbController
from repro.sim.cache.coherence import CoherentHierarchy
from repro.sim.config import table2_config
from repro.sim.mem.memory import MemoryController
from repro.sim.noc.mesh import Mesh


def probe_system():
    cfg = table2_config()
    cfg.validate()
    mem = MemoryController(cfg.memory)
    hierarchy = CoherentHierarchy(cfg, mem)
    mesh = Mesh(cfg.noc)

    cold = hierarchy.access(0, 0x4000, False)
    l1_hit = hierarchy.access(0, 0x4000, False)
    # Share the block everywhere, then write: invalidation cost.
    for core in range(cfg.cores):
        hierarchy.access(core, 0x8000, False)
    shared_load = hierarchy.access(1, 0x8000, False)
    shared_store = hierarchy.access(1, 0x8000, True)

    return {
        "cores": cfg.cores,
        "rob": cfg.core.rob_entries,
        "sb": cfg.core.store_buffer_entries,
        "l1_latency": l1_hit.latency,
        "cold_latency": cold.latency,
        "mem_latency": cfg.memory.access_latency,
        "mesh_corner_hops": mesh.hops(0, 15),
        "hop_latency": cfg.noc.hop_latency,
        "shared_load": shared_load.latency,
        "shared_store": shared_store.latency,
        "tlb_l1": cfg.tlb.l1_entries,
        "tlb_l2": cfg.tlb.l2_entries,
    }


def test_table2(benchmark):
    probe = run_once(benchmark, probe_system)
    rows = [
        ("Cores", "16x 4-way OoO, 128 ROB, 32 SB",
         f"{probe['cores']}x, ROB {probe['rob']}, SB {probe['sb']}"),
        ("L1D hit", "2-cycle", f"{probe['l1_latency']} cycles"),
        ("Memory", "80-cycle", f"{probe['mem_latency']} cycles"),
        ("Mesh", "4x4, 3 cycles/hop",
         f"corner {probe['mesh_corner_hops']} hops x "
         f"{probe['hop_latency']} cy"),
        ("TLB", "L1 48 / L2 1024",
         f"L1 {probe['tlb_l1']} / L2 {probe['tlb_l2']}"),
        ("Cold miss", "> memory latency",
         f"{probe['cold_latency']} cycles"),
        ("Store skew", "stores pay invalidations",
         f"load {probe['shared_load']} vs store "
         f"{probe['shared_store']} cycles"),
        ("FSBC cost", "354 LUTs / 763 regs (0.12%/0.48%)",
         f"{FsbController.PROTOTYPE_LUTS} / "
         f"{FsbController.PROTOTYPE_REGISTERS}"),
    ]
    print()
    print(render_table(["Parameter", "Table 2 / paper", "measured"], rows,
                       title="Table 2 — system parameters (probed)"))
    assert probe["l1_latency"] == 2
    assert probe["cold_latency"] > probe["mem_latency"]
    assert probe["shared_store"] > probe["shared_load"]
    assert probe["mesh_corner_hops"] == 6
