"""Figure 6 — relative performance of GAP and Tailbench with
imprecise store exceptions.

Expected shape (paper §6.5): all workloads run to completion with
thousands of transparently handled exceptions; GAP keeps >96.5 % of
baseline performance; Tailbench throughput drops <4 %.  Our scaled
runs accept a slightly wider band (>=94 %) — EXPERIMENTS.md records
the exact numbers.
"""

import pytest
from conftest import run_once

from repro.analysis import render_figure6, run_figure6


@pytest.fixture(scope="module")
def figure6_rows():
    return run_figure6(cores=2, seed=1)


def test_figure6(benchmark, figure6_rows):
    rows = run_once(benchmark, lambda: figure6_rows)
    print()
    print(render_figure6(rows))

    by_name = {r.workload: r for r in rows}
    for name in ("BFS", "SSSP", "BC"):
        assert by_name[name].relative_performance >= 0.96, name
    for name in ("Silo", "Masstree"):
        assert by_name[name].relative_performance >= 0.94, name

    # Every workload ran to completion with real injected exceptions.
    for row in rows:
        assert row.imprecise_exceptions + row.precise_exceptions > 0, \
            row.workload
    assert sum(r.faulting_stores for r in rows) > 0

    benchmark.extra_info["relative"] = {
        r.workload: round(r.relative_performance, 3) for r in rows}
