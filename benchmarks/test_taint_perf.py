"""Static taint-analyzer throughput vs the dynamic ground truth.

The static FSB leak analyzer (:mod:`repro.staticanalysis.taint`) and
the exhaustive speculative taint explorer
(:func:`repro.explore.check_taint_policy`) answer the same question —
can a faulting store's data transiently reach another core before the
OS apply point?  The explorer is the ground truth the analyzer's
soundness is pinned against (``tests/test_taint.py``); the analyzer
earns its keep by being fast enough to run on *every* campaign test.
This bench sweeps the hand-written library under both drain policies
both ways and asserts the static pass is **≥ 10×** faster end to end
— the margin that lets ``repro litmus --taint`` ride along at
campaign scale while the dynamic crosscheck stays a nightly job.

Set ``REPRO_BENCH_RECORD=1`` to append the measurement to
``BENCH_taint.json`` (the cross-PR trajectory).
"""

import os
import time
from pathlib import Path

from conftest import run_once

from repro.explore import check_taint_policy
from repro.litmus.library import all_library_tests
from repro.memmodel.imprecise import DrainPolicy
from repro.staticanalysis import TaintVerdict, analyze_taint

TRAJECTORY = Path(__file__).resolve().parent.parent / "BENCH_taint.json"
SPEEDUP_FLOOR = float(os.environ.get("REPRO_TAINT_SPEEDUP_FLOOR", "10"))


def _sweep_static(tests):
    verdicts = {}
    started = time.perf_counter()
    for test in tests:
        for policy in DrainPolicy:
            report = analyze_taint(test, policy)
            verdicts[(test.name, policy.value)] = report.verdict
    return verdicts, time.perf_counter() - started


def _sweep_dynamic(tests):
    leaks = {}
    started = time.perf_counter()
    for test in tests:
        for policy in DrainPolicy:
            check = check_taint_policy(test, policy)
            leaks[(test.name, policy.value)] = check.leak
    return leaks, time.perf_counter() - started


def _record(entry):
    if not os.environ.get("REPRO_BENCH_RECORD"):
        return
    from repro.obs.perftrack import append_entry
    append_entry(TRAJECTORY, entry)


def test_static_taint_at_least_10x_dynamic(benchmark):
    """Acceptance: the static sweep beats the exhaustive speculative
    explorer by ≥ 10× on the library × both-policies sweep, with zero
    false negatives on the way through."""
    tests = all_library_tests()
    dynamic, dynamic_s = _sweep_dynamic(tests)

    static, static_s = run_once(benchmark, _sweep_static, tests)

    # Soundness ride-along: every dynamic leak must be statically
    # flagged (hazard or unknown) — the tier-1 suite pins this per
    # corpus; here it guards the numbers being compared.
    false_negatives = [
        key for key, leaked in dynamic.items()
        if leaked and static[key] is TaintVerdict.LEAK_FREE]
    assert not false_negatives, false_negatives

    checks = len(static)
    speedup = dynamic_s / max(static_s, 1e-9)
    entry = {
        "bench": "static-taint",
        "tests": len(tests),
        "checks": checks,
        "policies": [p.value for p in DrainPolicy],
        "dynamic_leaks": sum(1 for leaked in dynamic.values() if leaked),
        "static_hazards": sum(
            1 for v in static.values() if v is TaintVerdict.LEAK_HAZARD),
        "false_negatives": 0,
        "static_s": round(static_s, 4),
        "dynamic_s": round(dynamic_s, 4),
        "speedup": round(speedup, 1),
    }
    benchmark.extra_info.update(entry)
    _record(entry)
    print(f"\nstatic {static_s:.4f}s vs dynamic {dynamic_s:.4f}s over "
          f"{checks} (test, policy) checks: {speedup:.0f}x, "
          f"0 false negatives")
    assert speedup >= SPEEDUP_FLOOR, (
        f"static taint sweep only {speedup:.1f}x faster than the "
        f"speculative explorer (need >= {SPEEDUP_FLOOR:.0f}x)")
