"""Static pre-filter effectiveness on the campaign enumeration path.

The metric is the one the classifier actually changes: how many tests
need their allowed set enumerated under the *relaxed* reference model
(PC here — the campaign default).  Without the pre-filter that is
every test; with it, only the tests the Shasha–Snir classifier could
not prove SC-equivalent.  The acceptance criterion is a ≥ 2× drop
(under PC most generated shapes carry enough fences/dependencies to
be provably SC-equivalent), plus the end-to-end assertion that the
pre-filtered sweep yields bit-identical allowed sets.  Wall times for
both sweeps are recorded for the trajectory but not asserted — on
this corpus's tiny tests classification overhead can rival the
enumeration it saves; the win scales with test size, the counter is
the stable signal.

Set ``REPRO_BENCH_RECORD=1`` to append the measurement to
``BENCH_static.json`` (the cross-PR trajectory).
"""

import os
import time
from pathlib import Path

from conftest import run_once

from repro.litmus.generator import generate_all
from repro.litmus.harness import allowed_set
from repro.litmus.library import all_library_tests
from repro.memmodel import enumerator as EN
from repro.memmodel.axioms import get_model
from repro.staticanalysis import classify

TRAJECTORY = Path(__file__).resolve().parent.parent / "BENCH_static.json"
REFERENCE = "PC"


def _corpus():
    return generate_all() + all_library_tests()


def _sweep_without_prefilter(tests, model):
    EN._STATIC_CACHE.clear()
    out = {}
    started = time.perf_counter()
    for test in tests:
        out[test.name] = frozenset(allowed_set(test, model))
    return out, time.perf_counter() - started, len(tests)


def _sweep_with_prefilter(tests, model):
    """Classify first; SC-equivalent tests enumerate under SC."""
    EN._STATIC_CACHE.clear()
    sc = get_model("SC")
    out = {}
    relaxed_enumerations = 0
    started = time.perf_counter()
    for test in tests:
        if classify(test, model).sc_equivalent:
            out[test.name] = frozenset(allowed_set(test, sc))
        else:
            relaxed_enumerations += 1
            out[test.name] = frozenset(allowed_set(test, model))
    return out, time.perf_counter() - started, relaxed_enumerations


def _record(entry):
    if not os.environ.get("REPRO_BENCH_RECORD"):
        return
    from repro.obs.perftrack import append_entry
    append_entry(TRAJECTORY, entry)


def test_prefilter_halves_relaxed_enumerations(benchmark):
    """Acceptance: ≥ 2× fewer tests need a full relaxed-model
    enumeration, with bit-identical allowed sets."""
    tests = _corpus()
    model = get_model(REFERENCE)
    base_allowed, base_s, base_enums = \
        _sweep_without_prefilter(tests, model)

    def prefiltered():
        return _sweep_with_prefilter(tests, model)

    pre_allowed, pre_s, pre_enums = run_once(benchmark, prefiltered)
    assert pre_allowed == base_allowed  # soundness, end to end
    assert base_enums == len(tests)
    reduction = base_enums / max(1, pre_enums)
    entry = {
        "bench": "static-prefilter",
        "model": REFERENCE,
        "tests": len(tests),
        "relaxed_enumerations_without": base_enums,
        "relaxed_enumerations_with": pre_enums,
        "reduction": round(reduction, 2),
        "baseline_s": round(base_s, 4),
        "prefiltered_s": round(pre_s, 4),
    }
    benchmark.extra_info.update(entry)
    _record(entry)
    print(f"\nrelaxed enumerations {base_enums} -> {pre_enums} "
          f"({reduction:.1f}x) | sweep {base_s:.3f}s -> {pre_s:.3f}s "
          f"over {len(tests)} tests under {REFERENCE}")
    assert reduction >= 2.0, (
        f"pre-filter only cut relaxed-model enumerations by "
        f"{reduction:.1f}x (need >= 2x)")
