"""Enumerator performance: incremental search vs the old hot path.

Two baselines, both producing bit-identical allowed sets:

* **seed-old** — what ``allowed_outcomes`` executed before the
  incremental rewrite: the flat rf × co cross-product with every
  relation re-derived per candidate and networkx-based acyclicity
  checks.  Reconstructed here by running ``strategy="naive"`` with the
  original networkx cycle check patched back in.  The acceptance
  criterion (≥ 5× on the standard litmus library) is measured against
  this baseline.
* **native-naive** — the in-tree ``strategy="naive"`` escape hatch,
  which already shares the rewrite's native Kahn cycle check and
  no-copy Executions.  The incremental search must still beat it
  clearly (≥ 2× asserted; typically ~4×).

The measured sweep is the campaign shape: every generated litmus test
compiled once and judged under all four models (SC/PC/WC/RVWMO), cold
static-relation caches.  Set ``REPRO_BENCH_RECORD=1`` to append the
measurement to ``BENCH_enumerator.json`` (the cross-PR trajectory).
"""

import os
import time
from pathlib import Path

import networkx as nx
import pytest
from conftest import run_once

from repro.litmus.generator import generate_all
from repro.memmodel import MODELS, program
from repro.memmodel import axioms as AX
from repro.memmodel import enumerator as EN
from repro.memmodel import relations as REL

MODEL_SET = [MODELS[name] for name in ("SC", "PC", "WC", "RVWMO")]
TRAJECTORY = Path(__file__).resolve().parent.parent / "BENCH_enumerator.json"
ROUNDS = 3


def _nx_is_acyclic(edges):
    """The seed implementation this PR replaced."""
    graph = nx.DiGraph()
    graph.add_edges_from(edges)
    return nx.is_directed_acyclic_graph(graph)


class _seed_cycle_check:
    """Temporarily restore the networkx acyclicity check."""

    def __enter__(self):
        self._native = REL.is_acyclic
        REL.is_acyclic = _nx_is_acyclic
        AX.is_acyclic = _nx_is_acyclic

    def __exit__(self, *exc):
        REL.is_acyclic = self._native
        AX.is_acyclic = self._native
        return False


def _library_pairs():
    return [(t.name, t.to_events()) for t in generate_all()]


def _sweep(pairs, strategy):
    """Judge every test under every model; returns (allowed, seconds)."""
    EN._STATIC_CACHE.clear()
    out = {}
    started = time.perf_counter()
    for name, (threads, deps) in pairs:
        for model in MODEL_SET:
            res = EN.enumerate_executions(threads, model,
                                          extra_ppo=deps,
                                          strategy=strategy)
            out[(name, model.name)] = frozenset(res.allowed)
    return out, time.perf_counter() - started


def _best_of(pairs, strategy, rounds=ROUNDS, seed_old=False):
    best = float("inf")
    allowed = None
    for _ in range(rounds):
        if seed_old:
            with _seed_cycle_check():
                allowed, elapsed = _sweep(pairs, strategy)
        else:
            allowed, elapsed = _sweep(pairs, strategy)
        best = min(best, elapsed)
    return allowed, best


def _record(entry):
    if not os.environ.get("REPRO_BENCH_RECORD"):
        return
    from repro.obs.perftrack import append_entry
    append_entry(TRAJECTORY, entry)


def test_library_speedup_vs_seed_old(benchmark):
    """Acceptance: ≥ 5× over the pre-rewrite ``allowed_outcomes``."""
    pairs = _library_pairs()
    old_allowed, old_s = _best_of(pairs, "naive", seed_old=True)

    def incremental():
        return _best_of(pairs, "incremental")

    new_allowed, new_s = run_once(benchmark, incremental)
    assert new_allowed == old_allowed  # bit-identical, every test × model
    speedup = old_s / new_s
    entry = {
        "bench": "library-vs-seed-old",
        "tests": len(pairs),
        "models": [m.name for m in MODEL_SET],
        "seed_old_s": round(old_s, 4),
        "incremental_s": round(new_s, 4),
        "speedup": round(speedup, 2),
    }
    benchmark.extra_info.update(entry)
    _record(entry)
    print(f"\nseed-old={old_s:.3f}s incremental={new_s:.3f}s "
          f"-> {speedup:.1f}x over {len(pairs)} tests x 4 models")
    assert speedup >= 5.0, (
        f"incremental enumerator only {speedup:.1f}x over the seed "
        f"implementation (need >= 5x)")


def test_library_speedup_vs_native_naive(benchmark):
    """The escape-hatch naive strategy (already native) as baseline."""
    pairs = _library_pairs()
    naive_allowed, naive_s = _best_of(pairs, "naive")

    def incremental():
        return _best_of(pairs, "incremental")

    inc_allowed, inc_s = run_once(benchmark, incremental)
    assert inc_allowed == naive_allowed
    speedup = naive_s / inc_s
    entry = {
        "bench": "library-vs-native-naive",
        "naive_s": round(naive_s, 4),
        "incremental_s": round(inc_s, 4),
        "speedup": round(speedup, 2),
    }
    benchmark.extra_info.update(entry)
    _record(entry)
    print(f"\nnative-naive={naive_s:.3f}s incremental={inc_s:.3f}s "
          f"-> {speedup:.1f}x")
    assert speedup >= 2.0, (
        f"incremental enumerator only {speedup:.1f}x over the native "
        f"naive strategy (need >= 2x)")


MICROS = {
    "SB": lambda: [program(0, [("S", 0xA, 1), ("L", 0xB)]),
                   program(1, [("S", 0xB, 1), ("L", 0xA)])],
    "MP": lambda: [program(0, [("S", 0xA, 1), ("S", 0xB, 1)]),
                   program(1, [("L", 0xB), ("L", 0xA)])],
    "IRIW": lambda: [program(0, [("S", 0xA, 1)]),
                     program(1, [("S", 0xB, 1)]),
                     program(2, [("L", 0xA), ("L", 0xB)]),
                     program(3, [("L", 0xB), ("L", 0xA)])],
}


@pytest.mark.parametrize("name", sorted(MICROS))
def test_micro_kernel(benchmark, name):
    """SB/MP/IRIW micros: per-call cold timings + equivalence."""
    threads = MICROS[name]()

    def cold_all_models(strategy):
        EN._STATIC_CACHE.clear()
        started = time.perf_counter()
        allowed = {}
        for model in MODEL_SET:
            res = EN.enumerate_executions(threads, model,
                                          strategy=strategy)
            allowed[model.name] = frozenset(res.allowed)
        return allowed, time.perf_counter() - started

    naive_allowed, naive_s = min(
        (cold_all_models("naive") for _ in range(ROUNDS)),
        key=lambda pair: pair[1])

    def incremental():
        return min((cold_all_models("incremental")
                    for _ in range(ROUNDS)),
                   key=lambda pair: pair[1])

    inc_allowed, inc_s = run_once(benchmark, incremental)
    assert inc_allowed == naive_allowed
    entry = {
        "bench": f"micro-{name}",
        "naive_s": round(naive_s, 6),
        "incremental_s": round(inc_s, 6),
        "speedup": round(naive_s / inc_s, 2),
    }
    benchmark.extra_info.update(entry)
    _record(entry)
    print(f"\n{name}: naive={naive_s * 1e3:.2f}ms "
          f"incremental={inc_s * 1e3:.2f}ms "
          f"({naive_s / inc_s:.1f}x)")
