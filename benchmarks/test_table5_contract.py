"""Table 5 — the cores/interface/OS contract, audited at runtime.

Runs a randomized fault-injection campaign on the functional engine
and verifies all three contract obligations on every execution, then
demonstrates the checker actually catches staged violations of each
rule.
"""

import random

from conftest import run_once

from repro.analysis.reporting import render_table
from repro.core.contract import ContractChecker
from repro.sim import isa
from repro.sim.config import ConsistencyModel, small_config
from repro.sim.multicore import MulticoreSystem
from repro.sim.program import make_program

A, B, C, D = 0x1000, 0x2000, 0x3000, 0x4000


def random_program(rng):
    locs = [A, B, C, D]
    threads = []
    for core in range(2):
        ops = []
        for i in range(rng.randint(3, 6)):
            loc = rng.choice(locs)
            if rng.random() < 0.5:
                ops.append(isa.store(loc, value=rng.randint(1, 9)))
            else:
                ops.append(isa.load(1 + i, loc, label=f"c{core}i{i}"))
        threads.append(ops)
    return make_program(threads)


def contract_campaign(runs=150):
    rng = random.Random(7)
    stats = {"runs": 0, "events": 0, "violations": 0,
             "imprecise": 0, "precise": 0}
    for i in range(runs):
        program = random_program(rng)
        system = MulticoreSystem(
            program, small_config(2, ConsistencyModel.PC), seed=i)
        system.inject_faults([A, B, C, D])
        result = system.run()
        report = result.contract_report
        stats["runs"] += 1
        stats["events"] += report.events_checked
        stats["violations"] += len(report.violations)
        stats["imprecise"] += result.stats.imprecise_exceptions
        stats["precise"] += result.stats.precise_exceptions
    return stats


def test_contract_campaign(benchmark):
    stats = run_once(benchmark, contract_campaign)
    rows = [
        ("Cores: supply in SB order", "audited", stats["runs"]),
        ("Interface: FIFO to OS", "audited", stats["runs"]),
        ("OS: resume/apply-all/in-order", "audited", stats["runs"]),
        ("contract events checked", "", stats["events"]),
        ("imprecise exceptions", "", stats["imprecise"]),
        ("precise exceptions", "", stats["precise"]),
        ("violations", "must be 0", stats["violations"]),
    ]
    print()
    print(render_table(["Rule (Table 5)", "note", "count"], rows,
                       title="Table 5 — contract audit campaign"))
    assert stats["violations"] == 0
    assert stats["imprecise"] > 0
    benchmark.extra_info.update(stats)


def test_checker_catches_each_rule():
    """Negative controls: a violation of each rule is detected."""
    # Interface reorder
    c = ContractChecker(ordered=True)
    c.sb_send(0, 0); c.put(0, 0); c.sb_send(0, 1); c.put(0, 1)
    c.get(0, 1); c.get(0, 0)
    assert any(v.rule == "interface-order" for v in c.check().violations)

    # Apply order
    c = ContractChecker(ordered=True)
    c.sb_send(0, 0); c.put(0, 0); c.sb_send(0, 1); c.put(0, 1)
    c.get(0, 0); c.get(0, 1); c.apply(0, 1); c.apply(0, 0)
    assert any(v.rule == "os-apply-order" for v in c.check().violations)

    # Resume before handling
    c = ContractChecker(ordered=True)
    c.sb_send(0, 0); c.put(0, 0); c.resume(0)
    assert any(v.rule == "os-resume-after-handling"
               for v in c.check().violations)
