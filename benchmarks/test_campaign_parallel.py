"""Parallel campaign engine — serial vs sharded wall time.

Runs the full generated litmus suite (§6.3 scale-down) twice, once
serially and once sharded over a worker pool, asserts the merged
reports carry bit-identical per-test outcome sets (the determinism
guarantee of per-test seed derivation), and records both wall times
plus the speedup in the benchmark report.  The speedup itself is only
asserted on multi-core hosts — on one CPU the pool can't win.
"""

import os

import pytest
from conftest import run_once

from repro.litmus import RunConfig, run_campaign
from repro.litmus.generator import generate_all

JOBS = min(4, os.cpu_count() or 1)


def campaign(jobs):
    tests = generate_all()
    config = RunConfig(seeds=6, inject_faults=True)
    return run_campaign(tests, config, jobs=jobs)


def outcome_sets(report):
    return [(v.test.name, v.run.outcomes,
             v.clean_run.outcomes if v.clean_run else None)
            for v in report.verdicts]


def test_campaign_parallel(benchmark):
    serial = campaign(jobs=1)
    parallel = run_once(benchmark, campaign, jobs=JOBS)

    assert outcome_sets(serial) == outcome_sets(parallel)
    assert serial.ok and parallel.ok
    assert parallel.tests == serial.tests == len(generate_all())

    speedup = serial.wall_time / max(1e-9, parallel.wall_time)
    print(f"\ncampaign: {serial.tests} tests  "
          f"serial {serial.wall_time:.2f}s  "
          f"parallel(x{JOBS}) {parallel.wall_time:.2f}s  "
          f"speedup {speedup:.2f}x")
    benchmark.extra_info["tests"] = serial.tests
    benchmark.extra_info["jobs"] = JOBS
    benchmark.extra_info["serial_wall_s"] = round(serial.wall_time, 3)
    benchmark.extra_info["parallel_wall_s"] = round(parallel.wall_time, 3)
    benchmark.extra_info["speedup"] = round(speedup, 3)
    if JOBS >= 2:
        assert speedup > 1.0, (
            f"sharding over {JOBS} workers should beat serial "
            f"({serial.wall_time:.2f}s vs {parallel.wall_time:.2f}s)")
