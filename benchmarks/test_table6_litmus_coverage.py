"""Table 6 / §6.3 — the litmus campaign.

Runs the generated suite (all eight ordering-rule categories) plus the
classic library on the functional engine with faults injected on every
test location, and checks zero negative differences against the
axiomatic reference — the paper's pass criterion.  The paper runs the
1600-test RISC-V suite on FPGA; our generated families cover the same
eight categories at laptop scale.
"""

import pytest
from conftest import run_once

from repro.analysis.reporting import render_table
from repro.litmus import RunConfig, all_library_tests, check_suite
from repro.litmus.generator import generate_all
from repro.sim.config import ConsistencyModel

#: Paper's Table 6 case counts, for side-by-side reporting.
PAPER_CASES = {
    "Dependencies": 2366,
    "Program order (same location)": 368,
    "Preserved program order": 733,
    "External read-from order": 1544,
    "Internal read-from order": 1304,
    "Coherence order": 747,
    "From-read order": 976,
    "Barriers": 1581,
}


def run_campaign(model):
    tests = generate_all() + all_library_tests()
    config = RunConfig(model=model, seeds=20, inject_faults=True)
    return check_suite(tests, config)


@pytest.mark.parametrize("model", [ConsistencyModel.PC,
                                   ConsistencyModel.WC])
def test_litmus_campaign(benchmark, model):
    report = run_once(benchmark, run_campaign, model)
    counts = report.category_counts()
    rows = [
        (cat, counts.get(cat, 0), PAPER_CASES.get(cat, "-"))
        for cat in PAPER_CASES
    ]
    rows.append(("TOTAL tests", report.tests, 1600))
    rows.append(("imprecise exceptions handled",
                 report.total_imprecise_exceptions, "16K-32K/GAP-run"))
    rows.append(("negative differences", len(report.failures), 0))
    print()
    print(render_table(
        ["Ordering relation", "our tests", "paper cases"], rows,
        title=f"Table 6 — litmus coverage under {model} "
              f"(faults injected everywhere)"))
    assert report.ok, report.summary()
    assert len(counts) == 8
    assert report.total_imprecise_exceptions > 0
    benchmark.extra_info["tests"] = report.tests
    benchmark.extra_info["imprecise"] = report.total_imprecise_exceptions
