"""Ablation benches for the design choices DESIGN.md calls out.

* same-stream vs split-stream draining: correctness and drain volume;
* batched vs minimal OS handler across exception rates;
* FSB sizing vs store-buffer size (backpressure margin);
* SC vs PC vs WC performance ladder.
"""

import pytest
from conftest import run_once

from repro.analysis.reporting import render_table
from repro.core.exceptions import ExceptionCode
from repro.core.streams import DrainPolicy, PendingStore, interface_volume
from repro.litmus import RunConfig, run_test
from repro.litmus.library import message_passing
from repro.sim.config import ConsistencyModel, table2_config
from repro.sim.timing import run_trace
from repro.workloads import build_workload, run_microbenchmark


def test_ablation_stream_policy_volume(benchmark):
    """Same-stream routes more stores through the interface — the
    price of correctness-by-construction."""
    def volumes():
        rows = []
        for faulting in (1, 4, 8):
            entries = [
                PendingStore(0x1000 * i, i,
                             error_code=(ExceptionCode.EINJECT_BUS_ERROR
                                         if i < faulting
                                         else ExceptionCode.NONE))
                for i in range(16)
            ]
            same = interface_volume(entries, DrainPolicy.SAME_STREAM)
            split = interface_volume(entries, DrainPolicy.SPLIT_STREAM)
            rows.append((faulting, same[0], split[0]))
        return rows
    rows = run_once(benchmark, volumes)
    print()
    print(render_table(
        ["faulting/16", "same-stream PUTs", "split-stream PUTs"], rows,
        title="Ablation — interface drain volume per policy"))
    for faulting, same_puts, split_puts in rows:
        assert same_puts == 16
        assert split_puts == faulting


def test_ablation_stream_policy_correctness():
    """Split stream admits PC-violating behaviour on a litmus shape;
    same stream never does (the Figure 2 result restated as an
    ablation over the policy knob)."""
    test = message_passing()
    violating = (("r0", 1), ("r1", 0))
    same = run_test(test, RunConfig(model=ConsistencyModel.PC, seeds=300,
                                    inject_faults=True,
                                    drain_policy=DrainPolicy.SAME_STREAM))
    split = run_test(test, RunConfig(model=ConsistencyModel.PC, seeds=300,
                                     inject_faults=True,
                                     drain_policy=DrainPolicy.SPLIT_STREAM))
    assert violating not in same.outcomes
    assert violating in split.outcomes


def test_ablation_handler_batching(benchmark):
    """Batching amortisation grows with the exception rate."""
    def sweep():
        rows = []
        for fraction in (0.05, 0.2, 0.4):
            minimal = run_microbenchmark(fraction, batching=False,
                                         stores=1500,
                                         array_bytes=1 << 20)
            batched = run_microbenchmark(fraction, batching=True,
                                         stores=1500,
                                         array_bytes=1 << 20)
            rows.append((fraction,
                         round(minimal.total_per_fault),
                         round(batched.total_per_fault),
                         round(minimal.stores_per_exception, 2)))
        return rows
    rows = run_once(benchmark, sweep)
    print()
    print(render_table(
        ["fault frac", "minimal cy/fault", "batching cy/fault",
         "stores/exc"], rows,
        title="Ablation — handler batching vs exception rate"))
    for _, minimal, batched, _ in rows:
        assert batched <= minimal


def test_ablation_fsb_sizing():
    """The FSB is sized to the store buffer (§5.2): a full buffer's
    worth of drains must fit; one fewer slot overflows."""
    from repro.core.fsb import FaultingStoreBuffer, FsbEntry, FsbOverflowError

    sb_entries = 32
    fsb = FaultingStoreBuffer(capacity=32)
    for i in range(sb_entries):
        fsb.drain(FsbEntry(addr=i * 8, data=i))
    assert fsb.is_full

    small = FaultingStoreBuffer(capacity=16)
    with pytest.raises(FsbOverflowError):
        for i in range(sb_entries):
            small.drain(FsbEntry(addr=i * 8, data=i))


def test_ablation_consistency_ladder(benchmark):
    """SC <= PC <= WC on a store-heavy workload (the §2.3 premise)."""
    def ladder():
        cfg = table2_config()
        cfg.cores = 2
        workload = build_workload("BC", cores=2, scale=0.3)
        out = {}
        for model in (ConsistencyModel.SC, ConsistencyModel.PC,
                      ConsistencyModel.WC):
            out[model] = run_trace(cfg.with_consistency(model),
                                   workload.traces).ipc
        return out
    ipcs = run_once(benchmark, ladder)
    print()
    print(render_table(
        ["model", "IPC"], [(m, round(v, 3)) for m, v in ipcs.items()],
        title="Ablation — consistency-model performance ladder (BC)"))
    assert ipcs["WC"] >= ipcs["PC"] >= ipcs["SC"]
