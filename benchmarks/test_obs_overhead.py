"""Telemetry overhead on the enumerator library sweep.

The acceptance criterion for the observability PR: instrumented code
with telemetry *disabled* (the ambient NULL context, the default for
every caller that never opts in) must cost at most 5% over the same
sweep with the instrumentation short-circuited.  The disabled path is
one module-global read plus an ``enabled`` check per
``enumerate_executions`` call — everything else happens only under a
live :class:`repro.obs.Telemetry`.

The enabled-telemetry cost (spans + counters into a buffering sink)
is also measured and recorded, with a loose sanity bound: the
instrumentation publishes once per enumeration, never per search
node, so even live telemetry must stay cheap.

Set ``REPRO_BENCH_RECORD=1`` to append the measurement to
``BENCH_obs.json`` (the cross-PR trajectory).
"""

import gc
import os
import time
from pathlib import Path

from conftest import run_once

from repro import obs
from repro.litmus.generator import generate_all
from repro.memmodel import MODELS
from repro.memmodel import enumerator as EN

MODEL_SET = [MODELS[name] for name in ("SC", "PC", "WC", "RVWMO")]
TRAJECTORY = Path(__file__).resolve().parent.parent / "BENCH_obs.json"
ROUNDS = 7

#: Measured-noise headroom on top of the 5% criterion is deliberately
#: NOT added: the disabled path is so far under the bound that the
#: raw criterion holds with paired-ratio timing.  Container noise is
#: one-sided (it only ever inflates a ratio), so a failed measurement
#: is re-taken up to MEASURE_ATTEMPTS times before asserting.
DISABLED_OVERHEAD_LIMIT = 1.05
ENABLED_OVERHEAD_LIMIT = 1.50
MEASURE_ATTEMPTS = 3


def _pairs():
    return [(t.name, t.to_events()) for t in generate_all()]


def _sweep(pairs):
    EN._STATIC_CACHE.clear()
    started = time.perf_counter()
    for _name, (threads, deps) in pairs:
        for model in MODEL_SET:
            EN.enumerate_executions(threads, model, extra_ppo=deps)
    return time.perf_counter() - started


class _stripped_instrumentation:
    """Short-circuit the enumerator's telemetry hook entirely — the
    closest reproducible stand-in for pre-PR code."""

    def __enter__(self):
        self._publish = EN._publish_stats
        EN._publish_stats = lambda *args: None

    def __exit__(self, *exc):
        EN._publish_stats = self._publish
        return False


def _measure(pairs, rounds=ROUNDS):
    """Paired-ratio timing: each round times the three configurations
    back to back and contributes one ratio per comparison, then the
    median ratio across rounds is reported.  Pairing cancels the slow
    drift (frequency scaling, noisy-neighbour jitter) that dominates
    a sweep this short; the median discards the rounds a scheduler
    hiccup still poisons."""
    rows = []
    _sweep(pairs)  # warmup: imports, bytecode, allocator
    for _ in range(rounds):
        gc.collect()  # don't bill one config's garbage to the next
        with _stripped_instrumentation():
            stripped = _sweep(pairs)
        assert obs.current() is obs.NULL
        gc.collect()
        disabled = _sweep(pairs)
        tel = obs.Telemetry(sinks=[obs.MemorySink()])
        gc.collect()
        with obs.use(tel):
            enabled = _sweep(pairs)
        rows.append((stripped, disabled, enabled))

    def median(values):
        ordered = sorted(values)
        mid = len(ordered) // 2
        if len(ordered) % 2:
            return ordered[mid]
        return (ordered[mid - 1] + ordered[mid]) / 2

    return {
        "stripped": min(r[0] for r in rows),
        "disabled": min(r[1] for r in rows),
        "enabled": min(r[2] for r in rows),
        "disabled_ratio": median([d / s for s, d, _ in rows]),
        "enabled_ratio": median([e / s for s, _, e in rows]),
    }


def _record(entry):
    if not os.environ.get("REPRO_BENCH_RECORD"):
        return
    from repro.obs.perftrack import append_entry
    append_entry(TRAJECTORY, entry)


def test_disabled_telemetry_overhead(benchmark):
    """Acceptance: disabled-telemetry overhead ≤ 5% on the sweep."""
    pairs = _pairs()
    timings = run_once(benchmark, _measure, pairs)
    for _attempt in range(MEASURE_ATTEMPTS - 1):
        if (timings["disabled_ratio"] <= DISABLED_OVERHEAD_LIMIT
                and timings["enabled_ratio"] <= ENABLED_OVERHEAD_LIMIT):
            break
        timings = _measure(pairs)
    stripped_s = timings["stripped"]
    disabled_s = timings["disabled"]
    enabled_s = timings["enabled"]
    disabled_ratio = timings["disabled_ratio"]
    enabled_ratio = timings["enabled_ratio"]
    entry = {
        "bench": "obs-overhead-library-sweep",
        "tests": len(pairs),
        "models": [m.name for m in MODEL_SET],
        "stripped_s": round(stripped_s, 4),
        "disabled_s": round(disabled_s, 4),
        "enabled_s": round(enabled_s, 4),
        "disabled_overhead": round(disabled_ratio, 4),
        "enabled_overhead": round(enabled_ratio, 4),
    }
    benchmark.extra_info.update(entry)
    _record(entry)
    print(f"\nstripped={stripped_s:.3f}s disabled={disabled_s:.3f}s "
          f"({disabled_ratio:.3f}x) enabled={enabled_s:.3f}s "
          f"({enabled_ratio:.3f}x) over {len(pairs)} tests x 4 models")
    assert disabled_ratio <= DISABLED_OVERHEAD_LIMIT, (
        f"disabled telemetry costs {(disabled_ratio - 1) * 100:.1f}% "
        f"on the enumerator sweep (criterion: <= 5%)")
    assert enabled_ratio <= ENABLED_OVERHEAD_LIMIT, (
        f"live telemetry costs {(enabled_ratio - 1) * 100:.1f}% "
        f"on the enumerator sweep (sanity bound: <= 50%)")


def test_enabled_sweep_produces_complete_metrics():
    """The enabled run isn't just cheap — it observes every call."""
    pairs = _pairs()[:20]
    tel = obs.Telemetry(sinks=[obs.MemorySink()])
    with obs.use(tel):
        _sweep(pairs)
    assert tel.counter("enum.calls").value == len(pairs) * len(MODEL_SET)
    assert (tel.histogram("enum.wall_time_s").count
            == len(pairs) * len(MODEL_SET))
