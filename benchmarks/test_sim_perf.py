"""Simulator throughput: the capture/replay split on the pinned
Figure 6 sweep.

The seed pipeline rebuilt every workload and replayed it through the
per-op heap engine on every sweep; the split captures each build into
a ``repro.trace/v1`` artifact once and drives only the timing model
afterwards.  Three numbers pin the result:

* **CI floor** — warm replay of the high-throughput smoke subset must
  beat the cold build-plus-naive pipeline by at least
  ``REPRO_SIM_SPEEDUP_FLOOR`` (default 5x).
* **Seed pin** — the full pinned sweep, measured against the recorded
  seed-era wall clock (``REPRO_SIM_SEED_WALL_S``, 159 s on the
  reference box before the split landed): >= 10x end-to-end.  Asserted
  on recording runs; every run still gates a 4x in-process tripwire.
* **Bit-identity** — optimized and naive engines produce identical
  simulated cycle counts and identical :func:`figure6_gate` verdicts;
  the speedup is pure wall-clock, never a model change.

Paper-scale coverage rides along: GAP kernels at >= 100k nodes and the
16-core concurrent-faulting-streams scenario (FSB contention + request
latency percentiles from the obs histogram registry).

Set ``REPRO_BENCH_RECORD=1`` to append measurements to
``BENCH_sim.json`` (the cross-PR trajectory).
"""

import os
import time
from pathlib import Path

import pytest
from conftest import run_once

from repro.analysis.figure6 import figure6_gate, run_figure6
from repro.analysis.scenario16 import run_scenario16
from repro.sim.config import ConsistencyModel, table2_config
from repro.sim.timing import run_trace
from repro.workloads import build_workload
from repro.workloads.capture import TraceCache
from repro.workloads.registry import table3_workload_names

TRAJECTORY = Path(__file__).resolve().parent.parent / "BENCH_sim.json"

#: Pinned Figure 6 sweep wall-clock at the growth seed (the commit
#: before the capture/replay split), measured on the reference box.
SEED_WALL_S = float(os.environ.get("REPRO_SIM_SEED_WALL_S", "159.0"))

#: In-process floor: cold (build + naive engine, the seed pipeline
#: shape) over warm (cached artifact + fast engine) on the smoke
#: subset.  Overridable for slow shared runners.
SPEEDUP_FLOOR = float(os.environ.get("REPRO_SIM_SPEEDUP_FLOOR", "5.0"))

#: Subset for the CI smoke: the highest replay-gain workloads, so the
#: gate keeps margin over machine noise; the full-sweep test below
#: covers every pinned workload.
SMOKE_WORKLOADS = ("BFS", "SSSP", "Silo")

#: The fields a capture/replay split must never change.
ROW_FIELDS = ("baseline_cycles", "imprecise_cycles",
              "imprecise_exceptions", "faulting_stores",
              "precise_exceptions")


def _row_key(rows):
    return [(r.workload,) + tuple(getattr(r, f) for f in ROW_FIELDS)
            for r in rows]


def _verdict_key(verdict):
    return (verdict.ok, sorted(verdict.gap_relative.items()),
            round(verdict.tailbench_aggregate, 12))


def _record(entry):
    if not os.environ.get("REPRO_BENCH_RECORD"):
        return
    from repro.obs.perftrack import append_entry
    append_entry(TRAJECTORY, entry)


# ----------------------------------------------------------------------
# CI gate
# ----------------------------------------------------------------------
def test_replay_speedup_smoke(benchmark, tmp_path):
    """Warm replay beats the seed pipeline shape by >= the floor."""
    def cold():
        return run_figure6(SMOKE_WORKLOADS, strategy="naive")

    started = time.perf_counter()
    cold_rows = cold()
    cold_s = time.perf_counter() - started

    cache = TraceCache(tmp_path / "traces")
    run_figure6(SMOKE_WORKLOADS, cache=cache, strategy="fast")  # capture
    warm_s = float("inf")
    for _ in range(2):
        started = time.perf_counter()
        warm_rows = run_figure6(SMOKE_WORKLOADS, cache=cache,
                                strategy="fast")
        warm_s = min(warm_s, time.perf_counter() - started)

    assert _row_key(cold_rows) == _row_key(warm_rows)
    speedup = cold_s / warm_s
    print(f"\nsmoke {SMOKE_WORKLOADS}: cold {cold_s:.2f}s  "
          f"warm {warm_s:.2f}s  speedup {speedup:.1f}x")
    assert speedup >= SPEEDUP_FLOOR, (
        f"replay speedup {speedup:.2f}x under the "
        f"{SPEEDUP_FLOOR:.1f}x floor (cold {cold_s:.2f}s, "
        f"warm {warm_s:.2f}s)")

    run_once(benchmark, lambda: None)
    benchmark.extra_info["cold_s"] = round(cold_s, 3)
    benchmark.extra_info["warm_s"] = round(warm_s, 3)
    benchmark.extra_info["speedup"] = round(speedup, 2)


# ----------------------------------------------------------------------
# The pinned sweep (acceptance: >= 10x vs the seed engine)
# ----------------------------------------------------------------------
def test_figure6_sweep_vs_seed(benchmark, tmp_path):
    """Full pinned sweep: bit-identical rows and verdicts between the
    naive and fast engines, and the end-to-end trajectory number."""
    started = time.perf_counter()
    naive_rows = run_figure6(strategy="naive")
    cold_s = time.perf_counter() - started

    cache = TraceCache(tmp_path / "traces")
    started = time.perf_counter()
    run_figure6(cache=cache, strategy="fast")       # capture pass
    capture_s = time.perf_counter() - started
    warm_s = float("inf")
    for _ in range(2):
        started = time.perf_counter()
        fast_rows = run_figure6(cache=cache, strategy="fast")
        warm_s = min(warm_s, time.perf_counter() - started)

    # Bit-identical simulated results, and identical paper verdicts.
    assert _row_key(naive_rows) == _row_key(fast_rows)
    assert (_verdict_key(figure6_gate(naive_rows))
            == _verdict_key(figure6_gate(fast_rows)))

    speedup = cold_s / warm_s
    vs_seed = SEED_WALL_S / warm_s
    print(f"\nfigure6 sweep: cold(build+naive) {cold_s:.1f}s  "
          f"capture {capture_s:.1f}s  warm replay {warm_s:.2f}s")
    print(f"in-process speedup {speedup:.1f}x; vs seed "
          f"({SEED_WALL_S:.0f}s) {vs_seed:.1f}x")

    # Every run trips on gross regressions; the 10x acceptance number
    # is pinned on recording runs against the seed-era reference.
    assert speedup >= 4.0, (cold_s, warm_s)
    if os.environ.get("REPRO_BENCH_RECORD"):
        assert vs_seed >= 10.0, (SEED_WALL_S, warm_s)

    _record({
        "bench": "sim-figure6-sweep",
        "cold_s": round(cold_s, 2),
        "capture_s": round(capture_s, 2),
        "warm_s": round(warm_s, 3),
        "speedup": round(speedup, 2),
        "seed_wall_s": SEED_WALL_S,
        "speedup_vs_seed": round(vs_seed, 1),
    })
    run_once(benchmark, lambda: None)
    benchmark.extra_info["speedup"] = round(speedup, 2)
    benchmark.extra_info["speedup_vs_seed"] = round(vs_seed, 1)


# ----------------------------------------------------------------------
# Engine equivalence across the workload registry
# ----------------------------------------------------------------------
@pytest.mark.parametrize("name", table3_workload_names() + ["PR", "CC"])
def test_engine_bit_identity(name):
    """fast == naive on cycles and faults for every registered
    workload, baseline and injected."""
    from repro.core.handler import MinimalHandler
    from repro.sim.devices.einject import EInject

    cfg = table2_config().with_consistency(ConsistencyModel.WC)
    workload = build_workload(name, cores=2, seed=3, scale=0.25,
                              inject=True)

    results = {}
    for strategy in ("naive", "fast"):
        baseline = run_trace(cfg, workload.traces, strategy=strategy)
        einject = EInject()
        for page in workload.injectable_pages():
            einject.mmio_set(page)
        injected = run_trace(cfg, workload.traces, einject=einject,
                             handler=MinimalHandler(cfg.os),
                             strategy=strategy)
        results[strategy] = (
            baseline.total_cycles,
            [s.cycles for s in baseline.core_stats],
            injected.total_cycles,
            injected.total_imprecise_exceptions,
            injected.total_faulting_stores,
            [s.precise_exceptions for s in injected.core_stats],
        )
    assert results["naive"] == results["fast"], name


# ----------------------------------------------------------------------
# Paper-scale GAP graphs
# ----------------------------------------------------------------------
@pytest.mark.parametrize("kernel", ["BFS", "PR", "CC"])
def test_gap_paper_scale(benchmark, kernel):
    """>= 100k-node graphs replay inside the benchmark budget."""
    scale = 50.0                       # 2048 * 50 = 102,400 nodes
    workload = build_workload(kernel, cores=2, seed=1, scale=scale,
                              degree=2, trials=1)
    ops = sum(len(t) for t in workload.traces)
    cfg = table2_config().with_consistency(ConsistencyModel.WC)

    started = time.perf_counter()
    result = run_once(benchmark, run_trace, cfg, workload.traces,
                      strategy="fast")
    replay_s = time.perf_counter() - started

    throughput = ops / replay_s
    print(f"\n{kernel} @102,400 nodes: {ops / 1e6:.1f}M ops, "
          f"replay {replay_s:.1f}s, {throughput / 1e6:.2f}M ops/s")
    assert result.total_instructions == ops
    assert ops >= 4_000_000, ops       # genuinely paper-scale streams
    assert throughput >= 200_000, (    # the benchmark budget
        f"{kernel} replay sustained only {throughput:.0f} ops/s")
    benchmark.extra_info["ops"] = ops
    benchmark.extra_info["mops_per_s"] = round(throughput / 1e6, 2)


# ----------------------------------------------------------------------
# 16-core concurrent faulting streams
# ----------------------------------------------------------------------
def test_scenario16_contention_report(benchmark):
    """The full Table 2 machine: overlapping drains and request-latency
    percentiles read from the obs histogram registry."""
    report = run_once(benchmark, run_scenario16)

    assert report.cores == 16
    assert report.imprecise_exceptions > 0
    assert report.faulting_stores > 0
    # Sixteen faulting streams genuinely contend for drain slots...
    assert report.peak_concurrent_drains > 1
    assert report.mean_concurrent_drains > 1.0
    assert report.max_fsb_occupancy >= 1.0
    # ...and the histogram registry yields a real latency distribution.
    assert report.request_samples >= 16 * 64
    assert 0 < report.request_p50 <= report.request_p99

    d = report.as_dict()
    print(f"\nscenario16: peak {report.peak_concurrent_drains} "
          f"concurrent drains (mean {report.mean_concurrent_drains:.1f}), "
          f"FSB depth {report.max_fsb_occupancy:.0f}, request p50 "
          f"{report.request_p50:.0f} / p99 {report.request_p99:.0f} cy")
    _record({
        "bench": "sim-scenario16",
        "peak_concurrent_drains": report.peak_concurrent_drains,
        "request_p50": report.request_p50,
        "request_p99": report.request_p99,
    })
    benchmark.extra_info.update(d["fsb_contention"])
    benchmark.extra_info.update(d["request_latency_cycles"])
