"""Figure 5 — imprecise-exception overhead breakdown, with and
without batching.

Expected shape (paper §6.4): per-faulting-store cost ~600 cycles in
the minimal case, dominated by "other OS" (context switch, dispatch);
the microarchitectural part (FSB drain + flush) is a tiny fraction;
batching amortises the invocation cost when multiple faulting stores
share one exception.
"""

import pytest
from conftest import run_once

from repro.analysis.reporting import render_figure5
from repro.workloads import figure5_sweep, run_microbenchmark


@pytest.fixture(scope="module")
def sweep_rows():
    return figure5_sweep(fractions=(0.01, 0.1, 0.3), seed=1)


def test_figure5_breakdown(benchmark, sweep_rows):
    rows = run_once(benchmark, lambda: sweep_rows)
    print()
    print(render_figure5(rows))

    # Shape 1: OS overhead dominates microarchitecture everywhere.
    for row in rows:
        assert row["os_other"] > row["uarch"], row

    # Shape 2: at high exception rates, stores batch per exception and
    # the per-fault total drops.
    low = [r for r in rows if r["fault_fraction"] == 0.01][0]
    high = [r for r in rows if r["fault_fraction"] == 0.3
            and r["mode"] == "minimal"][0]
    assert high["stores_per_exception"] > low["stores_per_exception"]
    assert high["total"] < low["total"]

    # Shape 3: batching beats the minimal handler when batches exist.
    minimal = {r["fault_fraction"]: r for r in rows
               if r["mode"] == "minimal"}
    batching = {r["fault_fraction"]: r for r in rows
                if r["mode"] == "batching"}
    assert batching[0.3]["total"] <= minimal[0.3]["total"]

    benchmark.extra_info["rows"] = [
        {k: (round(v, 1) if isinstance(v, float) else v)
         for k, v in r.items()} for r in rows]


def test_figure5_single_fault_cost_near_paper():
    """Minimal handler, sparse faults: ~600 cycles per faulting store
    (we accept a 2x band around the paper's figure)."""
    res = run_microbenchmark(faulting_page_fraction=0.01, batching=False,
                             stores=2000, array_bytes=1 << 21)
    assert 300 <= res.total_per_fault <= 1200
    assert res.uarch_per_fault / res.total_per_fault < 0.35
