"""Figure 1 — the message-passing litmus test.

Reproduces the figure's claim: of the four possible results, only
``L(B)=1 ∧ L(A)=0`` is prohibited (with the two explicit fences that
make WC identical to PC here).  Checked both axiomatically (the
enumerator) and operationally (the engine never produces it).
"""

from conftest import run_once

from repro.analysis.reporting import render_table
from repro.litmus import RunConfig, allowed_set, run_test
from repro.litmus.library import message_passing_fenced
from repro.memmodel import WC as WC_MODEL
from repro.sim.config import ConsistencyModel


def figure1_experiment():
    test = message_passing_fenced()
    allowed = allowed_set(test, WC_MODEL)
    run = run_test(test, RunConfig(model=ConsistencyModel.WC, seeds=200,
                                   inject_faults=False))
    results = []
    for la in (0, 1):
        for lb in (0, 1):
            outcome = tuple(sorted({"r0": la, "r1": lb}.items()))
            results.append({
                "L(A)": la, "L(B)": lb,
                "model": outcome in allowed,
                "observed": outcome in run.outcomes,
            })
    return results


def test_figure1(benchmark):
    results = run_once(benchmark, figure1_experiment)
    rows = [
        (r["L(A)"], r["L(B)"],
         "allowed" if r["model"] else "PROHIBITED",
         "yes" if r["observed"] else "no")
        for r in results
    ]
    print()
    print(render_table(["L(A)", "L(B)", "model verdict", "observed"],
                       rows, title="Figure 1 — fenced message passing"))
    verdicts = {(r["L(A)"], r["L(B)"]): r for r in results}
    # Only (A=1, B=0) is prohibited; it must never be observed.
    assert not verdicts[(1, 0)]["model"]
    assert not verdicts[(1, 0)]["observed"]
    for key in [(0, 0), (0, 1), (1, 1)]:
        assert verdicts[key]["model"]
