"""Table 1 — classification of x86 exceptions by pipeline origin.

Regenerates the taxonomy table and checks its structural properties:
machine checks are the only imprecise (hierarchy-origin) entry.
"""

from conftest import run_once

from repro.analysis.reporting import render_table
from repro.core.exceptions import (
    X86_EXCEPTIONS,
    ExceptionClass,
    PipelineStage,
    exceptions_by_stage,
)


def build_table1():
    buckets = exceptions_by_stage()
    rows = []
    for stage in (PipelineStage.FETCH, PipelineStage.DECODE,
                  PipelineStage.EXECUTE, PipelineStage.MEMORY,
                  PipelineStage.ANY, PipelineStage.HIERARCHY):
        for desc in buckets.get(stage, []):
            rows.append((desc.klass.value, stage.value, desc.name,
                         "yes" if desc.precise else "NO"))
    return rows


def test_table1(benchmark):
    rows = run_once(benchmark, build_table1)
    print()
    print(render_table(["class", "origin", "exception", "precise"], rows,
                       title="Table 1 — x86 exception classification"))
    imprecise = [r for r in rows if r[3] == "NO"]
    assert len(rows) == len(X86_EXCEPTIONS) == 23
    assert [r[2] for r in imprecise] == ["Machine check"]
    benchmark.extra_info["exceptions"] = len(rows)
    benchmark.extra_info["imprecise"] = len(imprecise)
