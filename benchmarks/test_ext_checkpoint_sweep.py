"""Extension bench — "speculation state required to achieve full WC
performance" measured directly (Table 3's framing, §3.2-3.3).

ASO-with-k-checkpoints mode sweeps the checkpoint budget: each store
miss needs a checkpoint; when none is free the core stalls like the
SC baseline.  The sweep finds the knee where performance saturates at
full-WC and converts the required checkpoints into state bytes using
the §3.3 per-structure sizes; the 4× store-to-load skew system needs
a larger budget, reproducing the paper's scaling argument.
"""

import pytest
from conftest import run_once

from repro.analysis.reporting import render_bar_series, render_table
from repro.sim.config import ConsistencyModel, table2_config
from repro.sim.cpu.speculation import SpeculationStateConfig
from repro.sim.timing import run_trace
from repro.workloads import build_workload

CAPS = (1, 2, 4, 8, 16, 32)


def sweep(workload_name="BC", skew=None):
    cfg = table2_config().with_consistency(ConsistencyModel.WC)
    cfg.cores = 2
    if skew:
        cfg = cfg.with_store_load_skew(skew)
    workload = build_workload(workload_name, cores=2, scale=0.3)
    full = run_trace(cfg, workload.traces).ipc
    curve = {}
    for cap in CAPS:
        ipc = run_trace(cfg, workload.traces, checkpoint_cap=cap).ipc
        curve[cap] = ipc / full
    return curve


def required_cap(curve, threshold=0.98):
    for cap in CAPS:
        if curve[cap] >= threshold:
            return cap
    return CAPS[-1]


def test_checkpoint_sweep(benchmark):
    def experiment():
        return sweep("BC"), sweep("BC", skew=4)
    base, skewed = run_once(benchmark, experiment)

    spec = SpeculationStateConfig()
    rows = []
    for cap in CAPS:
        rows.append((cap, f"{100 * base[cap]:.1f}%",
                     f"{100 * skewed[cap]:.1f}%",
                     f"{cap * spec.checkpoint_bytes / 1024:.1f}"))
    print()
    print(render_table(
        ["checkpoints", "% of WC (base)", "% of WC (4x skew)",
         "checkpoint KB"], rows,
        title="Extension — WC-performance fraction vs checkpoint budget "
              "(BC)"))

    base_need = required_cap(base)
    skew_need = required_cap(skewed)
    print(f"\ncheckpoints for ~full WC: baseline {base_need}, "
          f"4x skew {skew_need}")

    # Shape: monotone saturation; skew needs at least as many.
    assert all(base[CAPS[i]] <= base[CAPS[i + 1]] + 0.02
               for i in range(len(CAPS) - 1))
    assert base[CAPS[-1]] >= 0.99
    assert skew_need >= base_need
    benchmark.extra_info["baseline_need"] = base_need
    benchmark.extra_info["skew_need"] = skew_need
