"""Axiomatic definitions of the memory models used by the paper.

Each model is expressed in the Alglave-style framework the paper's
formalism builds on (its Table 4 notation and §4.2 rules):

* Every model requires **coherence** (a.k.a. uniproc / SC-per-location):
  ``acyclic(po_loc ∪ rf ∪ co ∪ fr)``.
* Every model requires **global-happens-before acyclicity**:
  ``acyclic(ppo ∪ fences ∪ rfe ∪ co ∪ fr ∪ protocol)``, where ``ppo``
  is the model's preserved program order and ``protocol`` carries the
  imprecise-store-exception chain
  ``DETECT <m PUT <m GET <m S_OS <m RESOLVE``.

Preserved program order per model (§4.2):

* **SC** keeps all of po.
* **PC / TSO** relaxes only store→load: ``ppo = po \\ (W × R)``.
  Internal reads-from (store-buffer forwarding) is excluded from the
  global order, which is what makes the store buffer legal.
* **WC** keeps only same-address pairs; all other order comes from
  fences.  (The paper: "WC relaxes all orderings except the ones
  involving fences and memory operations to the same address.")
* **RVWMO** is modelled as WC plus dependency edges and atomics being
  globally ordered — the subset of RVWMO's ppo rules exercised by the
  litmus families in :mod:`repro.litmus.generator`.  Dependencies are
  supplied explicitly by programs via ``Execution.extra_ppo``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, FrozenSet, Set, Tuple

from .events import EventKind
from .relations import Edge, Execution, is_acyclic


@dataclass(frozen=True)
class ModelJudgement:
    """Result of judging one candidate execution."""

    consistent: bool
    coherence_ok: bool
    ghb_ok: bool

    def __bool__(self) -> bool:
        return self.consistent


class MemoryModel:
    """Base class: a named consistency model with a ppo definition.

    Subclasses implement :meth:`_ppo`; :meth:`ppo` serves it from the
    execution's shared :class:`~repro.memmodel.relations.StaticRelations`
    cache when one is attached (ppo depends only on program order and
    event kinds, never on rf/co, so it is a per-test constant).
    """

    name = "base"
    #: True when the model lets a core read its own buffered store early
    #: (store forwarding); such internal rf edges are excluded from ghb.
    allows_store_forwarding = False

    def ppo(self, execution: Execution) -> Set[Edge]:
        if execution.static is not None:
            return execution.static.ppo(self)
        return self._ppo(execution)

    def _ppo(self, execution: Execution) -> Set[Edge]:
        raise NotImplementedError

    # ------------------------------------------------------------------
    def coherent(self, execution: Execution) -> bool:
        edges = (
            execution.po_loc_edges()
            | execution.rf_edges()
            | execution.co_edges()
            | execution.fr_edges()
        )
        return is_acyclic(edges)

    def global_order_edges(self, execution: Execution) -> Set[Edge]:
        rf_part = (
            execution.rfe_edges()
            if self.allows_store_forwarding
            else execution.rf_edges()
        )
        return (
            self.ppo(execution)
            | execution.fence_edges()
            | set(execution.extra_ppo)
            | rf_part
            | execution.co_edges()
            | execution.fr_edges()
            | set(execution.protocol_order)
        )

    def judge(self, execution: Execution) -> ModelJudgement:
        coherence_ok = (execution.atomicity_ok()
                        and self.coherent(execution))
        ghb_ok = is_acyclic(self.global_order_edges(execution))
        return ModelJudgement(coherence_ok and ghb_ok, coherence_ok, ghb_ok)

    def allows(self, execution: Execution) -> bool:
        return self.judge(execution).consistent

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<MemoryModel {self.name}>"


class SequentialConsistency(MemoryModel):
    """SC: program order is fully preserved; no store forwarding."""

    name = "SC"
    allows_store_forwarding = False

    def _ppo(self, execution: Execution) -> Set[Edge]:
        return {
            (a, b)
            for (a, b) in execution.po_edges()
            if execution.event(a).is_memory_access
            and execution.event(b).is_memory_access
        }


class ProcessorConsistency(MemoryModel):
    """PC/TSO: store→load is relaxed; the store buffer forwards.

    The paper uses PC to represent TSO ("identical in modern
    cache-coherent systems").
    """

    name = "PC"
    allows_store_forwarding = True

    def _ppo(self, execution: Execution) -> Set[Edge]:
        edges = set()
        for (a, b) in execution.po_edges():
            ea, eb = execution.event(a), execution.event(b)
            if not (ea.is_memory_access and eb.is_memory_access):
                continue
            if ea.kind is EventKind.ATOMIC or eb.kind is EventKind.ATOMIC:
                # TSO atomics are fully fenced: they order against
                # every neighbour (the buffer drains before an RMW).
                edges.add((a, b))
                continue
            if ea.is_write and eb.is_read and ea.addr != eb.addr:
                continue  # the relaxed store->load pair
            if ea.is_write and eb.is_read and ea.addr == eb.addr:
                # Same-address W->R order is enforced through forwarding
                # and coherence, not ghb; skip it here too (classic TSO).
                continue
            edges.add((a, b))
        return edges


class WeakConsistency(MemoryModel):
    """WC: only same-address pairs and fence-induced order survive."""

    name = "WC"
    allows_store_forwarding = True

    def _ppo(self, execution: Execution) -> Set[Edge]:
        edges = set()
        for (a, b) in execution.po_loc_edges():
            ea, eb = execution.event(a), execution.event(b)
            if ea.is_write and eb.is_read:
                continue  # forwarding covers same-address W->R
            edges.add((a, b))
        return edges


class RVWMO(WeakConsistency):
    """RVWMO-lite: WC plus atomics globally ordered.

    Dependency ordering (addr/data/ctrl) arrives through
    ``Execution.extra_ppo``, which every model honours; what RVWMO adds
    over WC here is that atomic RMWs order against all neighbours in
    program order (RVWMO PPO rules for AMOs).
    """

    name = "RVWMO"

    def _ppo(self, execution: Execution) -> Set[Edge]:
        edges = super()._ppo(execution)
        for (a, b) in execution.po_edges():
            ea, eb = execution.event(a), execution.event(b)
            if not (ea.is_memory_access and eb.is_memory_access):
                continue
            if ea.kind is EventKind.ATOMIC or eb.kind is EventKind.ATOMIC:
                edges.add((a, b))
        return edges


SC = SequentialConsistency()
PC = ProcessorConsistency()
TSO = PC  # alias: the paper treats PC and TSO as identical
WC = WeakConsistency()
RVWMO_MODEL = RVWMO()

MODELS: Dict[str, MemoryModel] = {
    "SC": SC,
    "PC": PC,
    "TSO": PC,
    "WC": WC,
    "RVWMO": RVWMO_MODEL,
}


def get_model(name: str) -> MemoryModel:
    """Look up a model by name (case-insensitive)."""
    try:
        return MODELS[name.upper()]
    except KeyError:
        raise KeyError(
            f"unknown memory model {name!r}; choose from {sorted(set(MODELS))}"
        ) from None
