"""Human-readable rendering of candidate executions.

When a litmus test fails (or a model decision surprises you), the
*witness execution* explains it: which write each read observed, the
coherence order per location, and — for forbidden outcomes — the cycle
that rules the candidate out.  This module renders those as text, the
way ``herd7 -show`` renders event graphs.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

import networkx as nx

from .axioms import MemoryModel
from .relations import Edge, Execution


def _label(execution: Execution, uid: int) -> str:
    event = execution.event(uid)
    if event.core == -1:
        return f"init[0x{event.addr:x}]={event.value}"
    return str(event)


def render_execution(execution: Execution,
                     model: Optional[MemoryModel] = None) -> str:
    """Render one candidate execution's relations (and, with a model,
    its verdict plus any global-order cycle)."""
    lines: List[str] = ["events:"]
    for event in execution.events:
        if event.core >= 0 or event.core <= -100:
            lines.append(f"  {event}")

    lines.append("reads-from:")
    for read_uid, write_uid in sorted(execution.rf.items()):
        lines.append(f"  {_label(execution, write_uid)} -rf-> "
                     f"{_label(execution, read_uid)}")

    lines.append("coherence:")
    for addr in sorted(execution.co):
        chain = " -> ".join(_label(execution, w)
                            for w in execution.co[addr])
        lines.append(f"  0x{addr:x}: {chain}")

    fr = execution.fr_edges()
    if fr:
        lines.append("from-read:")
        for (a, b) in sorted(fr):
            lines.append(f"  {_label(execution, a)} -fr-> "
                         f"{_label(execution, b)}")

    if model is not None:
        judgement = model.judge(execution)
        lines.append(f"verdict under {model.name}: "
                     f"{'consistent' if judgement.consistent else 'FORBIDDEN'}")
        if not judgement.consistent:
            cycle = find_cycle(execution, model)
            if cycle:
                lines.append("cycle: " + " -> ".join(
                    _label(execution, uid) for uid in cycle))
    return "\n".join(lines)


def find_cycle(execution: Execution,
               model: MemoryModel) -> Optional[List[int]]:
    """One cycle in the model's global-order graph, if any."""
    graph = nx.DiGraph()
    graph.add_edges_from(model.global_order_edges(execution))
    try:
        edges = nx.find_cycle(graph)
    except nx.NetworkXNoCycle:
        return None
    nodes = [a for (a, _b) in edges]
    nodes.append(edges[-1][1])
    return nodes


def explain_forbidden(threads, model: MemoryModel,
                      outcome: Sequence[Tuple[str, int]],
                      extra_ppo: Sequence[Edge] = ()) -> str:
    """Why does ``model`` forbid ``outcome`` for this program?

    Searches the candidate space for executions matching the outcome;
    renders the first one with its forbidding cycle (every matching
    candidate is inconsistent when the outcome is truly forbidden).
    Returns a short message when the outcome is actually allowed or
    unconstructible.
    """
    from .enumerator import build_events, canonical_outcome
    from .relations import (StaticRelations, candidate_co_choices,
                            candidate_rf_choices)

    target = canonical_outcome(outcome)
    events = build_events(threads)
    # One static-relation set serves every candidate; rf/co pass
    # through unchanged (candidate generators yield fresh immutable
    # structures, so no defensive copies are needed).
    static = StaticRelations(events, frozenset(extra_ppo))
    for rf in candidate_rf_choices(events):
        for co in candidate_co_choices(events):
            execution = Execution(events=events, rf=rf, co=co,
                                  extra_ppo=static.extra_ppo,
                                  static=static)
            if execution.outcome() != target:
                continue
            if model.allows(execution):
                return (f"outcome {dict(target)} is ALLOWED under "
                        f"{model.name}:\n"
                        + render_execution(execution, model))
            return render_execution(execution, model)
    return f"no candidate execution produces outcome {dict(target)}"
