"""Operational reference models, for cross-validating the axiomatic
enumerator.

The axiomatic definitions in :mod:`repro.memmodel.axioms` are the
arbiters everywhere else in the library; this module provides an
*independent* second opinion: small-step operational machines whose
reachable final states are enumerated exhaustively (DFS over all
nondeterministic choices).

* :class:`OperationalSC` — one interleaving point per step; memory is
  updated immediately.
* :class:`OperationalTSO` — per-thread FIFO store buffers with
  forwarding; the nondeterministic choices are "execute next
  instruction of thread i" and "drain the oldest buffered store of
  thread i".  This is the textbook TSO machine (Sewell et al.).

For programs of litmus size the exhaustive outcome sets must satisfy

    outcomes(OperationalSC)  == allowed(SC axioms)
    outcomes(OperationalTSO) == allowed(PC axioms)

which `tests/test_memmodel_crossvalidation.py` verifies over both
hand-written and randomly generated programs.  Fences are supported
(full fences drain the buffer); atomics execute with an empty buffer,
read-modify-write in one step.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from .events import Event, EventKind, FenceKind

Outcome = Tuple[Tuple[str, int], ...]

#: Default state budget for exhaustive exploration.  Litmus-sized
#: programs visit a few thousand states; the guard exists so that
#: adversarial inputs fail fast with a typed error instead of running
#: away (mirroring the enumerator's ``max_candidates`` contract).
DEFAULT_MAX_STATES = 1_000_000


class ExplorationBudgetExceeded(RuntimeError):
    """Exhaustive exploration visited more states than ``max_states``.

    The operational counterpart of the axiomatic enumerator's
    ``max_candidates`` :class:`ValueError`: a typed, catchable signal
    that the program is too large for exhaustive treatment, raised
    before memory or wall time run away.
    """


class _Machine:
    """Shared DFS plumbing; subclasses define the step rules."""

    def __init__(self, threads: Sequence[Sequence[Event]],
                 init: Optional[Dict[int, int]] = None,
                 max_states: int = DEFAULT_MAX_STATES) -> None:
        self.threads = [list(t) for t in threads]
        self.init = dict(init or {})
        self.max_states = max_states

    def outcomes(self) -> Set[Outcome]:
        results: Set[Outcome] = set()
        seen: Set = set()
        self._explore(self._initial_state(), results, seen)
        return results

    # -- to be provided by subclasses ---------------------------------
    def _initial_state(self):
        raise NotImplementedError

    def _successors(self, state):
        raise NotImplementedError

    def _is_final(self, state) -> bool:
        raise NotImplementedError

    def _outcome(self, state) -> Outcome:
        raise NotImplementedError

    # -- DFS ------------------------------------------------------------
    def _explore(self, state, results: Set[Outcome], seen: Set) -> None:
        stack = [state]
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            seen.add(current)
            if len(seen) > self.max_states:
                raise ExplorationBudgetExceeded(
                    f"exploration exceeded max_states="
                    f"{self.max_states}; shrink the program or raise "
                    f"the budget")
            if self._is_final(current):
                results.add(self._outcome(current))
                continue
            successors = self._successors(current)
            if not successors:
                # Stuck non-final state would indicate a machine bug.
                raise RuntimeError("operational machine deadlocked")
            stack.extend(successors)


def _freeze_mem(mem: Dict[int, int]) -> FrozenSet[Tuple[int, int]]:
    return frozenset(mem.items())


class OperationalSC(_Machine):
    """Interleaving semantics: one total order of instructions."""

    def _initial_state(self):
        pcs = tuple(0 for _ in self.threads)
        regs: Tuple[Tuple[Tuple[str, int], ...], ...] = tuple(
            () for _ in self.threads)
        return (pcs, regs, _freeze_mem(self.init))

    def _is_final(self, state) -> bool:
        pcs, _, _ = state
        return all(pc >= len(t) for pc, t in zip(pcs, self.threads))

    def _outcome(self, state) -> Outcome:
        _, regs, _ = state
        flat = [pair for thread_regs in regs for pair in thread_regs]
        return tuple(sorted(flat))

    def _successors(self, state):
        pcs, regs, mem_f = state
        mem = dict(mem_f)
        out = []
        for tid, thread in enumerate(self.threads):
            pc = pcs[tid]
            if pc >= len(thread):
                continue
            ev = thread[pc]
            new_pcs = tuple(p + 1 if i == tid else p
                            for i, p in enumerate(pcs))
            if ev.kind is EventKind.STORE:
                new_mem = dict(mem)
                new_mem[ev.addr] = ev.value
                out.append((new_pcs, regs, _freeze_mem(new_mem)))
            elif ev.kind is EventKind.LOAD:
                value = mem.get(ev.addr, 0)
                tag = ev.tag or f"r{tid}.{ev.index}"
                new_regs = tuple(
                    r + ((tag, value),) if i == tid else r
                    for i, r in enumerate(regs))
                out.append((new_pcs, new_regs, mem_f))
            elif ev.kind is EventKind.ATOMIC:
                old = mem.get(ev.addr, 0)
                new_mem = dict(mem)
                new_mem[ev.addr] = ev.value
                tag = ev.tag or f"r{tid}.{ev.index}"
                new_regs = tuple(
                    r + ((tag, old),) if i == tid else r
                    for i, r in enumerate(regs))
                out.append((new_pcs, new_regs, _freeze_mem(new_mem)))
            else:  # fences are no-ops under SC
                out.append((new_pcs, regs, mem_f))
        return out


class OperationalTSO(_Machine):
    """The classic TSO machine: FIFO store buffers + forwarding.

    State: per-thread (pc, registers, buffer) plus shared memory.
    Nondeterminism: execute the next instruction of any thread, or
    drain the oldest buffer entry of any thread.
    """

    def _initial_state(self):
        pcs = tuple(0 for _ in self.threads)
        regs = tuple(() for _ in self.threads)
        buffers: Tuple[Tuple[Tuple[int, int], ...], ...] = tuple(
            () for _ in self.threads)
        return (pcs, regs, buffers, _freeze_mem(self.init))

    def _is_final(self, state) -> bool:
        pcs, _, buffers, _ = state
        return (all(pc >= len(t) for pc, t in zip(pcs, self.threads))
                and all(not b for b in buffers))

    def _outcome(self, state) -> Outcome:
        _, regs, _, _ = state
        flat = [pair for thread_regs in regs for pair in thread_regs]
        return tuple(sorted(flat))

    @staticmethod
    def _forward(buffer, addr) -> Optional[int]:
        for (a, v) in reversed(buffer):
            if a == addr:
                return v
        return None

    def _successors(self, state):
        pcs, regs, buffers, mem_f = state
        mem = dict(mem_f)
        out = []

        # Drain moves: commit the oldest store of any thread.
        for tid, buffer in enumerate(buffers):
            if not buffer:
                continue
            (addr, value), rest = buffer[0], buffer[1:]
            new_mem = dict(mem)
            new_mem[addr] = value
            new_buffers = tuple(rest if i == tid else b
                                for i, b in enumerate(buffers))
            out.append((pcs, regs, new_buffers, _freeze_mem(new_mem)))

        # Instruction moves.
        for tid, thread in enumerate(self.threads):
            pc = pcs[tid]
            if pc >= len(thread):
                continue
            ev = thread[pc]
            buffer = buffers[tid]
            new_pcs = tuple(p + 1 if i == tid else p
                            for i, p in enumerate(pcs))
            if ev.kind is EventKind.STORE:
                new_buffer = buffer + ((ev.addr, ev.value),)
                new_buffers = tuple(new_buffer if i == tid else b
                                    for i, b in enumerate(buffers))
                out.append((new_pcs, regs, new_buffers, mem_f))
            elif ev.kind is EventKind.LOAD:
                forwarded = self._forward(buffer, ev.addr)
                value = forwarded if forwarded is not None \
                    else mem.get(ev.addr, 0)
                tag = ev.tag or f"r{tid}.{ev.index}"
                new_regs = tuple(
                    r + ((tag, value),) if i == tid else r
                    for i, r in enumerate(regs))
                out.append((new_pcs, new_regs, buffers, mem_f))
            elif ev.kind is EventKind.ATOMIC:
                if buffer:
                    continue  # atomics require an empty buffer
                old = mem.get(ev.addr, 0)
                new_mem = dict(mem)
                new_mem[ev.addr] = ev.value
                tag = ev.tag or f"r{tid}.{ev.index}"
                new_regs = tuple(
                    r + ((tag, old),) if i == tid else r
                    for i, r in enumerate(regs))
                out.append((new_pcs, new_regs, buffers,
                            _freeze_mem(new_mem)))
            elif ev.kind is EventKind.FENCE:
                if ev.fence in (FenceKind.FULL, FenceKind.STORE_LOAD) \
                        and buffer:
                    continue  # wait for the buffer to drain
                out.append((new_pcs, regs, buffers, mem_f))
            else:
                out.append((new_pcs, regs, buffers, mem_f))
        return out


def sc_outcomes(threads: Sequence[Sequence[Event]],
                init: Optional[Dict[int, int]] = None,
                max_states: int = DEFAULT_MAX_STATES) -> Set[Outcome]:
    return OperationalSC(threads, init, max_states=max_states).outcomes()


def tso_outcomes(threads: Sequence[Sequence[Event]],
                 init: Optional[Dict[int, int]] = None,
                 max_states: int = DEFAULT_MAX_STATES) -> Set[Outcome]:
    return OperationalTSO(threads, init, max_states=max_states).outcomes()
