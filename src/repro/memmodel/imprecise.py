"""Formal model of imprecise store exceptions (paper §4).

A *faulting store* never reaches memory directly: its exception is
DETECTed in the hierarchy, the store is PUT on the architectural
interface, the OS GETs it, applies it as an OS store (``S_OS``), and
RESOLVEs the exception.  The protocol chain is totally ordered in the
global memory order (§4.2):

    DETECT <m PUT(S(A)) <m GET <m S_OS(A) <m RESOLVE

Two drain policies exist for the *other* stores that share the store
buffer with a faulting store (§4.5-4.6):

* **split stream** — non-faulting stores drain directly to memory;
  only faulting stores travel through the interface.  The paper shows
  this admits a PC violation (Figure 2a) unless extra synchronisation
  is added.
* **same stream** (the paper's design) — the faulting store and every
  younger store still in the store buffer are all supplied to the
  interface in FIFO order, and the OS applies them in that order,
  yielding ``S_OS(A) <m S_OS(B)`` whenever ``S(A) <p S(B)``.

:func:`transform` rewrites a program containing faulting stores into
the event set + protocol edges the enumerator can judge, so the
paper's proofs become executable checks (see
:mod:`repro.memmodel.proofs`).
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from .events import Event, EventKind
from .relations import Edge

#: Cores below this id are synthetic OS/protocol actors; they never
#: contribute program-order edges.
_OS_CORE_BASE = -100

_os_core_counter = itertools.count()


def _fresh_os_core() -> int:
    return _OS_CORE_BASE - next(_os_core_counter)


class DrainPolicy(enum.Enum):
    """How the store buffer treats stores alongside a faulting store."""

    SPLIT_STREAM = "split"
    SAME_STREAM = "same"


@dataclass
class ImpreciseTransform:
    """Result of rewriting a faulting program.

    Attributes:
        threads: User-visible per-core event sequences with the
            interface-routed stores removed (they no longer write
            memory from the core).
        extra_events: The OS stores and protocol marker events.
        protocol_order: Global-memory-order edges contributed by the
            protocol chains and the interface FIFO guarantee.
        os_stores: Map from original store uid to its ``S_OS`` event.
        resolves: Per-core RESOLVE event uid (for resume edges).
    """

    threads: List[List[Event]]
    extra_events: List[Event] = field(default_factory=list)
    protocol_order: Set[Edge] = field(default_factory=set)
    os_stores: Dict[int, Event] = field(default_factory=dict)
    resolves: Dict[int, int] = field(default_factory=dict)

    def resume_edge(self, core: int, event: Event) -> Edge:
        """Edge asserting ``event`` re-executes after the handler's
        RESOLVE (§4.4: RESOLVE <m L(A)/Atomic/F)."""
        return (self.resolves[core], event.uid)


def transform(
    threads: Sequence[Sequence[Event]],
    faulting_uids: Iterable[int],
    policy: DrainPolicy,
    fifo: bool = True,
) -> ImpreciseTransform:
    """Rewrite ``threads`` so faulting stores go through the interface.

    For each core containing faulting stores, the stores selected by
    ``policy`` are replaced by OS stores:

    * ``SPLIT_STREAM``: exactly the faulting stores; younger
      non-faulting stores keep draining to memory directly.
    * ``SAME_STREAM``: the oldest faulting store and *every* younger
      store on that core (they are co-resident in the store buffer —
      §5.3 drains all unfinished stores to the FSB).

    Protocol events are materialised per core:
    ``DETECT <m PUT(s1) <m PUT(s2) … <m GET <m S_OS(s1) <m S_OS(s2) …
    <m RESOLVE``, with PUT order = program (store-buffer FIFO) order,
    matching Table 5's core and interface obligations.

    When ``fifo`` is true (PC: the store buffer drains in order), two
    additional facts are encoded:

    * every store po-before the first faulting store had already
      completed when the fault was detected, so it precedes DETECT;
    * under split stream, the drain of a younger non-faulting store
      leaves the buffer after the PUT of any routed store that is
      po-older (the paper's ``PUT(S(A)) <m S(B)``).

    For WC runs, pass ``fifo=False`` — the buffer imposes no order.

    Returns the transformed program; callers add
    ``ImpreciseTransform.resume_edge`` constraints for any instruction
    the paper requires to re-execute after RESOLVE.
    """
    faulting = set(faulting_uids)
    out = ImpreciseTransform(threads=[])

    for thread in threads:
        thread = list(thread)
        fault_positions = [
            i for i, e in enumerate(thread) if e.uid in faulting
        ]
        if not fault_positions:
            out.threads.append(thread)
            continue
        for i in fault_positions:
            if not thread[i].is_write:
                raise ValueError(
                    f"faulting event {thread[i]} is not a store; only "
                    "store exceptions are imprecise"
                )

        first_fault = fault_positions[0]
        core = thread[first_fault].core
        if policy is DrainPolicy.SAME_STREAM:
            routed = [
                e for i, e in enumerate(thread)
                if e.is_write and (i >= first_fault)
            ]
        else:
            routed = [e for e in thread if e.uid in faulting]

        routed_uids = {e.uid for e in routed}
        out.threads.append([e for e in thread if e.uid not in routed_uids])
        chain = _emit_protocol_chain(out, core, routed)

        if fifo:
            _add_fifo_edges(out, thread, first_fault, routed_uids, chain)

    return out


@dataclass
class _Chain:
    detect: Event
    puts: List[Event]
    get: Event
    os_stores: List[Event]
    resolve: Event
    put_for: Dict[int, Event]  # original store uid -> PUT event


def _emit_protocol_chain(
    out: ImpreciseTransform, core: int, routed: Sequence[Event]
) -> _Chain:
    """Append DETECT → PUT* → GET → S_OS* → RESOLVE for one core."""
    os_core = _fresh_os_core()
    events: List[Event] = []
    detect = Event(os_core, 0, EventKind.DETECT, addr=routed[0].addr,
                   subject_uid=routed[0].uid)
    events.append(detect)

    puts: List[Event] = []
    put_for: Dict[int, Event] = {}
    for i, store in enumerate(routed):
        put = Event(os_core, 1 + i, EventKind.PUT, addr=store.addr,
                    value=store.value, subject_uid=store.uid)
        puts.append(put)
        put_for[store.uid] = put
        events.append(put)

    get = Event(os_core, 1 + len(routed), EventKind.GET)
    events.append(get)

    os_stores: List[Event] = []
    for i, store in enumerate(routed):
        s_os = Event(os_core, 2 + len(routed) + i, EventKind.OS_STORE,
                     addr=store.addr, value=store.value,
                     subject_uid=store.uid)
        os_stores.append(s_os)
        out.os_stores[store.uid] = s_os
        events.append(s_os)

    resolve = Event(os_core, 2 + 2 * len(routed), EventKind.RESOLVE)
    events.append(resolve)
    out.resolves[core] = resolve.uid

    out.extra_events.extend(events)
    for a, b in zip(events, events[1:]):
        out.protocol_order.add((a.uid, b.uid))
    return _Chain(detect, puts, get, os_stores, resolve, put_for)


def _add_fifo_edges(
    out: ImpreciseTransform,
    thread: Sequence[Event],
    first_fault: int,
    routed_uids: Set[int],
    chain: _Chain,
) -> None:
    """Encode in-order (PC) store-buffer drain facts.

    Older completed stores precede DETECT; within the post-fault drain
    sequence, each store's buffer-exit event (its PUT when routed, the
    store itself when it drains to memory under split stream) precedes
    the next store's exit event.
    """
    for e in thread[:first_fault]:
        if e.is_write:
            out.protocol_order.add((e.uid, chain.detect.uid))

    exit_events: List[int] = []
    for e in thread[first_fault:]:
        if not e.is_write:
            continue
        if e.uid in routed_uids:
            exit_events.append(chain.put_for[e.uid].uid)
        else:
            exit_events.append(e.uid)
    for a, b in zip(exit_events, exit_events[1:]):
        out.protocol_order.add((a, b))


def protocol_chain_is_total(transform_result: ImpreciseTransform) -> bool:
    """Check the §4.2 rule: each chain's edges form a total order.

    The chain edges were emitted pairwise-adjacent, so totality holds
    by construction; this validates it independently (used by tests
    and the Table 5 contract checker).
    """
    by_core: Dict[int, List[Event]] = {}
    for e in transform_result.extra_events:
        by_core.setdefault(e.core, []).append(e)
    edges = transform_result.protocol_order
    for events in by_core.values():
        events.sort(key=lambda e: e.index)
        for a, b in zip(events, events[1:]):
            if (a.uid, b.uid) not in edges:
                return False
    return True


def interface_fifo_edges(puts: Sequence[Event], gets: Sequence[Event]) -> Set[Edge]:
    """Table 5 interface rule: supply stores to the OS in the order
    received from the core.

    Produces edges PUT_i <m PUT_{i+1} and GET_i <m GET_{i+1} plus
    PUT_i <m GET_i (a GET can only return an already-PUT entry).
    """
    edges: Set[Edge] = set()
    for a, b in zip(puts, puts[1:]):
        edges.add((a.uid, b.uid))
    for a, b in zip(gets, gets[1:]):
        edges.add((a.uid, b.uid))
    for put, get in zip(puts, gets):
        edges.add((put.uid, get.uid))
    return edges
