"""Executable versions of the paper's formal arguments (§4.5-4.6).

The paper proves on paper; we prove by exhaustive enumeration.  For
the programs under study (a handful of events), the enumerator visits
every candidate execution, so these checks are complete, not sampled.

Two artifacts are reproduced:

* **Proof 1** (store-store rule of PC under the same-stream design):
  for each of the four faulting combinations of ``S(A) <p S(B)``, the
  user-observable outcomes of the transformed program are exactly the
  PC outcomes of the original program — an observer can never see
  ``B`` new but ``A`` old.
* **Figure 2** (the split-stream race): under split stream, the
  outcome ``L(B)=1 ∧ L(A)=0`` becomes observable (2a); under same
  stream the interface FIFO forces ``S_OS(A) <m S_OS(B)`` and the
  outcome stays forbidden (2b).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from .axioms import MemoryModel, PC
from .enumerator import Outcome, allowed_outcomes, enumerate_executions
from .events import Event, program
from .imprecise import DrainPolicy, transform

#: Addresses used throughout the proof programs.
ADDR_A = 0xA00
ADDR_B = 0xB00


def _observer() -> List[Event]:
    """Core 1: L(B) then L(A); PC preserves load→load order."""
    events = program(1, [("L", ADDR_B), ("L", ADDR_A)])
    return list(events)


def _writer() -> List[Event]:
    """Core 0: S(A,1) then S(B,1); PC preserves store→store order."""
    return list(program(0, [("S", ADDR_A, 1), ("S", ADDR_B, 1)]))


def _tagged(outcome_items: Dict[str, int]) -> Outcome:
    return tuple(sorted(outcome_items.items()))


def observable_outcomes(
    threads: Sequence[Sequence[Event]],
    model: MemoryModel,
    faulting_uids: Sequence[int] = (),
    policy: DrainPolicy = DrainPolicy.SAME_STREAM,
    fifo: bool = True,
) -> Set[Outcome]:
    """Outcomes of ``threads`` with the given stores faulting.

    With no faulting stores this is plain model enumeration; otherwise
    the program is rewritten by :func:`repro.memmodel.imprecise.transform`
    first.
    """
    if not faulting_uids:
        return allowed_outcomes(threads, model)
    tr = transform(threads, faulting_uids, policy, fifo=fifo)
    return allowed_outcomes(
        tr.threads,
        model,
        extra_events=tr.extra_events,
        protocol_order=tr.protocol_order,
    )


@dataclass
class ProofCase:
    """One case of Proof 1."""

    label: str
    faulting: Tuple[str, ...]
    observed: Set[Outcome] = field(default_factory=set)
    baseline: Set[Outcome] = field(default_factory=set)

    @property
    def transparent(self) -> bool:
        """True when faulting introduced no new observable outcome."""
        return self.observed <= self.baseline

    @property
    def violation_outcomes(self) -> Set[Outcome]:
        return self.observed - self.baseline


@dataclass
class ProofReport:
    """Aggregate result of an executable proof."""

    name: str
    cases: List[ProofCase] = field(default_factory=list)

    @property
    def holds(self) -> bool:
        return all(case.transparent for case in self.cases)

    def summary(self) -> str:
        lines = [f"Proof: {self.name} — {'HOLDS' if self.holds else 'FAILS'}"]
        for case in self.cases:
            status = "ok" if case.transparent else "VIOLATION"
            lines.append(
                f"  {case.label:<28} faulting={','.join(case.faulting) or '-'} "
                f"outcomes={len(case.observed)} [{status}]"
            )
        return "\n".join(lines)


def prove_store_store_rule(model: MemoryModel = PC) -> ProofReport:
    """Proof 1: S(A) <p S(B) ⟹ S(A) <m S(B) under same stream.

    Enumerates the four faulting cases against a two-load observer and
    checks the transformed outcomes stay within the fault-free PC set.
    """
    report = ProofReport(name=f"store-store rule of {model.name} (same stream)")
    cases = [
        ("case 1: none faulting", ()),
        ("case 2: only S(B) faulting", ("B",)),
        ("case 3: both faulting", ("A", "B")),
        ("case 4: only S(A) faulting", ("A",)),
    ]
    for label, faults in cases:
        writer = _writer()
        observer = _observer()
        baseline = observable_outcomes([writer, observer], model)
        fault_uids = []
        for name in faults:
            addr = ADDR_A if name == "A" else ADDR_B
            fault_uids.extend(e.uid for e in writer if e.addr == addr)
        observed = observable_outcomes(
            [writer, observer], model, fault_uids, DrainPolicy.SAME_STREAM
        )
        report.cases.append(
            ProofCase(label=label, faulting=faults,
                      observed=observed, baseline=baseline)
        )
    return report


@dataclass
class RaceDemonstration:
    """Result of the Figure 2 experiment."""

    violation_outcome: Outcome
    split_allows_violation: bool
    same_forbids_violation: bool
    split_outcomes: Set[Outcome]
    same_outcomes: Set[Outcome]
    baseline_outcomes: Set[Outcome]

    @property
    def matches_paper(self) -> bool:
        return self.split_allows_violation and self.same_forbids_violation

    def summary(self) -> str:
        return (
            "Figure 2 race (S(A) faulting, observer L(B);L(A)):\n"
            f"  violating outcome      : {dict(self.violation_outcome)}\n"
            f"  split stream admits it : {self.split_allows_violation} (Fig 2a)\n"
            f"  same  stream forbids it: {self.same_forbids_violation} (Fig 2b)\n"
            f"  matches paper          : {self.matches_paper}"
        )


def demonstrate_figure2_race(model: MemoryModel = PC) -> RaceDemonstration:
    """Reproduce Figure 2: split stream races, same stream does not.

    Core 0 runs ``S(A,1) <p S(B,1)`` with ``S(A)`` faulting; Core 1
    observes with ``L(B) <p L(A)``.  The PC-violating outcome is
    ``L(B)=1 ∧ L(A)=0`` (B's new value visible while A still old even
    though A was written first in program order).
    """
    def fresh_threads():
        w = _writer()
        o = _observer()
        return w, o

    w0, o0 = fresh_threads()
    baseline = observable_outcomes([w0, o0], model)

    w1, o1 = fresh_threads()
    fault_a = [e.uid for e in w1 if e.addr == ADDR_A]
    split = observable_outcomes(
        [w1, o1], model, fault_a, DrainPolicy.SPLIT_STREAM
    )

    w2, o2 = fresh_threads()
    fault_a2 = [e.uid for e in w2 if e.addr == ADDR_A]
    same = observable_outcomes(
        [w2, o2], model, fault_a2, DrainPolicy.SAME_STREAM
    )

    def label(observer):
        b = [e for e in observer if e.addr == ADDR_B][0]
        a = [e for e in observer if e.addr == ADDR_A][0]
        return (
            (b.tag or f"r{b.core}.{b.index}", 1),
            (a.tag or f"r{a.core}.{a.index}", 0),
        )

    violation = tuple(sorted(label(o1)))
    return RaceDemonstration(
        violation_outcome=violation,
        split_allows_violation=violation in split,
        same_forbids_violation=violation not in same,
        split_outcomes=split,
        same_outcomes=same,
        baseline_outcomes=baseline,
    )


def prove_rule_suite(model: MemoryModel = PC) -> List[ProofReport]:
    """Run the same-stream transparency proof over several observer
    shapes — the "other rules can be proved in a similar manner" of
    §4.6: store-store, store-load (via fence), and load visibility.
    """
    reports = [prove_store_store_rule(model)]

    # Observer variants exercising other preserved orders.
    variants = {
        "observer reads A then B": [("L", ADDR_A), ("L", ADDR_B)],
        "observer reads B twice": [("L", ADDR_B), ("L", ADDR_B)],
        "observer reads A twice": [("L", ADDR_A), ("L", ADDR_A)],
        "observer fenced loads": [("L", ADDR_B), ("F",), ("L", ADDR_A)],
    }
    for title, obs_ops in variants.items():
        report = ProofReport(name=f"{title} under {model.name} (same stream)")
        for label, faults in [
            ("none faulting", ()),
            ("S(B) faulting", ("B",)),
            ("both faulting", ("A", "B")),
            ("S(A) faulting", ("A",)),
        ]:
            writer = _writer()
            observer = list(program(1, obs_ops))
            baseline = observable_outcomes([writer, observer], model)
            fault_uids = []
            for name in faults:
                addr = ADDR_A if name == "A" else ADDR_B
                fault_uids.extend(e.uid for e in writer if e.addr == addr)
            observed = observable_outcomes(
                [writer, observer], model, fault_uids, DrainPolicy.SAME_STREAM
            )
            report.cases.append(
                ProofCase(label=label, faulting=faults,
                          observed=observed, baseline=baseline)
            )
        reports.append(report)
    return reports
