"""Conformance checking: observed outcomes vs. a model's allowed set.

This is the analogue of the paper's §6.3 methodology: run litmus tests
on the hardware (here, the operational simulator), collect the set of
final states actually observed, and flag any *negative difference* —
an outcome the hardware produced that the model forbids.  Outcomes the
model allows but the hardware never produced are fine (hardware may be
stronger than the model).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from .axioms import MemoryModel
from .enumerator import Outcome, allowed_outcomes, canonical_outcome
from .events import Event


@dataclass
class ConformanceResult:
    """Verdict for one program / one model."""

    model_name: str
    allowed: Set[Outcome]
    observed: Set[Outcome]

    @property
    def negative_differences(self) -> Set[Outcome]:
        """Outcomes observed but not allowed — consistency violations."""
        return self.observed - self.allowed

    @property
    def positive_differences(self) -> Set[Outcome]:
        """Outcomes allowed but never observed — benign (weakness the
        hardware did not exhibit, often due to timing)."""
        return self.allowed - self.observed

    @property
    def conforms(self) -> bool:
        return not self.negative_differences

    @property
    def coverage(self) -> float:
        """Fraction of allowed outcomes actually exhibited."""
        if not self.allowed:
            return 1.0
        return len(self.observed & self.allowed) / len(self.allowed)

    def summary(self) -> str:
        verdict = "OK" if self.conforms else "VIOLATION"
        lines = [
            f"[{verdict}] model={self.model_name} "
            f"allowed={len(self.allowed)} observed={len(self.observed)} "
            f"coverage={self.coverage:.0%}"
        ]
        for diff in sorted(self.negative_differences):
            lines.append(f"  !!! negative difference: {dict(diff)}")
        return "\n".join(lines)


def canonicalise(outcome: Iterable[Tuple[str, int]]) -> Outcome:
    """Normalise an outcome to the sorted-tuple form used everywhere.

    Enumerator outputs are canonical at construction, so the common
    path is a cheap sortedness probe, not a re-sort.
    """
    return canonical_outcome(outcome)


def check_conformance(
    threads: Sequence[Sequence[Event]],
    model: MemoryModel,
    observed: Iterable[Outcome],
    **enumerate_kwargs,
) -> ConformanceResult:
    """Compare observed outcomes of ``threads`` against ``model``."""
    allowed = allowed_outcomes(threads, model, **enumerate_kwargs)
    return ConformanceResult(
        model_name=model.name,
        allowed=allowed,
        observed={canonicalise(o) for o in observed},
    )


def check_outcome_set(
    allowed: Set[Outcome],
    observed: Iterable[Outcome],
    model_name: str = "precomputed",
) -> ConformanceResult:
    """Variant for callers that already hold the allowed set (the
    litmus harness precomputes allowed sets once per test)."""
    return ConformanceResult(
        model_name=model_name,
        allowed={canonicalise(o) for o in allowed},
        observed={canonicalise(o) for o in observed},
    )
