"""Relational backbone for axiomatic consistency checking.

A *candidate execution* pairs the events of a program with a choice of
communication relations:

* ``po``  — program order, per core (from event ``index``).
* ``rf``  — reads-from: one writer per read, same address, same value.
* ``co``  — coherence order: a total order on the writes to each
  address, starting at the initial write.
* ``fr``  — from-read, derived: a read r is fr-before every write that
  is co-after the write r reads from.

Models (:mod:`repro.memmodel.axioms`) judge candidate executions by
requiring acyclicity of unions of these relations with the model's
preserved program order (ppo).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

import networkx as nx

from .events import Event, EventKind, FenceKind

Edge = Tuple[int, int]  # (uid, uid)


@dataclass
class Execution:
    """A candidate execution over a fixed event set.

    Attributes:
        events: All events, including initial writes (core == -1) and
            any OS/protocol events.
        rf: Mapping from read uid to the uid of the write it reads.
        co: Per-address write order, each a list of uids starting with
            the initial write for that address.
        extra_ppo: Additional preserved-program-order edges supplied by
            the program itself (address/data/control dependencies,
            atomicity pairs); these are honoured by every model.
        protocol_order: Ordering edges contributed by the imprecise
            store exception protocol (DETECT <m PUT <m GET <m S_OS <m
            RESOLVE chains); treated as global memory-order edges.
    """

    events: Tuple[Event, ...]
    rf: Dict[int, int] = field(default_factory=dict)
    co: Dict[int, List[int]] = field(default_factory=dict)
    extra_ppo: FrozenSet[Edge] = frozenset()
    protocol_order: FrozenSet[Edge] = frozenset()

    def __post_init__(self) -> None:
        self._by_uid = {e.uid: e for e in self.events}

    # ------------------------------------------------------------------
    # Lookup helpers
    # ------------------------------------------------------------------
    def event(self, uid: int) -> Event:
        return self._by_uid[uid]

    @property
    def reads(self) -> List[Event]:
        return [e for e in self.events if e.is_read]

    @property
    def writes(self) -> List[Event]:
        return [e for e in self.events if e.is_write]

    @property
    def fences(self) -> List[Event]:
        return [e for e in self.events if e.is_fence]

    def core_events(self, core: int) -> List[Event]:
        evs = [e for e in self.events if e.core == core]
        evs.sort(key=lambda e: e.index)
        return evs

    @property
    def cores(self) -> List[int]:
        return sorted({e.core for e in self.events if e.core >= 0})

    # ------------------------------------------------------------------
    # Base relations
    # ------------------------------------------------------------------
    def po_edges(self) -> Set[Edge]:
        """Immediate-successor closure of program order (transitive
        closure is implied by path reachability in the union graphs, so
        adjacent pairs suffice for acyclicity checks; we still emit the
        full relation because ppo filters pairs individually)."""
        edges: Set[Edge] = set()
        for core in self.cores:
            evs = self.core_events(core)
            for i, a in enumerate(evs):
                for b in evs[i + 1:]:
                    edges.add((a.uid, b.uid))
        return edges

    def po_loc_edges(self) -> Set[Edge]:
        """Program order restricted to same-address memory accesses."""
        return {
            (a, b)
            for (a, b) in self.po_edges()
            if self._same_loc(a, b)
        }

    def _same_loc(self, a_uid: int, b_uid: int) -> bool:
        a, b = self._by_uid[a_uid], self._by_uid[b_uid]
        return (
            a.is_memory_access
            and b.is_memory_access
            and a.addr is not None
            and a.addr == b.addr
        )

    def rf_edges(self) -> Set[Edge]:
        return {(w, r) for r, w in self.rf.items()}

    def rfe_edges(self) -> Set[Edge]:
        """External reads-from: writer and reader on different cores.

        Initial writes (core -1) count as external to every reader, and
        OS stores applied on behalf of another core count as external
        when the cores differ.
        """
        out = set()
        for r, w in self.rf.items():
            if self._by_uid[w].core != self._by_uid[r].core:
                out.add((w, r))
        return out

    def rfi_edges(self) -> Set[Edge]:
        """Internal reads-from (store forwarding on one core)."""
        return self.rf_edges() - self.rfe_edges()

    def co_edges(self) -> Set[Edge]:
        edges: Set[Edge] = set()
        for order in self.co.values():
            for i, w1 in enumerate(order):
                for w2 in order[i + 1:]:
                    edges.add((w1, w2))
        return edges

    def fr_edges(self) -> Set[Edge]:
        """from-read: r --fr--> w  iff  rf(r) --co--> w.

        An atomic RMW is both a read and a write; its read component
        never from-reads its own write component (no self edge).
        """
        co_edges = self.co_edges()
        edges: Set[Edge] = set()
        for r, w_src in self.rf.items():
            for (w1, w2) in co_edges:
                if w1 == w_src and w2 != r:
                    edges.add((r, w2))
        return edges

    def atomicity_ok(self) -> bool:
        """RMW atomicity: an atomic that reads from w must be
        co-immediately after w — no intervening write to the address.
        """
        for r, w in self.rf.items():
            ev = self._by_uid[r]
            if ev.kind is not EventKind.ATOMIC:
                continue
            order = self.co.get(ev.addr, [])
            if w not in order or r not in order:
                return False
            if order.index(r) != order.index(w) + 1:
                return False
        return True

    def com_edges(self) -> Set[Edge]:
        """Communication = rf ∪ co ∪ fr."""
        return self.rf_edges() | self.co_edges() | self.fr_edges()

    # ------------------------------------------------------------------
    # Fence-induced order
    # ------------------------------------------------------------------
    def fence_edges(self) -> Set[Edge]:
        """Order imposed by fences under their directional semantics.

        A full fence orders every earlier access before every later
        access on the same core.  Directional fences restrict which
        side(s) they order (e.g. a store-store fence orders earlier
        stores before later stores only).
        """
        edges: Set[Edge] = set()
        for core in self.cores:
            evs = self.core_events(core)
            for fi, fence in enumerate(evs):
                if not fence.is_fence:
                    continue
                before = evs[:fi]
                after = evs[fi + 1:]
                for a in before:
                    if not a.is_memory_access:
                        continue
                    if not _fence_orders_before(fence.fence, a):
                        continue
                    for b in after:
                        if not b.is_memory_access:
                            continue
                        if _fence_orders_after(fence.fence, b):
                            edges.add((a.uid, b.uid))
        return edges

    # ------------------------------------------------------------------
    # Final state
    # ------------------------------------------------------------------
    def final_memory(self) -> Dict[int, int]:
        """Value left at each address: last write in coherence order."""
        out = {}
        for addr, order in self.co.items():
            last = self._by_uid[order[-1]]
            out[addr] = last.value if last.value is not None else 0
        return out

    def load_values(self) -> Dict[int, int]:
        """Value observed by each read uid, per the rf choice."""
        out = {}
        for r, w in self.rf.items():
            wv = self._by_uid[w].value
            out[r] = wv if wv is not None else 0
        return out

    def outcome(self) -> Tuple[Tuple[str, int], ...]:
        """Canonical, hashable outcome: sorted (tag-or-uid, value) for
        every tagged read, used to compare against litmus conditions."""
        vals = self.load_values()
        items = []
        for e in self.events:
            if e.is_read and e.uid in vals:
                key = e.tag or f"r{e.core}.{e.index}"
                items.append((key, vals[e.uid]))
        return tuple(sorted(items))


def _fence_orders_before(kind: FenceKind, access: Event) -> bool:
    if kind is FenceKind.FULL:
        return True
    if kind in (FenceKind.STORE_STORE, FenceKind.STORE_LOAD):
        return access.is_write
    return access.is_read


def _fence_orders_after(kind: FenceKind, access: Event) -> bool:
    if kind is FenceKind.FULL:
        return True
    if kind in (FenceKind.STORE_STORE, FenceKind.LOAD_STORE):
        return access.is_write
    return access.is_read


def is_acyclic(edges: Iterable[Edge]) -> bool:
    """True iff the directed graph over the given edges has no cycle."""
    graph = nx.DiGraph()
    graph.add_edges_from(edges)
    return nx.is_directed_acyclic_graph(graph)


def transitive_closure(edges: Iterable[Edge]) -> Set[Edge]:
    graph = nx.DiGraph()
    graph.add_edges_from(edges)
    closure = nx.transitive_closure(graph)
    return set(closure.edges())


def candidate_rf_choices(
    events: Sequence[Event],
) -> List[Dict[int, int]]:
    """Enumerate every reads-from assignment for ``events``.

    Each read may read from any write to the same address (including
    the initial write).  The cross-product over reads yields all
    candidates; model axioms prune the inconsistent ones.
    """
    writes_by_addr: Dict[int, List[Event]] = {}
    for e in events:
        if e.is_write and e.addr is not None:
            writes_by_addr.setdefault(e.addr, []).append(e)

    reads = [e for e in events if e.is_read and e.addr is not None]
    per_read_options: List[List[Tuple[int, int]]] = []
    for r in reads:
        options = [(r.uid, w.uid) for w in writes_by_addr.get(r.addr, [])]
        if not options:
            # A read of a never-written address still needs a source;
            # the caller must include initial writes to avoid this.
            raise ValueError(f"read {r} has no candidate writer")
        per_read_options.append(options)

    choices = []
    for combo in itertools.product(*per_read_options):
        choices.append(dict(combo))
    return choices


def candidate_co_choices(
    events: Sequence[Event],
) -> List[Dict[int, List[int]]]:
    """Enumerate every coherence order.

    For each address, permutations of the non-initial writes are
    prefixed by the initial write.  The cross-product over addresses
    yields all candidate co maps.
    """
    init_by_addr: Dict[int, int] = {}
    writes_by_addr: Dict[int, List[int]] = {}
    for e in events:
        if not (e.is_write and e.addr is not None):
            continue
        if e.core == -1:
            init_by_addr[e.addr] = e.uid
        else:
            writes_by_addr.setdefault(e.addr, []).append(e.uid)

    addrs = sorted(set(init_by_addr) | set(writes_by_addr))
    per_addr_orders: List[List[List[int]]] = []
    for addr in addrs:
        rest = writes_by_addr.get(addr, [])
        prefix = [init_by_addr[addr]] if addr in init_by_addr else []
        orders = [prefix + list(p) for p in itertools.permutations(rest)]
        per_addr_orders.append(orders or [[]])

    out = []
    for combo in itertools.product(*per_addr_orders):
        out.append({addr: order for addr, order in zip(addrs, combo)})
    return out
