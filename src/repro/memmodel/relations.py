"""Relational backbone for axiomatic consistency checking.

A *candidate execution* pairs the events of a program with a choice of
communication relations:

* ``po``  — program order, per core (from event ``index``).
* ``rf``  — reads-from: one writer per read, same address, same value.
* ``co``  — coherence order: a total order on the writes to each
  address, starting at the initial write.
* ``fr``  — from-read, derived: a read r is fr-before every write that
  is co-after the write r reads from.

Models (:mod:`repro.memmodel.axioms`) judge candidate executions by
requiring acyclicity of unions of these relations with the model's
preserved program order (ppo).
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass, field
from typing import (Dict, FrozenSet, Iterable, List, Mapping, Optional,
                    Sequence, Set, Tuple)

from .events import Event, EventKind, FenceKind

Edge = Tuple[int, int]  # (uid, uid)


class StaticRelations:
    """Relations derivable from the event set alone, computed once.

    Every candidate execution of a program shares its program order,
    fence-induced order, dependency edges, protocol edges, and
    per-address read/write groupings — only ``rf``/``co`` (and their
    derived ``fr``) vary.  The enumerator builds one
    :class:`StaticRelations` per test and threads it through every
    :class:`Execution`, so these sets are derived once instead of once
    per candidate.  Per-model preserved program order is memoized via
    :meth:`ppo` (models are stateless singletons, so the model name is
    a sound cache key).

    ``cache_hits`` counts servings of an already-computed relation —
    the work the naive per-candidate path would have re-derived.
    """

    def __init__(self, events: Sequence[Event],
                 extra_ppo: Iterable[Edge] = (),
                 protocol_order: Iterable[Edge] = ()) -> None:
        self.events: Tuple[Event, ...] = tuple(events)
        self.by_uid: Dict[int, Event] = {e.uid: e for e in self.events}
        self.extra_ppo: FrozenSet[Edge] = frozenset(extra_ppo)
        self.protocol_order: FrozenSet[Edge] = frozenset(protocol_order)
        self.cache_hits = 0

        by_core: Dict[int, List[Event]] = {}
        for e in self.events:
            if e.core >= 0:
                by_core.setdefault(e.core, []).append(e)
        for evs in by_core.values():
            evs.sort(key=lambda e: e.index)
        self.cores: List[int] = sorted(by_core)
        self._core_events = by_core

        # uid -> addr for memory accesses; doubles as the membership
        # test the po_loc slice needs (avoids per-pair property calls).
        mem_addr: Dict[int, int] = {
            e.uid: e.addr for e in self.events
            if e.addr is not None and e.is_memory_access}
        po: Set[Edge] = set()
        po_loc: Set[Edge] = set()
        for evs in by_core.values():
            for i, a in enumerate(evs):
                a_addr = mem_addr.get(a.uid)
                for b in evs[i + 1:]:
                    po.add((a.uid, b.uid))
                    if a_addr is not None and a_addr == mem_addr.get(b.uid):
                        po_loc.add((a.uid, b.uid))
        self.po_edges: FrozenSet[Edge] = frozenset(po)
        self.po_loc_edges: FrozenSet[Edge] = frozenset(po_loc)
        self.fence_edges: FrozenSet[Edge] = frozenset(
            self._derive_fence_edges())

        # Per-address structure for rf/co search.
        self.init_write: Dict[int, int] = {}
        self.writes_by_addr: Dict[int, List[int]] = {}
        self.reads_by_addr: Dict[int, List[int]] = {}
        for e in self.events:
            if e.addr is None or not e.is_memory_access:
                continue
            if e.is_write:
                if e.core == -1:
                    self.init_write[e.addr] = e.uid
                else:
                    self.writes_by_addr.setdefault(e.addr, []).append(e.uid)
            if e.is_read:
                self.reads_by_addr.setdefault(e.addr, []).append(e.uid)
        self.addrs: Tuple[int, ...] = tuple(
            sorted(set(self.init_write) | set(self.writes_by_addr)))

        # po_loc partitioned per address (both endpoints share one).
        self.po_loc_by_addr: Dict[int, List[Edge]] = {}
        for (a, b) in self.po_loc_edges:
            addr = self.by_uid[a].addr
            self.po_loc_by_addr.setdefault(addr, []).append((a, b))

        self._ppo_cache: Dict[str, FrozenSet[Edge]] = {}
        self._probe: Optional["Execution"] = None

    def _derive_fence_edges(self) -> Set[Edge]:
        edges: Set[Edge] = set()
        for evs in self._core_events.values():
            for fi, fence in enumerate(evs):
                if not fence.is_fence:
                    continue
                for a in evs[:fi]:
                    if not a.is_memory_access:
                        continue
                    if not _fence_orders_before(fence.fence, a):
                        continue
                    for b in evs[fi + 1:]:
                        if (b.is_memory_access
                                and _fence_orders_after(fence.fence, b)):
                            edges.add((a.uid, b.uid))
        return edges

    def core_events(self, core: int) -> List[Event]:
        return self._core_events.get(core, [])

    def ppo(self, model) -> FrozenSet[Edge]:
        """The model's preserved program order, computed once per model.

        ppo depends only on program order and event kinds, never on
        ``rf``/``co``, so one probe execution suffices.
        """
        cached = self._ppo_cache.get(model.name)
        if cached is not None:
            self.cache_hits += 1
            return cached
        if self._probe is None:
            self._probe = Execution(events=self.events, rf={}, co={},
                                    static=self)
        edges = frozenset(model._ppo(self._probe))
        self._ppo_cache[model.name] = edges
        return edges


@dataclass
class Execution:
    """A candidate execution over a fixed event set.

    Attributes:
        events: All events, including initial writes (core == -1) and
            any OS/protocol events.
        rf: Mapping from read uid to the uid of the write it reads.
        co: Per-address write order, each a list of uids starting with
            the initial write for that address.
        extra_ppo: Additional preserved-program-order edges supplied by
            the program itself (address/data/control dependencies,
            atomicity pairs); these are honoured by every model.
        protocol_order: Ordering edges contributed by the imprecise
            store exception protocol (DETECT <m PUT <m GET <m S_OS <m
            RESOLVE chains); treated as global memory-order edges.
        static: Shared :class:`StaticRelations` for the event set.
            When provided, the uid index and the rf/co-independent
            relations (po, po_loc, fences) are served from it instead
            of being re-derived per execution.

    ``rf`` and ``co`` are never mutated, so candidates may share the
    same mappings and tuple orders (the enumerator passes them through
    without copying).
    """

    events: Tuple[Event, ...]
    rf: Mapping[int, int] = field(default_factory=dict)
    co: Mapping[int, Sequence[int]] = field(default_factory=dict)
    extra_ppo: FrozenSet[Edge] = frozenset()
    protocol_order: FrozenSet[Edge] = frozenset()
    static: Optional[StaticRelations] = field(
        default=None, repr=False, compare=False)

    def __post_init__(self) -> None:
        if self.static is not None:
            self._by_uid = self.static.by_uid
        else:
            self._by_uid = {e.uid: e for e in self.events}

    # ------------------------------------------------------------------
    # Lookup helpers
    # ------------------------------------------------------------------
    def event(self, uid: int) -> Event:
        return self._by_uid[uid]

    @property
    def reads(self) -> List[Event]:
        return [e for e in self.events if e.is_read]

    @property
    def writes(self) -> List[Event]:
        return [e for e in self.events if e.is_write]

    @property
    def fences(self) -> List[Event]:
        return [e for e in self.events if e.is_fence]

    def core_events(self, core: int) -> List[Event]:
        evs = [e for e in self.events if e.core == core]
        evs.sort(key=lambda e: e.index)
        return evs

    @property
    def cores(self) -> List[int]:
        return sorted({e.core for e in self.events if e.core >= 0})

    # ------------------------------------------------------------------
    # Base relations
    # ------------------------------------------------------------------
    def po_edges(self) -> Set[Edge]:
        """Immediate-successor closure of program order (transitive
        closure is implied by path reachability in the union graphs, so
        adjacent pairs suffice for acyclicity checks; we still emit the
        full relation because ppo filters pairs individually)."""
        if self.static is not None:
            self.static.cache_hits += 1
            return self.static.po_edges
        edges: Set[Edge] = set()
        for core in self.cores:
            evs = self.core_events(core)
            for i, a in enumerate(evs):
                for b in evs[i + 1:]:
                    edges.add((a.uid, b.uid))
        return edges

    def po_loc_edges(self) -> Set[Edge]:
        """Program order restricted to same-address memory accesses."""
        if self.static is not None:
            self.static.cache_hits += 1
            return self.static.po_loc_edges
        return {
            (a, b)
            for (a, b) in self.po_edges()
            if self._same_loc(a, b)
        }

    def _same_loc(self, a_uid: int, b_uid: int) -> bool:
        a, b = self._by_uid[a_uid], self._by_uid[b_uid]
        return (
            a.is_memory_access
            and b.is_memory_access
            and a.addr is not None
            and a.addr == b.addr
        )

    def rf_edges(self) -> Set[Edge]:
        return {(w, r) for r, w in self.rf.items()}

    def rfe_edges(self) -> Set[Edge]:
        """External reads-from: writer and reader on different cores.

        Initial writes (core -1) count as external to every reader, and
        OS stores applied on behalf of another core count as external
        when the cores differ.
        """
        out = set()
        for r, w in self.rf.items():
            if self._by_uid[w].core != self._by_uid[r].core:
                out.add((w, r))
        return out

    def rfi_edges(self) -> Set[Edge]:
        """Internal reads-from (store forwarding on one core)."""
        return self.rf_edges() - self.rfe_edges()

    def co_edges(self) -> Set[Edge]:
        edges: Set[Edge] = set()
        for order in self.co.values():
            for i, w1 in enumerate(order):
                for w2 in order[i + 1:]:
                    edges.add((w1, w2))
        return edges

    def fr_edges(self) -> Set[Edge]:
        """from-read: r --fr--> w  iff  rf(r) --co--> w.

        An atomic RMW is both a read and a write; its read component
        never from-reads its own write component (no self edge).
        """
        co_edges = self.co_edges()
        edges: Set[Edge] = set()
        for r, w_src in self.rf.items():
            for (w1, w2) in co_edges:
                if w1 == w_src and w2 != r:
                    edges.add((r, w2))
        return edges

    def atomicity_ok(self) -> bool:
        """RMW atomicity: an atomic that reads from w must be
        co-immediately after w — no intervening write to the address.
        """
        for r, w in self.rf.items():
            ev = self._by_uid[r]
            if ev.kind is not EventKind.ATOMIC:
                continue
            order = self.co.get(ev.addr, [])
            if w not in order or r not in order:
                return False
            if order.index(r) != order.index(w) + 1:
                return False
        return True

    def com_edges(self) -> Set[Edge]:
        """Communication = rf ∪ co ∪ fr."""
        return self.rf_edges() | self.co_edges() | self.fr_edges()

    # ------------------------------------------------------------------
    # Fence-induced order
    # ------------------------------------------------------------------
    def fence_edges(self) -> Set[Edge]:
        """Order imposed by fences under their directional semantics.

        A full fence orders every earlier access before every later
        access on the same core.  Directional fences restrict which
        side(s) they order (e.g. a store-store fence orders earlier
        stores before later stores only).
        """
        if self.static is not None:
            self.static.cache_hits += 1
            return self.static.fence_edges
        edges: Set[Edge] = set()
        for core in self.cores:
            evs = self.core_events(core)
            for fi, fence in enumerate(evs):
                if not fence.is_fence:
                    continue
                before = evs[:fi]
                after = evs[fi + 1:]
                for a in before:
                    if not a.is_memory_access:
                        continue
                    if not _fence_orders_before(fence.fence, a):
                        continue
                    for b in after:
                        if not b.is_memory_access:
                            continue
                        if _fence_orders_after(fence.fence, b):
                            edges.add((a.uid, b.uid))
        return edges

    # ------------------------------------------------------------------
    # Final state
    # ------------------------------------------------------------------
    def final_memory(self) -> Dict[int, int]:
        """Value left at each address: last write in coherence order."""
        out = {}
        for addr, order in self.co.items():
            last = self._by_uid[order[-1]]
            out[addr] = last.value if last.value is not None else 0
        return out

    def load_values(self) -> Dict[int, int]:
        """Value observed by each read uid, per the rf choice."""
        out = {}
        for r, w in self.rf.items():
            wv = self._by_uid[w].value
            out[r] = wv if wv is not None else 0
        return out

    def outcome(self) -> Tuple[Tuple[str, int], ...]:
        """Canonical, hashable outcome: sorted (tag-or-uid, value) for
        every tagged read, used to compare against litmus conditions."""
        vals = self.load_values()
        items = []
        for e in self.events:
            if e.is_read and e.uid in vals:
                key = e.tag or f"r{e.core}.{e.index}"
                items.append((key, vals[e.uid]))
        return tuple(sorted(items))


def _fence_orders_before(kind: FenceKind, access: Event) -> bool:
    if kind is FenceKind.FULL:
        return True
    if kind in (FenceKind.STORE_STORE, FenceKind.STORE_LOAD):
        return access.is_write
    return access.is_read


def _fence_orders_after(kind: FenceKind, access: Event) -> bool:
    if kind is FenceKind.FULL:
        return True
    if kind in (FenceKind.STORE_STORE, FenceKind.LOAD_STORE):
        return access.is_write
    return access.is_read


def is_acyclic(edges: Iterable[Edge]) -> bool:
    """True iff the directed graph over the given edges has no cycle.

    Iterative Kahn peel over plain dict adjacency — no graph-library
    object churn on the enumerator's hot path.  Nodes may be any
    hashable; duplicate edges are harmless (in-degrees balance).
    """
    adj: Dict[int, List[int]] = {}
    indeg: Dict[int, int] = {}
    for a, b in edges:
        adj.setdefault(a, []).append(b)
        if a not in indeg:
            indeg[a] = 0
        indeg[b] = indeg.get(b, 0) + 1
    stack = [n for n, d in indeg.items() if d == 0]
    peeled = 0
    while stack:
        n = stack.pop()
        peeled += 1
        for m in adj.get(n, ()):
            indeg[m] -= 1
            if indeg[m] == 0:
                stack.append(m)
    return peeled == len(indeg)


def transitive_closure(edges: Iterable[Edge]) -> Set[Edge]:
    """Reachability pairs of the edge set (iterative DFS per source)."""
    adj: Dict[int, List[int]] = {}
    nodes: Set[int] = set()
    for a, b in edges:
        adj.setdefault(a, []).append(b)
        nodes.add(a)
        nodes.add(b)
    closure: Set[Edge] = set()
    for src in nodes:
        seen: Set[int] = set()
        stack = list(adj.get(src, ()))
        while stack:
            n = stack.pop()
            if n in seen:
                continue
            seen.add(n)
            closure.add((src, n))
            stack.extend(adj.get(n, ()))
    return closure


def per_read_rf_options(
    events: Sequence[Event],
) -> List[Tuple[Event, Tuple[int, ...]]]:
    """Candidate writers per read: ``[(read, (writer_uid, ...)), ...]``.

    Each read may read from any write to the same address (including
    the initial write).  Shared by the naive cross-product and the
    backtracking enumerator so both validate and order options
    identically.
    """
    writes_by_addr: Dict[int, List[Event]] = {}
    for e in events:
        if e.is_write and e.addr is not None:
            writes_by_addr.setdefault(e.addr, []).append(e)

    out: List[Tuple[Event, Tuple[int, ...]]] = []
    for r in events:
        if not (r.is_read and r.addr is not None):
            continue
        options = tuple(w.uid for w in writes_by_addr.get(r.addr, ()))
        if not options:
            # A read of a never-written address still needs a source;
            # the caller must include initial writes to avoid this.
            raise ValueError(f"read {r} has no candidate writer")
        out.append((r, options))
    return out


def per_addr_co_orders(
    events: Sequence[Event],
) -> Dict[int, List[Tuple[int, ...]]]:
    """All coherence orders per address: permutations of the non-initial
    writes, each prefixed by the initial write."""
    init_by_addr: Dict[int, int] = {}
    writes_by_addr: Dict[int, List[int]] = {}
    for e in events:
        if not (e.is_write and e.addr is not None):
            continue
        if e.core == -1:
            init_by_addr[e.addr] = e.uid
        else:
            writes_by_addr.setdefault(e.addr, []).append(e.uid)

    out: Dict[int, List[Tuple[int, ...]]] = {}
    for addr in sorted(set(init_by_addr) | set(writes_by_addr)):
        rest = writes_by_addr.get(addr, [])
        prefix = ((init_by_addr[addr],) if addr in init_by_addr else ())
        out[addr] = [prefix + p for p in itertools.permutations(rest)] \
            or [()]
    return out


def candidate_rf_choices(
    events: Sequence[Event],
) -> List[Dict[int, int]]:
    """Enumerate every reads-from assignment for ``events``.

    The cross-product over reads yields all candidates; model axioms
    prune the inconsistent ones.  Each returned dict is freshly built
    and never mutated downstream, so callers may pass them straight
    into :class:`Execution` without copying.
    """
    per_read = per_read_rf_options(events)
    choices = []
    for combo in itertools.product(*(options for _, options in per_read)):
        choices.append({r.uid: w for (r, _), w in zip(per_read, combo)})
    return choices


def candidate_co_choices(
    events: Sequence[Event],
) -> List[Dict[int, Tuple[int, ...]]]:
    """Enumerate every coherence order.

    The cross-product over addresses yields all candidate co maps;
    orders are immutable tuples shared by every candidate that uses
    them (no per-candidate copying).
    """
    per_addr = per_addr_co_orders(events)
    addrs = list(per_addr)
    out = []
    for combo in itertools.product(*(per_addr[a] for a in addrs)):
        out.append(dict(zip(addrs, combo)))
    return out


def count_rf_choices(events: Sequence[Event]) -> int:
    """``len(candidate_rf_choices(events))`` without materialising it."""
    total = 1
    for _, options in per_read_rf_options(events):
        total *= len(options)
    return total


def count_co_choices(events: Sequence[Event]) -> int:
    """``len(candidate_co_choices(events))`` without materialising it."""
    per_addr_writes: Dict[int, int] = {}
    for e in events:
        if e.is_write and e.addr is not None and e.core != -1:
            per_addr_writes[e.addr] = per_addr_writes.get(e.addr, 0) + 1
    total = 1
    for n in per_addr_writes.values():
        total *= math.factorial(n)
    return total
