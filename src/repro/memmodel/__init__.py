"""Memory-consistency formalism (paper §4).

Public surface:

* :mod:`~repro.memmodel.events` — the Table 4 operation vocabulary.
* :mod:`~repro.memmodel.axioms` — SC / PC(TSO) / WC / RVWMO models.
* :mod:`~repro.memmodel.enumerator` — exhaustive allowed-outcome sets.
* :mod:`~repro.memmodel.imprecise` — the imprecise-store-exception
  protocol and the split-/same-stream transforms.
* :mod:`~repro.memmodel.proofs` — executable versions of Proof 1 and
  the Figure 2 race.
* :mod:`~repro.memmodel.checker` — observed-vs-allowed conformance.
"""

from .axioms import (
    MODELS,
    PC,
    RVWMO_MODEL,
    SC,
    TSO,
    WC,
    MemoryModel,
    ProcessorConsistency,
    SequentialConsistency,
    WeakConsistency,
    get_model,
)
from .checker import ConformanceResult, check_conformance, check_outcome_set
from .enumerator import (
    STRATEGIES,
    EnumerationResult,
    EnumerationStats,
    allowed_outcomes,
    canonical_outcome,
    compare_models,
    enumerate_executions,
)
from .events import Event, EventKind, FenceKind, initial_writes, program
from .imprecise import DrainPolicy, ImpreciseTransform, transform
from .operational import (
    ExplorationBudgetExceeded,
    OperationalSC,
    OperationalTSO,
    sc_outcomes,
    tso_outcomes,
)
from .proofs import (
    ProofReport,
    RaceDemonstration,
    demonstrate_figure2_race,
    prove_rule_suite,
    prove_store_store_rule,
)
from .relations import Execution, StaticRelations, is_acyclic
from .witness import explain_forbidden, find_cycle, render_execution

__all__ = [
    "MODELS", "PC", "RVWMO_MODEL", "SC", "TSO", "WC",
    "MemoryModel", "ProcessorConsistency", "SequentialConsistency",
    "WeakConsistency", "get_model",
    "ConformanceResult", "check_conformance", "check_outcome_set",
    "STRATEGIES", "EnumerationResult", "EnumerationStats",
    "allowed_outcomes", "canonical_outcome", "compare_models",
    "enumerate_executions",
    "Event", "EventKind", "FenceKind", "initial_writes", "program",
    "DrainPolicy", "ImpreciseTransform", "transform",
    "ExplorationBudgetExceeded", "OperationalSC", "OperationalTSO",
    "sc_outcomes", "tso_outcomes",
    "ProofReport", "RaceDemonstration", "demonstrate_figure2_race",
    "prove_rule_suite", "prove_store_store_rule",
    "Execution", "StaticRelations", "is_acyclic",
    "explain_forbidden", "find_cycle", "render_execution",
]
