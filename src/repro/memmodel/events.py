"""Memory events for the consistency-model formalism.

This module implements the notation of Table 4 of the paper:

=============  ==========================================================
Notation       Meaning
=============  ==========================================================
``L(A)``       Load the latest value from address A
``S(A, D)``    Store data D to address A
``S_OS(A,D)``  The OS applies data D to address A (imprecise handling)
``F``          Fence (memory ordering primitive)
``PUT(S(A))``  Send a faulting store to the architectural interface
``GET``        Retrieve one faulting store from the interface
``DETECT``     Detect an exception on a store
``RESOLVE``    Resolve the exception and resume execution
=============  ==========================================================

Every event carries the core that issued it and its position in that
core's program order.  Executions (see :mod:`repro.memmodel.relations`)
are built from lists of events plus a global memory order.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field, replace
from typing import Iterable, Optional, Sequence, Tuple


class EventKind(enum.Enum):
    """The kinds of memory-order events used by the formalism."""

    LOAD = "L"
    STORE = "S"
    OS_STORE = "S_OS"
    FENCE = "F"
    ATOMIC = "A"  # atomic read-modify-write (load + store semantics)
    DETECT = "DETECT"
    PUT = "PUT"
    GET = "GET"
    RESOLVE = "RESOLVE"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


#: Kinds that read from memory.
READ_KINDS = frozenset({EventKind.LOAD, EventKind.ATOMIC})

#: Kinds that write to memory.
WRITE_KINDS = frozenset({EventKind.STORE, EventKind.OS_STORE, EventKind.ATOMIC})

#: Kinds that participate in the imprecise-exception protocol.
PROTOCOL_KINDS = frozenset(
    {EventKind.DETECT, EventKind.PUT, EventKind.GET, EventKind.RESOLVE}
)


class FenceKind(enum.Enum):
    """Fence strength; ``FULL`` orders everything across it.

    ``STORE_STORE``/``LOAD_LOAD`` model the one-directional fences used
    in the paper's message-passing discussion (Figure 1 inserts a fence
    between the two stores and between the two loads).
    """

    FULL = "full"
    STORE_STORE = "ss"
    LOAD_LOAD = "ll"
    STORE_LOAD = "sl"
    LOAD_STORE = "ls"


_uid_counter = itertools.count()


def _next_uid() -> int:
    return next(_uid_counter)


@dataclass(frozen=True)
class Event:
    """A single node in a candidate execution.

    Attributes:
        uid: Globally unique id; identity of the event.
        core: Index of the hardware thread that issued the event.  OS
            events (``S_OS``, ``GET``, ``RESOLVE``) carry the core on
            whose behalf the OS acts.
        index: Position in the issuing core's program order.
        kind: The :class:`EventKind`.
        addr: Address for loads/stores; ``None`` for fences and the
            pure protocol events (DETECT carries the faulting address).
        value: Data written (stores) or expected to be read (loads,
            when used as a litmus postcondition probe).
        fence: Fence strength for ``FENCE`` events.
        tag: Free-form label, e.g. the register a load targets.
        subject_uid: For protocol events, the uid of the store they are
            about (DETECT/PUT reference the faulting store; GET the PUT
            they consume).
    """

    core: int
    index: int
    kind: EventKind
    addr: Optional[int] = None
    value: Optional[int] = None
    fence: FenceKind = FenceKind.FULL
    tag: str = ""
    subject_uid: Optional[int] = None
    uid: int = field(default_factory=_next_uid)

    @property
    def is_read(self) -> bool:
        # Identity chains instead of frozenset membership: these
        # properties run inside the enumerator's hot loops, and enum
        # hashing dominates the set lookup at this size.
        k = self.kind
        return k is EventKind.LOAD or k is EventKind.ATOMIC

    @property
    def is_write(self) -> bool:
        k = self.kind
        return (k is EventKind.STORE or k is EventKind.ATOMIC
                or k is EventKind.OS_STORE)

    @property
    def is_fence(self) -> bool:
        return self.kind is EventKind.FENCE

    @property
    def is_protocol(self) -> bool:
        return self.kind in PROTOCOL_KINDS

    @property
    def is_memory_access(self) -> bool:
        k = self.kind
        return (k is EventKind.LOAD or k is EventKind.STORE
                or k is EventKind.ATOMIC or k is EventKind.OS_STORE)

    def with_value(self, value: int) -> "Event":
        """Return a copy of this event carrying ``value``.

        Used by the enumerator when binding a load to the write it
        reads from.  The uid is preserved so relation edges built on
        the original event stay valid.
        """
        return replace(self, value=value)

    def __str__(self) -> str:
        if self.kind is EventKind.FENCE:
            body = "F" if self.fence is FenceKind.FULL else f"F.{self.fence.value}"
        elif self.kind in PROTOCOL_KINDS:
            inner = f"0x{self.addr:x}" if self.addr is not None else ""
            body = f"{self.kind.value}({inner})" if inner else self.kind.value
        else:
            val = "?" if self.value is None else str(self.value)
            body = f"{self.kind.value}(0x{self.addr:x},{val})"
        return f"C{self.core}:{self.index}:{body}"


def program(core: int, ops: Iterable[Tuple] ) -> Tuple[Event, ...]:
    """Build a per-core event sequence from compact op tuples.

    Each op is one of::

        ("L", addr)            load
        ("S", addr, value)     store
        ("A", addr, value)     atomic RMW writing ``value``
        ("F",)                 full fence
        ("F", FenceKind.X)     directional fence

    Example:
        >>> evs = program(0, [("S", 0xB, 1), ("F",), ("S", 0xA, 1)])
        >>> [e.kind.value for e in evs]
        ['S', 'F', 'S']
    """
    events = []
    for index, op in enumerate(ops):
        mnemonic = op[0]
        if mnemonic == "L":
            events.append(Event(core, index, EventKind.LOAD, addr=op[1]))
        elif mnemonic == "S":
            events.append(Event(core, index, EventKind.STORE, addr=op[1], value=op[2]))
        elif mnemonic == "A":
            events.append(Event(core, index, EventKind.ATOMIC, addr=op[1], value=op[2]))
        elif mnemonic == "F":
            fence = op[1] if len(op) > 1 else FenceKind.FULL
            events.append(Event(core, index, EventKind.FENCE, fence=fence))
        else:
            raise ValueError(f"unknown op mnemonic {mnemonic!r}")
    return tuple(events)


@dataclass(frozen=True)
class InitialWrite:
    """The implicit zero-initialising write to an address.

    Axiomatic checkers treat initial values as writes that precede all
    other writes to the same address in coherence order.
    """

    addr: int
    value: int = 0

    def as_event(self) -> Event:
        return Event(core=-1, index=-1, kind=EventKind.STORE, addr=self.addr,
                     value=self.value)


def initial_writes(addrs: Sequence[int], values: Optional[dict] = None) -> Tuple[Event, ...]:
    """Materialise initial-value writes for ``addrs``.

    Args:
        addrs: Addresses appearing in the program.
        values: Optional overrides; defaults to zero for every address.
    """
    values = values or {}
    return tuple(
        InitialWrite(addr, values.get(addr, 0)).as_event() for addr in sorted(addrs)
    )
