"""Exhaustive enumeration of candidate executions for small programs.

Given per-core event sequences, the enumerator builds every candidate
execution (all reads-from choices × all coherence orders), filters them
through a model's axioms, and reports the set of allowed outcomes.
This plays the role herd7 plays for the paper's litmus methodology:
the *reference* allowed set against which hardware (here: the
operational simulator) is compared.

Complexity is exponential in test size, which is fine for litmus tests
(≤ ~10 events).  ``max_candidates`` guards against accidental misuse.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from .axioms import MemoryModel
from .events import Event, initial_writes
from .relations import (
    Edge,
    Execution,
    candidate_co_choices,
    candidate_rf_choices,
)

Outcome = Tuple[Tuple[str, int], ...]


@dataclass
class EnumerationResult:
    """Outcomes allowed by a model, with witness executions."""

    model_name: str
    allowed: Set[Outcome] = field(default_factory=set)
    witnesses: Dict[Outcome, Execution] = field(default_factory=dict)
    candidates_examined: int = 0
    candidates_consistent: int = 0

    def permits(self, outcome: Outcome) -> bool:
        return tuple(sorted(outcome)) in self.allowed

    def forbidden(self, all_conceivable: Iterable[Outcome]) -> Set[Outcome]:
        """Outcomes conceivable from value combinations but not allowed."""
        return {tuple(sorted(o)) for o in all_conceivable} - self.allowed


def build_events(
    threads: Sequence[Sequence[Event]],
    extra_events: Sequence[Event] = (),
    init_values: Optional[Dict[int, int]] = None,
) -> Tuple[Event, ...]:
    """Assemble the full event set: threads + extras + initial writes."""
    flat: List[Event] = [e for th in threads for e in th]
    flat.extend(extra_events)
    addrs = {e.addr for e in flat if e.addr is not None and e.is_memory_access}
    inits = initial_writes(sorted(addrs), init_values)
    return tuple(inits) + tuple(flat)


def enumerate_executions(
    threads: Sequence[Sequence[Event]],
    model: MemoryModel,
    extra_ppo: Iterable[Edge] = (),
    protocol_order: Iterable[Edge] = (),
    extra_events: Sequence[Event] = (),
    init_values: Optional[Dict[int, int]] = None,
    max_candidates: int = 2_000_000,
) -> EnumerationResult:
    """Enumerate all candidate executions and judge them under ``model``.

    Args:
        threads: Per-core event sequences (cores numbered by position
            is not required; events carry their own core ids).
        model: The memory model to judge with.
        extra_ppo: Dependency/atomicity edges preserved by all models.
        protocol_order: Imprecise-exception protocol edges.
        extra_events: OS stores or protocol events outside any thread.
        init_values: Initial memory values (default 0).
        max_candidates: Safety valve on the search-space size.

    Returns:
        An :class:`EnumerationResult` with the allowed outcome set.
    """
    events = build_events(threads, extra_events, init_values)
    rf_choices = candidate_rf_choices(events)
    co_choices = candidate_co_choices(events)
    total = len(rf_choices) * len(co_choices)
    if total > max_candidates:
        raise ValueError(
            f"{total} candidate executions exceed max_candidates="
            f"{max_candidates}; shrink the program"
        )

    result = EnumerationResult(model_name=model.name)
    extra_ppo_f = frozenset(extra_ppo)
    protocol_f = frozenset(protocol_order)
    for rf in rf_choices:
        for co in co_choices:
            result.candidates_examined += 1
            execution = Execution(
                events=events,
                rf=dict(rf),
                co={a: list(order) for a, order in co.items()},
                extra_ppo=extra_ppo_f,
                protocol_order=protocol_f,
            )
            if not model.allows(execution):
                continue
            result.candidates_consistent += 1
            outcome = execution.outcome()
            if outcome not in result.allowed:
                result.allowed.add(outcome)
                result.witnesses[outcome] = execution
    return result


def allowed_outcomes(
    threads: Sequence[Sequence[Event]],
    model: MemoryModel,
    **kwargs,
) -> Set[Outcome]:
    """Convenience wrapper returning only the allowed outcome set."""
    return enumerate_executions(threads, model, **kwargs).allowed


def compare_models(
    threads: Sequence[Sequence[Event]],
    weaker: MemoryModel,
    stronger: MemoryModel,
    **kwargs,
) -> Set[Outcome]:
    """Outcomes the weaker model admits but the stronger forbids.

    Useful for demonstrating relaxations, e.g. the store-buffering
    outcome PC admits but SC forbids.
    """
    weak = allowed_outcomes(threads, weaker, **kwargs)
    strong = allowed_outcomes(threads, stronger, **kwargs)
    return weak - strong
