"""Enumeration of candidate executions for small programs.

Given per-core event sequences, the enumerator explores candidate
executions (reads-from choices × coherence orders), filters them
through a model's axioms, and reports the set of allowed outcomes.
This plays the role herd7 plays for the paper's litmus methodology:
the *reference* allowed set against which hardware (here: the
operational simulator) is compared.

Two strategies produce bit-identical allowed sets
(``tests/test_enumerator_equivalence.py`` asserts it across the whole
litmus library):

* ``"incremental"`` (default) — the herd-style search.  A
  :class:`~repro.memmodel.relations.StaticRelations` object holds
  every rf/co-independent relation (po, po_loc, fences, dependency
  and protocol edges, the per-model ppo), computed once per call.  A
  backtracking DFS assigns a writer to one read at a time, grouped by
  address; each assignment is checked against SC-per-location
  immediately (``acyclic(po_loc_a ∪ rf_a)``), and once an address's
  reads are complete only its *coherent* co orders survive into the
  cross-product, so inconsistent partial assignments die before any
  co order is enumerated.  Because an outcome depends only on rf, a
  complete rf assignment whose outcome is already witnessed is
  skipped outright, and otherwise the co search stops at the first
  globally consistent candidate.  Cycle checks run over int-indexed
  adjacency lists (iterative Kahn peel), not graph-library objects.
* ``"naive"`` — the flat rf × co cross-product with one full
  per-candidate judgement each, kept as the escape hatch and as the
  oracle the incremental path is verified against.
* ``"verify"`` — runs both and raises if they disagree.

Complexity: the naive product visits ``Π_r |writers(r)| × Π_a |W_a|!``
candidates and re-derives every relation per candidate; the
incremental search bounds the same worst case but prunes rf prefixes
per address and shares all static relations, which collapses litmus
workloads to a small multiple of the number of *distinct outcomes*.
``max_candidates`` still guards the worst case against misuse.
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass, field
from typing import (Dict, FrozenSet, Iterable, List, Optional, Sequence,
                    Set, Tuple)

from ..obs.telemetry import current as _telemetry
from .axioms import MemoryModel
from .events import Event, EventKind, initial_writes
from .relations import (
    Edge,
    Execution,
    StaticRelations,
    candidate_co_choices,
    candidate_rf_choices,
    count_co_choices,
    count_rf_choices,
    is_acyclic,
    per_addr_co_orders,
    per_read_rf_options,
)

Outcome = Tuple[Tuple[str, int], ...]

STRATEGIES = ("incremental", "naive", "verify")


def canonical_outcome(outcome: Iterable[Tuple[str, int]]) -> Outcome:
    """The sorted-tuple form, without re-sorting already-sorted input."""
    t = outcome if isinstance(outcome, tuple) else tuple(outcome)
    if all(t[i] <= t[i + 1] for i in range(len(t) - 1)):
        return t
    return tuple(sorted(t))


@dataclass
class EnumerationStats:
    """Observability record for one ``enumerate_executions`` call.

    ``candidates_examined``/``candidates_consistent`` count full
    (rf, co) candidates that reached the global-order check and passed
    it; the prune counters say where the incremental search cut the
    space before that point (the naive strategy never prunes, so its
    prune counters stay zero and ``candidates_examined`` equals the
    full product).
    """

    strategy: str = "incremental"
    #: Complete rf assignments that survived all per-address pruning.
    rf_assignments: int = 0
    #: Partial rf assignments cut by the po_loc ∪ rf cycle check.
    rf_partial_prunes: int = 0
    #: rf assignments cut because some address had no coherent co order.
    addr_co_prunes: int = 0
    #: Coherent-but-redundant rf leaves skipped (outcome already witnessed).
    known_outcome_skips: int = 0
    #: (rf, co) candidates that reached the global acyclicity check.
    candidates_examined: int = 0
    candidates_consistent: int = 0
    #: Times a precomputed static relation was served on the hot path
    #: where the naive path would have re-derived it.
    relation_cache_hits: int = 0
    wall_time_s: float = 0.0

    def as_dict(self) -> Dict[str, float]:
        return {
            "strategy": self.strategy,
            "rf_assignments": self.rf_assignments,
            "rf_partial_prunes": self.rf_partial_prunes,
            "addr_co_prunes": self.addr_co_prunes,
            "known_outcome_skips": self.known_outcome_skips,
            "candidates_examined": self.candidates_examined,
            "candidates_consistent": self.candidates_consistent,
            "relation_cache_hits": self.relation_cache_hits,
            "wall_time_s": round(self.wall_time_s, 6),
        }


@dataclass
class EnumerationResult:
    """Outcomes allowed by a model, with witness executions.

    Outcomes are stored canonically (sorted at construction by
    :meth:`Execution.outcome`), so membership checks need no re-sort
    for canonical callers.
    """

    model_name: str
    allowed: Set[Outcome] = field(default_factory=set)
    witnesses: Dict[Outcome, Execution] = field(default_factory=dict)
    candidates_examined: int = 0
    candidates_consistent: int = 0
    stats: Optional[EnumerationStats] = None

    def permits(self, outcome: Outcome) -> bool:
        return canonical_outcome(outcome) in self.allowed

    def forbidden(self, all_conceivable: Iterable[Outcome]) -> Set[Outcome]:
        """Outcomes conceivable from value combinations but not allowed."""
        return {canonical_outcome(o) for o in all_conceivable} - self.allowed


def build_events(
    threads: Sequence[Sequence[Event]],
    extra_events: Sequence[Event] = (),
    init_values: Optional[Dict[int, int]] = None,
) -> Tuple[Event, ...]:
    """Assemble the full event set: threads + extras + initial writes."""
    flat: List[Event] = [e for th in threads for e in th]
    flat.extend(extra_events)
    addrs = {e.addr for e in flat if e.addr is not None and e.is_memory_access}
    inits = initial_writes(sorted(addrs), init_values)
    return tuple(inits) + tuple(flat)


def enumerate_executions(
    threads: Sequence[Sequence[Event]],
    model: MemoryModel,
    extra_ppo: Iterable[Edge] = (),
    protocol_order: Iterable[Edge] = (),
    extra_events: Sequence[Event] = (),
    init_values: Optional[Dict[int, int]] = None,
    max_candidates: int = 2_000_000,
    strategy: str = "incremental",
) -> EnumerationResult:
    """Enumerate candidate executions and judge them under ``model``.

    Args:
        threads: Per-core event sequences (cores numbered by position
            is not required; events carry their own core ids).
        model: The memory model to judge with.
        extra_ppo: Dependency/atomicity edges preserved by all models.
        protocol_order: Imprecise-exception protocol edges.
        extra_events: OS stores or protocol events outside any thread.
        init_values: Initial memory values (default 0).
        max_candidates: Safety valve on the search-space size (counted
            as the full rf × co product for either strategy).
        strategy: ``"incremental"`` (default), ``"naive"``, or
            ``"verify"`` (run both, assert identical allowed sets).

    Returns:
        An :class:`EnumerationResult` with the allowed outcome set.
    """
    if strategy not in STRATEGIES:
        raise ValueError(
            f"unknown strategy {strategy!r}; choose from {STRATEGIES}")
    extra_ppo_f = frozenset(extra_ppo)
    protocol_f = frozenset(protocol_order)
    if strategy == "verify":
        incremental = _run_incremental(threads, model, extra_ppo_f,
                                       protocol_f, extra_events,
                                       init_values, max_candidates)
        naive = _run_naive(threads, model, extra_ppo_f, protocol_f,
                           extra_events, init_values, max_candidates)
        if incremental.allowed != naive.allowed:
            raise AssertionError(
                f"strategy divergence under {model.name}: "
                f"incremental-only={incremental.allowed - naive.allowed} "
                f"naive-only={naive.allowed - incremental.allowed}")
        return incremental
    if strategy == "naive":
        return _run_naive(threads, model, extra_ppo_f, protocol_f,
                          extra_events, init_values, max_candidates)
    return _run_incremental(threads, model, extra_ppo_f, protocol_f,
                            extra_events, init_values, max_candidates)


def _run_naive(threads, model, extra_ppo_f, protocol_f,
               extra_events, init_values, max_candidates):
    result = EnumerationResult(model_name=model.name)
    stats = EnumerationStats(strategy="naive")
    started = time.perf_counter()
    events = build_events(threads, extra_events, init_values)
    total = count_rf_choices(events) * count_co_choices(events)
    if total > max_candidates:
        raise ValueError(
            f"{total} candidate executions exceed max_candidates="
            f"{max_candidates}; shrink the program"
        )
    _enumerate_naive(events, model, extra_ppo_f, protocol_f,
                     result, stats)
    return _finish(result, stats, started)


def _run_incremental(threads, model, extra_ppo_f, protocol_f,
                     extra_events, init_values, max_candidates):
    result = EnumerationResult(model_name=model.name)
    stats = EnumerationStats(strategy="incremental")
    started = time.perf_counter()
    entry = _static_entry(threads, extra_events, init_values,
                          extra_ppo_f, protocol_f, max_candidates, stats)
    _enumerate_incremental(entry, model, result, stats)
    return _finish(result, stats, started)


def _finish(result, stats, started):
    stats.wall_time_s = time.perf_counter() - started
    result.stats = stats
    result.candidates_examined = stats.candidates_examined
    result.candidates_consistent = stats.candidates_consistent
    _publish_stats(result, stats, started)
    return result


def _publish_stats(result, stats, started) -> None:
    """Mirror one enumeration's counters into the ambient telemetry.

    Called once per ``enumerate_executions`` (never per search node),
    so the rf-DFS hot path carries no instrumentation at all and the
    disabled-telemetry overhead is one global read per call.
    """
    tel = _telemetry()
    if not tel.enabled:
        return
    tel.record_span("enum.enumerate", started, started + stats.wall_time_s,
                    attrs={"model": result.model_name,
                           "strategy": stats.strategy,
                           "allowed": len(result.allowed)})
    tel.counter("enum.calls").inc()
    for key, value in stats.as_dict().items():
        if key in ("strategy", "wall_time_s"):
            continue
        tel.counter(f"enum.{key}").inc(value)
    tel.histogram("enum.wall_time_s").observe(stats.wall_time_s)


# ----------------------------------------------------------------------
# Naive strategy: the flat product, one full judgement per candidate
# ----------------------------------------------------------------------
def _enumerate_naive(events, model, extra_ppo_f, protocol_f,
                     result, stats) -> None:
    """Judge every (rf, co) pair independently.

    Every relation is re-derived per candidate — this is the baseline
    the perf benchmark measures the incremental search against, and
    the oracle of the equivalence guard.  rf dicts and co tuples are
    shared across candidates without copying (they are never mutated).
    """
    rf_choices = candidate_rf_choices(events)
    co_choices = candidate_co_choices(events)
    for rf in rf_choices:
        for co in co_choices:
            stats.candidates_examined += 1
            execution = Execution(
                events=events,
                rf=rf,
                co=co,
                extra_ppo=extra_ppo_f,
                protocol_order=protocol_f,
            )
            if not model.allows(execution):
                continue
            stats.candidates_consistent += 1
            outcome = execution.outcome()
            if outcome not in result.allowed:
                result.allowed.add(outcome)
                result.witnesses[outcome] = execution
    stats.rf_assignments = len(rf_choices)


# ----------------------------------------------------------------------
# Incremental strategy: backtracking rf search with early pruning
# ----------------------------------------------------------------------
class _StaticEntry:
    """Everything rf/co-independent about one event set.

    Computed once per test — not per candidate, not per model — and
    memoized in :data:`_STATIC_CACHE`, so judging the same program
    under SC/PC/WC/RVWMO shares one setup (only the per-model ppo and
    base ghb graph differ, and those memoize inside the entry too).
    """

    def __init__(self, events, per_read, total,
                 extra_ppo_f, protocol_f) -> None:
        self.events = events
        #: Full rf × co product, for the ``max_candidates`` guard.
        self.total = total
        self.static = StaticRelations(events, extra_ppo_f, protocol_f)
        self.per_read = per_read
        self.perms = per_addr_co_orders(events)
        self.addr_list = list(self.perms)
        self.reads_of_addr: Dict[int, List[Tuple[int, Tuple[int, ...]]]] = {}
        self.outcome_reads: List[Tuple[int, str]] = []
        for r, options in per_read:
            self.reads_of_addr.setdefault(r.addr, []).append(
                (r.uid, options))
            self.outcome_reads.append(
                (r.uid, r.tag or f"r{r.core}.{r.index}"))
        self.write_value = {e.uid: (e.value if e.value is not None else 0)
                            for e in events if e.is_write}
        self.core_of = {e.uid: e.core for e in events}
        # The ghb node universe is model-independent: initial writes
        # never acquire an incoming edge (po/ppo/fences exclude core
        # -1, co orders start at the initial write, fr targets
        # co-successors, rf targets reads) unless an explicit
        # extra_ppo/protocol edge targets them, so they can never sit
        # on a cycle and are dropped — with every edge leaving them —
        # from the graph all checkers share.
        stray_targets = {b for _, b in itertools.chain(extra_ppo_f,
                                                       protocol_f)}
        self.ghb_skip = frozenset(
            e.uid for e in events
            if e.core == -1 and e.uid not in stray_targets)
        ghb_index: Dict[int, int] = {}
        for e in events:
            if e.uid not in self.ghb_skip:
                ghb_index[e.uid] = len(ghb_index)
        for (a, b) in itertools.chain(extra_ppo_f, protocol_f):
            for u in (a, b):
                if u not in ghb_index and u not in self.ghb_skip:
                    ghb_index[u] = len(ghb_index)
        self.ghb_index = ghb_index
        # Model-independent ghb edges (fences ∪ extra_ppo ∪ protocol)
        # as int pairs; each checker appends only its ppo.
        self.ghb_static_int: List[Tuple[int, int]] = [
            (ghb_index[a], ghb_index[b])
            for (a, b) in itertools.chain(self.static.fence_edges,
                                          extra_ppo_f, protocol_f)
            if a not in self.ghb_skip
        ]
        # (addr, rf pairs) -> coherent co orders with their ghb edge
        # fragments.  SC-per-location is model-independent, so this
        # memo is shared by all models.
        self._valid_co: Dict[tuple, List[tuple]] = {}
        # Write-only addresses: their coherent co orders do not depend
        # on rf, so filter them once here.  An address with no coherent
        # order at all makes every candidate inconsistent.
        self.wo_valid: Dict[int, List[tuple]] = {}
        self.impossible_addr: Optional[int] = None
        seed_stats = EnumerationStats()
        for addr in self.addr_list:
            if addr in self.reads_of_addr:
                continue
            valid = self.co_fragments(addr, (), seed_stats)
            if not valid:
                self.impossible_addr = addr
                break
            self.wo_valid[addr] = valid
        # Flattened search order: reads grouped per address, addresses
        # in co-map order, so an address's coherence closes as soon as
        # its last read is assigned.
        self.seq: List[Tuple[int, int, Tuple[int, ...], bool]] = []
        for addr in self.addr_list:
            group = self.reads_of_addr.get(addr, ())
            for i, (uid, options) in enumerate(group):
                self.seq.append((uid, addr, options, i == len(group) - 1))
        # Per-address po_loc successor maps for the incremental
        # reachability prune.
        self.succ_by_addr: Dict[int, Dict[int, List[int]]] = {}
        for addr, edges in self.static.po_loc_by_addr.items():
            d: Dict[int, List[int]] = {}
            for a, b in edges:
                d.setdefault(a, []).append(b)
            self.succ_by_addr[addr] = d
        self._checkers: Dict[str, "_GlobalOrderChecker"] = {}
        # Coherent rf skeleton (see coherent_leaves); None until built.
        self._leaves: Optional[List[tuple]] = None

    def rf_int_edges(self, rf: Dict[int, int]) -> Tuple[list, list]:
        """One rf assignment as int ghb edges: (all, external-only).

        Store-forwarding models use only the external edges; SC uses
        all of them.  Both variants are model-independent, so the
        skeleton precomputes them once per leaf.
        """
        idx = self.ghb_index
        skip = self.ghb_skip
        core_of = self.core_of
        rf_all: List[Tuple[int, int]] = []
        rf_ext: List[Tuple[int, int]] = []
        for r, w in rf.items():
            if w in skip:
                continue
            edge = (idx[w], idx[r])
            rf_all.append(edge)
            if core_of[w] != core_of[r]:
                rf_ext.append(edge)
        return rf_all, rf_ext

    def coherent_leaves(self, stats) -> Optional[List[tuple]]:
        """The model-independent part of the search, run once per test.

        Coherence (SC-per-location) never depends on the model, so the
        backtracking DFS over rf assignments — with its partial-prune
        and per-address co filtering — yields the same set of coherent
        leaves ``(rf, outcome, rf_all, rf_ext, fragments)`` for every
        model (``fragments`` holds each address's coherent co orders
        with their ghb edges already int-encoded).  Judging a test
        under a second model replays the cached leaves straight into
        the model's global-order check.

        Returns ``None`` for search spaces too large to materialise
        (the caller then streams the DFS instead).
        """
        if self._leaves is not None:
            stats.relation_cache_hits += 1
            return self._leaves
        rf_total = 1
        for _, options in self.per_read:
            rf_total *= len(options)
        if rf_total > _LEAF_CACHE_MAX:
            return None
        leaves: List[tuple] = []
        addr_list = self.addr_list
        write_value = self.write_value
        outcome_reads = self.outcome_reads

        def on_leaf(rf, pairs_by_addr, valid_cos):
            outcome = tuple(sorted(
                (key, write_value[rf[uid]])
                for uid, key in outcome_reads))
            rf_all, rf_ext = self.rf_int_edges(rf)
            leaves.append((dict(rf), outcome, rf_all, rf_ext,
                           [valid_cos[a] for a in addr_list]))

        _rf_search(self, stats, on_leaf)
        self._leaves = leaves
        return leaves

    def co_fragments(self, addr, pairs, stats) -> List[tuple]:
        """Coherent co orders for one address under one rf slice, each
        paired with its ghb contribution — co-adjacency plus minimal
        fr — as precomputed int edges: ``[(order, edges), ...]``."""
        key = (addr, tuple(pairs))
        found = self._valid_co.get(key)
        if found is None:
            idx = self.ghb_index
            skip = self.ghb_skip
            found = []
            for order in self.perms[addr]:
                if not _addr_coherent(self.static, addr, order, pairs):
                    continue
                edges: List[Tuple[int, int]] = []
                start = 1 if order and order[0] in skip else 0
                for i in range(start, len(order) - 1):
                    edges.append((idx[order[i]], idx[order[i + 1]]))
                for (r, w) in pairs:
                    nxt = order.index(w) + 1
                    if nxt < len(order) and order[nxt] != r:
                        edges.append((idx[r], idx[order[nxt]]))
                found.append((order, tuple(edges)))
            if len(self._valid_co) >= 4096:
                self._valid_co.clear()
            self._valid_co[key] = found
        else:
            stats.relation_cache_hits += 1
        return found

    def checker(self, model, stats) -> "_GlobalOrderChecker":
        found = self._checkers.get(model.name)
        if found is None:
            # Two models with the same ppo and forwarding rule induce
            # the same ghb graph (WC and RVWMO coincide on programs
            # without atomics), so key the heavy graph build on that.
            graph_key = (self.static.ppo(model),
                         model.allows_store_forwarding)
            found = self._checkers.get(graph_key)
            if found is None:
                found = _GlobalOrderChecker(self, model)
                self._checkers[graph_key] = found
            else:
                stats.relation_cache_hits += 1
            self._checkers[model.name] = found
        else:
            stats.relation_cache_hits += 1
        return found


#: LRU memo of :class:`_StaticEntry` keyed by event identity (uids are
#: process-unique) plus init values and static edge sets.
_STATIC_CACHE: "Dict[tuple, _StaticEntry]" = {}
_STATIC_CACHE_MAX = 512
#: Largest rf product for which the coherent-leaf skeleton is
#: materialised; above it the DFS streams leaves instead.
_LEAF_CACHE_MAX = 20_000


def _static_entry(threads, extra_events, init_values,
                  extra_ppo_f, protocol_f, max_candidates,
                  stats) -> _StaticEntry:
    key = (
        tuple(tuple(e.uid for e in th) for th in threads),
        tuple(e.uid for e in extra_events),
        tuple(sorted(init_values.items())) if init_values else (),
        extra_ppo_f,
        protocol_f,
    )
    entry = _STATIC_CACHE.get(key)
    if entry is None:
        events = build_events(threads, extra_events, init_values)
        per_read = per_read_rf_options(events)
        total = count_co_choices(events)
        for _, options in per_read:
            total *= len(options)
        if total > max_candidates:
            raise ValueError(
                f"{total} candidate executions exceed max_candidates="
                f"{max_candidates}; shrink the program"
            )
        entry = _StaticEntry(events, per_read, total,
                             extra_ppo_f, protocol_f)
        if len(_STATIC_CACHE) >= _STATIC_CACHE_MAX:
            _STATIC_CACHE.pop(next(iter(_STATIC_CACHE)))
        _STATIC_CACHE[key] = entry
    else:
        stats.relation_cache_hits += 1
        if entry.total > max_candidates:
            raise ValueError(
                f"{entry.total} candidate executions exceed max_candidates="
                f"{max_candidates}; shrink the program"
            )
    return entry


class _GlobalOrderChecker:
    """Global-happens-before acyclicity over int-indexed adjacency.

    The static part of the graph (ppo ∪ fences ∪ extra_ppo ∪ protocol)
    is built once per model — over the node universe the entry already
    computed, shared by all models — and condensed into per-node
    reachability bitmasks.  Per candidate only the dynamic rf/co/fr
    edges (pre-encoded as int pairs by the entry) are closed through
    those masks.  Minimal edge forms are used — co as adjacent pairs
    and fr as the first co-successor of the read's writer — which
    preserve reachability, hence acyclicity.
    """

    def __init__(self, entry: "_StaticEntry", model: MemoryModel) -> None:
        idx = entry.ghb_index
        n = len(idx)
        base = list(entry.ghb_static_int)
        # ppo ⊆ po, so its endpoints are core events — always indexed,
        # never skipped.
        for (a, b) in entry.static.ppo(model):
            base.append((idx[a], idx[b]))
        adj: List[List[int]] = [[] for _ in range(n)]
        indeg = [0] * n
        for a, b in base:
            adj[a].append(b)
            indeg[b] += 1
        self.forwarding = model.allows_store_forwarding
        # Reachability bitmasks over the (acyclic) base graph: the
        # per-candidate check then only has to close the handful of
        # dynamic rf/co/fr edges through them.
        order: List[int] = []
        stack = [i for i in range(n) if indeg[i] == 0]
        while stack:
            i = stack.pop()
            order.append(i)
            for j in adj[i]:
                indeg[j] -= 1
                if indeg[j] == 0:
                    stack.append(j)
        self.base_cyclic = len(order) != n
        reach = [0] * n
        for v in reversed(order):
            m = 0
            for w in adj[v]:
                m |= (1 << w) | reach[w]
            reach[v] = m
        self.reach = reach

    def consistent(self, dyn: List[Tuple[int, int]]) -> bool:
        """Acyclicity of base ∪ dyn for one candidate, where ``dyn``
        is the candidate's rf/co/fr edges as int pairs.

        Any cycle must traverse at least one dynamic edge, so instead
        of peeling the whole graph we close only the dynamic edges
        through the precomputed base-reachability bitmasks: edge i can
        feed edge j iff j's source lies in the reach of i's target,
        and a cycle exists iff that d-node condensation (d = a few
        dynamic edges) has one — checked by a bitmask Floyd-Warshall.
        """
        if self.base_cyclic:
            return False
        reach = self.reach
        srcs: List[int] = []
        outs: List[int] = []
        for a, b in dyn:
            if a == b or (reach[b] >> a) & 1:
                return False  # the edge alone closes a base cycle
            srcs.append(a)
            outs.append((1 << b) | reach[b])
        d = len(srcs)
        closure: List[int] = []
        for i in range(d):
            oi = outs[i]
            m = 0
            for j in range(d):
                if j != i and (oi >> srcs[j]) & 1:
                    m |= 1 << j
            closure.append(m)
        for k in range(d):
            rk = closure[k]
            bit = 1 << k
            for i in range(d):
                if closure[i] & bit:
                    closure[i] |= rk
            if closure[k] & bit:
                return False
        return True


def _addr_coherent(static: StaticRelations, addr: int,
                   order: Tuple[int, ...],
                   pairs: Sequence[Tuple[int, int]]) -> bool:
    """SC-per-location for one address under one co order.

    Checks RMW atomicity (the atomic sits co-immediately after its
    writer) and acyclicity of ``po_loc_a ∪ rf_a ∪ co_a ∪ fr_a`` —
    exactly the per-address slice of the full coherence axiom, which
    decomposes because communication edges never cross addresses.

    The acyclicity check is positional rather than graph-based: place
    write ``w`` at ``2·pos(w)`` and a read of ``w`` at ``2·pos(w)+1``
    (an RMW takes its write slot).  Every rf/co/fr edge then ascends
    strictly by construction, and for any same-address pair with
    ``eff(x) > eff(y)`` a communication path ``y →* x`` exists, so the
    graph is acyclic iff every po_loc edge ascends too (ties are
    two plain reads of the same write, which only po_loc can relate —
    never cyclically).
    """
    by_uid = static.by_uid
    pos = {uid: i for i, uid in enumerate(order)}
    eff = {uid: 2 * i for i, uid in enumerate(order)}
    for (r, w) in pairs:
        if by_uid[r].kind is EventKind.ATOMIC:
            if pos.get(r, -1) != pos.get(w, -99) + 1:
                return False
        else:
            eff[r] = 2 * pos[w] + 1
    for (x, y) in static.po_loc_by_addr.get(addr, ()):
        if eff[x] > eff[y]:
            return False
    return True


_EMPTY_SUCC: Dict[int, List[int]] = {}


def _reaches(succ: Dict[int, List[int]],
             rf_by_writer: Dict[int, List[int]],
             src: int, dst: int) -> bool:
    """Is ``dst`` reachable from ``src`` over po_loc ∪ assigned rf?

    Used as the incremental SC-per-location prune: the per-address
    graph was acyclic before the new rf edge ``w → r``, so the edge
    closes a cycle iff ``w`` is reachable from ``r``.
    """
    stack = [src]
    seen = {src}
    while stack:
        x = stack.pop()
        for y in succ.get(x, ()):
            if y == dst:
                return True
            if y not in seen:
                seen.add(y)
                stack.append(y)
        for y in rf_by_writer.get(x, ()):
            if y == dst:
                return True
            if y not in seen:
                seen.add(y)
                stack.append(y)
    return False


def _rf_search(entry: _StaticEntry, stats, on_leaf) -> None:
    """Backtracking DFS over per-read rf choices with early pruning.

    Assigns a writer to one read at a time (reads grouped by address);
    each assignment runs the incremental SC-per-location prune, and a
    completed address filters its co orders immediately, so
    inconsistent partial assignments are abandoned before any co order
    of the remaining addresses is enumerated.  ``on_leaf`` fires for
    every surviving (coherent) complete rf assignment with the live
    ``rf``/``pairs_by_addr``/``valid_cos`` state (callees must copy
    what they keep).
    """
    seq = entry.seq
    nseq = len(seq)
    succ_by_addr = entry.succ_by_addr

    valid_cos: Dict[int, List[tuple]] = dict(entry.wo_valid)
    rf: Dict[int, int] = {}
    pairs_by_addr: Dict[int, List[Tuple[int, int]]] = {
        addr: [] for addr in entry.reads_of_addr}
    rfw_by_addr: Dict[int, Dict[int, List[int]]] = {
        addr: {} for addr in entry.reads_of_addr}

    def descend(i: int) -> None:
        if i == nseq:
            on_leaf(rf, pairs_by_addr, valid_cos)
            return
        r_uid, addr, options, last_of_addr = seq[i]
        pairs = pairs_by_addr[addr]
        succ = succ_by_addr.get(addr, _EMPTY_SUCC)
        rfw = rfw_by_addr[addr]
        for w in options:
            if w == r_uid or _reaches(succ, rfw, r_uid, w):
                # Partial SC-per-location violation: no co/fr extension
                # can ever make this prefix coherent.
                stats.rf_partial_prunes += 1
                continue
            pairs.append((r_uid, w))
            rf[r_uid] = w
            rfw.setdefault(w, []).append(r_uid)
            if last_of_addr:
                valid = entry.co_fragments(addr, pairs, stats)
                if not valid:
                    stats.addr_co_prunes += 1
                else:
                    valid_cos[addr] = valid
                    descend(i + 1)
                    del valid_cos[addr]
            else:
                descend(i + 1)
            rfw[w].pop()
            if not rfw[w]:
                del rfw[w]
            pairs.pop()
            del rf[r_uid]

    descend(0)


def _enumerate_incremental(entry: _StaticEntry, model, result,
                           stats) -> None:
    if entry.impossible_addr is not None:
        stats.addr_co_prunes += 1
        return
    static = entry.static
    addr_list = entry.addr_list
    checker = entry.checker(model, stats)
    forwarding = checker.forwarding
    consistent = checker.consistent
    allowed = result.allowed
    witnesses = result.witnesses
    product = itertools.product
    # Hot-loop counters live in locals and flush into ``stats`` once.
    n_leaves = known_skips = examined = n_consistent = 0

    def judge_leaf(rf, outcome, rf_all, rf_ext, frag_lists) -> None:
        nonlocal n_leaves, known_skips, examined, n_consistent
        n_leaves += 1
        if outcome in allowed:
            # The outcome depends only on rf; a witness already exists.
            known_skips += 1
            return
        rf_part = rf_ext if forwarding else rf_all
        for combo in product(*frag_lists):
            examined += 1
            dyn = [*rf_part]
            for frag in combo:
                dyn += frag[1]
            if consistent(dyn):
                n_consistent += 1
                allowed.add(outcome)
                witnesses[outcome] = Execution(
                    events=entry.events,
                    rf=dict(rf),
                    co={a: frag[0]
                        for a, frag in zip(addr_list, combo)},
                    extra_ppo=static.extra_ppo,
                    protocol_order=static.protocol_order,
                    static=static,
                )
                return

    leaves = entry.coherent_leaves(stats)
    if leaves is not None:
        for rf, outcome, rf_all, rf_ext, frag_lists in leaves:
            judge_leaf(rf, outcome, rf_all, rf_ext, frag_lists)
    else:
        # Search space too large to materialise: stream the DFS,
        # judging each coherent leaf as it appears.
        outcome_reads = entry.outcome_reads
        write_value = entry.write_value

        def on_leaf(rf, pairs_by_addr, valid_cos):
            outcome = tuple(sorted((key, write_value[rf[uid]])
                                   for uid, key in outcome_reads))
            rf_all, rf_ext = entry.rf_int_edges(rf)
            judge_leaf(rf, outcome, rf_all, rf_ext,
                       [valid_cos[a] for a in addr_list])

        _rf_search(entry, stats, on_leaf)

    stats.rf_assignments += n_leaves
    stats.known_outcome_skips += known_skips
    stats.candidates_examined += examined
    # Each examined candidate reuses the precomputed static relations
    # the naive path would have re-derived.
    stats.relation_cache_hits += examined
    stats.candidates_consistent += n_consistent


def allowed_outcomes(
    threads: Sequence[Sequence[Event]],
    model: MemoryModel,
    **kwargs,
) -> Set[Outcome]:
    """Convenience wrapper returning only the allowed outcome set."""
    return enumerate_executions(threads, model, **kwargs).allowed


def compare_models(
    threads: Sequence[Sequence[Event]],
    weaker: MemoryModel,
    stronger: MemoryModel,
    **kwargs,
) -> Set[Outcome]:
    """Outcomes the weaker model admits but the stronger forbids.

    Useful for demonstrating relaxations, e.g. the store-buffering
    outcome PC admits but SC forbids.
    """
    weak = allowed_outcomes(threads, weaker, **kwargs)
    strong = allowed_outcomes(threads, stronger, **kwargs)
    return weak - strong
