"""Metrics registry: counters, gauges, fixed-bucket histograms.

Zero-dependency and allocation-light: instruments are plain objects
with integer/float fields, created once per name and mutated in
place.  Histograms use *fixed* bucket boundaries so percentile
estimates need no per-sample storage and two registries (e.g. a
worker's and the campaign parent's) merge exactly by adding bucket
counts — the property the sharded campaign relies on.

Names are dotted (``enum.rf_assignments``); the leading segment is
the namespace, and :meth:`MetricsRegistry.namespace` projects one
namespace into a flat dict — this is how the legacy per-subsystem
totals (``enumerator_totals`` and friends) are served as thin views.
"""

from __future__ import annotations

import math
import re
from collections import deque
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

#: Default histogram buckets: exponential upper bounds covering
#: sub-microsecond wall times up to minutes and 1..1M counts alike.
DEFAULT_BUCKETS: Tuple[float, ...] = tuple(
    base * 10 ** exp
    for exp in range(-7, 7)
    for base in (1.0, 2.0, 5.0)
)


class Counter:
    """Monotonically increasing value."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def as_dict(self) -> Dict[str, float]:
        return {"value": self.value}


class Gauge:
    """Last-written value, tracking the observed maximum."""

    __slots__ = ("name", "value", "max", "samples")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0
        self.max = 0.0
        self.samples = 0

    def set(self, value: float) -> None:
        self.value = value
        if value > self.max:
            self.max = value
        self.samples += 1

    def as_dict(self) -> Dict[str, float]:
        return {"value": self.value, "max": self.max,
                "samples": self.samples}


class Histogram:
    """Fixed-bucket histogram with percentile estimation.

    ``buckets`` are the inclusive upper bounds of each bucket, in
    ascending order; samples above the last bound land in an implicit
    overflow bucket.  Percentiles are reported as the upper bound of
    the bucket containing the requested rank (the overflow bucket
    reports the observed maximum) — an upper-bound estimate, exact
    when samples are integers and buckets are unit-spaced.
    """

    __slots__ = ("name", "buckets", "counts", "count", "total",
                 "min", "max")

    def __init__(self, name: str,
                 buckets: Optional[Sequence[float]] = None) -> None:
        self.name = name
        self.buckets: Tuple[float, ...] = tuple(buckets or DEFAULT_BUCKETS)
        if list(self.buckets) != sorted(self.buckets):
            raise ValueError(f"histogram {name}: buckets must ascend")
        self.counts: List[int] = [0] * (len(self.buckets) + 1)
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        lo, hi = 0, len(self.buckets)
        while lo < hi:
            mid = (lo + hi) // 2
            if value <= self.buckets[mid]:
                hi = mid
            else:
                lo = mid + 1
        self.counts[lo] += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, p: float) -> float:
        """Upper-bound estimate of the ``p``-th percentile, 0..100."""
        if not self.count:
            return 0.0
        rank = max(1, -(-int(p * self.count) // 100))  # ceil(p*n/100)
        seen = 0
        for i, n in enumerate(self.counts):
            seen += n
            if seen >= rank:
                if i < len(self.buckets):
                    return min(self.buckets[i], self.max)
                return self.max
        return self.max

    def as_dict(self) -> Dict[str, float]:
        return {
            "count": self.count,
            "total": self.total,
            "mean": self.mean,
            "min": self.min if self.count else 0.0,
            "max": self.max if self.count else 0.0,
            "p50": self.percentile(50),
            "p90": self.percentile(90),
            "p99": self.percentile(99),
        }


class MetricsRegistry:
    """Name-keyed instrument store with exact merge."""

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    # ------------------------------------------------------------------
    def counter(self, name: str) -> Counter:
        found = self._counters.get(name)
        if found is None:
            found = self._counters[name] = Counter(name)
        return found

    def gauge(self, name: str) -> Gauge:
        found = self._gauges.get(name)
        if found is None:
            found = self._gauges[name] = Gauge(name)
        return found

    def histogram(self, name: str,
                  buckets: Optional[Sequence[float]] = None) -> Histogram:
        found = self._histograms.get(name)
        if found is None:
            found = self._histograms[name] = Histogram(name, buckets)
        return found

    def __len__(self) -> int:
        return (len(self._counters) + len(self._gauges)
                + len(self._histograms))

    # ------------------------------------------------------------------
    def namespace(self, prefix: str) -> Dict[str, float]:
        """Counter values under ``prefix.`` with the prefix stripped —
        the thin-view projection the legacy totals accessors use."""
        start = prefix + "."
        return {name[len(start):]: c.value
                for name, c in self._counters.items()
                if name.startswith(start)}

    def as_dict(self) -> Dict[str, Dict]:
        return {
            "counters": {n: c.value
                         for n, c in sorted(self._counters.items())},
            "gauges": {n: g.as_dict()
                       for n, g in sorted(self._gauges.items())},
            "histograms": {n: h.as_dict()
                           for n, h in sorted(self._histograms.items())},
        }

    # ------------------------------------------------------------------
    def merge_record(self, record: Dict) -> None:
        """Merge one serialised metric record (see
        :meth:`repro.obs.telemetry.Telemetry.drain_records`):
        counters add, gauges keep last/max, histograms add bucket
        counts — exact when bucket layouts match (they do: workers and
        parents run the same code)."""
        kind = record.get("metric")
        name = record["name"]
        if kind == "counter":
            self.counter(name).inc(record["value"])
        elif kind == "gauge":
            gauge = self.gauge(name)
            gauge.value = record["value"]
            gauge.max = max(gauge.max, record["max"])
            gauge.samples += record.get("samples", 0)
        elif kind == "histogram":
            hist = self.histogram(name, record["buckets"])
            if tuple(record["buckets"]) != hist.buckets:
                hist = self.histogram(name)  # layout drift: best effort
            for i, n in enumerate(record["counts"]):
                if i < len(hist.counts):
                    hist.counts[i] += n
            hist.count += record["count"]
            hist.total += record["total"]
            hist.min = min(hist.min, record["min"])
            hist.max = max(hist.max, record["max"])
        else:
            raise ValueError(f"unknown metric record kind {kind!r}")

    def records(self) -> Iterable[Dict]:
        """Serialise every instrument as mergeable records."""
        for name, counter in sorted(self._counters.items()):
            yield {"type": "metric", "metric": "counter", "name": name,
                   "value": counter.value}
        for name, gauge in sorted(self._gauges.items()):
            yield {"type": "metric", "metric": "gauge", "name": name,
                   "value": gauge.value, "max": gauge.max,
                   "samples": gauge.samples}
        for name, hist in sorted(self._histograms.items()):
            yield {"type": "metric", "metric": "histogram", "name": name,
                   "buckets": list(hist.buckets),
                   "counts": list(hist.counts), "count": hist.count,
                   "total": hist.total, "min": hist.min, "max": hist.max}


class SloWindow:
    """Rolling-window latency quantiles for SLO reporting.

    Unlike :class:`Histogram` (whole-lifetime, fixed buckets), an SLO
    window keeps the last ``size`` raw observations in a bounded deque
    and computes exact p50/p99 over that window on demand — the "how
    is the service doing *right now*" view the serve daemon's
    ``metrics`` endpoint exposes next to the lifetime histograms.
    """

    __slots__ = ("name", "size", "total", "_window")

    def __init__(self, name: str, size: int = 512) -> None:
        if size < 1:
            raise ValueError("window size must be >= 1")
        self.name = name
        self.size = size
        self.total = 0
        self._window: "deque[float]" = deque(maxlen=size)

    def observe(self, value: float) -> None:
        self.total += 1
        self._window.append(value)

    def quantile(self, q: float) -> float:
        """Exact ``q``-quantile (0..1) over the current window."""
        if not self._window:
            return 0.0
        ordered = sorted(self._window)
        rank = max(0, math.ceil(q * len(ordered)) - 1)
        return ordered[min(rank, len(ordered) - 1)]

    def as_dict(self) -> Dict[str, float]:
        ordered = sorted(self._window)

        def at(q: float) -> float:
            if not ordered:
                return 0.0
            return ordered[min(max(0, math.ceil(q * len(ordered)) - 1),
                               len(ordered) - 1)]

        return {
            "total": self.total,
            "window": len(self._window),
            "p50": at(0.50),
            "p99": at(0.99),
            "max": ordered[-1] if ordered else 0.0,
        }


# ----------------------------------------------------------------------
# Prometheus text exposition (format 0.0.4)
# ----------------------------------------------------------------------
_PROM_NAME_RE = re.compile(r"[^a-zA-Z0-9_:]")
_PROM_LABEL_RE = re.compile(r"[^a-zA-Z0-9_]")


def prometheus_name(name: str, prefix: str = "repro") -> str:
    """Sanitise a dotted metric name into a Prometheus metric name."""
    flat = _PROM_NAME_RE.sub("_", name)
    if prefix:
        flat = f"{prefix}_{flat}"
    if flat and flat[0].isdigit():
        flat = "_" + flat
    return flat


def prometheus_sample(name: str,
                      labels: Optional[Mapping[str, object]],
                      value: float) -> str:
    """One exposition line, with escaped label values."""
    if labels:
        pairs = []
        for key in sorted(labels):
            label = _PROM_LABEL_RE.sub("_", str(key))
            escaped = (str(labels[key]).replace("\\", r"\\")
                       .replace("\n", r"\n").replace('"', r'\"'))
            pairs.append(f'{label}="{escaped}"')
        name = f"{name}{{{','.join(pairs)}}}"
    if value == math.inf:
        rendered = "+Inf"
    elif value == -math.inf:
        rendered = "-Inf"
    else:
        rendered = repr(float(value))
    return f"{name} {rendered}"


def render_prometheus(registry: "MetricsRegistry",
                      extra_lines: Sequence[str] = (),
                      prefix: str = "repro") -> str:
    """Render a registry as Prometheus text exposition format 0.0.4.

    Counters become ``<name>_total``, gauges emit value and observed
    max, histograms emit cumulative ``_bucket{le=...}`` series plus
    ``_sum``/``_count``.  ``extra_lines`` (already-formatted sample
    lines, e.g. from :func:`prometheus_sample`) are appended verbatim
    — the serve daemon uses them for uptime and SLO-window gauges.
    """
    lines: List[str] = []
    snapshot = registry.as_dict()
    for name, value in snapshot["counters"].items():
        flat = prometheus_name(name, prefix) + "_total"
        lines.append(f"# TYPE {flat} counter")
        lines.append(prometheus_sample(flat, None, value))
    for name, gauge in snapshot["gauges"].items():
        flat = prometheus_name(name, prefix)
        lines.append(f"# TYPE {flat} gauge")
        lines.append(prometheus_sample(flat, None, gauge["value"]))
        lines.append(prometheus_sample(flat + "_max", None, gauge["max"]))
    for name, hist in sorted(registry._histograms.items()):
        flat = prometheus_name(name, prefix)
        lines.append(f"# TYPE {flat} histogram")
        cumulative = 0
        for bound, count in zip(hist.buckets, hist.counts):
            cumulative += count
            lines.append(prometheus_sample(
                flat + "_bucket", {"le": repr(float(bound))}, cumulative))
        lines.append(prometheus_sample(
            flat + "_bucket", {"le": "+Inf"}, hist.count))
        lines.append(prometheus_sample(flat + "_sum", None, hist.total))
        lines.append(prometheus_sample(flat + "_count", None, hist.count))
    lines.extend(extra_lines)
    return "\n".join(lines) + "\n"


class _NullInstrument:
    """Shared do-nothing counter/gauge/histogram for disabled
    telemetry; every mutator is a constant-time no-op."""

    __slots__ = ()
    name = ""
    value = 0.0
    max = 0.0
    count = 0
    total = 0.0
    mean = 0.0
    samples = 0

    def inc(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def percentile(self, p: float) -> float:
        return 0.0

    def as_dict(self) -> Dict[str, float]:
        return {}


NULL_INSTRUMENT = _NullInstrument()
