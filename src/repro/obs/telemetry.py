"""The telemetry context: span tracer + metrics + structured events.

One :class:`Telemetry` object carries the three observability
primitives the subsystems share:

* **Spans** — timed intervals with attributes, on two timebases:
  wall-clock spans (``with tel.span("enum.enumerate"):``, measured in
  seconds via ``perf_counter``) and *virtual-time* spans
  (:meth:`Telemetry.record_span` with caller-supplied timestamps —
  the timing engine emits per-fault phase spans in **simulated
  cycles**, which is what lets Figure 5's breakdown be recomputed
  from the span stream instead of from ad-hoc stat fields).
* **Metrics** — a :class:`~repro.obs.metrics.MetricsRegistry` of
  counters/gauges/histograms.
* **Events** — structured one-shot records (the campaign's shard
  progress bus).

Records are plain dicts, picklable and JSON-ready; sinks
(:mod:`repro.obs.sinks`) receive them as they are produced.
Cross-process merging works by draining a worker telemetry's records
(:meth:`drain_records`) and replaying them into the parent
(:meth:`ingest`) — metric records merge exactly, span/event records
forward to the sinks untouched.

The ambient context: hot paths call :func:`current`, which returns
the installed telemetry or the process-wide :data:`NULL` no-op whose
every operation is constant-time (``enabled`` is ``False``, spans are
a shared reusable no-op context manager, instruments are a shared
null object).  Disabled telemetry therefore costs one global read
plus an attribute check per instrumentation site.
"""

from __future__ import annotations

import time
from typing import Dict, Iterable, List, Optional, Sequence

from .metrics import NULL_INSTRUMENT, MetricsRegistry
from .tracing import current_trace

#: Track names: ``wall`` spans carry perf_counter seconds, ``sim``
#: spans carry simulated cycles (lane = core id).
WALL, SIM = "wall", "sim"


class _Span:
    """Reusable wall-clock span context manager."""

    __slots__ = ("_tel", "name", "attrs", "_start")

    def __init__(self, tel: "Telemetry", name: str, attrs: Dict) -> None:
        self._tel = tel
        self.name = name
        self.attrs = attrs
        self._start = 0.0

    def __enter__(self) -> "_Span":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        self._tel.record_span(self.name, self._start,
                              time.perf_counter(), track=WALL,
                              attrs=self.attrs)


class _NullSpan:
    __slots__ = ()
    name = ""
    attrs: Dict = {}

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> None:
        pass


_NULL_SPAN = _NullSpan()


class Telemetry:
    """A live telemetry context writing to ``sinks``."""

    enabled = True

    def __init__(self, sinks: Sequence = ()) -> None:
        self.sinks = list(sinks)
        self.metrics = MetricsRegistry()
        self.spans_recorded = 0
        self.events_recorded = 0
        self._closed = False

    # ------------------------------------------------------------------
    # Spans
    # ------------------------------------------------------------------
    def span(self, name: str, **attrs) -> _Span:
        """Wall-clock span: ``with tel.span("phase", core=0): ...``."""
        return _Span(self, name, attrs)

    def record_span(self, name: str, start: float, end: float,
                    track: str = WALL, lane: int = 0,
                    attrs: Optional[Dict] = None) -> None:
        """Record a completed span with caller-supplied timestamps.

        ``track=SIM`` marks simulated-cycle timestamps (the timing
        engine's per-fault phases); ``lane`` separates concurrent
        timelines within a track (core id, campaign chunk).
        """
        self.spans_recorded += 1
        record = {"type": "span", "name": name, "track": track,
                  "lane": lane, "ts": start, "dur": end - start,
                  "attrs": attrs or {}}
        trace = current_trace()
        if trace is not None:
            record["trace"] = trace.trace_id
        self._emit(record)

    # ------------------------------------------------------------------
    # Events and samples
    # ------------------------------------------------------------------
    def event(self, name: str, track: str = WALL, lane: int = 0,
              **fields) -> None:
        """Structured one-shot event (instant in the trace view)."""
        self.events_recorded += 1
        record = {"type": "event", "name": name, "track": track,
                  "lane": lane, "ts": time.perf_counter(),
                  "fields": fields}
        trace = current_trace()
        if trace is not None:
            record["trace"] = trace.trace_id
        self._emit(record)

    def sample(self, name: str, value: float, ts: Optional[float] = None,
               track: str = WALL, lane: int = 0) -> None:
        """Time-series sample (a Chrome trace counter event); also
        mirrored into the ``name`` gauge."""
        self.metrics.gauge(name).set(value)
        record = {"type": "sample", "name": name, "track": track,
                  "lane": lane,
                  "ts": time.perf_counter() if ts is None else ts,
                  "value": value}
        trace = current_trace()
        if trace is not None:
            record["trace"] = trace.trace_id
        self._emit(record)

    # ------------------------------------------------------------------
    # Metrics pass-throughs
    # ------------------------------------------------------------------
    def counter(self, name: str):
        return self.metrics.counter(name)

    def gauge(self, name: str):
        return self.metrics.gauge(name)

    def histogram(self, name: str, buckets=None):
        return self.metrics.histogram(name, buckets)

    # ------------------------------------------------------------------
    # Cross-process record bus
    # ------------------------------------------------------------------
    def ingest(self, records: Iterable[Dict]) -> None:
        """Replay records drained from another telemetry (a campaign
        worker): metric records merge into this registry, everything
        else forwards to the sinks."""
        for record in records:
            if record.get("type") == "metric":
                self.metrics.merge_record(record)
            else:
                if record.get("type") == "span":
                    self.spans_recorded += 1
                elif record.get("type") == "event":
                    self.events_recorded += 1
                self._emit(record)

    def drain_records(self) -> List[Dict]:
        """All records buffered by :class:`~repro.obs.sinks.MemorySink`
        sinks plus the metric snapshot — the picklable payload a
        campaign worker returns to the parent."""
        out: List[Dict] = []
        for sink in self.sinks:
            records = getattr(sink, "records", None)
            if records is not None:
                out.extend(records)
        out.extend(self.metrics.records())
        return out

    # ------------------------------------------------------------------
    def summary(self) -> Dict:
        """JSON-ready overview (the campaign report's ``telemetry``
        block and the console sink's input)."""
        return {
            "enabled": True,
            "spans": self.spans_recorded,
            "events": self.events_recorded,
            "metrics": self.metrics.as_dict(),
        }

    def close(self) -> None:
        """Emit the final metric records and close every sink."""
        if self._closed:
            return
        self._closed = True
        for record in self.metrics.records():
            self._emit(record)
        summary = self.summary()
        for sink in self.sinks:
            sink.close(summary)

    def _emit(self, record: Dict) -> None:
        for sink in self.sinks:
            sink.on_record(record)


class NullTelemetry:
    """Disabled telemetry: every operation is a constant-time no-op."""

    enabled = False
    metrics = MetricsRegistry()  # shared, always empty
    spans_recorded = 0
    events_recorded = 0
    sinks: List = []

    def span(self, name: str, **attrs) -> _NullSpan:
        return _NULL_SPAN

    def record_span(self, name: str, start: float, end: float,
                    track: str = WALL, lane: int = 0,
                    attrs: Optional[Dict] = None) -> None:
        pass

    def event(self, name: str, track: str = WALL, lane: int = 0,
              **fields) -> None:
        pass

    def sample(self, name: str, value: float, ts: Optional[float] = None,
               track: str = WALL, lane: int = 0) -> None:
        pass

    def counter(self, name: str):
        return NULL_INSTRUMENT

    def gauge(self, name: str):
        return NULL_INSTRUMENT

    def histogram(self, name: str, buckets=None):
        return NULL_INSTRUMENT

    def ingest(self, records: Iterable[Dict]) -> None:
        pass

    def drain_records(self) -> List[Dict]:
        return []

    def summary(self) -> Dict:
        return {"enabled": False, "spans": 0, "events": 0, "metrics": {}}

    def close(self) -> None:
        pass


#: The process-wide disabled telemetry.
NULL = NullTelemetry()

_current = NULL


def current():
    """The ambient telemetry (the no-op :data:`NULL` by default)."""
    return _current


def set_current(telemetry) -> None:
    global _current
    _current = telemetry if telemetry is not None else NULL


def reset_current() -> None:
    """Back to disabled — also the pool-worker initializer, so forked
    campaign workers never inherit the parent's open sinks."""
    global _current
    _current = NULL


class use:
    """``with obs.use(tel): ...`` — install ``tel`` as the ambient
    telemetry for the block, restoring the previous one after."""

    def __init__(self, telemetry) -> None:
        self.telemetry = telemetry if telemetry is not None else NULL
        self._previous = None

    def __enter__(self):
        global _current
        self._previous = _current
        _current = self.telemetry
        return self.telemetry

    def __exit__(self, *exc) -> None:
        global _current
        _current = self._previous
