"""Offline analysis of telemetry streams (the ``repro stats`` brain).

Two inputs are understood:

* a telemetry JSONL stream written by
  :class:`~repro.obs.sinks.JsonlSink` — summarised into span
  aggregates, event counts, merged metrics, and (when the stream
  contains the timing engine's per-fault phase spans) the Figure
  5-style per-fault overhead breakdown *recomputed from spans*;
* a structured campaign report JSON
  (``repro.litmus.campaign-report/v*``) — summarised from its totals
  blocks, so one ``repro stats`` call covers a whole campaign;
* a Chrome trace-event JSON file written by
  :class:`~repro.obs.sinks.ChromeTraceSink` —
  :func:`chrome_trace_to_records` inverts the exporter's mapping
  (B/E pairs back to spans, ``i`` to events, ``C`` to samples, µs
  back to seconds/cycles) so every artifact ``repro profile`` emits
  can be summarised by the same span aggregator.

:func:`figure5_from_spans` is the acceptance-criterion function: the
breakdown it derives from the span stream must match
:meth:`repro.sim.timing.TimingResult.overhead_breakdown_per_fault`
within one cycle per phase (asserted by the tests), because both are
computed from the same cycle quantities — the spans just carry them
as first-class timeline intervals instead of private stat fields.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Iterable, List, Optional

from .metrics import MetricsRegistry
from .sinks import read_jsonl
from .telemetry import SIM

#: Span-attribute phase → Figure 5 bucket.  ``os_resolve`` folds into
#: ``os_other``, mirroring ``overhead_breakdown_per_fault``.
_PHASE_BUCKET = {
    "uarch": "uarch",
    "os_apply": "os_apply",
    "os_resolve": "os_other",
    "os_other": "os_other",
}


def figure5_from_spans(records: Iterable[Dict]) -> Dict[str, float]:
    """Per-faulting-store cycle breakdown from recorded fault spans.

    Sums the duration of every ``sim``-track span carrying a
    ``phase`` attribute into the three Figure 5 buckets and divides
    by the number of faulting stores (the ``faults`` attribute on
    ``fault.drain`` spans).  Returns zeros when the stream has no
    fault spans.
    """
    sums = {"uarch": 0.0, "os_apply": 0.0, "os_other": 0.0}
    faults = 0
    for record in records:
        if record.get("type") != "span" or record.get("track") != SIM:
            continue
        attrs = record.get("attrs") or {}
        bucket = _PHASE_BUCKET.get(attrs.get("phase"))
        if bucket is None:
            continue
        sums[bucket] += record["dur"]
        faults += int(attrs.get("faults", 0))
    faults = max(1, faults)
    return {name: total / faults for name, total in sums.items()}


def summarize_records(records: Iterable[Dict]) -> Dict:
    """Aggregate a record stream into a JSON-ready summary dict."""
    records = list(records)
    spans: Dict[str, Dict] = {}
    events: Dict[str, int] = {}
    registry = MetricsRegistry()
    summary_record: Optional[Dict] = None
    for record in records:
        kind = record.get("type")
        if kind == "span":
            agg = spans.setdefault(record["name"], {
                "count": 0, "total": 0.0, "min": float("inf"),
                "max": float("-inf"), "track": record["track"]})
            agg["count"] += 1
            agg["total"] += record["dur"]
            agg["min"] = min(agg["min"], record["dur"])
            agg["max"] = max(agg["max"], record["dur"])
        elif kind == "event":
            events[record["name"]] = events.get(record["name"], 0) + 1
        elif kind == "metric":
            registry.merge_record(record)
        elif kind == "summary":
            summary_record = record
    for agg in spans.values():
        agg["mean"] = agg["total"] / agg["count"]
    breakdown = figure5_from_spans(records)
    return {
        "spans": spans,
        "events": events,
        "metrics": registry.as_dict(),
        "figure5_per_fault": (breakdown
                              if any(breakdown.values()) else None),
        "stream_summary": summary_record,
    }


def summarize_jsonl(path) -> Dict:
    return summarize_records(read_jsonl(path))


def render_summary(summary: Dict) -> str:
    """Text rendering of :func:`summarize_records` output."""
    lines: List[str] = []
    for name, agg in sorted(summary["spans"].items()):
        unit = "cycles" if agg["track"] == SIM else "s"
        lines.append(
            f"span {name:<30} n={agg['count']:<7} "
            f"total={agg['total']:.6g}{unit} mean={agg['mean']:.6g}{unit} "
            f"max={agg['max']:.6g}{unit}")
    for name, count in sorted(summary["events"].items()):
        lines.append(f"event {name:<29} n={count}")
    metrics = summary["metrics"]
    for name, value in sorted(metrics["counters"].items()):
        lines.append(f"counter {name:<27} {value:.10g}")
    for name, gauge in sorted(metrics["gauges"].items()):
        lines.append(f"gauge {name:<29} last={gauge['value']:.6g} "
                     f"max={gauge['max']:.6g}")
    for name, hist in sorted(metrics["histograms"].items()):
        lines.append(f"histogram {name:<25} n={hist['count']} "
                     f"mean={hist['mean']:.6g} p50={hist['p50']:.6g} "
                     f"p90={hist['p90']:.6g} p99={hist['p99']:.6g}")
    breakdown = summary.get("figure5_per_fault")
    if breakdown:
        lines.append(
            "figure5 per-fault breakdown (from spans): "
            f"uarch {breakdown['uarch']:.1f}  "
            f"os-apply {breakdown['os_apply']:.1f}  "
            f"os-other {breakdown['os_other']:.1f}  total "
            f"{sum(breakdown.values()):.1f} cycles")
    return "\n".join(lines) if lines else "(empty telemetry stream)"


# ----------------------------------------------------------------------
# Chrome trace import (inverse of sinks.chrome_trace_events)
# ----------------------------------------------------------------------
_PID_TRACKS = {1: "wall", 2: SIM}


def _from_us(track: str, value: float) -> float:
    if track == SIM:
        return float(value)          # 1 µs = 1 cycle
    return value / 1e6               # µs → seconds


def chrome_trace_to_records(payload: Dict) -> List[Dict]:
    """Reconstruct telemetry records from a Chrome trace payload.

    Inverts :func:`~repro.obs.sinks.chrome_trace_events`: B/E pairs
    are matched per (pid, tid) with a stack, ``X`` events map
    directly, ``i`` instants become events and ``C`` counters become
    samples.  Timestamps convert back from µs (pid 1 → wall seconds,
    pid 2 → sim cycles at 1 µs = 1 cycle); a ``trace`` arg returns to
    the record's top-level ``trace`` field.  Unbalanced events are
    skipped — run :func:`~repro.obs.sinks.validate_chrome_trace`
    first to diagnose those.
    """
    events = payload.get("traceEvents", payload)
    records: List[Dict] = []
    stacks: Dict[tuple, List[Dict]] = {}
    for event in events:
        if not isinstance(event, dict):
            continue
        ph = event.get("ph")
        if ph not in ("B", "E", "X", "i", "C"):
            continue
        pid, tid = event.get("pid"), event.get("tid", 0)
        track = _PID_TRACKS.get(pid, "wall")
        args = dict(event.get("args") or {})
        trace = args.pop("trace", None)
        base = {"name": event.get("name"), "track": track, "lane": tid}
        if trace is not None:
            base["trace"] = trace
        ts_us = float(event.get("ts", 0.0))
        if ph == "B":
            stacks.setdefault((pid, tid), []).append(
                {**base, "ts_us": ts_us, "attrs": args})
        elif ph == "E":
            stack = stacks.get((pid, tid))
            if not stack:
                continue
            opened = stack.pop()
            records.append({
                "type": "span", "name": opened["name"],
                "track": opened["track"], "lane": opened["lane"],
                "ts": _from_us(track, opened["ts_us"]),
                "dur": _from_us(track, ts_us - opened["ts_us"]),
                "attrs": opened["attrs"],
                **({"trace": opened["trace"]}
                   if "trace" in opened else {}),
            })
        elif ph == "X":
            records.append({
                "type": "span", **base,
                "ts": _from_us(track, ts_us),
                "dur": _from_us(track, float(event.get("dur", 0.0))),
                "attrs": args,
            })
        elif ph == "i":
            records.append({"type": "event", **base,
                            "ts": _from_us(track, ts_us),
                            "fields": args})
        elif ph == "C":
            records.append({"type": "sample", **base,
                            "ts": _from_us(track, ts_us),
                            "value": args.get("value", 0.0)})
    return records


def summarize_chrome_trace(payload: Dict) -> Dict:
    return summarize_records(chrome_trace_to_records(payload))


# ----------------------------------------------------------------------
# Campaign report summarisation
# ----------------------------------------------------------------------
def summarize_campaign_report(payload: Dict) -> str:
    """One-screen summary of a structured campaign report (any
    schema version; blocks absent in old versions are skipped)."""
    lines = [
        f"campaign report [{payload.get('schema', '?')}] "
        f"model={payload.get('model')} tests={payload.get('tests')} "
        f"ok={payload.get('ok')} "
        f"wall={payload.get('wall_time_s', 0.0):.2f}s "
        f"jobs={payload.get('jobs', 1)}"
    ]
    cache = payload.get("cache")
    if cache:
        lines.append(f"  cache: hits={cache.get('hits')} "
                     f"misses={cache.get('misses')} "
                     f"hit_rate={cache.get('hit_rate')}")
    for block in ("enumerator", "explorer", "static"):
        totals = payload.get(block)
        if totals:
            body = " ".join(f"{k}={v}" for k, v in sorted(totals.items()))
            lines.append(f"  {block}: {body}")
    telemetry = payload.get("telemetry")
    if telemetry:
        lines.append(f"  telemetry: enabled={telemetry.get('enabled')} "
                     f"spans={telemetry.get('spans', 0)} "
                     f"events={telemetry.get('events', 0)}")
        metrics = telemetry.get("metrics") or {}
        for name, value in sorted((metrics.get("counters") or {}).items()):
            lines.append(f"    counter {name:<25} {value:.10g}")
    return "\n".join(lines)


def load_stats_input(path) -> Dict:
    """Classify ``path`` as a telemetry JSONL or a campaign report and
    return ``{"kind": ..., "payload"/"records": ...}``."""
    text = Path(path).read_text()
    stripped = text.lstrip()
    if stripped.startswith("{"):
        try:
            payload = json.loads(text)
        except ValueError:
            payload = None
        if (isinstance(payload, dict)
                and str(payload.get("schema", "")).startswith(
                    "repro.litmus.campaign-report/")):
            return {"kind": "campaign", "payload": payload}
        if (isinstance(payload, dict)
                and isinstance(payload.get("traceEvents"), list)):
            return {"kind": "chrome", "payload": payload}
    records = [json.loads(line) for line in text.splitlines()
               if line.strip()]
    return {"kind": "telemetry", "records": records}
