"""Telemetry sinks and the Chrome trace-event exporter/validator.

Sinks receive every record a :class:`~repro.obs.telemetry.Telemetry`
produces (``on_record``) and are closed once with the final summary
(``close``).  Four are provided:

* :class:`NullSink` — drops everything (disabled telemetry is the
  ambient ``NULL`` telemetry, which never calls sinks at all; this
  exists for explicit wiring).
* :class:`MemorySink` — buffers records in a list; the campaign
  workers' record bus and the tests' inspection point.
* :class:`JsonlSink` — streams one JSON object per line; the
  ``repro stats`` input format.
* :class:`ChromeTraceSink` — buffers spans/events/samples and writes
  a Chrome trace-event JSON file on close, loadable in Perfetto or
  ``chrome://tracing``.  Wall-clock spans land on the ``wall``
  process (seconds → µs); simulated-cycle spans land on the ``sim``
  process at **1 cycle = 1 µs** with one thread lane per core, so the
  per-fault drain → dispatch → resolve → apply phases read directly
  off the timeline.
* :class:`ConsoleSummarySink` — end-of-run textual summary.

:func:`validate_chrome_trace` is the structural validator the tests
and CI run over emitted traces: required keys, known phases,
per-lane monotonic timestamps, balanced and name-matched B/E pairs,
non-negative X durations.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path
from typing import Dict, IO, List, Optional, Tuple

from .telemetry import SIM


class NullSink:
    def on_record(self, record: Dict) -> None:
        pass

    def close(self, summary: Dict) -> None:
        pass


class MemorySink:
    """Buffer records in memory (tests, worker record bus)."""

    def __init__(self) -> None:
        self.records: List[Dict] = []
        self.summary: Optional[Dict] = None

    def on_record(self, record: Dict) -> None:
        self.records.append(record)

    def close(self, summary: Dict) -> None:
        self.summary = summary


class JsonlSink:
    """Stream records to ``path``, one JSON object per line."""

    def __init__(self, path) -> None:
        self.path = Path(path)
        self._fh: Optional[IO] = self.path.open("w")

    def on_record(self, record: Dict) -> None:
        if self._fh is not None:
            self._fh.write(json.dumps(record, sort_keys=True,
                                      separators=(",", ":")) + "\n")

    def close(self, summary: Dict) -> None:
        if self._fh is not None:
            self._fh.write(json.dumps(
                {"type": "summary", **summary}, sort_keys=True,
                separators=(",", ":")) + "\n")
            self._fh.close()
            self._fh = None


def read_jsonl(path) -> List[Dict]:
    """Load a :class:`JsonlSink` stream back into records."""
    records = []
    for line in Path(path).read_text().splitlines():
        line = line.strip()
        if line:
            records.append(json.loads(line))
    return records


# ----------------------------------------------------------------------
# Chrome trace-event JSON
# ----------------------------------------------------------------------
#: Track name → trace pid.  The sim track's cycle timestamps map
#: 1 cycle = 1 µs; everything else is seconds → µs.
_TRACK_PIDS = {"wall": 1, SIM: 2}


def _track_pid(track: str) -> int:
    return _TRACK_PIDS.get(track, 9)


def _to_us(track: str, value: float) -> float:
    if track == SIM:
        return float(value)          # 1 cycle = 1 µs
    return value * 1e6               # seconds


class ChromeTraceSink:
    """Collect spans/events/samples; write trace-event JSON on close."""

    def __init__(self, path) -> None:
        self.path = Path(path)
        self._spans: List[Dict] = []
        self._instants: List[Dict] = []
        self._counters: List[Dict] = []

    def on_record(self, record: Dict) -> None:
        kind = record.get("type")
        if kind == "span":
            self._spans.append(record)
        elif kind == "event":
            self._instants.append(record)
        elif kind == "sample":
            self._counters.append(record)

    def close(self, summary: Dict) -> None:
        payload = chrome_trace_events(self._spans, self._instants,
                                      self._counters)
        payload["metadata"] = {"spans": summary.get("spans", 0),
                               "events": summary.get("events", 0)}
        self.path.write_text(json.dumps(payload, sort_keys=True,
                                        separators=(",", ":")))


def chrome_trace_events(spans: List[Dict], instants: List[Dict] = (),
                        counters: List[Dict] = ()) -> Dict:
    """Convert telemetry records to ``{"traceEvents": [...]}``.

    Span B/E pairs are generated per (track, lane) with a sweep that
    closes every open span ending at or before the next span's start,
    which yields balanced, properly nested, timestamp-monotonic
    pairs even when spans were recorded at completion (children
    before parents).
    """
    events: List[Dict] = []
    seen_tracks: Dict[str, None] = {}
    lanes: Dict[Tuple[str, int], List[Dict]] = {}
    for span in spans:
        lanes.setdefault((span["track"], span["lane"]), []).append(span)
        seen_tracks.setdefault(span["track"])

    for (track, lane), members in sorted(lanes.items()):
        pid, tid = _track_pid(track), lane
        ordered = sorted(members, key=lambda s: (s["ts"], -s["dur"]))
        stack: List[Tuple[float, str]] = []   # (end_us, name)
        lane_events: List[Dict] = []

        def close_until(limit: float) -> None:
            while stack and stack[-1][0] <= limit:
                end_us, name = stack.pop()
                lane_events.append({"name": name, "ph": "E",
                                    "ts": end_us, "pid": pid,
                                    "tid": tid})

        for span in ordered:
            start = _to_us(track, span["ts"])
            end = start + max(0.0, _to_us(track, span["dur"]))
            close_until(start)
            args = dict(span.get("attrs") or {})
            if span.get("trace") is not None:
                args["trace"] = span["trace"]
            lane_events.append({"name": span["name"], "ph": "B",
                                "ts": start, "pid": pid, "tid": tid,
                                "args": args})
            stack.append((end, span["name"]))
        close_until(float("inf"))
        events.extend(lane_events)

    for record in instants:
        track = record["track"]
        seen_tracks.setdefault(track)
        args = dict(record.get("fields") or {})
        if record.get("trace") is not None:
            args["trace"] = record["trace"]
        events.append({"name": record["name"], "ph": "i", "s": "t",
                       "ts": _to_us(track, record["ts"]),
                       "pid": _track_pid(track), "tid": record["lane"],
                       "args": args})
    for record in counters:
        track = record["track"]
        seen_tracks.setdefault(track)
        args = {"value": record["value"]}
        if record.get("trace") is not None:
            args["trace"] = record["trace"]
        events.append({"name": record["name"], "ph": "C",
                       "ts": _to_us(track, record["ts"]),
                       "pid": _track_pid(track), "tid": record["lane"],
                       "args": args})

    # Stable sort by (pid, tid, ts): preserves B/E nesting among
    # equal timestamps while interleaving instants and counters.
    events.sort(key=lambda e: (e["pid"], e["tid"], e["ts"]))

    meta = [{"name": "process_name", "ph": "M", "ts": 0.0,
             "pid": _track_pid(track), "tid": 0,
             "args": {"name": {"wall": "wall-clock",
                               SIM: "sim-cycles"}.get(track, track)}}
            for track in sorted(seen_tracks)]
    return {"traceEvents": meta + events, "displayTimeUnit": "ms"}


# ----------------------------------------------------------------------
# Structural validator (tests + CI)
# ----------------------------------------------------------------------
_KNOWN_PHASES = frozenset({"M", "B", "E", "X", "i", "C"})
_REQUIRED_KEYS = ("name", "ph", "ts", "pid", "tid")


def validate_chrome_trace(payload) -> List[str]:
    """Structural check of a Chrome trace-event payload.

    Returns a list of problems (empty when valid): required keys on
    every event, known phase codes, per-(pid, tid) non-decreasing
    timestamps over non-metadata events, balanced B/E pairs with
    matching names, and non-negative X durations.
    """
    problems: List[str] = []
    if isinstance(payload, dict):
        events = payload.get("traceEvents")
        if not isinstance(events, list):
            return ["missing or non-list 'traceEvents'"]
    elif isinstance(payload, list):
        events = payload
    else:
        return ["payload is neither an object nor an event list"]

    last_ts: Dict[Tuple, float] = {}
    stacks: Dict[Tuple, List[str]] = {}
    for i, event in enumerate(events):
        if not isinstance(event, dict):
            problems.append(f"event {i}: not an object")
            continue
        missing = [k for k in _REQUIRED_KEYS if k not in event]
        if missing:
            problems.append(f"event {i}: missing keys {missing}")
            continue
        ph = event["ph"]
        if ph not in _KNOWN_PHASES:
            problems.append(f"event {i}: unknown phase {ph!r}")
            continue
        if ph == "M":
            continue
        if not isinstance(event["ts"], (int, float)):
            problems.append(f"event {i}: non-numeric ts")
            continue
        lane = (event["pid"], event["tid"])
        ts = float(event["ts"])
        if lane in last_ts and ts < last_ts[lane]:
            problems.append(
                f"event {i}: ts {ts} < {last_ts[lane]} on lane {lane} "
                f"(timestamps must be non-decreasing per pid/tid)")
        last_ts[lane] = ts
        if ph == "B":
            stacks.setdefault(lane, []).append(event["name"])
        elif ph == "E":
            stack = stacks.setdefault(lane, [])
            if not stack:
                problems.append(
                    f"event {i}: E {event['name']!r} with no open B "
                    f"on lane {lane}")
            else:
                opened = stack.pop()
                if opened != event["name"]:
                    problems.append(
                        f"event {i}: E {event['name']!r} closes B "
                        f"{opened!r} on lane {lane}")
        elif ph == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                problems.append(f"event {i}: X with bad dur {dur!r}")
    for lane, stack in sorted(stacks.items()):
        if stack:
            problems.append(
                f"lane {lane}: {len(stack)} unclosed B event(s): "
                f"{stack[-3:]}")
    return problems


def assert_valid_chrome_trace(payload) -> None:
    """Raise :class:`ValueError` listing every structural problem."""
    problems = validate_chrome_trace(payload)
    if problems:
        raise ValueError("invalid Chrome trace: "
                         + "; ".join(problems[:10]))


class ConsoleSummarySink:
    """Human-readable end-of-run summary to ``stream``."""

    def __init__(self, stream: Optional[IO] = None) -> None:
        self.stream = stream
        #: name → [count, total_dur, track]
        self._spans: Dict[str, List] = {}
        self._events: Dict[str, int] = {}

    def on_record(self, record: Dict) -> None:
        kind = record.get("type")
        if kind == "span":
            agg = self._spans.setdefault(
                record["name"], [0, 0.0, record["track"]])
            agg[0] += 1
            agg[1] += record["dur"]
        elif kind == "event":
            name = record["name"]
            self._events[name] = self._events.get(name, 0) + 1

    def close(self, summary: Dict) -> None:
        stream = self.stream or sys.stderr
        print("-- telemetry summary --", file=stream)
        print(f"spans={summary.get('spans', 0)} "
              f"events={summary.get('events', 0)}", file=stream)
        metrics = summary.get("metrics") or {}
        wall = [(total, count, name)
                for name, (count, total, track) in self._spans.items()
                if track != SIM]
        if wall:
            print(f"top spans by total wall time "
                  f"(of {len(wall)}):", file=stream)
            for total, count, name in sorted(wall, reverse=True)[:8]:
                mean = total / count if count else 0.0
                print(f"  {name:<30} n={count:<7} "
                      f"total={total:.6g}s mean={mean:.6g}s",
                      file=stream)
        highlights = sorted(
            ((value, name)
             for name, value in (metrics.get("counters") or {}).items()),
            reverse=True)[:6]
        if highlights:
            print("metric highlights:", file=stream)
            for value, name in highlights:
                print(f"  {name:<30} {value:.10g}", file=stream)
        for name, (count, total, track) in sorted(self._spans.items()):
            unit = "cycles" if track == SIM else "s"
            mean = total / count if count else 0.0
            print(f"  span {name:<28} n={count:<7} "
                  f"total={total:.6g}{unit} mean={mean:.6g}{unit}",
                  file=stream)
        for name, count in sorted(self._events.items()):
            print(f"  event {name:<27} n={count}", file=stream)
        metrics = summary.get("metrics") or {}
        for name, value in sorted((metrics.get("counters") or {}).items()):
            print(f"  counter {name:<25} {value:.10g}", file=stream)
        for name, gauge in sorted((metrics.get("gauges") or {}).items()):
            print(f"  gauge {name:<27} last={gauge['value']:.6g} "
                  f"max={gauge['max']:.6g}", file=stream)
        for name, hist in sorted(
                (metrics.get("histograms") or {}).items()):
            print(f"  histogram {name:<23} n={hist['count']} "
                  f"mean={hist['mean']:.6g} p50={hist['p50']:.6g} "
                  f"p99={hist['p99']:.6g}", file=stream)
