"""Unified telemetry: span tracing, metrics, structured events.

The correlation layer for every subsystem — the timing engine's
per-fault phase spans (Figure 5), the enumerator's search counters,
the explorer's DPOR counters, and the campaign's shard progress all
flow through one :class:`Telemetry` context into pluggable sinks
(JSONL stream, Chrome/Perfetto trace, console summary).

Hot paths read the ambient context via :func:`current`; disabled
telemetry is the process-wide :data:`NULL` no-op, so instrumentation
costs one global read plus an ``enabled`` check.  See
``docs/observability.md``.
"""

from .metrics import (Counter, DEFAULT_BUCKETS, Gauge, Histogram,
                      MetricsRegistry, NULL_INSTRUMENT)
from .sinks import (ChromeTraceSink, ConsoleSummarySink, JsonlSink,
                    MemorySink, NullSink, assert_valid_chrome_trace,
                    chrome_trace_events, read_jsonl,
                    validate_chrome_trace)
from .stats import (figure5_from_spans, load_stats_input,
                    render_summary, summarize_campaign_report,
                    summarize_jsonl, summarize_records)
from .telemetry import (NULL, NullTelemetry, SIM, Telemetry, WALL,
                        current, reset_current, set_current, use)

__all__ = [
    "ChromeTraceSink", "ConsoleSummarySink", "Counter",
    "DEFAULT_BUCKETS", "Gauge", "Histogram", "JsonlSink",
    "MemorySink", "MetricsRegistry", "NULL", "NULL_INSTRUMENT",
    "NullSink", "NullTelemetry", "SIM", "Telemetry", "WALL",
    "assert_valid_chrome_trace", "chrome_trace_events", "current",
    "figure5_from_spans", "load_stats_input", "read_jsonl",
    "render_summary", "reset_current", "set_current",
    "summarize_campaign_report", "summarize_jsonl",
    "summarize_records", "use", "validate_chrome_trace",
]
