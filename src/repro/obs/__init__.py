"""Unified telemetry: span tracing, metrics, structured events.

The correlation layer for every subsystem — the timing engine's
per-fault phase spans (Figure 5), the enumerator's search counters,
the explorer's DPOR counters, and the campaign's shard progress all
flow through one :class:`Telemetry` context into pluggable sinks
(JSONL stream, Chrome/Perfetto trace, console summary).

Hot paths read the ambient context via :func:`current`; disabled
telemetry is the process-wide :data:`NULL` no-op, so instrumentation
costs one global read plus an ``enabled`` check.  Records emitted
under an active :mod:`~repro.obs.tracing` context additionally carry
a ``trace`` id, which is what stitches one serve-daemon request into
a single cross-process timeline.  Trajectory tracking over the
``BENCH_*.json`` files lives in :mod:`~repro.obs.perftrack`.  See
``docs/observability.md``.
"""

from .metrics import (Counter, DEFAULT_BUCKETS, Gauge, Histogram,
                      MetricsRegistry, NULL_INSTRUMENT, SloWindow,
                      prometheus_name, prometheus_sample,
                      render_prometheus)
from .sinks import (ChromeTraceSink, ConsoleSummarySink, JsonlSink,
                    MemorySink, NullSink, assert_valid_chrome_trace,
                    chrome_trace_events, read_jsonl,
                    validate_chrome_trace)
from .stats import (chrome_trace_to_records, figure5_from_spans,
                    load_stats_input, render_summary,
                    summarize_campaign_report, summarize_chrome_trace,
                    summarize_jsonl, summarize_records)
from .telemetry import (NULL, NullTelemetry, SIM, Telemetry, WALL,
                        current, reset_current, set_current, use)
from .tracing import (SpanRetainer, TraceContext, current_trace,
                      is_trace_id, new_span_id, new_trace_id,
                      use_trace)

__all__ = [
    "ChromeTraceSink", "ConsoleSummarySink", "Counter",
    "DEFAULT_BUCKETS", "Gauge", "Histogram", "JsonlSink",
    "MemorySink", "MetricsRegistry", "NULL", "NULL_INSTRUMENT",
    "NullSink", "NullTelemetry", "SIM", "SloWindow", "SpanRetainer",
    "Telemetry", "TraceContext", "WALL",
    "assert_valid_chrome_trace", "chrome_trace_events",
    "chrome_trace_to_records", "current", "current_trace",
    "figure5_from_spans", "is_trace_id", "load_stats_input",
    "new_span_id", "new_trace_id", "prometheus_name",
    "prometheus_sample", "read_jsonl", "render_prometheus",
    "render_summary", "reset_current", "set_current",
    "summarize_campaign_report", "summarize_chrome_trace",
    "summarize_jsonl", "summarize_records", "use",
    "use_trace", "validate_chrome_trace",
]
