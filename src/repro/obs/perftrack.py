"""Continuous perf-regression tracking over ``BENCH_*.json``.

The benchmark suites append one raw JSON entry per recorded run to
per-suite trajectory files (``BENCH_enumerator.json`` and friends).
Historically those were write-only; this module makes them a
regression gate:

* :data:`SCHEMA` (``repro.bench/v1``) is the shared trajectory file
  format: ``{"schema": ..., "suite": ..., "entries": [...]}``.
  :func:`load_bench_file` reads both v1 files and the legacy bare
  JSON lists; :func:`append_entry` appends a run and upgrades the
  file to v1 in place.
* :data:`METRIC_CATALOG` names, per bench, which entry fields are
  tracked metrics, which direction is *good*, and how noisy the
  measurement kind is (``time`` < ``ratio`` < ``count`` < ``exact``
  in decreasing tolerance).
* :func:`normalize` flattens every trajectory into
  :class:`BenchRecord` rows; :func:`check_regressions` compares each
  metric's latest run against the **median of a trailing baseline
  window** — the same noise discipline as
  ``benchmarks/test_obs_overhead.py``'s median-of-rounds measurement
  — with direction-aware, kind-scaled thresholds, and reports any
  untracked bench entries instead of silently skipping them.

``repro bench`` (see :mod:`repro.cli`) is the CLI face:
``repro bench --check`` exits non-zero on any regression, which is
the CI gate protecting the recorded 8.9×/21.9×/132.8× wins.
"""

from __future__ import annotations

import json
import statistics
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = [
    "SCHEMA",
    "TOLERANCES",
    "METRIC_CATALOG",
    "BenchRecord",
    "CheckResult",
    "append_entry",
    "check_regressions",
    "load_bench_file",
    "normalize",
    "render_check",
    "suite_of",
]

#: Trajectory file and record schema identifier.
SCHEMA = "repro.bench/v1"

#: Relative tolerance per measurement kind: wall-clock times are the
#: noisiest on shared CI runners, paired ratios partially cancel
#: machine speed, counts are mostly deterministic, exacts must not
#: move at all.
TOLERANCES: Dict[str, float] = {
    "time": 0.50,
    "ratio": 0.35,
    "count": 0.25,
    "exact": 0.0,
}

#: bench name → tracked metrics as (field, direction, kind).
#: direction is the *good* direction: "higher" metrics regress by
#: falling, "lower" metrics regress by rising.
METRIC_CATALOG: Dict[str, Tuple[Tuple[str, str, str], ...]] = {
    # BENCH_enumerator.json
    "library-vs-seed-old": (("speedup", "higher", "ratio"),
                            ("incremental_s", "lower", "time")),
    "library-vs-native-naive": (("speedup", "higher", "ratio"),),
    "micro-IRIW": (("speedup", "higher", "ratio"),),
    "micro-MP": (("speedup", "higher", "ratio"),),
    "micro-SB": (("speedup", "higher", "ratio"),),
    # BENCH_explorer.json
    "library-dpor-vs-naive": (("reduction", "higher", "ratio"),
                              ("dpor_s", "lower", "time")),
    # BENCH_obs.json
    "obs-overhead-library-sweep": (("disabled_overhead", "lower", "ratio"),
                                   ("enabled_overhead", "lower", "ratio")),
    # BENCH_randgen.json
    "randgen-generate": (("throughput_tests_per_s", "higher", "time"),),
    "randgen-campaign": (("mismatches", "lower", "exact"),
                         ("store_hits_on_rerun", "higher", "exact"),
                         ("incremental_rerun_s", "lower", "time")),
    # BENCH_service.json
    "service-incremental": (("speedup", "higher", "ratio"),
                            ("store_hit_rate", "higher", "exact"),
                            ("warm_s", "lower", "time")),
    "service-query": (("median_ms", "lower", "time"),
                      ("p99_ms", "lower", "time")),
    # BENCH_sim.json
    "sim-figure6-sweep": (("speedup_vs_seed", "higher", "ratio"),
                          ("warm_s", "lower", "time")),
    "sim-scenario16": (("request_p50", "lower", "count"),
                       ("request_p99", "lower", "count")),
    # BENCH_static.json
    "static-prefilter": (("reduction", "higher", "ratio"),),
    # BENCH_taint.json
    "static-taint": (("false_negatives", "lower", "exact"),
                     ("speedup", "higher", "time")),
}


@dataclass
class BenchRecord:
    """One normalised trajectory point: one metric of one bench run."""

    suite: str
    bench: str
    metric: str
    value: float
    direction: str            # "higher" | "lower" is good
    kind: str                 # "time" | "ratio" | "count" | "exact"
    run: int                  # 0-based index within the trajectory
    meta: Dict = field(default_factory=dict)

    def as_dict(self) -> Dict:
        return {
            "schema": SCHEMA,
            "suite": self.suite,
            "bench": self.bench,
            "metric": self.metric,
            "value": self.value,
            "direction": self.direction,
            "kind": self.kind,
            "run": self.run,
            "meta": dict(self.meta),
        }

    @classmethod
    def from_dict(cls, payload: Dict) -> "BenchRecord":
        schema = payload.get("schema", SCHEMA)
        if schema != SCHEMA:
            raise ValueError(f"unknown bench record schema {schema!r}")
        if payload["direction"] not in ("higher", "lower"):
            raise ValueError(f"bad direction {payload['direction']!r}")
        if payload["kind"] not in TOLERANCES:
            raise ValueError(f"bad kind {payload['kind']!r}")
        return cls(
            suite=payload["suite"], bench=payload["bench"],
            metric=payload["metric"], value=float(payload["value"]),
            direction=payload["direction"], kind=payload["kind"],
            run=int(payload["run"]), meta=dict(payload.get("meta") or {}))


def suite_of(path) -> str:
    """``BENCH_enumerator.json`` → ``enumerator``."""
    stem = Path(path).stem
    return stem[len("BENCH_"):] if stem.startswith("BENCH_") else stem


def load_bench_file(path) -> Tuple[str, List[Dict]]:
    """Read a trajectory file in v1 or legacy list format.

    Returns ``(suite, entries)``; a missing file yields an empty
    trajectory so first runs can append unconditionally.
    """
    path = Path(path)
    if not path.exists():
        return suite_of(path), []
    payload = json.loads(path.read_text())
    if isinstance(payload, list):                      # legacy format
        return suite_of(path), payload
    if (isinstance(payload, dict)
            and payload.get("schema") == SCHEMA
            and isinstance(payload.get("entries"), list)):
        return payload.get("suite") or suite_of(path), payload["entries"]
    raise ValueError(f"{path}: neither a legacy trajectory list nor "
                     f"a {SCHEMA} file")


def write_bench_file(path, suite: str, entries: Sequence[Dict]) -> None:
    Path(path).write_text(json.dumps(
        {"schema": SCHEMA, "suite": suite, "entries": list(entries)},
        indent=1) + "\n")


def append_entry(path, entry: Dict) -> int:
    """Append one raw benchmark entry, upgrading the file to v1.

    Returns the entry's run index.  This is what the benchmark
    suites' ``_record`` helpers call under ``REPRO_BENCH_RECORD=1``.
    """
    if not isinstance(entry, dict) or "bench" not in entry:
        raise ValueError("bench entry must be a dict with a 'bench' key")
    suite, entries = load_bench_file(path)
    entries = list(entries) + [entry]
    write_bench_file(path, suite, entries)
    return len(entries) - 1


def normalize(root=".") -> Tuple[List[BenchRecord], List[str]]:
    """Flatten every ``BENCH_*.json`` under ``root`` into records.

    Returns ``(records, untracked)`` where ``untracked`` lists bench
    names that appear in a trajectory but have no catalog entry —
    callers surface these so coverage gaps are never silent.
    """
    records: List[BenchRecord] = []
    untracked: List[str] = []
    seen_untracked = set()
    for path in sorted(Path(root).glob("BENCH_*.json")):
        suite, entries = load_bench_file(path)
        runs: Dict[str, int] = {}
        for entry in entries:
            bench = str(entry.get("bench") or suite)
            run = runs.get(bench, 0)
            runs[bench] = run + 1
            tracked = METRIC_CATALOG.get(bench)
            if tracked is None:
                if bench not in seen_untracked:
                    seen_untracked.add(bench)
                    untracked.append(f"{suite}/{bench}")
                continue
            meta = {k: entry[k] for k in ("tests", "seed", "model")
                    if k in entry}
            for metric, direction, kind in tracked:
                if metric not in entry:
                    continue
                records.append(BenchRecord(
                    suite=suite, bench=bench, metric=metric,
                    value=float(entry[metric]), direction=direction,
                    kind=kind, run=run, meta=meta))
    return records, untracked


@dataclass
class CheckResult:
    """Verdict for one (suite, bench, metric) trajectory."""

    suite: str
    bench: str
    metric: str
    status: str               # "ok" | "regression" | "baseline"
    latest: float
    baseline: Optional[float]
    limit: Optional[float]
    direction: str
    kind: str
    runs: int

    def as_dict(self) -> Dict:
        return {
            "suite": self.suite, "bench": self.bench,
            "metric": self.metric, "status": self.status,
            "latest": self.latest, "baseline": self.baseline,
            "limit": self.limit, "direction": self.direction,
            "kind": self.kind, "runs": self.runs,
        }


def check_regressions(root=".", window: int = 5,
                      tolerances: Optional[Dict[str, float]] = None
                      ) -> Dict:
    """Compare each metric's latest run against its baseline window.

    The baseline is the **median** of up to ``window`` prior runs
    (median, not mean: one noisy historical run must not poison the
    gate).  A "lower is good" metric regresses when the latest value
    exceeds ``baseline * (1 + tol)``; "higher is good" when it falls
    below ``baseline * (1 - tol)``.  Single-run trajectories have no
    baseline yet and report ``status="baseline"`` (passing).
    """
    tols = dict(TOLERANCES)
    tols.update(tolerances or {})
    records, untracked = normalize(root)
    series: Dict[Tuple[str, str, str], List[BenchRecord]] = {}
    for record in records:
        series.setdefault(
            (record.suite, record.bench, record.metric), []).append(record)

    results: List[CheckResult] = []
    for (suite, bench, metric), points in sorted(series.items()):
        points.sort(key=lambda r: r.run)
        latest = points[-1]
        if len(points) == 1:
            results.append(CheckResult(
                suite, bench, metric, "baseline", latest.value,
                None, None, latest.direction, latest.kind, 1))
            continue
        history = [p.value for p in points[:-1]][-window:]
        baseline = statistics.median(history)
        allowance = tols.get(latest.kind, 0.0) * abs(baseline)
        if latest.direction == "lower":
            limit = baseline + allowance
            regressed = latest.value > limit + 1e-12
        else:
            limit = baseline - allowance
            regressed = latest.value < limit - 1e-12
        results.append(CheckResult(
            suite, bench, metric,
            "regression" if regressed else "ok",
            latest.value, baseline, limit,
            latest.direction, latest.kind, len(points)))

    regressions = [r for r in results if r.status == "regression"]
    return {
        "schema": SCHEMA,
        "ok": not regressions,
        "window": window,
        "checked": len(results),
        "regressions": len(regressions),
        "results": [r.as_dict() for r in results],
        "untracked": untracked,
    }


def render_check(report: Dict) -> str:
    """Text rendering of a :func:`check_regressions` report."""
    lines: List[str] = []
    for row in report["results"]:
        where = f"{row['suite']}/{row['bench']}.{row['metric']}"
        arrow = "min" if row["direction"] == "higher" else "max"
        if row["status"] == "baseline":
            detail = f"latest={row['latest']:.6g} (first run, no baseline)"
        else:
            detail = (f"latest={row['latest']:.6g} "
                      f"baseline={row['baseline']:.6g} "
                      f"{arrow}={row['limit']:.6g} runs={row['runs']}")
        lines.append(f"{row['status']:<10} {where:<50} {detail}")
    if report["untracked"]:
        lines.append("untracked bench entries (no catalog metrics): "
                     + ", ".join(report["untracked"]))
    lines.append(
        f"{'OK' if report['ok'] else 'REGRESSION'}: "
        f"{report['checked']} metric trajectories checked, "
        f"{report['regressions']} regression(s), "
        f"window={report['window']}")
    return "\n".join(lines)
