"""Distributed request tracing for the telemetry layer.

A *trace* groups every telemetry record produced on behalf of one
logical request — a ``repro serve`` submit, a profiled CLI run — no
matter which process emitted it.  The design is deliberately small:

* :func:`new_trace_id` mints 16-hex-char identifiers.
* :class:`TraceContext` is the ambient identity (trace id plus a span
  id for the minting site), carried in a :class:`contextvars.ContextVar`
  so concurrent asyncio tasks in the serve daemon each see their own
  trace, and ``asyncio.to_thread`` workers inherit the caller's.
* :func:`use_trace` installs a context for a ``with`` block;
  :func:`current_trace` reads the active one.  ``Telemetry`` stamps
  ``record["trace"]`` on span/event/sample records whenever a context
  is active (see :mod:`repro.obs.telemetry`); with no context the
  records are byte-identical to pre-tracing output.
* :class:`SpanRetainer` is a bounded ring-buffer sink with per-trace
  head-sampling, so the serve daemon can answer ``trace`` lookups
  without unbounded memory growth under heavy traffic.

Worker processes cannot share a ``ContextVar`` with their parent, so
:func:`repro.litmus.campaign.run_campaign` ships the active trace id
inside each chunk payload and the worker re-enters it with
:func:`use_trace` — the cross-process analogue of context propagation.
"""

import binascii
import contextvars
import os
import re
from collections import deque
from typing import Dict, List, Optional, Union

__all__ = [
    "TRACE_FIELD",
    "SpanRetainer",
    "TraceContext",
    "current_trace",
    "is_trace_id",
    "new_span_id",
    "new_trace_id",
    "use_trace",
]

#: Record key carrying the trace id on span/event/sample records.
TRACE_FIELD = "trace"

_TRACE_ID_RE = re.compile(r"^[0-9a-zA-Z_.:-]{1,64}$")


def new_trace_id() -> str:
    """Mint a 16-hex-char trace identifier."""
    return binascii.hexlify(os.urandom(8)).decode("ascii")


def new_span_id() -> str:
    """Mint an 8-hex-char span identifier."""
    return binascii.hexlify(os.urandom(4)).decode("ascii")


def is_trace_id(value: object) -> bool:
    """True for strings safe to accept as a wire-supplied trace id."""
    return isinstance(value, str) and bool(_TRACE_ID_RE.match(value))


class TraceContext:
    """Ambient trace identity: a trace id plus the minting span id."""

    __slots__ = ("trace_id", "span_id")

    def __init__(self, trace_id: Optional[str] = None,
                 span_id: Optional[str] = None):
        self.trace_id = trace_id if trace_id is not None else new_trace_id()
        self.span_id = span_id if span_id is not None else new_span_id()

    def child(self) -> "TraceContext":
        """Same trace, fresh span id — for a logical sub-operation."""
        return TraceContext(self.trace_id)

    def as_dict(self) -> Dict[str, str]:
        return {"trace_id": self.trace_id, "span_id": self.span_id}

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"TraceContext(trace_id={self.trace_id!r})"

    def __eq__(self, other: object) -> bool:
        return (isinstance(other, TraceContext)
                and other.trace_id == self.trace_id
                and other.span_id == self.span_id)

    def __hash__(self) -> int:
        return hash((self.trace_id, self.span_id))


_current: "contextvars.ContextVar[Optional[TraceContext]]" = (
    contextvars.ContextVar("repro.obs.trace", default=None))


def current_trace() -> Optional[TraceContext]:
    """The active :class:`TraceContext`, or ``None`` outside any trace."""
    return _current.get()


class use_trace:
    """Install a trace context for a ``with`` block.

    Accepts a :class:`TraceContext`, a bare trace-id string, or ``None``
    (which *clears* any ambient trace for the block — handy for code
    that must emit untraced records under a traced caller).
    """

    __slots__ = ("context", "_token")

    def __init__(self, trace: Union[TraceContext, str, None]):
        if trace is None or isinstance(trace, TraceContext):
            self.context = trace
        else:
            self.context = TraceContext(str(trace))
        self._token = None

    def __enter__(self) -> Optional[TraceContext]:
        self._token = _current.set(self.context)
        return self.context

    def __exit__(self, *exc) -> None:
        _current.reset(self._token)
        self._token = None


class SpanRetainer:
    """Bounded ring-buffer sink retaining traced records for lookup.

    Keeps at most ``max_records`` span/event/sample records in arrival
    order; older records are evicted from the head (``evicted``
    counter).  Tracks at most ``max_traces`` distinct live trace ids;
    once full, records from *new* traces are head-sampled out — the
    drop decision is made at the first record of the trace and then
    applies to the whole trace, so retained traces are always complete
    within the ring.  Sampled-out trace ids are remembered in a bounded
    set so later records of a dropped trace stay dropped.  Untraced
    records are retained (they compete for ring slots only).
    """

    def __init__(self, max_records: int = 20000, max_traces: int = 512):
        if max_records < 1:
            raise ValueError("max_records must be >= 1")
        if max_traces < 1:
            raise ValueError("max_traces must be >= 1")
        self.max_records = max_records
        self.max_traces = max_traces
        self.retained_total = 0
        self.evicted = 0
        self.sampled_out_traces = 0
        self.sampled_out_records = 0
        self.summary: Optional[Dict] = None
        self._ring: "deque[Dict]" = deque()
        self._trace_counts: Dict[str, int] = {}
        self._sampled_out: "deque[str]" = deque(maxlen=4 * max_traces)
        self._sampled_out_set: set = set()

    def on_record(self, record: Dict) -> None:
        if record.get("type") not in ("span", "event", "sample"):
            return
        trace = record.get(TRACE_FIELD)
        if trace is not None:
            if trace in self._sampled_out_set:
                self.sampled_out_records += 1
                return
            if trace not in self._trace_counts:
                if len(self._trace_counts) >= self.max_traces:
                    self._sample_out(trace)
                    self.sampled_out_records += 1
                    return
                self._trace_counts[trace] = 0
            self._trace_counts[trace] += 1
        self._ring.append(record)
        self.retained_total += 1
        while len(self._ring) > self.max_records:
            old = self._ring.popleft()
            self.evicted += 1
            old_trace = old.get(TRACE_FIELD)
            if old_trace is not None:
                count = self._trace_counts.get(old_trace, 0) - 1
                if count <= 0:
                    self._trace_counts.pop(old_trace, None)
                else:
                    self._trace_counts[old_trace] = count

    def _sample_out(self, trace: str) -> None:
        self.sampled_out_traces += 1
        if self._sampled_out.maxlen and \
                len(self._sampled_out) >= self._sampled_out.maxlen:
            stale = self._sampled_out[0]
            self._sampled_out_set.discard(stale)
        self._sampled_out.append(trace)
        self._sampled_out_set.add(trace)

    def close(self, summary: Dict) -> None:
        self.summary = summary

    def retained(self) -> List[Dict]:
        """Snapshot of the ring, oldest first."""
        return list(self._ring)

    def for_trace(self, trace_id: str) -> List[Dict]:
        """All retained records stamped with ``trace_id``, oldest first."""
        return [r for r in self._ring if r.get(TRACE_FIELD) == trace_id]

    def live_traces(self) -> List[str]:
        """Trace ids with at least one record still in the ring."""
        return sorted(self._trace_counts)

    def stats(self) -> Dict:
        """JSON-ready retention accounting (never silent about drops)."""
        return {
            "retained": len(self._ring),
            "retained_total": self.retained_total,
            "max_records": self.max_records,
            "live_traces": len(self._trace_counts),
            "max_traces": self.max_traces,
            "evicted": self.evicted,
            "sampled_out_traces": self.sampled_out_traces,
            "sampled_out_records": self.sampled_out_records,
        }
