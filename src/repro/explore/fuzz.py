"""Random-schedule fuzzer over mutated litmus programs.

Each iteration mutates a litmus test drawn from
:func:`repro.litmus.generator.generate_all` (plus the curated
library), then checks two things:

* **model conformance** — the operational machine's explored outcome
  set vs the axiomatic allowed set for SC and TSO (bit-equality
  expected; any divergence is an engine or model bug and the
  finding of last resort);
* **drain-policy races** — the imprecise machine under each
  requested policy with a single faulting location at a time, vs the
  clean program's PC-allowed set (split-stream findings are the
  Figure 2a class the subsystem exists to surface).

Exploration is exhaustive (DPOR) while the mutant fits the state
budget; oversized mutants fall back to random schedule sampling
(:func:`repro.explore.engine.sample_schedules` — observed ⊆
explored, so sampled findings are still sound witnesses).  Every
finding is shrunk with :func:`repro.explore.shrink.shrink_test` to a
minimal program plus replayable schedule trace.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..litmus.dsl import FenceKind, LitmusTest
from ..memmodel.imprecise import DrainPolicy
from ..memmodel.operational import ExplorationBudgetExceeded
from .engine import (ExplorationStats, check_drain_policy,
                     crosscheck_test, sample_schedules)
from .machines import Outcome, machine_for
from .shrink import ShrinkResult, rebuild_test, sanitise_threads, shrink_test

DEFAULT_LOCATIONS = ("x", "y", "z")
DEFAULT_FENCES = (FenceKind.FULL, FenceKind.STORE_STORE,
                  FenceKind.LOAD_LOAD, FenceKind.STORE_LOAD,
                  FenceKind.LOAD_STORE)
MAX_THREADS = 3
MAX_OPS = 4
#: Exhaustive-exploration budget per mutant before falling back to
#: random schedule sampling.
FUZZ_MAX_STATES = 60_000
FUZZ_SAMPLES = 200


@dataclass
class Finding:
    """One divergence the fuzzer surfaced (already shrunk if possible)."""

    kind: str  # "model-divergence" | "policy-race"
    test: LitmusTest
    model: str
    policy: Optional[str]
    faulting_locs: Tuple[str, ...]
    outcome: Outcome
    schedule: Tuple[str, ...]
    shrunk: Optional[ShrinkResult] = None

    def describe(self) -> str:
        where = self.model if self.policy is None else \
            f"{self.model}/{self.policy} faults={list(self.faulting_locs)}"
        lines = [f"[{self.kind}] {self.test.name} under {where}",
                 f"  outcome: {dict(self.outcome)}"]
        if self.shrunk is not None:
            lines.append("  shrunk:")
            lines.extend("  " + line
                         for line in self.shrunk.describe().splitlines())
        else:
            lines.append("  schedule: " + " | ".join(self.schedule))
        return "\n".join(lines)


@dataclass
class FuzzReport:
    """Aggregate result of one fuzzing run."""

    seed: int
    iterations: int
    policies: Tuple[str, ...]
    models: Tuple[str, ...]
    findings: List[Finding] = field(default_factory=list)
    mutants_explored: int = 0
    mutants_sampled: int = 0
    wall_time_s: float = 0.0
    stats: ExplorationStats = field(
        default_factory=lambda: ExplorationStats(strategy="fuzz"))

    @property
    def model_divergences(self) -> List[Finding]:
        return [f for f in self.findings if f.kind == "model-divergence"]

    @property
    def policy_races(self) -> List[Finding]:
        return [f for f in self.findings if f.kind == "policy-race"]

    def summary(self) -> str:
        lines = [
            f"fuzz seed={self.seed}: {self.iterations} mutants "
            f"({self.mutants_explored} exhaustive, "
            f"{self.mutants_sampled} sampled) in {self.wall_time_s:.1f}s",
            f"  model divergences: {len(self.model_divergences)} "
            f"(engine bugs — expect 0)",
            f"  drain-policy races: {len(self.policy_races)}",
        ]
        for finding in self.findings:
            lines.append(finding.describe())
        return "\n".join(lines)


# ----------------------------------------------------------------------
# Mutation
# ----------------------------------------------------------------------
def _random_op(rng: random.Random, locations: Sequence[str]) -> tuple:
    roll = rng.random()
    loc = rng.choice(list(locations))
    if roll < 0.45:
        return ("W", loc, rng.randint(1, 2))
    if roll < 0.85:
        return ("R", loc, "rX")  # renamed by sanitise_threads
    if roll < 0.93:
        return ("F", rng.choice(DEFAULT_FENCES))
    return ("A", loc, rng.randint(1, 2), "rX")


def mutate(test: LitmusTest, rng: random.Random,
           locations: Sequence[str] = DEFAULT_LOCATIONS) -> LitmusTest:
    """One random structural mutation, re-sanitised and size-capped."""
    threads = [list(ops) for ops in test.threads]
    mutation = rng.randrange(6)
    tid = rng.randrange(len(threads))
    ops = threads[tid]
    if mutation == 0 and ops:  # drop an op
        ops.pop(rng.randrange(len(ops)))
    elif mutation == 1 and len(ops) < MAX_OPS:  # insert an op
        ops.insert(rng.randint(0, len(ops)), _random_op(rng, locations))
    elif mutation == 2 and len(ops) >= 2:  # swap adjacent ops
        i = rng.randrange(len(ops) - 1)
        ops[i], ops[i + 1] = ops[i + 1], ops[i]
    elif mutation == 3 and ops:  # retarget an op's location
        i = rng.randrange(len(ops))
        op = ops[i]
        if op[0] != "F":
            ops[i] = (op[0], rng.choice(list(locations))) + op[2:]
    elif mutation == 4 and ops:  # tweak a store's value
        stores = [i for i, op in enumerate(ops)
                  if op[0] in ("W", "Waddr", "Wdata", "Wctrl")]
        if stores:
            i = rng.choice(stores)
            op = ops[i]
            ops[i] = (op[0], op[1], rng.randint(1, 3)) + op[3:]
    elif len(threads) < MAX_THREADS and rng.random() < 0.5:  # new thread
        threads.append([_random_op(rng, locations)])
    elif ops:  # fence flip: toggle a fence in/out
        fences = [i for i, op in enumerate(ops) if op[0] == "F"]
        if fences:
            ops.pop(rng.choice(fences))
        elif len(ops) < MAX_OPS:
            ops.insert(rng.randint(0, len(ops)),
                       ("F", rng.choice(DEFAULT_FENCES)))
    threads = [ops[:MAX_OPS] for ops in threads if ops][:MAX_THREADS]
    if not threads:
        threads = [[("W", locations[0], 1)]]
    return LitmusTest(name=f"{test.name}~mut", category=test.category,
                      threads=sanitise_threads(threads))


# ----------------------------------------------------------------------
# Divergence checks
# ----------------------------------------------------------------------
def _explored_outcomes(test: LitmusTest, model: str,
                       faulting_locs: Tuple[str, ...],
                       policy: Optional[DrainPolicy],
                       rng: random.Random,
                       report: Optional[FuzzReport]):
    """(outcomes, schedules, exhaustive?) with sampling fallback."""
    threads, deps = test.to_events()
    faulting = frozenset(test.location_addr(loc) for loc in faulting_locs
                         if loc in test.locations)
    machine = machine_for(model, threads, extra_ppo=deps,
                          faulting=faulting, policy=policy)
    try:
        from .engine import explore
        result = explore(machine, strategy="dpor",
                         max_states=FUZZ_MAX_STATES)
        if report is not None:
            report.stats.merge(result.stats)
            report.mutants_explored += 1
        return result.outcomes, result.schedules, True
    except ExplorationBudgetExceeded:
        if report is not None:
            report.mutants_sampled += 1
        outcomes, schedules = sample_schedules(
            machine, rng, FUZZ_SAMPLES,
            stats=report.stats if report is not None else None)
        return outcomes, schedules, False


def _allowed(test: LitmusTest, model_name: str) -> Set[Outcome]:
    from ..memmodel.axioms import get_model
    from ..memmodel.enumerator import allowed_outcomes
    threads, deps = test.to_events()
    return allowed_outcomes(threads, get_model(model_name),
                            extra_ppo=deps)


def _shrink_finding(finding: Finding, policy: Optional[DrainPolicy],
                    rng: random.Random) -> None:
    reference = {"SC": "SC", "PC": "PC", "WC": "RVWMO"}[finding.model]

    def predicate(candidate: LitmusTest):
        try:
            if policy is None:
                outcomes, schedules, exhaustive = _explored_outcomes(
                    candidate, finding.model, (), None, rng, None)
                allowed = _allowed(candidate, reference)
                bad = outcomes - allowed
                missing = allowed - outcomes if exhaustive else set()
                if bad:
                    pick = sorted(bad)[0]
                    return pick, schedules[pick]
                if missing and finding.model in ("SC", "PC"):
                    return sorted(missing)[0], ()
                return None
            check = check_drain_policy(
                candidate, policy, faulting_locs=[
                    loc for loc in finding.faulting_locs
                    if loc in candidate.locations],
                max_states=FUZZ_MAX_STATES)
            if check.violations_pc:
                pick = sorted(check.violations_pc)[0]
                return pick, check.violation_schedules[pick]
            return None
        except ExplorationBudgetExceeded:
            return None

    finding.shrunk = shrink_test(finding.test, predicate)


def fuzz(seed: int = 0,
         iterations: int = 50,
         models: Sequence[str] = ("SC", "PC"),
         policies: Sequence[DrainPolicy] = (DrainPolicy.SAME_STREAM,
                                            DrainPolicy.SPLIT_STREAM),
         base_tests: Optional[Sequence[LitmusTest]] = None,
         shrink: bool = True,
         time_budget_s: Optional[float] = None,
         max_findings: int = 10) -> FuzzReport:
    """Run the mutation fuzzer; see the module docstring.

    Deterministic for a fixed ``seed`` and test corpus (unless
    ``time_budget_s`` cuts it short).  Stops early after
    ``max_findings`` findings.
    """
    rng = random.Random(seed)
    if base_tests is None:
        from ..litmus.generator import generate_all
        from ..litmus.library import all_library_tests
        base_tests = all_library_tests() + generate_all()
    base_tests = list(base_tests)
    report = FuzzReport(seed=seed, iterations=0,
                        policies=tuple(p.value for p in policies),
                        models=tuple(models))
    started = time.perf_counter()

    for _ in range(iterations):
        if time_budget_s is not None and \
                time.perf_counter() - started > time_budget_s:
            break
        if len(report.findings) >= max_findings:
            break
        report.iterations += 1
        mutant = mutate(rng.choice(base_tests), rng)
        mutant = rebuild_test(mutant, mutant.threads, suffix="")

        # Model conformance: operational vs axiomatic.
        for model in models:
            reference = {"SC": "SC", "PC": "PC", "WC": "RVWMO"}[model]
            outcomes, schedules, exhaustive = _explored_outcomes(
                mutant, model, (), None, rng, report)
            allowed = _allowed(mutant, reference)
            bad = sorted(outcomes - allowed)
            missing = sorted(allowed - outcomes) \
                if exhaustive and model in ("SC", "PC") else []
            if bad or missing:
                outcome = bad[0] if bad else missing[0]
                finding = Finding(
                    kind="model-divergence", test=mutant, model=model,
                    policy=None, faulting_locs=(), outcome=outcome,
                    schedule=schedules.get(outcome, ()))
                if shrink:
                    _shrink_finding(finding, None, rng)
                report.findings.append(finding)

        # Drain-policy races, one faulting location at a time.
        for policy in policies:
            for loc in mutant.locations:
                try:
                    check = check_drain_policy(
                        mutant, policy, faulting_locs=[loc],
                        max_states=FUZZ_MAX_STATES)
                except ExplorationBudgetExceeded:
                    continue
                report.stats.merge(check.stats)
                if not check.violations_pc:
                    continue
                outcome = sorted(check.violations_pc)[0]
                finding = Finding(
                    kind="policy-race", test=mutant, model="PC",
                    policy=policy.value, faulting_locs=(loc,),
                    outcome=outcome,
                    schedule=check.violation_schedules[outcome])
                if shrink:
                    _shrink_finding(finding, policy, rng)
                report.findings.append(finding)
                break  # one race per policy per mutant is enough

    report.wall_time_s = time.perf_counter() - started
    return report
