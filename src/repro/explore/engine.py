"""Stateless exploration engine: DPOR + sleep sets over the pluggable
machines of :mod:`repro.explore.machines`.

Three strategies, mirroring the axiomatic enumerator's contract:

* ``"dpor"`` (default) — stateless depth-first search with
  persistent/backtrack sets in the style of Flanagan-Godefroid
  dynamic partial-order reduction, plus sleep sets.  When a newly
  scheduled transition is *dependent* (see
  :func:`repro.explore.machines.independent`) on an earlier one from
  a different core, the engine adds the later transition's group as a
  backtrack point at the earlier frame — conservatively at **every**
  dependent earlier frame, not just the last race, which keeps the
  reduction sound without a happens-before vector-clock layer.  Sleep
  sets prune sibling schedules already covered by an earlier subtree.
  The engine never hashes states in this mode (DPOR + naive state
  caching is unsound: a cached state does not remember which
  backtrack obligations were pending when it was first reached).
* ``"naive"`` — enumerate schedules with no reduction: the oracle.
  ``dedupe_states=True`` turns it into a state-hashed graph search
  (same outcome set and witnesses, far fewer visits);
  ``dedupe_states=False`` enumerates every complete interleaving,
  which is what the DPOR benchmark measures against.
* ``"verify"`` — run both and raise :class:`AssertionError` on any
  outcome-set divergence, returning the DPOR result.

Soundness invariant the backtracking relies on (established in
:mod:`repro.explore.machines`): enabledness is group-local — no
transition can enable or disable a transition of another group — so
every transition enabled now stays enabled until its own group moves,
and adding the racing group's currently-enabled transitions at the
earlier frame suffices to reorder any discovered race.

Budget: every strategy counts visited search nodes against
``max_states`` and raises the typed
:class:`~repro.memmodel.operational.ExplorationBudgetExceeded` from
the operational layer when exceeded.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import (Callable, Dict, FrozenSet, Iterable, List, Optional,
                    Sequence, Set, Tuple)

from ..memmodel.enumerator import allowed_outcomes
from ..obs.telemetry import current as _telemetry
from ..memmodel.events import Event
from ..memmodel.imprecise import DrainPolicy
from ..memmodel.operational import ExplorationBudgetExceeded
from .machines import Machine, Outcome, Transition, independent, machine_for

STRATEGIES = ("dpor", "naive", "verify")

DEFAULT_MAX_STATES = 500_000

Schedule = Tuple[str, ...]


@dataclass
class ExplorationStats:
    """Search-effort counters, ``as_dict``-serialisable like the
    enumerator's ``EnumerationStats``."""

    strategy: str = "dpor"
    states_visited: int = 0
    transitions_executed: int = 0
    interleavings: int = 0
    sleep_set_blocks: int = 0
    races_detected: int = 0
    max_depth: int = 0
    wall_time_s: float = 0.0

    def as_dict(self) -> Dict[str, object]:
        return {
            "strategy": self.strategy,
            "states_visited": self.states_visited,
            "transitions_executed": self.transitions_executed,
            "interleavings": self.interleavings,
            "sleep_set_blocks": self.sleep_set_blocks,
            "races_detected": self.races_detected,
            "max_depth": self.max_depth,
            "wall_time_s": round(self.wall_time_s, 6),
        }

    def merge(self, other: "ExplorationStats") -> None:
        self.states_visited += other.states_visited
        self.transitions_executed += other.transitions_executed
        self.interleavings += other.interleavings
        self.sleep_set_blocks += other.sleep_set_blocks
        self.races_detected += other.races_detected
        self.max_depth = max(self.max_depth, other.max_depth)
        self.wall_time_s += other.wall_time_s


@dataclass
class ExplorationResult:
    """Outcome set of an exhaustive exploration, with one witnessing
    schedule per outcome."""

    machine: str
    model_name: str
    outcomes: Set[Outcome]
    schedules: Dict[Outcome, Schedule]
    stats: ExplorationStats

    def violations(self, allowed: Set[Outcome]) -> Dict[Outcome, Schedule]:
        """Explored outcomes outside ``allowed``, with witnesses."""
        return {o: self.schedules[o]
                for o in sorted(self.outcomes - set(allowed))}


def explore(machine: Machine,
            strategy: str = "dpor",
            max_states: int = DEFAULT_MAX_STATES,
            dedupe_states: bool = True) -> ExplorationResult:
    """Exhaustively explore ``machine`` and return its outcome set.

    ``dedupe_states`` only affects the naive strategy (see module
    docstring).  Raises :class:`ExplorationBudgetExceeded` when more
    than ``max_states`` search nodes are visited, and
    :class:`AssertionError` from ``strategy="verify"`` on divergence.
    """
    if strategy not in STRATEGIES:
        raise ValueError(f"unknown strategy {strategy!r}; "
                         f"choose from {STRATEGIES}")
    if strategy == "verify":
        dpor = explore(machine, "dpor", max_states)
        naive = explore(machine, "naive", max_states,
                        dedupe_states=dedupe_states)
        if dpor.outcomes != naive.outcomes:
            only_dpor = sorted(dpor.outcomes - naive.outcomes)
            only_naive = sorted(naive.outcomes - dpor.outcomes)
            raise AssertionError(
                f"strategy divergence on machine {machine.name}: "
                f"dpor-only={only_dpor} naive-only={only_naive}")
        dpor.stats.strategy = "verify"
        return dpor

    stats = ExplorationStats(strategy=strategy)
    outcomes: Set[Outcome] = set()
    schedules: Dict[Outcome, Schedule] = {}

    def record(outcome: Outcome, schedule: Schedule) -> None:
        stats.interleavings += 1
        if outcome not in outcomes:
            outcomes.add(outcome)
            schedules[outcome] = schedule

    started = time.perf_counter()
    if strategy == "dpor":
        _explore_dpor(machine, stats, record, max_states)
    else:
        _explore_naive(machine, stats, record, max_states, dedupe_states)
    stats.wall_time_s = time.perf_counter() - started
    _publish_stats(machine, stats, started, len(outcomes))
    return ExplorationResult(machine=machine.name,
                             model_name=machine.model_name,
                             outcomes=outcomes, schedules=schedules,
                             stats=stats)


def _publish_stats(machine: Machine, stats: ExplorationStats,
                   started: float, outcomes: int) -> None:
    """Mirror one exploration's counters into the ambient telemetry —
    once per :func:`explore`, never per search node."""
    tel = _telemetry()
    if not tel.enabled:
        return
    tel.record_span("explore.run", started, started + stats.wall_time_s,
                    attrs={"machine": machine.name,
                           "model": machine.model_name,
                           "strategy": stats.strategy,
                           "outcomes": outcomes})
    tel.counter("explore.calls").inc()
    for key, value in stats.as_dict().items():
        if key in ("strategy", "wall_time_s", "max_depth"):
            continue
        tel.counter(f"explore.{key}").inc(value)
    depth = tel.gauge("explore.max_depth")
    if stats.max_depth > depth.value:
        depth.set(stats.max_depth)
    tel.histogram("explore.wall_time_s").observe(stats.wall_time_s)


# ----------------------------------------------------------------------
# Naive strategy (the oracle)
# ----------------------------------------------------------------------
def _explore_naive(machine: Machine, stats: ExplorationStats,
                   record, max_states: int, dedupe_states: bool) -> None:
    seen: Set = set()
    labels: List[str] = []

    def visit(state) -> None:
        if dedupe_states:
            if state in seen:
                return
            seen.add(state)
        stats.states_visited += 1
        if stats.states_visited > max_states:
            raise ExplorationBudgetExceeded(
                f"exploration exceeded max_states={max_states}; "
                f"shrink the program or raise the budget")
        depth = len(labels)
        if depth > stats.max_depth:
            stats.max_depth = depth
        succs = machine.successors(state)
        if not succs:
            if not machine.is_final(state):
                raise RuntimeError(
                    f"machine {machine.name} deadlocked (non-final "
                    f"state with no enabled transition)")
            record(machine.outcome(state), tuple(labels))
            return
        for transition, next_state in succs:
            stats.transitions_executed += 1
            labels.append(transition.label)
            visit(next_state)
            labels.pop()

    visit(machine.initial_state())


# ----------------------------------------------------------------------
# DPOR strategy
# ----------------------------------------------------------------------
def _explore_dpor(machine: Machine, stats: ExplorationStats,
                  record, max_states: int) -> None:
    # Per-depth frame: (successor list, backtrack keys, sleep set).
    frames: List[Tuple[list, Set, Dict]] = []
    trace: List[Transition] = []
    labels: List[str] = []

    def visit(state, sleep: Dict) -> None:
        stats.states_visited += 1
        if stats.states_visited > max_states:
            raise ExplorationBudgetExceeded(
                f"exploration exceeded max_states={max_states}; "
                f"shrink the program or raise the budget")
        depth = len(trace)
        if depth > stats.max_depth:
            stats.max_depth = depth
        succs = machine.successors(state)
        if not succs:
            if not machine.is_final(state):
                raise RuntimeError(
                    f"machine {machine.name} deadlocked (non-final "
                    f"state with no enabled transition)")
            record(machine.outcome(state), tuple(labels))
            return
        by_key = {t.key: (t, ns) for t, ns in succs}
        available = [t for t, _ in succs if t.key not in sleep]
        if not available:
            # Every enabled move is covered by an earlier sibling
            # subtree; this whole branch is redundant.
            stats.sleep_set_blocks += 1
            return
        backtrack: Set = {available[0].key}
        done: Dict = {}
        frames.append((succs, backtrack, sleep))
        while True:
            key = next((k for k in backtrack
                        if k not in done and k not in sleep), None)
            if key is None:
                break
            transition, next_state = by_key[key]
            done[key] = transition
            # Intra-group nondeterminism (a core's drain vs its next
            # instruction) is real branching, not schedule choice:
            # same-group siblings are dependent by definition and
            # classic DPOR's race scan never sees them (it assumes
            # deterministic processes), so enqueue them here.
            backtrack.update(
                t.key for t, _ in succs
                if t.group == transition.group and t.key not in sleep)
            # Race detection against the whole schedule prefix:
            # conservatively add a backtrack point at *every* frame
            # whose transition is dependent on this one (no
            # happens-before pruning — sound, slightly redundant).
            for i, earlier in enumerate(trace):
                if earlier.group == transition.group:
                    continue
                if independent(earlier, transition):
                    continue
                stats.races_detected += 1
                frame_succs, frame_backtrack, frame_sleep = frames[i]
                alternatives = [t.key for t, _ in frame_succs
                                if t.group == transition.group
                                and t.key not in frame_sleep]
                if not alternatives:
                    # The racing group has nothing *awake* enabled at
                    # that frame (nothing enabled, or its only moves
                    # are asleep, i.e. covered by sibling subtrees
                    # that may not contain this race's reversal):
                    # fall back to "try every awake move" (Flanagan-
                    # Godefroid's conservative branch).
                    alternatives = [t.key for t, _ in frame_succs
                                    if t.key not in frame_sleep]
                frame_backtrack.update(alternatives)
            # Sleep-set inheritance: moves independent of the chosen
            # transition stay asleep; explored siblings go to sleep in
            # the child if independent of it.
            child_sleep = {k: t for k, t in sleep.items()
                           if independent(t, transition)}
            for k, t in done.items():
                if k != key and independent(t, transition):
                    child_sleep[k] = t
            stats.transitions_executed += 1
            trace.append(transition)
            labels.append(transition.label)
            visit(next_state, child_sleep)
            labels.pop()
            trace.pop()
        frames.pop()

    visit(machine.initial_state(), {})


# ----------------------------------------------------------------------
# Random schedule sampling (used by the fuzzer on oversized mutants)
# ----------------------------------------------------------------------
def sample_schedules(machine: Machine, rng, n_schedules: int,
                     max_steps: int = 10_000,
                     stats: Optional[ExplorationStats] = None
                     ) -> Tuple[Set[Outcome], Dict[Outcome, Schedule]]:
    """Run ``n_schedules`` uniformly random complete schedules.

    Under-approximates :func:`explore` (observed ⊆ explored) but
    never exceeds a linear budget per schedule — the fuzzer's
    fallback when a mutant blows the exhaustive state budget.
    """
    outcomes: Set[Outcome] = set()
    schedules: Dict[Outcome, Schedule] = {}
    for _ in range(n_schedules):
        state = machine.initial_state()
        labels: List[str] = []
        for _ in range(max_steps):
            succs = machine.successors(state)
            if not succs:
                break
            transition, state = succs[rng.randrange(len(succs))]
            labels.append(transition.label)
            if stats is not None:
                stats.transitions_executed += 1
        if machine.is_final(state):
            if stats is not None:
                stats.interleavings += 1
            outcome = machine.outcome(state)
            if outcome not in outcomes:
                outcomes.add(outcome)
                schedules[outcome] = tuple(labels)
    return outcomes, schedules


# ----------------------------------------------------------------------
# Litmus-level conveniences: cross-checks against the axiomatic layer
# ----------------------------------------------------------------------
@dataclass
class ExplorationCheck:
    """Operational-vs-axiomatic comparison for one litmus test.

    ``require_equality`` is set for exact machines (SC, TSO): the
    explored outcome set must be *bit-identical* to the axiomatic
    allowed set.  For the conservative WC machine only soundness
    (explored ⊆ allowed) is required.
    """

    test_name: str
    machine: str
    model_name: str
    strategy: str
    require_equality: bool
    operational: Set[Outcome]
    allowed: Set[Outcome]
    stats: ExplorationStats
    violation_schedules: Dict[Outcome, Schedule] = field(
        default_factory=dict)
    #: True when the static pre-filter proved the test SC-equivalent
    #: and the (cheaper) SC machine was explored in place of the
    #: requested relaxed machine — sound because the outcome sets are
    #: provably identical.
    prefiltered: bool = False

    @property
    def violations(self) -> Set[Outcome]:
        """Explored but axiomatically forbidden — always a bug."""
        return self.operational - self.allowed

    @property
    def missing(self) -> Set[Outcome]:
        """Allowed but never explored — a bug for exact machines."""
        return self.allowed - self.operational

    @property
    def ok(self) -> bool:
        if self.violations:
            return False
        return not (self.require_equality and self.missing)

    def as_dict(self) -> Dict[str, object]:
        return {
            "test": self.test_name,
            "machine": self.machine,
            "model": self.model_name,
            "strategy": self.strategy,
            "require_equality": self.require_equality,
            "ok": self.ok,
            "operational_outcomes": len(self.operational),
            "allowed_outcomes": len(self.allowed),
            "violations": sorted(
                [list(pair) for pair in outcome]
                for outcome in self.violations),
            "missing": sorted(
                [list(pair) for pair in outcome]
                for outcome in self.missing),
            "prefiltered": self.prefiltered,
            "stats": self.stats.as_dict(),
        }


def crosscheck_test(test, model: str = "PC",
                    strategy: str = "dpor",
                    max_states: int = DEFAULT_MAX_STATES,
                    allowed: Optional[Set[Outcome]] = None,
                    prefilter: bool = False
                    ) -> ExplorationCheck:
    """Explore ``test`` on the operational machine for ``model`` and
    compare against the axiomatic allowed set.

    ``test`` is a :class:`repro.litmus.dsl.LitmusTest`; ``model`` is
    an engine model name (``SC`` / ``PC`` / ``WC``, aliases ``TSO`` /
    ``RVWMO``).  Pass ``allowed`` to skip re-enumeration (campaign
    cache integration).  ``prefilter`` runs the static Shasha–Snir
    classifier first and, on an ``SC_EQUIVALENT`` verdict, explores
    the SC machine instead — sound because exact machines realise
    exactly their model's allowed set, and SC-equivalence makes the
    relaxed machine's set bit-identical to SC's.
    """
    threads, deps = test.to_events()
    machine = machine_for(model, threads, extra_ppo=deps)
    prefiltered = False
    if prefilter and machine.model_name != "SC":
        from ..memmodel.axioms import get_model
        from ..staticanalysis import classify_events
        cls = classify_events(threads, deps,
                              get_model(machine.model_name),
                              test_name=test.name)
        if cls.sc_equivalent:
            machine = machine_for("SC", threads, extra_ppo=deps)
            prefiltered = True
    result = explore(machine, strategy=strategy, max_states=max_states)
    if allowed is None:
        from ..memmodel.axioms import get_model
        allowed = allowed_outcomes(threads, get_model(machine.model_name),
                                   extra_ppo=deps)
    check = ExplorationCheck(
        test_name=test.name, machine=machine.name,
        model_name=machine.model_name, strategy=result.stats.strategy,
        require_equality=machine.exact,
        operational=set(result.outcomes), allowed=set(allowed),
        stats=result.stats, prefiltered=prefiltered)
    check.violation_schedules = {
        o: result.schedules[o] for o in check.violations}
    return check


@dataclass
class PolicyCheck:
    """Drain-policy exploration of one litmus test: the imprecise
    machine's explored outcomes vs the clean program's allowed sets.

    ``violations_pc`` are explored outcomes forbidden by PC on the
    fault-free program — the Figure 2a class of races.  ``violations_wc``
    is the same against WC (PC-allowed ⊆ WC-allowed on these
    programs, so this set is always a subset of ``violations_pc``;
    reported separately because the paper claims same-stream
    preserves *both*).
    """

    test_name: str
    policy: str
    faulting_locs: Tuple[str, ...]
    outcomes: Set[Outcome]
    allowed_pc: Set[Outcome]
    allowed_wc: Set[Outcome]
    violation_schedules: Dict[Outcome, Schedule]
    stats: ExplorationStats

    @property
    def violations_pc(self) -> Set[Outcome]:
        return self.outcomes - self.allowed_pc

    @property
    def violations_wc(self) -> Set[Outcome]:
        return self.outcomes - self.allowed_wc

    @property
    def preserves_model(self) -> bool:
        return not self.violations_pc and not self.violations_wc


def check_drain_policy(test, policy: DrainPolicy,
                       faulting_locs: Optional[Iterable[str]] = None,
                       strategy: str = "dpor",
                       max_states: int = DEFAULT_MAX_STATES
                       ) -> PolicyCheck:
    """Exhaustively explore ``test`` on the imprecise machine with
    stores to ``faulting_locs`` faulting (default: every location),
    under ``policy``, and compare against the *clean* program's
    PC- and WC-allowed sets.

    This is the operational form of the paper's §4.5-4.6 claim:
    same-stream must produce an empty ``violations_pc`` /
    ``violations_wc`` on every test; split-stream is expected to
    populate them on message-passing shapes (Figure 2a).
    """
    from ..memmodel.axioms import get_model
    if faulting_locs is None:
        locs = tuple(test.locations)
    else:
        locs = tuple(faulting_locs)
    faulting = frozenset(test.location_addr(loc) for loc in locs)
    threads, deps = test.to_events()
    machine = machine_for("PC", threads, extra_ppo=deps,
                          faulting=faulting, policy=policy)
    result = explore(machine, strategy=strategy, max_states=max_states)
    allowed_pc = allowed_outcomes(threads, get_model("PC"),
                                  extra_ppo=deps)
    allowed_wc = allowed_outcomes(threads, get_model("WC"),
                                  extra_ppo=deps)
    bad = result.outcomes - allowed_pc
    return PolicyCheck(
        test_name=test.name, policy=policy.value, faulting_locs=locs,
        outcomes=set(result.outcomes), allowed_pc=set(allowed_pc),
        allowed_wc=set(allowed_wc),
        violation_schedules={o: result.schedules[o] for o in bad},
        stats=result.stats)
