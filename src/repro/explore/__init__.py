"""Stateless model checking over operational memory-model machines.

The subsystem has three layers:

* :mod:`~repro.explore.machines` — pluggable operational machines
  (SC, TSO/PC, WC, and the imprecise-exception machine with FSB
  drain policies) exposing enabled transitions with DPOR metadata;
* :mod:`~repro.explore.engine` — exhaustive exploration with dynamic
  partial-order reduction and sleep sets, a naive full-interleaving
  oracle, ``strategy="verify"``, and litmus-level cross-checks
  against the axiomatic enumerator;
* :mod:`~repro.explore.fuzz` / :mod:`~repro.explore.shrink` — a
  mutation fuzzer diffing operational vs axiomatic outcome sets and
  a ddmin shrinker producing minimal counterexample programs with
  replayable schedule traces;
* :mod:`~repro.explore.spectaint` — the speculative taint-tracking
  machine (transient loads may observe pre-apply FSB state, squash on
  resolve, taint carried per value): the exhaustive dynamic ground
  truth for the static FSB leak analyzer
  (:mod:`repro.staticanalysis.taint`).
"""

from ..memmodel.operational import ExplorationBudgetExceeded
from .engine import (
    DEFAULT_MAX_STATES,
    STRATEGIES,
    ExplorationCheck,
    ExplorationResult,
    ExplorationStats,
    PolicyCheck,
    check_drain_policy,
    crosscheck_test,
    explore,
    sample_schedules,
)
from .fuzz import Finding, FuzzReport, fuzz, mutate
from .machines import (
    MACHINES,
    ImpreciseMachine,
    Machine,
    SCMachine,
    TSOMachine,
    Transition,
    WCMachine,
    independent,
    machine_for,
)
from .shrink import ShrinkResult, rebuild_test, sanitise_threads, shrink_test
from .spectaint import (
    LEAK_MARKER,
    SpecTaintMachine,
    TaintCheck,
    check_taint_policy,
    dependency_info,
    leak_predicate,
)

__all__ = [
    "LEAK_MARKER", "SpecTaintMachine", "TaintCheck",
    "check_taint_policy", "dependency_info", "leak_predicate",
    "DEFAULT_MAX_STATES", "STRATEGIES",
    "ExplorationBudgetExceeded", "ExplorationCheck",
    "ExplorationResult", "ExplorationStats", "PolicyCheck",
    "check_drain_policy", "crosscheck_test", "explore",
    "sample_schedules",
    "Finding", "FuzzReport", "fuzz", "mutate",
    "MACHINES", "ImpreciseMachine", "Machine", "SCMachine",
    "TSOMachine", "Transition", "WCMachine", "independent",
    "machine_for",
    "ShrinkResult", "rebuild_test", "sanitise_threads", "shrink_test",
]
