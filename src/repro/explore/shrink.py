"""Delta-debugging shrinker for divergence-witnessing litmus programs.

Given a litmus test on which some *interesting* property holds (an
operational-vs-axiomatic divergence, a drain-policy race), shrink it
to a locally minimal program that still exhibits the property, using
Zeller-Hildebrandt ``ddmin`` over the flattened ``(thread, op)``
list followed by a value-normalisation pass.  The predicate returns
the witness (outcome + schedule trace) so the
:class:`ShrinkResult` always carries a replayable counterexample for
the *minimal* program.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (Callable, Dict, List, Optional, Sequence, Tuple,
                    TypeVar)

from ..litmus.dsl import LitmusTest

#: Predicate contract: return ``None`` when the candidate is not
#: interesting, else the ``(outcome, schedule)`` witness.
Witness = Tuple[Tuple[Tuple[str, int], ...], Tuple[str, ...]]
Predicate = Callable[[LitmusTest], Optional[Witness]]


def sanitise_threads(threads: Sequence[Sequence[tuple]]
                     ) -> List[List[tuple]]:
    """Make a mutated/shrunk op soup a well-formed litmus program.

    * drop empty threads;
    * rename observation registers to unique ``r0..rN`` (duplicate
      tags would collide in the flat outcome tuples);
    * rewire dependency references to the renamed producer, or strip
      the dependency (``Raddr`` → ``R``, ``W*`` → ``W``) when the
      producing load/atomic no longer exists earlier in the thread.
    """
    fresh = 0
    out: List[List[tuple]] = []
    for ops in threads:
        produced: Dict[str, str] = {}
        clean: List[tuple] = []
        for op in ops:
            kind = op[0]
            if kind == "F":
                clean.append(op)
                continue
            if kind in ("R", "Raddr", "Rctrl", "A"):
                new_reg = f"r{fresh}"
                fresh += 1
            if kind == "W":
                clean.append(op)
            elif kind == "R":
                produced[op[2]] = new_reg
                clean.append(("R", op[1], new_reg))
            elif kind == "A":
                produced[op[3]] = new_reg
                clean.append(("A", op[1], op[2], new_reg))
            elif kind in ("Raddr", "Rctrl"):
                _, loc, reg, dep = op
                if dep in produced:
                    clean.append((kind, loc, new_reg, produced[dep]))
                else:
                    clean.append(("R", loc, new_reg))
                produced[reg] = new_reg
            elif kind in ("Waddr", "Wdata", "Wctrl"):
                _, loc, val, dep = op
                if dep in produced:
                    clean.append((kind, loc, val, produced[dep]))
                else:
                    clean.append(("W", loc, val))
            else:
                raise ValueError(f"unknown litmus op {kind!r}")
        if clean:
            out.append(clean)
    return out


def rebuild_test(base: LitmusTest,
                 threads: Sequence[Sequence[tuple]],
                 suffix: str = "~min") -> LitmusTest:
    """A well-formed test from raw threads, named after ``base``."""
    return LitmusTest(name=base.name + suffix, category=base.category,
                      threads=sanitise_threads(threads))


@dataclass
class ShrinkResult:
    """A locally minimal interesting program plus its witness."""

    test: LitmusTest
    outcome: Tuple[Tuple[str, int], ...]
    schedule: Tuple[str, ...]
    rounds: int
    candidates_tried: int
    original_ops: int
    final_ops: int

    @property
    def removed_ops(self) -> int:
        return self.original_ops - self.final_ops

    def describe(self) -> str:
        lines = [f"{self.test.name}: {self.original_ops} ops -> "
                 f"{self.final_ops} ({self.rounds} rounds, "
                 f"{self.candidates_tried} candidates)"]
        for tid, ops in enumerate(self.test.threads):
            lines.append(f"  T{tid}: " + "; ".join(map(str, ops)))
        lines.append(f"  outcome: {dict(self.outcome)}")
        lines.append("  schedule: " + " | ".join(self.schedule))
        return "\n".join(lines)


def _flatten(test: LitmusTest) -> List[Tuple[int, tuple]]:
    return [(tid, op) for tid, ops in enumerate(test.threads)
            for op in ops]


def _build(base: LitmusTest,
           items: Sequence[Tuple[int, tuple]]) -> LitmusTest:
    threads: Dict[int, List[tuple]] = {}
    for tid, op in items:
        threads.setdefault(tid, []).append(op)
    ordered = [threads[tid] for tid in sorted(threads)]
    return rebuild_test(base, ordered)


def shrink_test(test: LitmusTest, predicate: Predicate,
                max_candidates: int = 2000) -> Optional[ShrinkResult]:
    """ddmin ``test`` down to a locally minimal program for which
    ``predicate`` still returns a witness.

    Returns ``None`` if the original test is not interesting.  After
    op-level minimisation, store values are normalised towards 1
    where the property survives.  ``max_candidates`` bounds predicate
    evaluations (the shrink is best-effort beyond it).
    """
    items = _flatten(test)
    witness = predicate(_build(test, items))
    if witness is None:
        return None
    tried = 0
    rounds = 0

    def check(candidate_items) -> Optional[Witness]:
        nonlocal tried
        if tried >= max_candidates:
            return None
        tried += 1
        return predicate(_build(test, candidate_items))

    # --- ddmin over the flattened op list ----------------------------
    granularity = 2
    while len(items) >= 2:
        rounds += 1
        chunk = max(1, len(items) // granularity)
        reduced = False
        for start in range(0, len(items), chunk):
            complement = items[:start] + items[start + chunk:]
            if not complement:
                continue
            found = check(complement)
            if found is not None:
                items, witness = complement, found
                granularity = max(granularity - 1, 2)
                reduced = True
                break
        if not reduced:
            if granularity >= len(items) or tried >= max_candidates:
                break
            granularity = min(len(items), granularity * 2)

    # --- value normalisation: push store data towards 1 --------------
    for i, (tid, op) in enumerate(list(items)):
        if op[0] in ("W", "Waddr", "Wdata", "Wctrl") and op[2] != 1:
            normalised = (op[0], op[1], 1) + op[3:]
            candidate = items[:i] + [(tid, normalised)] + items[i + 1:]
            found = check(candidate)
            if found is not None:
                items, witness = candidate, found

    outcome, schedule = witness
    final = _build(test, items)
    return ShrinkResult(test=final, outcome=outcome, schedule=schedule,
                        rounds=rounds, candidates_tried=tried,
                        original_ops=sum(map(len, test.threads)),
                        final_ops=sum(map(len, final.threads)))
