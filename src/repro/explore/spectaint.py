"""Speculative taint-tracking machine: does the FSB leak?

The FSB drains retired-but-faulting stores into an in-memory ring — a
new microarchitectural structure on the store-to-load path.  Following
the Store-to-Leak Forwarding attack model, this module extends the
imprecise machine with a *speculative observation channel* and a taint
semantics, so the DPOR engine can exhaustively answer whether a
faulting store's data can reach a concurrent core's observable outcome
before the OS apply point:

* **Taint sources** — a store to a faulting address carries its own
  origin ``(core, pc)`` from the moment it issues into the store
  buffer (the data is destined for the FSB; pre-drain forwarding
  already exposes it).
* **Propagation** — loads forwarding from a tainted buffer/FSB entry
  or reading tainted memory taint their destination register;
  ``Wdata``-style data dependencies taint the dependent store's entry;
  under split-stream a tainted non-faulting store drains straight to
  memory and taints it (same-stream routes it through the FSB behind
  its source, so its S_OS lands *after* the resolve).
* **Transient channel** — while an entry sits pre-apply in some
  *other* core's FSB, a pending load of the same address may
  transiently observe it (a ``"spec"`` transition).  The observation
  is squashed on resolve — registers keep their architectural values —
  but the leak is recorded: within the transient window the observer
  can always encode the value into a side channel.
* **The apply point sanitises** — the OS apply (S_OS) of a faulting
  entry architecturally commits its data: the write reaches memory
  clean and the entry's origin is cleared from every register, entry,
  and memory taint machine-wide.  "Before the OS apply point" is
  therefore exactly the window in which taint is live.
* **Leak events** are recorded eagerly into a monotone set carried in
  the state: ``spec`` (transient cross-core FSB forward), ``obs`` (a
  core architecturally reads a value tainted by another core), and
  ``xmit`` (an address or control dependency consumes a live tainted
  register while another core exists to observe the resulting cache /
  branch channel).  A final state leaks iff the set is non-empty; the
  outcome then carries the :data:`LEAK_MARKER` pseudo-register, so
  :func:`repro.explore.explore` hands back one witness schedule per
  leaking outcome for free.

Fences that wait for the FSB (``FULL``/``w,w``/``w,r``) and atomics
are the sanitisation barriers: they cannot complete until the core's
buffer *and* FSB are empty, i.e. until every program-order-earlier
faulting store has been applied — at which point the apply-time clear
has already scrubbed those origins.

DPOR footprint note: taint is machine-global state (a foreign core's
apply clears origins everywhere), which would break the engine's
group-local independence relation.  Every transition that *samples*
taint (loads, atomics, dependency-carrying issues, spec observations)
therefore declares a read of the pseudo-address :data:`TAINT_TOKEN`,
and every apply of a faulting entry (the per-source resolve) declares
a write of it; routes and applies also write their entry's address
because the FSB is observable through the spec channel.  This keeps
:func:`repro.explore.machines.independent` a valid independence
relation (``strategy="verify"`` is asserted over a corpus slice by
``tests/test_taint.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (Dict, FrozenSet, Iterable, List, Optional, Sequence,
                    Tuple)

from ..memmodel.events import EventKind
from ..memmodel.imprecise import DrainPolicy
from .engine import DEFAULT_MAX_STATES, ExplorationStats, Schedule, explore
from .machines import (ImpreciseMachine, Outcome, Transition, _freeze,
                       _tag)

#: Pseudo-address representing the machine-wide taint state in
#: transition footprints (negative: never collides with a location).
TAINT_TOKEN = -1

#: Pseudo-register marking a leaking outcome (sorts after real
#: registers; its value is always 1).
LEAK_MARKER = "~fsb-leak"

#: A taint origin: the ``(core, pc)`` of the faulting store whose data
#: the tainted value derives from.
Origin = Tuple[int, int]
Origins = FrozenSet[Origin]

_NO_ORIGINS: Origins = frozenset()

#: Litmus dependency op → dependency kind for taint purposes.
_DEP_KINDS = {"Raddr": "addr", "Waddr": "addr", "Wdata": "data",
              "Wctrl": "ctrl", "Rctrl": "ctrl"}


def dependency_info(test) -> Dict[Tuple[int, int], Tuple[str, str]]:
    """Per ``(core, op index)``: ``(dep kind, dep register tag)``.

    The event compilation erases *which kind* of dependency an
    ``extra_ppo`` edge came from, but the taint semantics needs it
    (address/control deps transmit, data deps propagate), so the
    machine takes this side table extracted from the op tuples.
    """
    info: Dict[Tuple[int, int], Tuple[str, str]] = {}
    for tid, ops in enumerate(test.threads):
        for idx, op in enumerate(ops):
            dkind = _DEP_KINDS.get(op[0])
            if dkind is not None:
                info[(tid, idx)] = (dkind, op[3])
    return info


class SpecTaintMachine(ImpreciseMachine):
    """Imprecise machine + taint + the transient FSB forwarding channel.

    State: ``(pcs, regs, buffers, mem, drained, fsbs, applied,
    rtaints, mtaints, leaked)``.  Buffer/FSB entries are
    ``(addr, value, origins, source)`` with ``source`` the entry's own
    origin when it targets a faulting address (``None`` otherwise);
    ``rtaints`` maps register tags to origin sets per core, ``mtaints``
    maps addresses to origin sets, and ``leaked`` is a single sticky
    bit: *some* leak event happened on this path.  The bit is
    deliberately not a set of leak descriptors — every leak-recording
    transition is labelled, so the witness schedule identifies the
    channel, and collapsing to one bit keeps leaking programs from
    dragging a powerset of descriptors through the state space (every
    leaking outcome is the same outcome, so DPOR merges the branches).
    """

    name = "spec-taint"
    model_name = "PC"
    exact = False

    def __init__(self, threads, init=None, extra_ppo=(),
                 faulting: Iterable[int] = (),
                 policy: DrainPolicy = DrainPolicy.SAME_STREAM,
                 dep_info: Optional[Dict[Tuple[int, int],
                                         Tuple[str, str]]] = None) -> None:
        super().__init__(threads, init, extra_ppo, faulting=faulting,
                         policy=policy)
        self.dep_info = dict(dep_info or {})

    # -- state plumbing -------------------------------------------------
    def initial_state(self):
        n = len(self.threads)
        return (tuple(0 for _ in range(n)),          # pcs
                tuple(() for _ in range(n)),         # regs
                tuple(() for _ in range(n)),         # buffers
                _freeze(self.init),                  # mem
                tuple(0 for _ in range(n)),          # drained
                tuple(() for _ in range(n)),         # fsbs
                tuple(0 for _ in range(n)),          # applied
                tuple(frozenset() for _ in range(n)),  # rtaints
                frozenset(),                         # mtaints
                False)                               # leaked

    def outcome(self, state) -> Outcome:
        base = self._flat_outcome(state[1])
        if state[9]:
            return base + ((LEAK_MARKER, 1),)
        return base

    @property
    def leaks_possible(self) -> bool:
        return bool(self.faulting) and len(self.threads) > 1

    # -- taint-map helpers ----------------------------------------------
    @staticmethod
    def _lookup(pairs, key) -> Origins:
        for k, origins in pairs:
            if k == key:
                return origins
        return _NO_ORIGINS

    @staticmethod
    def _with(pairs, key, origins) -> FrozenSet:
        rest = tuple((k, o) for k, o in pairs if k != key)
        if origins:
            rest += ((key, origins),)
        return frozenset(rest)

    @staticmethod
    def _strip_pairs(pairs, src) -> FrozenSet:
        out = []
        for k, origins in pairs:
            kept = origins - {src}
            if kept:
                out.append((k, kept))
        return frozenset(out)

    @staticmethod
    def _strip_entries(entries, src):
        return tuple((addr, value, origins - {src}, esrc)
                     for (addr, value, origins, esrc) in entries)

    @staticmethod
    def _forward_entry(entries, addr):
        for entry in reversed(entries):
            if entry[0] == addr:
                return entry
        return None

    # -- moves ----------------------------------------------------------
    def successors(self, state):
        out: List[Tuple[Transition, tuple]] = []
        self._drain_moves(state, out)
        self._apply_moves(state, out)
        self._spec_moves(state, out)
        self._step_moves(state, out)
        return out

    def _drain_moves(self, state, out) -> None:
        (pcs, regs, buffers, mem_f, drained, fsbs, applied,
         rtaints, mtaints, leaked) = state
        for tid, buffer in enumerate(buffers):
            if not buffer:
                continue
            (addr, value, origins, esrc), rest = buffer[0], buffer[1:]
            fsb = fsbs[tid]
            new_buffers = tuple(rest if i == tid else b
                                for i, b in enumerate(buffers))
            new_drained = tuple(d + 1 if i == tid else d
                                for i, d in enumerate(drained))
            faults = addr in self.faulting
            routed = faults or (
                self.policy is DrainPolicy.SAME_STREAM and bool(fsb))
            if routed:
                entry = (addr, value, origins, esrc)
                new_fsbs = tuple(f + (entry,) if i == tid else f
                                 for i, f in enumerate(fsbs))
                verb = "DETECT+PUT" if faults and not fsb else "PUT"
                # Routing makes the entry observable through the spec
                # channel, so it is a write to the entry's address.
                t = Transition(
                    tid, ("drain", tid, drained[tid]), "route",
                    writes=frozenset((addr,)),
                    label=f"C{tid}: {verb} S(0x{addr:x},{value})")
                out.append((t, (pcs, regs, new_buffers, mem_f,
                                new_drained, new_fsbs, applied,
                                rtaints, mtaints, leaked)))
            else:
                new_mem = dict(mem_f)
                new_mem[addr] = value
                new_mtaints = self._with(mtaints, addr, origins)
                t = Transition(
                    tid, ("drain", tid, drained[tid]), "drain",
                    writes=frozenset((addr,)),
                    label=f"C{tid}: drain S(0x{addr:x},{value})"
                          + (" [tainted]" if origins else ""))
                out.append((t, (pcs, regs, new_buffers, _freeze(new_mem),
                                new_drained, fsbs, applied,
                                rtaints, new_mtaints, leaked)))

    def _apply_moves(self, state, out) -> None:
        (pcs, regs, buffers, mem_f, drained, fsbs, applied,
         rtaints, mtaints, leaked) = state
        for tid, fsb in enumerate(fsbs):
            if not fsb:
                continue
            (addr, value, origins, esrc), rest = fsb[0], fsb[1:]
            new_fsbs = tuple(rest if i == tid else f
                             for i, f in enumerate(fsbs))
            new_applied = tuple(a + 1 if i == tid else a
                                for i, a in enumerate(applied))
            new_rtaints, new_buffers = rtaints, buffers
            new_mtaints = mtaints
            writes = {addr}
            if esrc is not None:
                # The apply point of this faulting store: its data is
                # now architecturally committed, so its origin stops
                # being secret everywhere.
                origins = origins - {esrc}
                new_rtaints = tuple(self._strip_pairs(r, esrc)
                                    for r in rtaints)
                new_buffers = tuple(self._strip_entries(b, esrc)
                                    for b in buffers)
                new_fsbs = tuple(self._strip_entries(f, esrc)
                                 for f in new_fsbs)
                new_mtaints = self._strip_pairs(mtaints, esrc)
                writes.add(TAINT_TOKEN)
            new_mem = dict(mem_f)
            new_mem[addr] = value
            new_mtaints = self._with(new_mtaints, addr, origins)
            verb = "S_OS+RESOLVE" if not rest else "S_OS"
            t = Transition(
                tid, ("apply", tid, applied[tid]), "apply",
                writes=frozenset(writes),
                label=f"OS@C{tid}: {verb}(0x{addr:x},{value})")
            out.append((t, (pcs, regs, new_buffers, _freeze(new_mem),
                            drained, new_fsbs, new_applied,
                            new_rtaints, new_mtaints, leaked)))

    def _spec_moves(self, state, out) -> None:
        """Transient cross-core FSB forwarding (Store-to-Leak).

        A pending load may observe the newest same-address entry of
        another core's pre-apply FSB.  The observation is squashed on
        resolve — no architectural state changes — but when the entry
        is tainted for the observer the leak bit is set.  Once the
        path has leaked, further spec transitions would be no-ops and
        are not generated (the bit is sticky)."""
        (pcs, regs, buffers, mem_f, drained, fsbs, applied,
         rtaints, mtaints, leaked) = state
        if leaked:
            return
        for tid, thread in enumerate(self.threads):
            pc = pcs[tid]
            if pc >= len(thread):
                continue
            ev = thread[pc]
            if ev.kind is not EventKind.LOAD:
                continue
            for owner, fsb in enumerate(fsbs):
                if owner == tid or not fsb:
                    continue
                entry = self._forward_entry(fsb, ev.addr)
                if entry is None:
                    continue
                _, value, origins, _ = entry
                if not any(t != tid for (t, _) in origins):
                    continue
                t = Transition(
                    tid, ("spec", tid, pc, owner), "spec",
                    reads=frozenset((ev.addr, TAINT_TOKEN)),
                    label=f"C{tid}: transient L(0x{ev.addr:x})={value} "
                          f"<=FSB@C{owner} !leak")
                out.append((t, state[:9] + (True,)))

    def _step_moves(self, state, out) -> None:
        (pcs, regs, buffers, mem_f, drained, fsbs, applied,
         rtaints, mtaints, leaked) = state
        mem = dict(mem_f)
        observers = len(self.threads) > 1
        for tid, thread in enumerate(self.threads):
            pc = pcs[tid]
            if pc >= len(thread):
                continue
            ev = thread[pc]
            buffer = buffers[tid]
            key = ("step", tid, pc)
            new_pcs = tuple(p + 1 if i == tid else p
                            for i, p in enumerate(pcs))
            dep = self.dep_info.get((tid, pc))
            dep_origins = (self._lookup(rtaints[tid], dep[1])
                           if dep else _NO_ORIGINS)
            reads = set()
            new_leaked = leaked
            xmit = ""
            if dep:
                reads.add(TAINT_TOKEN)
                if dep[0] in ("addr", "ctrl") and dep_origins and observers:
                    new_leaked = True
                    xmit = f" !{dep[0]}-leak"
            if ev.kind is EventKind.STORE:
                origins: Origins = _NO_ORIGINS
                esrc = None
                if ev.addr in self.faulting:
                    esrc = (tid, pc)
                    origins = frozenset((esrc,))
                if dep and dep[0] == "data":
                    origins = origins | dep_origins
                entry = (ev.addr, ev.value, origins, esrc)
                new_buffers = tuple(buffer + (entry,) if i == tid else b
                                    for i, b in enumerate(buffers))
                t = Transition(
                    tid, key, "step", reads=frozenset(reads),
                    label=f"C{tid}: issue S(0x{ev.addr:x},"
                          f"{ev.value}){xmit}")
                out.append((t, (new_pcs, regs, new_buffers, mem_f,
                                drained, fsbs, applied, rtaints,
                                mtaints, new_leaked)))
            elif ev.kind is EventKind.LOAD:
                entry = (self._forward_entry(buffer, ev.addr)
                         or self._forward_entry(fsbs[tid], ev.addr))
                if entry is not None:
                    value, origins = entry[1], entry[2]
                else:
                    value = mem.get(ev.addr, 0)
                    origins = self._lookup(mtaints, ev.addr)
                    reads.add(ev.addr)
                reads.add(TAINT_TOKEN)
                obs = ""
                if any(t != tid for (t, _) in origins):
                    new_leaked = True
                    obs = " !obs-leak"
                tag = _tag(ev)
                new_regs = tuple(
                    r + ((tag, value),) if i == tid else r
                    for i, r in enumerate(regs))
                new_rtaints = tuple(
                    self._with(r, tag, origins) if i == tid else r
                    for i, r in enumerate(rtaints))
                t = Transition(
                    tid, key, "step", reads=frozenset(reads),
                    label=f"C{tid}: L(0x{ev.addr:x})={value}{xmit}{obs}")
                out.append((t, (new_pcs, new_regs, buffers, mem_f,
                                drained, fsbs, applied, new_rtaints,
                                mtaints, new_leaked)))
            elif ev.kind is EventKind.ATOMIC:
                if not self._atomic_ready(state, tid):
                    continue
                old = mem.get(ev.addr, 0)
                origins = self._lookup(mtaints, ev.addr)
                reads.update((ev.addr, TAINT_TOKEN))
                obs = ""
                if any(t != tid for (t, _) in origins):
                    new_leaked = True
                    obs = " !obs-leak"
                new_mem = dict(mem)
                new_mem[ev.addr] = ev.value
                tag = _tag(ev)
                new_regs = tuple(
                    r + ((tag, old),) if i == tid else r
                    for i, r in enumerate(regs))
                new_rtaints = tuple(
                    self._with(r, tag, origins) if i == tid else r
                    for i, r in enumerate(rtaints))
                # The atomic's own write is clean constant data.
                new_mtaints = self._with(mtaints, ev.addr, _NO_ORIGINS)
                t = Transition(
                    tid, key, "step", reads=frozenset(reads),
                    writes=frozenset((ev.addr,)),
                    label=f"C{tid}: A(0x{ev.addr:x},{ev.value}){obs}")
                out.append((t, (new_pcs, new_regs, buffers,
                                _freeze(new_mem), drained, fsbs,
                                applied, new_rtaints, new_mtaints,
                                new_leaked)))
            elif ev.kind is EventKind.FENCE:
                if not self._fence_ready(state, tid, ev.fence):
                    continue
                t = Transition(tid, key, "step",
                               label=f"C{tid}: F.{ev.fence.value}")
                out.append((t, (new_pcs, regs, buffers, mem_f, drained,
                                fsbs, applied, rtaints, mtaints,
                                leaked)))
            else:
                t = Transition(tid, key, "step", label=f"C{tid}: nop")
                out.append((t, (new_pcs, regs, buffers, mem_f, drained,
                                fsbs, applied, rtaints, mtaints,
                                leaked)))


# ----------------------------------------------------------------------
# Litmus-level ground truth: exhaustive taint exploration
# ----------------------------------------------------------------------
@dataclass
class TaintCheck:
    """Exhaustive speculative-taint exploration of one litmus test.

    ``leak`` is the ground truth the static analyzer
    (:mod:`repro.staticanalysis.taint`) is judged against: ``True``
    iff some reachable schedule records a leak event before the
    corresponding apply point.  ``witness_schedule`` replays one such
    schedule (``None`` when leak-free)."""

    test_name: str
    policy: str
    faulting_locs: Tuple[str, ...]
    leak: bool
    witness_outcome: Optional[Outcome]
    witness_schedule: Optional[Schedule]
    outcomes: int
    leak_outcomes: int
    stats: ExplorationStats

    def as_dict(self) -> Dict[str, object]:
        return {
            "test": self.test_name,
            "policy": self.policy,
            "faulting_locs": list(self.faulting_locs),
            "leak": self.leak,
            "witness_schedule": (list(self.witness_schedule)
                                 if self.witness_schedule else None),
            "outcomes": self.outcomes,
            "leak_outcomes": self.leak_outcomes,
            "stats": self.stats.as_dict(),
        }


def check_taint_policy(test, policy: DrainPolicy,
                       faulting_locs: Optional[Iterable[str]] = None,
                       strategy: str = "dpor",
                       max_states: int = DEFAULT_MAX_STATES
                       ) -> TaintCheck:
    """Exhaustively explore the speculative taint machine for ``test``
    with stores to ``faulting_locs`` faulting (default: every
    location) under ``policy``, and report whether any schedule leaks.

    Mirrors :func:`repro.explore.check_drain_policy`'s interface; this
    is the dynamic ground truth for
    :func:`repro.staticanalysis.analyze_taint` (zero false negatives
    required — see ``tests/test_taint.py``)."""
    if faulting_locs is None:
        locs = tuple(test.locations)
    else:
        locs = tuple(faulting_locs)
    faulting = frozenset(test.location_addr(loc) for loc in locs)
    threads, deps = test.to_events()
    machine = SpecTaintMachine(threads, extra_ppo=deps,
                               faulting=faulting, policy=policy,
                               dep_info=dependency_info(test))
    result = explore(machine, strategy=strategy, max_states=max_states)
    leaking = sorted(o for o in result.outcomes
                     if (LEAK_MARKER, 1) in o)
    witness_outcome = leaking[0] if leaking else None
    return TaintCheck(
        test_name=test.name, policy=policy.value, faulting_locs=locs,
        leak=bool(leaking), witness_outcome=witness_outcome,
        witness_schedule=(result.schedules[witness_outcome]
                         if witness_outcome is not None else None),
        outcomes=len(result.outcomes), leak_outcomes=len(leaking),
        stats=result.stats)


def leak_predicate(policy: DrainPolicy, strategy: str = "dpor",
                   max_states: int = DEFAULT_MAX_STATES):
    """A :func:`repro.explore.shrink.shrink_test` predicate holding
    the "this program leaks under ``policy``" property: returns the
    leaking ``(outcome, schedule)`` witness or ``None``.

    Faults every location of the candidate (fault sets named against
    the original program would not survive shrinking)."""
    def predicate(test):
        try:
            check = check_taint_policy(test, policy, strategy=strategy,
                                       max_states=max_states)
        except Exception:
            return None
        if not check.leak:
            return None
        return (check.witness_outcome, check.witness_schedule)
    return predicate
