"""Pluggable operational machines for the stateless explorer.

Each machine is a labelled transition system over hashable states:
:meth:`Machine.successors` returns every enabled transition together
with the state it produces, and the engine (:mod:`repro.explore.engine`)
owns the search strategy.  This generalises the fixed-DFS machines of
:mod:`repro.memmodel.operational` in three ways:

* **Pluggable models** — SC (interleaving), TSO/PC (FIFO store
  buffers + forwarding), and WC/RVWMO-lite (out-of-order issue with a
  non-FIFO buffer constrained by same-address order, fences,
  dependencies, and globally-ordered atomics).
* **Imprecise exceptions** — :class:`ImpreciseMachine` extends the
  TSO machine with EInject-style faulting addresses and both FSB
  drain policies of the paper (§4.5-4.6) as *schedulable
  transitions*: a faulting store's drain routes it to the per-core
  FSB stream (DETECT+PUT) instead of memory, and the OS apply
  (GET+S_OS, final apply = RESOLVE) is a separate transition the
  scheduler can delay arbitrarily — exactly the nondeterminism the
  split-stream race of Figure 2a lives in.
* **Transition metadata for DPOR** — every transition carries the
  physical core that owns it and its exact read/write footprint on
  shared memory in the current state, from which
  :func:`independent` derives the commutation relation the engine's
  partial-order reduction needs.

State invariant used by the engine: enabledness of a transition
depends only on the state owned by its group (core-local pipeline,
buffer, and FSB), never on shared-memory *values*, so a transition of
one group can never enable or disable a transition of another.  This
makes :func:`independent` a valid (conservative) independence
relation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (Dict, FrozenSet, Iterable, List, Optional, Sequence,
                    Set, Tuple)

from ..memmodel.events import Event, EventKind, FenceKind
from ..memmodel.imprecise import DrainPolicy
from ..memmodel.relations import Edge

Outcome = Tuple[Tuple[str, int], ...]

_EMPTY: FrozenSet[int] = frozenset()


@dataclass(frozen=True)
class Transition:
    """One enabled move of a machine.

    Attributes:
        group: Physical core owning the transition.  OS agents acting
            on a core's behalf (FSB applies) share that core's group,
            which makes intra-pipeline enabling (drain enables apply)
            a same-group affair — see the module invariant.
        key: Stable identity of the move across sibling states (e.g.
            ``("step", core, pc)``): executing an *independent*
            transition never changes which move a key denotes, which
            is what sleep and backtrack sets require.
        kind: ``"step"`` | ``"drain"`` | ``"route"`` | ``"apply"``.
        reads: Shared-memory addresses whose values the move reads
            (empty for forwarded loads — their value is core-local).
        writes: Shared-memory addresses the move writes.
        label: Human-readable trace element for witness schedules.
    """

    group: int
    key: Tuple
    kind: str
    reads: FrozenSet[int] = _EMPTY
    writes: FrozenSet[int] = _EMPTY
    label: str = ""


def independent(a: Transition, b: Transition) -> bool:
    """Do ``a`` and ``b`` commute (and neither enables/disables the
    other)?  Different groups plus disjoint conflict footprints."""
    if a.group == b.group:
        return False
    aw, bw = a.writes, b.writes
    if aw:
        if aw & bw or aw & b.reads:
            return False
    if bw and bw & a.reads:
        return False
    return True


def _tag(ev: Event) -> str:
    return ev.tag or f"r{ev.core}.{ev.index}"


class Machine:
    """Base operational machine over per-core event sequences."""

    #: Machine name, for reports.
    name = "base"
    #: Axiomatic reference model this machine is cross-checked against.
    model_name = "SC"
    #: Whether equality with the reference allowed set is expected
    #: (SC/TSO) or only soundness, i.e. outcomes ⊆ allowed (the WC
    #: machine's fence handling is deliberately conservative).
    exact = True

    def __init__(self, threads: Sequence[Sequence[Event]],
                 init: Optional[Dict[int, int]] = None,
                 extra_ppo: Iterable[Edge] = ()) -> None:
        self.threads = [list(t) for t in threads]
        self.init = dict(init or {})
        self.extra_ppo = frozenset(extra_ppo)

    # -- subclass surface ----------------------------------------------
    def initial_state(self):
        raise NotImplementedError

    def successors(self, state) -> List[Tuple[Transition, tuple]]:
        raise NotImplementedError

    def is_final(self, state) -> bool:
        raise NotImplementedError

    def outcome(self, state) -> Outcome:
        raise NotImplementedError

    # -- shared helpers -------------------------------------------------
    @staticmethod
    def _flat_outcome(regs) -> Outcome:
        return tuple(sorted(pair for core_regs in regs for pair in core_regs))


def _freeze(mem: Dict[int, int]) -> FrozenSet[Tuple[int, int]]:
    return frozenset(mem.items())


# ----------------------------------------------------------------------
# SC: plain interleaving
# ----------------------------------------------------------------------
class SCMachine(Machine):
    """One interleaving point per instruction; memory updates at once."""

    name = "sc"
    model_name = "SC"

    def initial_state(self):
        return (tuple(0 for _ in self.threads),
                tuple(() for _ in self.threads),
                _freeze(self.init))

    def is_final(self, state) -> bool:
        pcs = state[0]
        return all(pc >= len(t) for pc, t in zip(pcs, self.threads))

    def outcome(self, state) -> Outcome:
        return self._flat_outcome(state[1])

    def successors(self, state):
        pcs, regs, mem_f = state
        mem = dict(mem_f)
        out = []
        for tid, thread in enumerate(self.threads):
            pc = pcs[tid]
            if pc >= len(thread):
                continue
            ev = thread[pc]
            key = ("step", tid, pc)
            new_pcs = tuple(p + 1 if i == tid else p
                            for i, p in enumerate(pcs))
            if ev.kind is EventKind.STORE:
                new_mem = dict(mem)
                new_mem[ev.addr] = ev.value
                t = Transition(tid, key, "step",
                               writes=frozenset((ev.addr,)),
                               label=f"C{tid}: S(0x{ev.addr:x},{ev.value})")
                out.append((t, (new_pcs, regs, _freeze(new_mem))))
            elif ev.kind is EventKind.LOAD:
                value = mem.get(ev.addr, 0)
                new_regs = tuple(
                    r + ((_tag(ev), value),) if i == tid else r
                    for i, r in enumerate(regs))
                t = Transition(tid, key, "step",
                               reads=frozenset((ev.addr,)),
                               label=f"C{tid}: L(0x{ev.addr:x})={value}")
                out.append((t, (new_pcs, new_regs, mem_f)))
            elif ev.kind is EventKind.ATOMIC:
                old = mem.get(ev.addr, 0)
                new_mem = dict(mem)
                new_mem[ev.addr] = ev.value
                new_regs = tuple(
                    r + ((_tag(ev), old),) if i == tid else r
                    for i, r in enumerate(regs))
                t = Transition(tid, key, "step",
                               reads=frozenset((ev.addr,)),
                               writes=frozenset((ev.addr,)),
                               label=f"C{tid}: A(0x{ev.addr:x},{ev.value})")
                out.append((t, (new_pcs, new_regs, _freeze(new_mem))))
            else:  # fences are no-ops under SC
                t = Transition(tid, key, "step", label=f"C{tid}: F")
                out.append((t, (new_pcs, regs, mem_f)))
        return out


# ----------------------------------------------------------------------
# TSO: FIFO store buffers, forwarding, drains as transitions
# ----------------------------------------------------------------------
class TSOMachine(Machine):
    """The classic TSO machine with drains exposed to the scheduler.

    State: ``(pcs, regs, buffers, mem, drained)`` where ``drained``
    holds per-core drain counters that give drain transitions stable
    keys.
    """

    name = "tso"
    model_name = "PC"

    def initial_state(self):
        n = len(self.threads)
        return (tuple(0 for _ in range(n)), tuple(() for _ in range(n)),
                tuple(() for _ in range(n)), _freeze(self.init),
                tuple(0 for _ in range(n)))

    def is_final(self, state) -> bool:
        pcs, _, buffers = state[0], state[1], state[2]
        return (all(pc >= len(t) for pc, t in zip(pcs, self.threads))
                and all(not b for b in buffers))

    def outcome(self, state) -> Outcome:
        return self._flat_outcome(state[1])

    @staticmethod
    def _forward(buffer, addr) -> Optional[int]:
        for (a, v) in reversed(buffer):
            if a == addr:
                return v
        return None

    def _fence_ready(self, state, tid, fence: FenceKind) -> bool:
        """May a fence of this kind complete?  Under TSO only fences
        that order stores before later accesses wait for the buffer."""
        if fence in (FenceKind.FULL, FenceKind.STORE_LOAD,
                     FenceKind.STORE_STORE):
            return not state[2][tid]
        return True

    def _atomic_ready(self, state, tid) -> bool:
        return not state[2][tid]

    def successors(self, state):
        out = []
        self._drain_moves(state, out)
        self._step_moves(state, out)
        return out

    def _drain_moves(self, state, out) -> None:
        pcs, regs, buffers, mem_f, drained = state
        for tid, buffer in enumerate(buffers):
            if not buffer:
                continue
            (addr, value), rest = buffer[0], buffer[1:]
            new_mem = dict(mem_f)
            new_mem[addr] = value
            new_buffers = tuple(rest if i == tid else b
                                for i, b in enumerate(buffers))
            new_drained = tuple(d + 1 if i == tid else d
                                for i, d in enumerate(drained))
            t = Transition(tid, ("drain", tid, drained[tid]), "drain",
                           writes=frozenset((addr,)),
                           label=f"C{tid}: drain S(0x{addr:x},{value})")
            out.append((t, (pcs, regs, new_buffers, _freeze(new_mem),
                            new_drained)))

    def _step_moves(self, state, out) -> None:
        # Subclass states may extend the tuple (FSBs, apply counters);
        # step moves never touch that tail, so carry it through.
        pcs, regs, buffers, mem_f, drained = state[:5]
        tail = state[5:]
        mem = dict(mem_f)
        for tid, thread in enumerate(self.threads):
            pc = pcs[tid]
            if pc >= len(thread):
                continue
            ev = thread[pc]
            buffer = buffers[tid]
            key = ("step", tid, pc)
            new_pcs = tuple(p + 1 if i == tid else p
                            for i, p in enumerate(pcs))
            if ev.kind is EventKind.STORE:
                new_buffer = buffer + ((ev.addr, ev.value),)
                new_buffers = tuple(new_buffer if i == tid else b
                                    for i, b in enumerate(buffers))
                # Buffer insertion is core-local: empty footprint.
                t = Transition(tid, key, "step",
                               label=f"C{tid}: issue S(0x{ev.addr:x},"
                                     f"{ev.value})")
                out.append((t, (new_pcs, regs, new_buffers, mem_f,
                                drained) + tail))
            elif ev.kind is EventKind.LOAD:
                forwarded = self._load_value(state, tid, ev.addr)
                if forwarded is not None:
                    value, reads = forwarded, _EMPTY
                else:
                    value, reads = mem.get(ev.addr, 0), \
                        frozenset((ev.addr,))
                new_regs = tuple(
                    r + ((_tag(ev), value),) if i == tid else r
                    for i, r in enumerate(regs))
                t = Transition(tid, key, "step", reads=reads,
                               label=f"C{tid}: L(0x{ev.addr:x})={value}")
                out.append((t, (new_pcs, new_regs, buffers, mem_f,
                                drained) + tail))
            elif ev.kind is EventKind.ATOMIC:
                if not self._atomic_ready(state, tid):
                    continue
                old = mem.get(ev.addr, 0)
                new_mem = dict(mem)
                new_mem[ev.addr] = ev.value
                new_regs = tuple(
                    r + ((_tag(ev), old),) if i == tid else r
                    for i, r in enumerate(regs))
                t = Transition(tid, key, "step",
                               reads=frozenset((ev.addr,)),
                               writes=frozenset((ev.addr,)),
                               label=f"C{tid}: A(0x{ev.addr:x},{ev.value})")
                out.append((t, (new_pcs, new_regs, buffers,
                                _freeze(new_mem), drained) + tail))
            elif ev.kind is EventKind.FENCE:
                if not self._fence_ready(state, tid, ev.fence):
                    continue
                t = Transition(tid, key, "step",
                               label=f"C{tid}: F.{ev.fence.value}")
                out.append((t, (new_pcs, regs, buffers, mem_f,
                                drained) + tail))
            else:
                t = Transition(tid, key, "step", label=f"C{tid}: nop")
                out.append((t, (new_pcs, regs, buffers, mem_f,
                                drained) + tail))

    def _load_value(self, state, tid, addr) -> Optional[int]:
        """Forwarded value for a load, or ``None`` to read memory."""
        return self._forward(state[2][tid], addr)


# ----------------------------------------------------------------------
# Imprecise-exception machine: TSO + faulting addresses + FSB drains
# ----------------------------------------------------------------------
class ImpreciseMachine(TSOMachine):
    """TSO with EInject-style faulting stores and FSB drain policies.

    A store to a faulting address cannot drain to memory: its drain
    becomes DETECT+PUT, moving the entry onto the core's FSB stream.
    The OS applies FSB entries in FIFO order via separate ``apply``
    transitions (GET+S_OS; the apply that empties the stream is the
    RESOLVE).  What happens to the *other* stores is the drain policy:

    * :attr:`~repro.memmodel.imprecise.DrainPolicy.SAME_STREAM` —
      while the FSB holds unapplied entries, every drain of that core
      routes through the stream too, so memory sees the core's stores
      in program order (the paper's design, §4.6/§5.3).
    * :attr:`~repro.memmodel.imprecise.DrainPolicy.SPLIT_STREAM` —
      only faulting stores route; younger non-faulting stores keep
      draining directly and *race* the OS applies (Figure 2a).

    Loads forward from the newest same-address entry of the core's
    ``FSB ++ buffer`` sequence (both are chronologically ordered, and
    every FSB entry left the buffer before anything still in it), so
    a core always sees its own stores — routed or not.  Fences and
    atomics that wait for stores wait for the FSB too.

    State: ``(pcs, regs, buffers, mem, drained, fsbs, applied)``.
    """

    name = "imprecise-tso"
    model_name = "PC"
    #: Not exact wrt clean PC: same-stream explores a subset (faults
    #: serialise some interleavings), split-stream a *superset* (the
    #: Figure 2a races) — policy checks compare both directions
    #: explicitly instead (:func:`repro.explore.engine.check_drain_policy`).
    exact = False

    def __init__(self, threads, init=None, extra_ppo=(),
                 faulting: Iterable[int] = (),
                 policy: DrainPolicy = DrainPolicy.SAME_STREAM) -> None:
        super().__init__(threads, init, extra_ppo)
        self.faulting = frozenset(faulting)
        self.policy = policy

    def initial_state(self):
        base = super().initial_state()
        n = len(self.threads)
        return base + (tuple(() for _ in range(n)),
                       tuple(0 for _ in range(n)))

    def is_final(self, state) -> bool:
        return super().is_final(state) and all(not f for f in state[5])

    def _fence_ready(self, state, tid, fence: FenceKind) -> bool:
        """Store-ordering fences wait for buffered *and* routed
        stores: a PUT store is only globally visible at its S_OS."""
        if fence in (FenceKind.FULL, FenceKind.STORE_LOAD,
                     FenceKind.STORE_STORE):
            return not state[2][tid] and not state[5][tid]
        return True

    def _atomic_ready(self, state, tid) -> bool:
        return not state[2][tid] and not state[5][tid]

    def _load_value(self, state, tid, addr) -> Optional[int]:
        forwarded = self._forward(state[2][tid], addr)
        if forwarded is not None:
            return forwarded
        return self._forward(state[5][tid], addr)

    def _drain_moves(self, state, out) -> None:
        pcs, regs, buffers, mem_f, drained, fsbs, applied = state
        for tid, buffer in enumerate(buffers):
            if not buffer:
                continue
            (addr, value), rest = buffer[0], buffer[1:]
            fsb = fsbs[tid]
            new_buffers = tuple(rest if i == tid else b
                                for i, b in enumerate(buffers))
            new_drained = tuple(d + 1 if i == tid else d
                                for i, d in enumerate(drained))
            faults = addr in self.faulting
            routed = faults or (
                self.policy is DrainPolicy.SAME_STREAM and bool(fsb))
            if routed:
                new_fsbs = tuple(f + ((addr, value),) if i == tid else f
                                 for i, f in enumerate(fsbs))
                verb = "DETECT+PUT" if faults and not fsb else "PUT"
                t = Transition(
                    tid, ("drain", tid, drained[tid]), "route",
                    label=f"C{tid}: {verb} S(0x{addr:x},{value})")
                out.append((t, (pcs, regs, new_buffers, mem_f,
                                new_drained, new_fsbs, applied)))
            else:
                new_mem = dict(mem_f)
                new_mem[addr] = value
                t = Transition(
                    tid, ("drain", tid, drained[tid]), "drain",
                    writes=frozenset((addr,)),
                    label=f"C{tid}: drain S(0x{addr:x},{value})")
                out.append((t, (pcs, regs, new_buffers, _freeze(new_mem),
                                new_drained, fsbs, applied)))

    def successors(self, state):
        out = []
        self._drain_moves(state, out)
        self._apply_moves(state, out)
        self._step_moves(state, out)
        return out

    def _apply_moves(self, state, out) -> None:
        pcs, regs, buffers, mem_f, drained, fsbs, applied = state
        for tid, fsb in enumerate(fsbs):
            if not fsb:
                continue
            (addr, value), rest = fsb[0], fsb[1:]
            new_mem = dict(mem_f)
            new_mem[addr] = value
            new_fsbs = tuple(rest if i == tid else f
                             for i, f in enumerate(fsbs))
            new_applied = tuple(a + 1 if i == tid else a
                                for i, a in enumerate(applied))
            verb = "S_OS+RESOLVE" if not rest else "S_OS"
            t = Transition(
                tid, ("apply", tid, applied[tid]), "apply",
                writes=frozenset((addr,)),
                label=f"OS@C{tid}: {verb}(0x{addr:x},{value})")
            out.append((t, (pcs, regs, buffers, _freeze(new_mem),
                            drained, new_fsbs, new_applied)))


# ----------------------------------------------------------------------
# WC / RVWMO-lite: out-of-order issue over a non-FIFO store buffer
# ----------------------------------------------------------------------
#: Per fence kind: (prior loads must have issued, prior stores must
#: have issued, prior stores must have fully drained).
_FENCE_NEEDS = {
    FenceKind.FULL: (True, True, True),
    FenceKind.STORE_STORE: (False, True, True),
    FenceKind.STORE_LOAD: (False, True, True),
    FenceKind.LOAD_LOAD: (True, False, False),
    FenceKind.LOAD_STORE: (True, False, False),
}


def _fence_blocks(fence: FenceKind, ev: Event) -> bool:
    """Does an un-issued po-earlier fence of this kind block ``ev``?"""
    if fence is FenceKind.FULL:
        return True
    if fence in (FenceKind.STORE_STORE, FenceKind.LOAD_STORE):
        return ev.is_write
    return ev.is_read  # SL / LL order later loads


class WCMachine(Machine):
    """Weak machine: instructions issue out of order within the
    constraints RVWMO-lite preserves (the engine's WC reference).

    Per core the state tracks which instruction indices have issued
    (a bitmask) and a non-FIFO store buffer; the scheduler picks any
    issueable instruction or drains any buffered store that is the
    oldest to its address.  Issue prerequisites: same-address
    accesses and atomics stay in program order, dependency edges
    (``extra_ppo``) are honoured, and fences wait for / block their
    ordered classes per :data:`_FENCE_NEEDS`.  The fence treatment is
    deliberately conservative (a store behind a store-store fence may
    not even *issue* until the fence does), so the machine is checked
    for soundness — outcomes ⊆ RVWMO-allowed — rather than equality
    (:attr:`exact` is ``False``).

    State: ``(masks, regs, buffers, mem)`` with ``buffers`` entries
    ``(index, addr, value)``.
    """

    name = "wc"
    model_name = "RVWMO"
    exact = False

    def __init__(self, threads, init=None, extra_ppo=()) -> None:
        super().__init__(threads, init, extra_ppo)
        # Same-thread dependency predecessors by instruction index.
        self._dep_preds: List[Dict[int, List[int]]] = []
        edges = self.extra_ppo
        for thread in self.threads:
            idx_of = {e.uid: i for i, e in enumerate(thread)}
            preds: Dict[int, List[int]] = {}
            for (a, b) in edges:
                if a in idx_of and b in idx_of:
                    preds.setdefault(idx_of[b], []).append(idx_of[a])
            self._dep_preds.append(preds)

    def initial_state(self):
        n = len(self.threads)
        return (tuple(0 for _ in range(n)), tuple(() for _ in range(n)),
                tuple(() for _ in range(n)), _freeze(self.init))

    def is_final(self, state) -> bool:
        masks, _, buffers, _ = state
        return (all(mask == (1 << len(t)) - 1
                    for mask, t in zip(masks, self.threads))
                and all(not b for b in buffers))

    def outcome(self, state) -> Outcome:
        return self._flat_outcome(state[1])

    # -- issue rules ----------------------------------------------------
    def _can_issue(self, tid: int, i: int, mask: int, buffer) -> bool:
        thread = self.threads[tid]
        ev = thread[i]
        buffered = {idx for (idx, _, _) in buffer}
        for j in self._dep_preds[tid].get(i, ()):
            if not (mask >> j) & 1:
                return False
        if ev.kind is EventKind.FENCE:
            loads_done, stores_done, stores_drained = \
                _FENCE_NEEDS[ev.fence]
            for j in range(i):
                ej = thread[j]
                issued = (mask >> j) & 1
                if ej.kind is EventKind.FENCE and not issued:
                    return False  # fences issue in program order
                if ej.is_read and loads_done and not issued:
                    return False
                if ej.is_write:
                    if stores_done and not issued:
                        return False
                    if stores_drained and (not issued or j in buffered):
                        return False
            return True
        if ev.kind is EventKind.ATOMIC:
            # Globally ordered: everything earlier issued and visible.
            return mask == (1 << i) - 1 and not buffer
        for j in range(i):
            ej = thread[j]
            issued = (mask >> j) & 1
            if issued:
                continue
            if ej.kind is EventKind.FENCE and _fence_blocks(ej.fence, ev):
                return False
            if ej.kind is EventKind.ATOMIC:
                return False  # atomics order their po-successors
            if (ej.is_memory_access and ev.is_memory_access
                    and ej.addr == ev.addr):
                return False  # same-address accesses stay in order
        return True

    @staticmethod
    def _forward(buffer, addr) -> Optional[int]:
        for (_, a, v) in reversed(buffer):
            if a == addr:
                return v
        return None

    def successors(self, state):
        masks, regs, buffers, mem_f = state
        mem = dict(mem_f)
        out = []
        # Drain moves: any buffered store oldest to its address.
        for tid, buffer in enumerate(buffers):
            seen_addrs: Set[int] = set()
            for pos, (idx, addr, value) in enumerate(buffer):
                if addr in seen_addrs:
                    continue  # same-address drains stay FIFO
                seen_addrs.add(addr)
                new_mem = dict(mem)
                new_mem[addr] = value
                new_buffer = buffer[:pos] + buffer[pos + 1:]
                new_buffers = tuple(new_buffer if i == tid else b
                                    for i, b in enumerate(buffers))
                t = Transition(
                    tid, ("drain", tid, idx), "drain",
                    writes=frozenset((addr,)),
                    label=f"C{tid}: drain S(0x{addr:x},{value})")
                out.append((t, (masks, regs, new_buffers,
                                _freeze(new_mem))))
        # Issue moves: any instruction whose prerequisites are met.
        for tid, thread in enumerate(self.threads):
            mask = masks[tid]
            buffer = buffers[tid]
            for i, ev in enumerate(thread):
                if (mask >> i) & 1:
                    continue
                if not self._can_issue(tid, i, mask, buffer):
                    continue
                key = ("step", tid, i)
                new_masks = tuple(m | (1 << i) if t == tid else m
                                  for t, m in enumerate(masks))
                if ev.kind is EventKind.STORE:
                    new_buffer = buffer + ((i, ev.addr, ev.value),)
                    new_buffers = tuple(new_buffer if t == tid else b
                                        for t, b in enumerate(buffers))
                    t = Transition(
                        tid, key, "step",
                        label=f"C{tid}: issue S(0x{ev.addr:x},"
                              f"{ev.value})")
                    out.append((t, (new_masks, regs, new_buffers,
                                    mem_f)))
                elif ev.kind is EventKind.LOAD:
                    forwarded = self._forward(buffer, ev.addr)
                    if forwarded is not None:
                        value, reads = forwarded, _EMPTY
                    else:
                        value, reads = mem.get(ev.addr, 0), \
                            frozenset((ev.addr,))
                    new_regs = tuple(
                        r + ((_tag(ev), value),) if t == tid else r
                        for t, r in enumerate(regs))
                    t = Transition(
                        tid, key, "step", reads=reads,
                        label=f"C{tid}: L(0x{ev.addr:x})={value}")
                    out.append((t, (new_masks, new_regs, buffers,
                                    mem_f)))
                elif ev.kind is EventKind.ATOMIC:
                    old = mem.get(ev.addr, 0)
                    new_mem = dict(mem)
                    new_mem[ev.addr] = ev.value
                    new_regs = tuple(
                        r + ((_tag(ev), old),) if t == tid else r
                        for t, r in enumerate(regs))
                    t = Transition(
                        tid, key, "step",
                        reads=frozenset((ev.addr,)),
                        writes=frozenset((ev.addr,)),
                        label=f"C{tid}: A(0x{ev.addr:x},{ev.value})")
                    out.append((t, (new_masks, new_regs, buffers,
                                    _freeze(new_mem))))
                else:  # fence
                    t = Transition(tid, key, "step",
                                   label=f"C{tid}: F.{ev.fence.value}")
                    out.append((t, (new_masks, regs, buffers, mem_f)))
        return out


#: Model name → machine class for clean (fault-free) exploration.
MACHINES = {
    "SC": SCMachine,
    "PC": TSOMachine,
    "TSO": TSOMachine,
    "WC": WCMachine,
    "RVWMO": WCMachine,
}


def machine_for(model: str,
                threads: Sequence[Sequence[Event]],
                init: Optional[Dict[int, int]] = None,
                extra_ppo: Iterable[Edge] = (),
                faulting: Iterable[int] = (),
                policy: Optional[DrainPolicy] = None) -> Machine:
    """Build the operational machine for a model name.

    With ``faulting`` addresses the imprecise machine (TSO-based) is
    returned; ``policy`` then selects the drain policy (default
    same-stream).  ``model`` is case-insensitive.
    """
    name = model.upper()
    faulting = frozenset(faulting)
    if faulting:
        if name not in ("PC", "TSO"):
            raise ValueError(
                f"faulting exploration is defined over the TSO machine; "
                f"got model {model!r}")
        return ImpreciseMachine(threads, init, extra_ppo,
                                faulting=faulting,
                                policy=policy or DrainPolicy.SAME_STREAM)
    try:
        cls = MACHINES[name]
    except KeyError:
        raise KeyError(
            f"unknown machine model {model!r}; choose from "
            f"{sorted(set(MACHINES))}") from None
    return cls(threads, init, extra_ppo)
