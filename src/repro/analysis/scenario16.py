"""16-core concurrent-faulting-streams scenario (FSB contention).

Figure 6 runs two cores; this scenario scales the same methodology to
the full Table 2 machine: sixteen cores append to EInject-backed logs
concurrently, so imprecise store exceptions from different cores
overlap in simulated time.  The run executes under a live telemetry
context and the report is computed *from the observability stream*,
not from ad-hoc stat fields:

* **FSB contention** — the ``fault.drain`` spans (SIM track, one lane
  per core) are swept for the peak and mean number of cores draining
  their fault-status buffers at once; the ``fsb.occupancy`` gauge
  contributes the deepest single-core FSB fill.
* **Request latency** — p50/p99 of the ``timing.request_cycles``
  histogram (one sample per sync-delimited request, the Tailbench
  latency reading).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from .. import obs
from ..core.handler import MinimalHandler
from ..obs.sinks import MemorySink
from ..sim.config import ConsistencyModel, SystemConfig, table2_config
from ..sim.devices.einject import EInject
from ..sim.timing import run_trace
from ..workloads.streams import STREAM_CORES, streams_workload


@dataclass
class Scenario16Report:
    """Everything the 16-core scenario measures."""

    cores: int
    requests: int
    baseline_cycles: float
    imprecise_cycles: float
    imprecise_exceptions: int
    faulting_stores: int
    #: Peak number of cores simultaneously inside a fault drain.
    peak_concurrent_drains: int
    #: Time-weighted mean of that concurrency over the busy intervals.
    mean_concurrent_drains: float
    #: Deepest single-core FSB fill observed at a drain.
    max_fsb_occupancy: float
    #: Request-latency distribution, simulated cycles.
    request_p50: float
    request_p99: float
    request_mean: float
    request_samples: int
    per_core_drain_cycles: Dict[int, float] = field(default_factory=dict)

    @property
    def relative_performance(self) -> float:
        if not self.imprecise_cycles:
            return 1.0
        return self.baseline_cycles / self.imprecise_cycles

    def as_dict(self) -> Dict:
        return {
            "cores": self.cores,
            "requests": self.requests,
            "baseline_cycles": self.baseline_cycles,
            "imprecise_cycles": self.imprecise_cycles,
            "relative_performance": self.relative_performance,
            "imprecise_exceptions": self.imprecise_exceptions,
            "faulting_stores": self.faulting_stores,
            "fsb_contention": {
                "peak_concurrent_drains": self.peak_concurrent_drains,
                "mean_concurrent_drains": self.mean_concurrent_drains,
                "max_fsb_occupancy": self.max_fsb_occupancy,
            },
            "request_latency_cycles": {
                "p50": self.request_p50,
                "p99": self.request_p99,
                "mean": self.request_mean,
                "samples": self.request_samples,
            },
        }


def _drain_concurrency(spans: List[Dict]) -> Tuple[int, float]:
    """Peak and time-weighted mean overlap of per-lane drain spans."""
    edges: List[Tuple[float, int]] = []
    for span in spans:
        start = span["ts"]
        edges.append((start, 1))
        edges.append((start + span["dur"], -1))
    if not edges:
        return 0, 0.0
    edges.sort()
    level = peak = 0
    busy = weighted = 0.0
    last = edges[0][0]
    for ts, delta in edges:
        if level > 0:
            busy += ts - last
            weighted += level * (ts - last)
        last = ts
        level += delta
        if level > peak:
            peak = level
    return peak, (weighted / busy if busy else 0.0)


def run_scenario16(cores: int = STREAM_CORES,
                   requests_per_core: int = 64,
                   stores_per_request: int = 24,
                   seed: int = 1,
                   strategy: str = "fast",
                   config: Optional[SystemConfig] = None) -> Scenario16Report:
    """Run the concurrent-streams scenario and report contention."""
    cfg = config or table2_config()
    cfg = cfg.with_consistency(ConsistencyModel.WC)
    if cores > cfg.cores:
        raise ValueError(f"{cores} streams exceed the {cfg.cores}-core "
                         f"configured machine")
    workload = streams_workload(cores=cores,
                                requests_per_core=requests_per_core,
                                stores_per_request=stores_per_request,
                                seed=seed)

    baseline = run_trace(cfg, workload.traces, strategy=strategy)

    einject = EInject()
    for page in workload.injectable_pages():
        einject.mmio_set(page)
    sink = MemorySink()
    tel = obs.Telemetry([sink])
    with obs.use(tel):
        imprecise = run_trace(cfg, workload.traces, einject=einject,
                              handler=MinimalHandler(cfg.os),
                              strategy=strategy)

    drains = [r for r in sink.records
              if r.get("type") == "span" and r.get("name") == "fault.drain"]
    peak, mean = _drain_concurrency(drains)
    per_core: Dict[int, float] = {}
    for span in drains:
        lane = int(span.get("lane", 0))
        per_core[lane] = per_core.get(lane, 0.0) + span["dur"]
    hist = tel.metrics.histogram("timing.request_cycles")
    occupancy = tel.metrics.gauge("fsb.occupancy")

    return Scenario16Report(
        cores=cores,
        requests=workload.work_items,
        baseline_cycles=baseline.total_cycles,
        imprecise_cycles=imprecise.total_cycles,
        imprecise_exceptions=imprecise.total_imprecise_exceptions,
        faulting_stores=imprecise.total_faulting_stores,
        peak_concurrent_drains=peak,
        mean_concurrent_drains=mean,
        max_fsb_occupancy=occupancy.max,
        request_p50=hist.percentile(50),
        request_p99=hist.percentile(99),
        request_mean=hist.mean,
        request_samples=hist.count,
        per_core_drain_cycles=per_core,
    )
