"""Figure 6 experiment driver: end-to-end relative performance of
GAP and Tailbench workloads with injected imprecise store exceptions.

Methodology (paper §6.5): the workload's graph / request-packet memory
is allocated from the EInject region and every page is marked faulting
before the run.  The workload then executes normally; each first touch
raises a precise (load) or imprecise (store) exception that the
minimal handler resolves.  Relative performance = Baseline cycles /
Imprecise cycles (GAP: execution time; Tailbench: the same ratio read
as aggregated throughput)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..core.handler import BatchingHandler, MinimalHandler
from ..sim.config import ConsistencyModel, SystemConfig, table2_config
from ..sim.devices.einject import EInject
from ..sim.timing import run_trace
from ..workloads import build_workload, figure6_workload_names

#: Per-workload build parameters: GAP kernels run repeated trials so
#: one-time faults amortise (GAP's own harness does the same); the
#: Tailbench runs use longer request streams.
FIGURE6_PARAMS: Dict[str, Dict] = {
    "BFS": {"scale": 0.5, "trials": 12},
    "SSSP": {"scale": 0.5, "trials": 2},
    "BC": {"scale": 0.5, "trials": 8},
    "Silo": {"scale": 4.0},
    "Masstree": {"scale": 4.0},
}


@dataclass
class Figure6Row:
    workload: str
    baseline_cycles: float
    imprecise_cycles: float
    imprecise_exceptions: int
    faulting_stores: int
    precise_exceptions: int
    work_items: int

    @property
    def relative_performance(self) -> float:
        if not self.imprecise_cycles:
            return 1.0
        return self.baseline_cycles / self.imprecise_cycles

    @property
    def baseline_throughput(self) -> float:
        """Work items per kilocycle (the Tailbench metric)."""
        return 1000.0 * self.work_items / max(1.0, self.baseline_cycles)

    @property
    def imprecise_throughput(self) -> float:
        return 1000.0 * self.work_items / max(1.0, self.imprecise_cycles)


def measure_figure6(name: str, cores: int = 2, seed: int = 1,
                    batching: bool = False,
                    config: Optional[SystemConfig] = None) -> Figure6Row:
    """Baseline vs Imprecise runs for one workload."""
    params = dict(FIGURE6_PARAMS.get(name, {"scale": 1.0}))
    scale = params.pop("scale", 1.0)
    workload = build_workload(name, cores=cores, scale=scale, seed=seed,
                              inject=True, **params)
    cfg = config or table2_config()
    cfg = cfg.with_consistency(ConsistencyModel.WC)

    baseline = run_trace(cfg, workload.traces)

    einject = EInject()
    for page in workload.injectable_pages():
        einject.mmio_set(page)
    handler_cls = BatchingHandler if batching else MinimalHandler
    imprecise = run_trace(cfg, workload.traces, einject=einject,
                          handler=handler_cls(cfg.os))

    return Figure6Row(
        workload=name,
        baseline_cycles=baseline.total_cycles,
        imprecise_cycles=imprecise.total_cycles,
        imprecise_exceptions=imprecise.total_imprecise_exceptions,
        faulting_stores=imprecise.total_faulting_stores,
        precise_exceptions=sum(s.precise_exceptions
                               for s in imprecise.core_stats),
        work_items=workload.work_items,
    )


def run_figure6(workloads: Optional[Sequence[str]] = None,
                cores: int = 2, seed: int = 1) -> List[Figure6Row]:
    names = list(workloads) if workloads else figure6_workload_names()
    return [measure_figure6(name, cores, seed) for name in names]
