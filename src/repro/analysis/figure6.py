"""Figure 6 experiment driver: end-to-end relative performance of
GAP and Tailbench workloads with injected imprecise store exceptions.

Methodology (paper §6.5): the workload's graph / request-packet memory
is allocated from the EInject region and every page is marked faulting
before the run.  The workload then executes normally; each first touch
raises a precise (load) or imprecise (store) exception that the
minimal handler resolves.  Relative performance = Baseline cycles /
Imprecise cycles (GAP: execution time; Tailbench: the same ratio read
as aggregated throughput)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..core.handler import BatchingHandler, MinimalHandler
from ..sim.config import ConsistencyModel, SystemConfig, table2_config
from ..sim.devices.einject import EInject
from ..sim.timing import run_trace
from ..workloads import build_workload, figure6_workload_names

#: Per-workload build parameters: GAP kernels run repeated trials so
#: one-time faults amortise (GAP's own harness does the same); the
#: Tailbench runs use longer request streams.
FIGURE6_PARAMS: Dict[str, Dict] = {
    "BFS": {"scale": 0.5, "trials": 12},
    "SSSP": {"scale": 0.5, "trials": 2},
    "BC": {"scale": 0.5, "trials": 8},
    "Silo": {"scale": 4.0},
    "Masstree": {"scale": 4.0},
}


@dataclass
class Figure6Row:
    workload: str
    baseline_cycles: float
    imprecise_cycles: float
    imprecise_exceptions: int
    faulting_stores: int
    precise_exceptions: int
    work_items: int

    @property
    def relative_performance(self) -> float:
        if not self.imprecise_cycles:
            return 1.0
        return self.baseline_cycles / self.imprecise_cycles

    @property
    def baseline_throughput(self) -> float:
        """Work items per kilocycle (the Tailbench metric)."""
        return 1000.0 * self.work_items / max(1.0, self.baseline_cycles)

    @property
    def imprecise_throughput(self) -> float:
        return 1000.0 * self.work_items / max(1.0, self.imprecise_cycles)


def measure_figure6(name: str, cores: int = 2, seed: int = 1,
                    batching: bool = False,
                    config: Optional[SystemConfig] = None,
                    cache=None, strategy: str = "fast") -> Figure6Row:
    """Baseline vs Imprecise runs for one workload.

    With a :class:`~repro.workloads.capture.TraceCache` in ``cache``,
    the workload build is captured once and replayed from the artifact
    on every later call (the capture/replay split); ``strategy``
    selects the timing engine ("fast", "naive", or "verify" — all
    bit-identical by construction).
    """
    params = dict(FIGURE6_PARAMS.get(name, {"scale": 1.0}))
    if cache is not None:
        from ..workloads.capture import capture_workload

        workload = capture_workload(name, cores=cores, seed=seed,
                                    cache=cache, inject=True, **params)
    else:
        scale = params.pop("scale", 1.0)
        workload = build_workload(name, cores=cores, scale=scale,
                                  seed=seed, inject=True, **params)
    cfg = config or table2_config()
    cfg = cfg.with_consistency(ConsistencyModel.WC)

    baseline = run_trace(cfg, workload.traces, strategy=strategy)

    einject = EInject()
    for page in workload.injectable_pages():
        einject.mmio_set(page)
    handler_cls = BatchingHandler if batching else MinimalHandler
    imprecise = run_trace(cfg, workload.traces, einject=einject,
                          handler=handler_cls(cfg.os), strategy=strategy)

    return Figure6Row(
        workload=name,
        baseline_cycles=baseline.total_cycles,
        imprecise_cycles=imprecise.total_cycles,
        imprecise_exceptions=imprecise.total_imprecise_exceptions,
        faulting_stores=imprecise.total_faulting_stores,
        precise_exceptions=sum(s.precise_exceptions
                               for s in imprecise.core_stats),
        work_items=workload.work_items,
    )


def run_figure6(workloads: Optional[Sequence[str]] = None,
                cores: int = 2, seed: int = 1,
                cache=None, strategy: str = "fast") -> List[Figure6Row]:
    names = list(workloads) if workloads else figure6_workload_names()
    return [measure_figure6(name, cores, seed, cache=cache,
                            strategy=strategy) for name in names]


# ----------------------------------------------------------------------
# The paper's pass criteria (§6.5)
# ----------------------------------------------------------------------
#: GAP kernels must retain ≥ 96.5 % of baseline performance, each.
GAP_MIN_RELATIVE = 0.965
#: Tailbench *aggregated* throughput loss must stay ≤ 4 %.
TAILBENCH_MIN_THROUGHPUT_RATIO = 0.96


@dataclass
class Figure6Verdict:
    """Per-suite judgement of a Figure 6 run."""

    gap_relative: Dict[str, float]
    tailbench_ratio: Dict[str, float]
    tailbench_aggregate: float
    failures: List[str]

    @property
    def ok(self) -> bool:
        return not self.failures


def figure6_gate(rows: Sequence[Figure6Row]) -> Figure6Verdict:
    """Judge Figure 6 rows against the paper's per-suite criteria:
    every GAP kernel ≥ 96.5 % of baseline, and Tailbench aggregated
    throughput (work items over total cycles, across the Tailbench
    apps) within 4 % of baseline.  Per-app Tailbench ratios are
    reported for diagnosis but only the aggregate gates, matching the
    paper's "aggregated throughput" reading.
    """
    from ..workloads.registry import PAPER_TABLE3

    gap: Dict[str, float] = {}
    tail: Dict[str, float] = {}
    tail_rows: List[Figure6Row] = []
    failures: List[str] = []
    for row in rows:
        suite = PAPER_TABLE3[row.workload].suite
        if suite == "GAP":
            gap[row.workload] = row.relative_performance
            if row.relative_performance < GAP_MIN_RELATIVE:
                failures.append(
                    f"GAP/{row.workload}: relative performance "
                    f"{row.relative_performance:.1%} < "
                    f"{GAP_MIN_RELATIVE:.1%}")
        elif suite == "Tailbench":
            tail_rows.append(row)
            tail[row.workload] = (row.imprecise_throughput
                                  / max(1e-12, row.baseline_throughput))
    aggregate = 1.0
    if tail_rows:
        baseline_thr = (sum(r.work_items for r in tail_rows)
                        / max(1.0, sum(r.baseline_cycles
                                       for r in tail_rows)))
        imprecise_thr = (sum(r.work_items for r in tail_rows)
                         / max(1.0, sum(r.imprecise_cycles
                                        for r in tail_rows)))
        aggregate = imprecise_thr / max(1e-12, baseline_thr)
        if aggregate < TAILBENCH_MIN_THROUGHPUT_RATIO:
            failures.append(
                f"Tailbench aggregate throughput {aggregate:.1%} of "
                f"baseline, loss exceeds "
                f"{1 - TAILBENCH_MIN_THROUGHPUT_RATIO:.0%}")
    return Figure6Verdict(gap_relative=gap, tailbench_ratio=tail,
                          tailbench_aggregate=aggregate,
                          failures=failures)
