"""Log writers/readers mirroring the paper artifact's post scripts.

The artifact appendix ships five post-processing scripts:
``1-mbench.py`` (Figure 5 data), ``2-litmus.py`` (compare the
hardware log against the herd log — "OK" iff no line starts with
"!!! Warning negative differences in"), ``3-gap.py`` and
``4-silo.py``/``5-masstree.py`` (Figure 6 data).  This module provides
the same workflow over JSON logs produced by our harness, so runs can
be archived and re-analysed without re-simulating.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

Outcome = Tuple[Tuple[str, int], ...]

NEGATIVE_DIFF_PREFIX = "!!! Warning negative differences in"
MISSING_FROM_HARDWARE_PREFIX = "!!! Warning missing from hardware log:"

CAMPAIGN_REPORT_SCHEMA = "repro.litmus.campaign-report/v8"
#: Still readable; v8 added the top-level ``taint`` totals block and
#: per-test ``taint`` entries (the static FSB information-flow
#: verdicts per drain policy — ``None`` when ``config.taint`` was
#: off); v7 added the top-level ``corpus`` block (the
#: constrained-random generator's provenance — seed, cores/features
#: config, attempt and dedup-drop counts, template mix, and the corpus
#: digest — ``None`` for campaigns over hand-written or structurally
#: generated suites); v6 added the top-level ``store`` block (the verdict
#: store's path, record count, replay hits/misses, store-served
#: allowed sets — ``None`` when no store was attached) and the
#: ``incremental`` flag; v5 added the top-level ``telemetry`` block
#: (the campaign telemetry summary — span/event counts and the merged
#: metrics registry — ``None`` when the campaign ran without
#: telemetry); v4 added the ``static`` pre-filter totals block
#: and per-test ``static`` classifications; v3 added the ``explorer``
#: totals block and the per-test ``explorer`` cross-check entries; v2
#: added the ``enumerator`` totals block, per-test ``enumerator``
#: stats, and ``cache.hit_rate``.
CAMPAIGN_REPORT_SCHEMA_V7 = "repro.litmus.campaign-report/v7"
CAMPAIGN_REPORT_SCHEMA_V6 = "repro.litmus.campaign-report/v6"
CAMPAIGN_REPORT_SCHEMA_V5 = "repro.litmus.campaign-report/v5"
CAMPAIGN_REPORT_SCHEMA_V4 = "repro.litmus.campaign-report/v4"
CAMPAIGN_REPORT_SCHEMA_V3 = "repro.litmus.campaign-report/v3"
CAMPAIGN_REPORT_SCHEMA_V2 = "repro.litmus.campaign-report/v2"
CAMPAIGN_REPORT_SCHEMA_V1 = "repro.litmus.campaign-report/v1"


# ----------------------------------------------------------------------
# Litmus logs (the 2-litmus.py analogue)
# ----------------------------------------------------------------------
def write_litmus_log(path, results: Dict[str, Iterable[Outcome]]) -> None:
    """Write observed outcomes per test name (the "hardware log")."""
    payload = {
        name: sorted([list(map(list, outcome)) for outcome in outcomes])
        for name, outcomes in results.items()
    }
    Path(path).write_text(json.dumps(payload, indent=1, sort_keys=True))


def read_litmus_log(path) -> Dict[str, set]:
    raw = json.loads(Path(path).read_text())
    return {
        name: {tuple(tuple(pair) for pair in outcome)
               for outcome in outcomes}
        for name, outcomes in raw.items()
    }


def compare_litmus_logs(hardware_path, model_path) -> List[str]:
    """Compare a hardware log against a model (allowed-set) log.

    Returns report lines; any line starting with
    ``!!! Warning negative differences in`` marks a test where the
    hardware exhibited an outcome the model forbids — exactly the
    condition the paper's ``2-litmus.py`` greps for.

    Tests present in only one log are coverage holes, not silent
    no-ops: the paper's criterion quantifies over *all* tests, so a
    test the hardware log never ran cannot count towards "no negative
    differences".  Model-only tests produce
    ``!!! Warning missing from hardware log:`` lines, which
    :func:`litmus_verdict` counts as failures.
    """
    hardware = read_litmus_log(hardware_path)
    model = read_litmus_log(model_path)
    lines: List[str] = []
    for name in sorted(set(hardware) | set(model)):
        if name not in hardware:
            lines.append(f"{MISSING_FROM_HARDWARE_PREFIX} {name}")
            continue
        observed = hardware[name]
        allowed = model.get(name)
        if allowed is None:
            lines.append(f"{name}: missing from model log")
            continue
        negative = observed - allowed
        if negative:
            lines.append(
                f"{NEGATIVE_DIFF_PREFIX} {name}: "
                f"{sorted(dict(o) for o in negative)}")
        else:
            positive = len(allowed - observed)
            lines.append(f"{name}: ok ({len(observed)} observed, "
                         f"{positive} allowed-but-unseen)")
    return lines


def litmus_verdict(report_lines: Sequence[str]) -> str:
    """"OK" iff no negative-difference line exists (§A.5) *and* no
    model-log test is missing from the hardware log."""
    bad = [ln for ln in report_lines
           if ln.startswith(NEGATIVE_DIFF_PREFIX)
           or ln.startswith(MISSING_FROM_HARDWARE_PREFIX)]
    return "OK" if not bad else f"FAIL ({len(bad)} tests)"


# ----------------------------------------------------------------------
# Structured campaign reports (schema: docs/campaign.md)
# ----------------------------------------------------------------------
def _encode_outcome_set(outcomes: Iterable[Outcome]) -> List[List[List]]:
    return sorted([list(pair) for pair in outcome] for outcome in outcomes)


def _test_run_dict(run) -> Dict:
    """Serialise one :class:`repro.litmus.runner.TestRun` pass."""
    return {
        "runs": run.runs,
        "outcomes": _encode_outcome_set(run.outcomes),
        "imprecise_exceptions": run.imprecise_exceptions,
        "precise_exceptions": run.precise_exceptions,
        "contract_violations": run.contract_violations,
    }


def campaign_report_dict(report) -> Dict:
    """A :class:`repro.litmus.harness.SuiteReport` as a JSON-ready dict.

    Schema ``repro.litmus.campaign-report/v8`` (documented in
    ``docs/campaign.md``): campaign-level metadata plus one entry per
    test with wall time, the judged passes (``injected``/``clean``,
    ``None`` when a pass did not run), any negative differences, the
    reference enumerator's stats (``None`` for cache-served tests),
    the operational exploration cross-check (``None`` when
    ``config.explore`` was off), the static pre-filter
    classification (``None`` when ``config.prefilter`` was off or the
    allowed set came from the cache), and the static FSB taint
    verdicts per drain policy (``None`` when ``config.taint`` was
    off).  The top level adds summed enumerator counters, summed
    explorer counters, summed static pre-filter counters, summed
    taint counters, the allowed-set cache hit rate, the campaign
    telemetry summary (``None`` when telemetry was off), the
    verdict-store block (``None`` when no store was attached), and the
    randgen corpus provenance block (``None`` when the suite did not
    come from the constrained-random generator).
    """
    results = []
    for v in report.verdicts:
        passes = {"injected": None, "clean": None}
        passes["injected" if v.run.injected else "clean"] = \
            _test_run_dict(v.run)
        if v.clean_run is not None:
            passes["clean"] = _test_run_dict(v.clean_run)
        negative = set(v.conformance.negative_differences)
        if v.clean_conformance is not None:
            negative |= v.clean_conformance.negative_differences
        results.append({
            "name": v.test.name,
            "category": v.test.category,
            "ok": v.ok,
            "wall_time_s": round(v.wall_time, 6),
            "allowed_outcomes": len(v.conformance.allowed),
            "negative_differences": _encode_outcome_set(negative),
            "injected": passes["injected"],
            "clean": passes["clean"],
            "enumerator": v.enum_stats,
            "explorer": v.explore_check,
            "static": v.static_check,
            "taint": v.taint_check,
        })
    lookups = report.cache_hits + report.cache_misses
    return {
        "schema": CAMPAIGN_REPORT_SCHEMA,
        "model": report.model,
        "injected": report.injected,
        "jobs": report.jobs,
        "tests": report.tests,
        "ok": report.ok,
        "wall_time_s": round(report.wall_time, 6),
        "cache": {"hits": report.cache_hits,
                  "misses": report.cache_misses,
                  "hit_rate": (round(report.cache_hits / lookups, 4)
                               if lookups else 0.0)},
        "enumerator": report.enumerator_totals(),
        "explorer": report.explorer_totals(),
        "static": report.static_totals(),
        "taint": report.taint_totals(),
        "telemetry": getattr(report, "telemetry", None),
        "store": getattr(report, "store", None),
        "corpus": getattr(report, "corpus", None),
        "incremental": bool(getattr(report, "incremental", False)),
        "totals": {
            "failures": len(report.failures),
            "imprecise_exceptions": report.total_imprecise_exceptions,
            "precise_exceptions": report.total_precise_exceptions,
            "clean_passes": report.clean_passes,
            "clean_imprecise_exceptions":
                report.total_clean_imprecise_exceptions,
            "clean_precise_exceptions":
                report.total_clean_precise_exceptions,
        },
        "results": results,
    }


def write_campaign_report(path, report) -> Dict:
    """Write the structured campaign report; returns the dict."""
    payload = campaign_report_dict(report)
    Path(path).write_text(json.dumps(payload, indent=1, sort_keys=True))
    return payload


def read_campaign_report(path) -> Dict:
    payload = json.loads(Path(path).read_text())
    if payload.get("schema") not in (CAMPAIGN_REPORT_SCHEMA,
                                     CAMPAIGN_REPORT_SCHEMA_V7,
                                     CAMPAIGN_REPORT_SCHEMA_V6,
                                     CAMPAIGN_REPORT_SCHEMA_V5,
                                     CAMPAIGN_REPORT_SCHEMA_V4,
                                     CAMPAIGN_REPORT_SCHEMA_V3,
                                     CAMPAIGN_REPORT_SCHEMA_V2,
                                     CAMPAIGN_REPORT_SCHEMA_V1):
        raise ValueError(
            f"{path}: not a campaign report "
            f"(schema {payload.get('schema')!r})")
    return payload


# ----------------------------------------------------------------------
# Microbenchmark logs (the 1-mbench.py analogue)
# ----------------------------------------------------------------------
def write_mbench_log(path, rows: Sequence[Dict]) -> None:
    Path(path).write_text(json.dumps(list(rows), indent=1))


def analyse_mbench_log(path) -> Dict[str, Dict[str, float]]:
    """Figure 5 data: per-fault breakdown per (fraction, mode)."""
    rows = json.loads(Path(path).read_text())
    out: Dict[str, Dict[str, float]] = {}
    for row in rows:
        key = f"{row['fault_fraction']}/{row['mode']}"
        out[key] = {
            "uarch": row["uarch"],
            "os_apply": row["os_apply"],
            "os_other": row["os_other"],
            "total": row["total"],
        }
    return out


# ----------------------------------------------------------------------
# Workload logs (the 3-gap.py / 4-silo.py / 5-masstree.py analogues)
# ----------------------------------------------------------------------
def write_workload_log(path, rows) -> None:
    payload = [
        {
            "workload": r.workload,
            "baseline_cycles": r.baseline_cycles,
            "imprecise_cycles": r.imprecise_cycles,
            "imprecise_exceptions": r.imprecise_exceptions,
            "faulting_stores": r.faulting_stores,
            "precise_exceptions": r.precise_exceptions,
            "work_items": r.work_items,
        }
        for r in rows
    ]
    Path(path).write_text(json.dumps(payload, indent=1))


def analyse_workload_logs(run_path, ref_path=None) -> List[Dict]:
    """Figure 6 data: relative performance per workload.

    With a separate reference log (the ``*-ref.log`` files of the
    artifact), the baseline cycles come from it instead of the run
    log's own baseline field.
    """
    rows = json.loads(Path(run_path).read_text())
    reference = None
    if ref_path is not None:
        reference = {r["workload"]: r
                     for r in json.loads(Path(ref_path).read_text())}
    out = []
    for row in rows:
        baseline = row["baseline_cycles"]
        if reference and row["workload"] in reference:
            baseline = reference[row["workload"]]["baseline_cycles"]
        out.append({
            "workload": row["workload"],
            "relative": baseline / max(1.0, row["imprecise_cycles"]),
            "throughput_ratio": (row["work_items"] / max(1.0, row["imprecise_cycles"]))
            / max(1e-12, row["work_items"] / max(1.0, baseline)),
            "imprecise_exceptions": row["imprecise_exceptions"],
        })
    return out
