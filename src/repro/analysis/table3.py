"""Table 3 experiment driver: instruction mix, WC speedup over SC,
and ASO speculation-state requirements across three systems
(baseline, 2× memory latency, 4× store-to-load latency skew)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..sim.config import ConsistencyModel, SystemConfig, table2_config
from ..sim.timing import run_trace
from ..sim.trace import measure_mix
from ..workloads import PAPER_TABLE3, build_workload


@dataclass
class Table3Row:
    """One measured workload row, alongside the paper's values."""

    workload: str
    suite: str
    store_pct: float
    load_pct: float
    sync_pct: float
    other_pct: float
    wc_speedup: float
    state_kb_baseline: float
    state_kb_2x_memory: float
    state_kb_4x_skew: float
    paper_wc_speedup: float
    paper_state_kb: int

    def as_dict(self) -> Dict[str, float]:
        return {
            "workload": self.workload,
            "store%": round(self.store_pct, 1),
            "load%": round(self.load_pct, 1),
            "sync%": round(self.sync_pct, 2),
            "WC speedup": round(self.wc_speedup, 2),
            "state KB": round(self.state_kb_baseline, 1),
            "state KB (2x mem)": round(self.state_kb_2x_memory, 1),
            "state KB (4x skew)": round(self.state_kb_4x_skew, 1),
        }


def measure_workload(name: str, cores: int = 4, scale: float = 0.5,
                     seed: int = 1,
                     config: Optional[SystemConfig] = None) -> Table3Row:
    """Run one workload under SC and WC (three latency systems)."""
    ref = PAPER_TABLE3[name]
    base_cfg = config or table2_config()
    base_cfg = base_cfg.with_consistency(ConsistencyModel.WC)
    base_cfg.cores = max(base_cfg.cores, cores)

    workload = build_workload(name, cores=cores, scale=scale, seed=seed)
    mix = measure_mix(workload.traces[0])

    sc = run_trace(base_cfg.with_consistency(ConsistencyModel.SC),
                   workload.traces)
    wc = run_trace(base_cfg, workload.traces, track_speculation=True)
    wc_2x = run_trace(base_cfg.with_memory_latency_scale(2),
                      workload.traces, track_speculation=True)
    wc_4x = run_trace(base_cfg.with_store_load_skew(4),
                      workload.traces, track_speculation=True)

    return Table3Row(
        workload=name,
        suite=ref.suite,
        store_pct=100 * mix.store,
        load_pct=100 * mix.load,
        sync_pct=100 * mix.sync,
        other_pct=100 * mix.other,
        wc_speedup=wc.ipc / sc.ipc if sc.ipc else 0.0,
        state_kb_baseline=wc.speculation_peak_kb(),
        state_kb_2x_memory=wc_2x.speculation_peak_kb(),
        state_kb_4x_skew=wc_4x.speculation_peak_kb(),
        paper_wc_speedup=ref.wc_speedup,
        paper_state_kb=ref.state_kb_baseline,
    )


def run_table3(workloads: Optional[Sequence[str]] = None, cores: int = 4,
               scale: float = 0.5, seed: int = 1) -> List[Table3Row]:
    """The full Table 3 sweep."""
    names = list(workloads) if workloads else list(PAPER_TABLE3)
    return [measure_workload(name, cores, scale, seed) for name in names]
