"""Experiment drivers and reporting for the paper's tables/figures."""

from .figure6 import (FIGURE6_PARAMS, Figure6Row, Figure6Verdict,
                      figure6_gate, measure_figure6, run_figure6)
from .postprocess import (
    analyse_mbench_log,
    analyse_workload_logs,
    campaign_report_dict,
    compare_litmus_logs,
    litmus_verdict,
    read_campaign_report,
    read_litmus_log,
    write_campaign_report,
    write_litmus_log,
    write_mbench_log,
    write_workload_log,
)
from .reporting import (
    render_bar_series,
    render_figure5,
    render_figure6,
    render_table,
    render_table3,
)
from .table3 import Table3Row, measure_workload, run_table3

__all__ = [
    "FIGURE6_PARAMS", "Figure6Row", "Figure6Verdict", "figure6_gate",
    "measure_figure6", "run_figure6",
    "analyse_mbench_log", "analyse_workload_logs", "campaign_report_dict",
    "compare_litmus_logs", "litmus_verdict", "read_campaign_report",
    "read_litmus_log", "write_campaign_report", "write_litmus_log",
    "write_mbench_log", "write_workload_log",
    "render_bar_series", "render_figure5", "render_figure6",
    "render_table", "render_table3",
    "Table3Row", "measure_workload", "run_table3",
]
