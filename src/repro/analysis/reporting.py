"""Plain-text rendering of the reproduced tables and figures.

Every bench prints through these helpers so the output lines up with
the paper's rows/series and is easy to diff across runs.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Sequence


def render_table(headers: Sequence[str],
                 rows: Iterable[Sequence[object]],
                 title: str = "") -> str:
    """Fixed-width text table."""
    str_rows = [[_fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        return f"{cell:.2f}"
    return str(cell)


def render_bar_series(series: Mapping[str, float], width: int = 40,
                      title: str = "") -> str:
    """ASCII bar chart for figure-style series."""
    if not series:
        return title
    peak = max(series.values()) or 1.0
    lines = [title] if title else []
    label_w = max(len(k) for k in series)
    for key, value in series.items():
        bar = "#" * max(1, int(width * value / peak))
        lines.append(f"{key.ljust(label_w)}  {bar} {value:.2f}")
    return "\n".join(lines)


def render_table3(rows) -> str:
    """The Table 3 layout: mix, WC speedup, state KB × three systems."""
    headers = ["Workload", "Suite", "St%", "Ld%", "Sy%",
               "WC spd", "(paper)", "KB base", "KB 2xmem", "KB 4xskew",
               "(paper KB)"]
    body = [
        (r.workload, r.suite, f"{r.store_pct:.0f}", f"{r.load_pct:.0f}",
         f"{r.sync_pct:.1f}", f"{r.wc_speedup:.2f}",
         f"{r.paper_wc_speedup:.2f}", f"{r.state_kb_baseline:.1f}",
         f"{r.state_kb_2x_memory:.1f}", f"{r.state_kb_4x_skew:.1f}",
         r.paper_state_kb)
        for r in rows
    ]
    return render_table(headers, body,
                        title="Table 3 — mix, WC speedup over SC, "
                              "speculation state (measured vs paper)")


def render_figure5(rows: Sequence[Dict]) -> str:
    headers = ["fault frac", "handler", "uarch", "OS apply", "OS other",
               "total/fault", "stores/exc"]
    body = [
        (r["fault_fraction"], r["mode"], f"{r['uarch']:.0f}",
         f"{r['os_apply']:.0f}", f"{r['os_other']:.0f}",
         f"{r['total']:.0f}", f"{r['stores_per_exception']:.2f}")
        for r in rows
    ]
    return render_table(headers, body,
                        title="Figure 5 — per-faulting-store overhead "
                              "breakdown (cycles)")


def render_figure6(rows) -> str:
    headers = ["Workload", "relative perf", "imprecise exc",
               "faulting stores", "precise exc"]
    body = [
        (r.workload, f"{100 * r.relative_performance:.1f}%",
         r.imprecise_exceptions, r.faulting_stores, r.precise_exceptions)
        for r in rows
    ]
    return render_table(headers, body,
                        title="Figure 6 — relative performance with "
                              "imprecise store exceptions")
