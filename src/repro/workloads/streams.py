"""Concurrent faulting streams: a 16-core FSB-contention scenario.

Every core runs an independent request loop that appends records to
its own append-only log allocated from the EInject region — the
write-first pattern of §6.5's methodology, scaled out so many cores
take imprecise store exceptions *concurrently*.  Each request reads a
packet descriptor from a shared ring, writes a run of fresh log words
(crossing a page boundary every ``4096 / 8 / stores_per_request``-ish
requests — each first touch faults), and ends with a sync, so the
timing engine's ``timing.request_cycles`` histogram records one
sample per request and the per-core FSB drains collide in simulated
time.  :mod:`repro.analysis.scenario16` turns the resulting span
stream into an FSB-contention figure plus p50/p99 request latency.
"""

from __future__ import annotations

import random
from typing import List

from .base import WORD, AddressMap, TraceBuilder, Workload

#: The scenario's canonical core count (the paper's Table 2 machine).
STREAM_CORES = 16


def streams_workload(cores: int = STREAM_CORES,
                     requests_per_core: int = 64,
                     stores_per_request: int = 24,
                     seed: int = 1,
                     inject_streams: bool = True) -> Workload:
    """Build the concurrent-faulting-streams workload.

    Args:
        cores: independent request loops (16 reproduces the scenario).
        requests_per_core: sync-delimited requests per core.
        stores_per_request: log words appended per request; sized so a
            request's stores regularly step onto a fresh (faulting)
            page while several sit buffered.
        inject_streams: allocate the logs from the EInject region
            (disable for a no-fault baseline of the same trace).
    """
    amap = AddressMap()
    ring = amap.alloc("ring", 64 * 1024)  # shared, read-only descriptors
    logs = [
        amap.alloc(f"log{core}",
                   requests_per_core * stores_per_request * WORD,
                   injectable=inject_streams)
        for core in range(cores)
    ]
    traces: List[List] = []
    work = 0
    for core in range(cores):
        rng = random.Random(seed * 911 + core)
        tb = TraceBuilder(rng)
        log = logs[core]
        cursor = 0
        for request in range(requests_per_core):
            # Pull the request descriptor (shared ring, read-only).
            slot = rng.randrange(ring.size // WORD)
            tb.load(ring.addr(slot))
            tb.load(ring.addr(slot + 1), dep=True)
            tb.alu(6)
            # Append the record: fresh words, write-first.
            for _ in range(stores_per_request):
                tb.store(log.addr(cursor))
                cursor += 1
                tb.alu(2)
            tb.sync()  # request boundary: publish the record
            work += 1
        traces.append(tb.build())
    return Workload("Streams", traces, amap, work_items=work)
