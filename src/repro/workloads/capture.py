"""Capture/replay split: build a workload once, replay it many times.

Building a paper-scale workload (running BFS over a real graph,
executing Silo transactions) dominates wall-clock time in repeated
experiments, yet its output — the per-core op streams — is a pure
function of ``(workload name, build params, seed)``.  This module
captures that output into a versioned on-disk artifact
(``repro.trace/v1``, :mod:`repro.sim.trace`) and replays it straight
into the timing engine.

* :func:`capture_workload` — build-or-load.  On a cache miss it runs
  the workload model under a ``workload.capture`` span and writes the
  artifact; on a hit it decodes the artifact (no capture span is
  emitted — the span's presence is the observable difference between
  cold and warm runs).
* :func:`replay_trace` — drive the timing model from a captured
  workload under a ``workload.replay`` span.
* :class:`TraceCache` — content-addressed store.  The key is the
  sha256 of the canonical build request (schema tag × workload name ×
  sorted params × seed), so any change to the build inputs — or to
  the artifact schema — lands on a different key; the artifact's own
  content digest is verified on every load, so a corrupt entry raises
  instead of replaying silently.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from ..obs.telemetry import current as _telemetry
from ..sim.config import SystemConfig
from ..sim.timing import TimingResult, run_trace
from ..sim.trace import (TRACE_SCHEMA, PackedTrace, TraceArtifactError,
                         decode_trace_artifact, encode_trace_artifact)
from .base import Workload
from .registry import build_workload

#: Environment override for the default on-disk cache location.
CACHE_ENV = "REPRO_TRACE_CACHE"


def default_cache_dir() -> Path:
    env = os.environ.get(CACHE_ENV)
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro-traces"


def workload_cache_key(name: str, cores: int, seed: int,
                       params: Optional[Dict] = None) -> str:
    """Content-addressed cache key for one build request.

    Canonical JSON of the schema tag, workload name, core count, seed,
    and sorted build params — identical requests collide (that is the
    cache hit), any differing input or a schema bump lands elsewhere.
    """
    request = {
        "schema": TRACE_SCHEMA,
        "workload": name,
        "cores": cores,
        "seed": seed,
        "params": dict(params or {}),
    }
    blob = json.dumps(request, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


@dataclass
class CapturedWorkload:
    """A workload reconstituted from (or about to become) an artifact.

    Drop-in for :class:`~repro.workloads.base.Workload` where the
    timing experiments are concerned: per-core traces, the injectable
    page list (the Figure 6 methodology marks these faulting before
    the run), and the work-item count for throughput metrics.
    """

    name: str
    traces: List[PackedTrace]
    injectable_pages_list: List[int]
    work_items: int
    cache_key: str
    digest: str
    params: Dict = field(default_factory=dict)
    seed: int = 1
    from_cache: bool = False

    @property
    def cores(self) -> int:
        return len(self.traces)

    def total_ops(self) -> int:
        return sum(len(t) for t in self.traces)

    def injectable_pages(self) -> List[int]:
        return list(self.injectable_pages_list)


class TraceCache:
    """Two-level trace cache: decoded artifacts in memory, compressed
    artifacts on disk (one file per key, written atomically)."""

    def __init__(self, root: Optional[Path] = None) -> None:
        self.root = Path(root) if root is not None else default_cache_dir()
        self._memory: Dict[str, CapturedWorkload] = {}

    def path_for(self, key: str) -> Path:
        return self.root / f"{key}.rtrc"

    # ------------------------------------------------------------------
    def load(self, key: str) -> Optional[CapturedWorkload]:
        """Decoded workload for ``key``, or ``None`` on a miss.

        Raises :class:`~repro.sim.trace.TraceArtifactError` if the
        on-disk entry exists but fails digest verification.
        """
        hit = self._memory.get(key)
        if hit is not None:
            return hit
        path = self.path_for(key)
        try:
            data = path.read_bytes()
        except OSError:
            return None
        header, traces = decode_trace_artifact(data)
        meta = header.get("meta", {})
        if meta.get("cache_key") not in (None, key):
            raise TraceArtifactError(
                f"artifact at {path} was captured under key "
                f"{meta['cache_key'][:12]}…, expected {key[:12]}…")
        captured = CapturedWorkload(
            name=meta.get("workload", "?"),
            traces=traces,
            injectable_pages_list=list(meta.get("injectable_pages", [])),
            work_items=int(meta.get("work_items", 0)),
            cache_key=key,
            digest=header["digest"],
            params=dict(meta.get("params", {})),
            seed=int(meta.get("seed", 0)),
            from_cache=True,
        )
        self._memory[key] = captured
        return captured

    def store(self, key: str, workload: Workload, seed: int,
              params: Optional[Dict] = None) -> CapturedWorkload:
        """Encode ``workload`` and persist it under ``key``."""
        params = dict(params or {})
        meta = {
            "workload": workload.name,
            "seed": seed,
            "params": params,
            "cache_key": key,
            "work_items": workload.work_items,
            "injectable_pages": workload.injectable_pages(),
        }
        blob = encode_trace_artifact(workload.traces, meta=meta)
        path = self.path_for(key)
        self.root.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=str(self.root), suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                fh.write(blob)
            os.replace(tmp, path)  # atomic: readers never see a torn file
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        header, traces = decode_trace_artifact(blob)
        captured = CapturedWorkload(
            name=workload.name,
            traces=traces,
            injectable_pages_list=list(meta["injectable_pages"]),
            work_items=workload.work_items,
            cache_key=key,
            digest=header["digest"],
            params=params,
            seed=seed,
            from_cache=False,
        )
        self._memory[key] = captured
        return captured

    def evict(self, key: str) -> None:
        self._memory.pop(key, None)
        try:
            self.path_for(key).unlink()
        except OSError:
            pass

    def clear_memory(self) -> None:
        self._memory.clear()


def capture_workload(name: str, cores: int = 2, seed: int = 1,
                     cache: Optional[TraceCache] = None,
                     force: bool = False, **params) -> CapturedWorkload:
    """Build-or-load a workload's trace artifact.

    Extra keyword args are forwarded to
    :func:`~repro.workloads.registry.build_workload` and participate
    in the cache key.  A warm-cache call emits no ``workload.capture``
    span — only the ``trace_cache.hits`` counter ticks.
    """
    tel = _telemetry()
    cache = cache if cache is not None else TraceCache()
    key = workload_cache_key(name, cores, seed, params)
    if not force:
        hit = cache.load(key)
        if hit is not None:
            tel.counter("trace_cache.hits").inc()
            return hit
    tel.counter("trace_cache.misses").inc()
    with tel.span("workload.capture", workload=name, cores=cores,
                  seed=seed, key=key[:12]):
        workload = build_workload(name, cores=cores, seed=seed, **params)
        return cache.store(key, workload, seed=seed, params=params)


def replay_trace(config: SystemConfig, captured: CapturedWorkload,
                 einject=None, handler=None,
                 strategy: str = "fast", **kwargs) -> TimingResult:
    """Replay a captured workload through the timing model.

    Pure replay: no workload code runs, the packed op columns feed the
    engine directly.  Emitted under a ``workload.replay`` span.
    """
    tel = _telemetry()
    with tel.span("workload.replay", workload=captured.name,
                  strategy=strategy, ops=captured.total_ops(),
                  digest=captured.digest[:12]):
        return run_trace(config, captured.traces, einject=einject,
                         handler=handler, strategy=strategy, **kwargs)
