"""GAP benchmark models: BFS, SSSP, BC (paper Table 3, Figure 6).

Each kernel runs the *real* algorithm over a synthetic uniform-degree
graph in CSR form and records its memory accesses.  Per-core
parallelism follows GAP's structure: the graph (CSR arrays) is shared
read-only across cores; per-vertex result arrays are partitioned.
The recorded trace is calibrated to the published Table 3 instruction
mix (BFS 11/22, SSSP 3/22, BC 25/25 store/load %) by
:func:`~repro.workloads.base.calibrate_mix`.

GAP runs each kernel for many source *trials*; the ``trials``
parameter reproduces that.  For the Figure 6 experiment the graph
arrays are allocated from the EInject region and every page is marked
faulting before the kernel starts — first touches raise
imprecise/precise exceptions that the minimal handler resolves
transparently, amortised across the remaining trials.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from .base import WORD, AddressMap, TraceBuilder, Workload, calibrate_mix


@dataclass
class Graph:
    """CSR graph: ``offsets[u] .. offsets[u+1]`` index ``targets``."""

    nodes: int
    offsets: List[int]
    targets: List[int]

    @property
    def edges(self) -> int:
        return len(self.targets)

    def neighbors(self, u: int) -> Sequence[int]:
        return self.targets[self.offsets[u]:self.offsets[u + 1]]


def generate_graph(nodes: int = 2048, degree: int = 8,
                   seed: int = 0) -> Graph:
    """Uniform-random directed graph (the paper uses ~1M nodes / ~8M
    edges; the default here is scaled down for laptop-scale runs —
    EXPERIMENTS.md records the scaling)."""
    rng = random.Random(seed)
    offsets = [0]
    targets: List[int] = []
    for _ in range(nodes):
        for _ in range(degree):
            targets.append(rng.randrange(nodes))
        offsets.append(len(targets))
    return Graph(nodes, offsets, targets)


class _GapKernel:
    """Shared plumbing for the three kernels."""

    name = "GAP"
    store_pct = 10
    load_pct = 22
    #: Fraction of pad traffic walking the cold spill region —
    #: calibrated per kernel against the published WC speedup.
    cold_fraction = 0.02

    def __init__(self, graph: Graph, cores: int, seed: int,
                 inject_graph: bool, trials: int = 1) -> None:
        self.graph = graph
        self.cores = cores
        self.seed = seed
        #: Source runs per core; GAP runs many trials per kernel, so
        #: first-touch page faults amortise across them (Figure 6).
        self.trials = max(1, trials)
        self.amap = AddressMap()
        self.inject = inject_graph
        # The Figure 6 methodology allocates the whole Graph object —
        # CSR arrays and per-vertex result arrays — from EInject.
        self.offsets_r = self.amap.alloc(
            "offsets", (graph.nodes + 1) * WORD, inject_graph)
        self.targets_r = self.amap.alloc(
            "targets", graph.edges * WORD, inject_graph)

    def offsets_addr(self, u: int) -> int:
        return self.offsets_r.addr(u)

    def targets_addr(self, i: int) -> int:
        return self.targets_r.addr(i)

    def source(self, core: int, trial: int) -> int:
        return (self.seed + core * 131 + trial * 977) % self.graph.nodes

    def finish(self, core: int, tb: TraceBuilder) -> List:
        """Calibrate one core's trace to the published mix."""
        stack = self.amap.alloc(f"stack{core}", 4096)
        spill = self.amap.alloc(f"spill{core}", 128 * 1024)
        return calibrate_mix(tb.build(), stack, self.store_pct,
                             self.load_pct,
                             random.Random(self.seed * 7 + core),
                             cold_region=spill,
                             cold_fraction=self.cold_fraction)


class BfsKernel(_GapKernel):
    """Top-down BFS; parent array per core (distinct sources)."""

    name = "BFS"
    store_pct = 11
    load_pct = 22
    cold_fraction = 0.035

    def run(self) -> Workload:
        traces = []
        work = 0
        for core in range(self.cores):
            parent_r = self.amap.alloc(f"parent{core}",
                                       self.graph.nodes * WORD,
                                       self.inject)
            queue_r = self.amap.alloc(f"queue{core}",
                                      self.graph.nodes * WORD,
                                      self.inject)
            tb = TraceBuilder(random.Random(self.seed * 97 + core))
            for trial in range(self.trials):
                work += self._one_trial(tb, parent_r, queue_r,
                                        self.source(core, trial))
            traces.append(self.finish(core, tb))
        return Workload(self.name, traces, self.amap, work_items=work)

    def _one_trial(self, tb: TraceBuilder, parent_r, queue_r,
                   source: int) -> int:
        work = 0
        parent = [-1] * self.graph.nodes
        parent[source] = source
        frontier = [source]
        qcursor = 0
        while frontier:
            next_frontier = []
            for u in frontier:
                tb.load(self.offsets_addr(u))
                tb.load(self.offsets_addr(u + 1))
                tb.alu(2)
                for i in range(self.graph.offsets[u],
                               self.graph.offsets[u + 1]):
                    v = self.graph.targets[i]
                    tb.load(self.targets_addr(i))
                    tb.load(parent_r.addr(v), dep=True)
                    tb.alu(2)
                    if parent[v] == -1:
                        parent[v] = u
                        tb.store(parent_r.addr(v))
                        # Frontier queue push: write-first memory, the
                        # main source of imprecise store exceptions.
                        tb.store(queue_r.addr(qcursor))
                        qcursor += 1
                        next_frontier.append(v)
                        work += 1
            tb.sync()  # frontier swap barrier
            frontier = next_frontier
        return work


class SsspKernel(_GapKernel):
    """Bellman-Ford-style SSSP: read-heavy relaxation sweeps with few
    successful updates (stores) — the 3 %-store profile of Table 3."""

    name = "SSSP"
    store_pct = 3
    load_pct = 22
    cold_fraction = 0.02

    def __init__(self, graph: Graph, cores: int, seed: int,
                 inject_graph: bool, trials: int = 1,
                 rounds: int = 3) -> None:
        super().__init__(graph, cores, seed, inject_graph, trials)
        self.rounds = rounds
        rng = random.Random(seed)
        self.weights = [rng.randrange(1, 16) for _ in range(graph.edges)]

    def run(self) -> Workload:
        traces = []
        work = 0
        for core in range(self.cores):
            dist_r = self.amap.alloc(f"dist{core}",
                                     self.graph.nodes * WORD, self.inject)
            bucket_r = self.amap.alloc(f"bucket{core}",
                                       self.graph.nodes * WORD,
                                       self.inject)
            tb = TraceBuilder(random.Random(self.seed * 31 + core))
            for trial in range(self.trials):
                work += self._one_trial(tb, dist_r, bucket_r,
                                        self.source(core, trial))
            traces.append(self.finish(core, tb))
        return Workload(self.name, traces, self.amap, work_items=work)

    def _one_trial(self, tb: TraceBuilder, dist_r, bucket_r,
                   source: int) -> int:
        work = 0
        qcursor = 0
        INF = 1 << 60
        dist = [INF] * self.graph.nodes
        dist[source] = 0
        for _ in range(self.rounds):
            for u in range(self.graph.nodes):
                tb.load(dist_r.addr(u))
                tb.alu(5)
                if dist[u] == INF:
                    continue
                tb.load(self.offsets_addr(u))
                tb.load(self.offsets_addr(u + 1))
                for i in range(self.graph.offsets[u],
                               self.graph.offsets[u + 1]):
                    v = self.graph.targets[i]
                    tb.load(self.targets_addr(i))
                    tb.load(dist_r.addr(v), dep=True)
                    tb.alu(5)
                    cand = dist[u] + self.weights[i]
                    if cand < dist[v]:
                        dist[v] = cand
                        tb.store(dist_r.addr(v))
                        # Bucket insert (delta-stepping style):
                        # write-first memory.
                        tb.store(bucket_r.addr(qcursor))
                        qcursor += 1
                        work += 1
            tb.sync()
        return work


class BcKernel(_GapKernel):
    """Brandes betweenness centrality: forward BFS accumulating path
    counts, then backward dependency accumulation — store-heavy (25 %),
    the biggest WC beneficiary in Table 3."""

    name = "BC"
    store_pct = 25
    load_pct = 25
    cold_fraction = 0.03

    def run(self) -> Workload:
        traces = []
        work = 0
        for core in range(self.cores):
            regions = {
                "sigma": self.amap.alloc(f"sigma{core}",
                                         self.graph.nodes * WORD,
                                         self.inject),
                "delta": self.amap.alloc(f"delta{core}",
                                         self.graph.nodes * WORD,
                                         self.inject),
                "depth": self.amap.alloc(f"depth{core}",
                                         self.graph.nodes * WORD,
                                         self.inject),
            }
            tb = TraceBuilder(random.Random(self.seed * 61 + core))
            for trial in range(self.trials):
                work += self._one_trial(tb, regions,
                                        self.source(core, trial))
            traces.append(self.finish(core, tb))
        return Workload(self.name, traces, self.amap, work_items=work)

    def _one_trial(self, tb: TraceBuilder, regions, source: int) -> int:
        work = 0
        sigma_r, delta_r, depth_r = (regions["sigma"], regions["delta"],
                                     regions["depth"])
        depth = [-1] * self.graph.nodes
        sigma = [0] * self.graph.nodes
        depth[source] = 0
        sigma[source] = 1
        tb.store(depth_r.addr(source))
        tb.store(sigma_r.addr(source))
        stages: List[List[int]] = [[source]]
        while stages[-1]:
            nxt = []
            for u in stages[-1]:
                tb.load(self.offsets_addr(u))
                tb.load(self.offsets_addr(u + 1))
                for i in range(self.graph.offsets[u],
                               self.graph.offsets[u + 1]):
                    v = self.graph.targets[i]
                    tb.load(self.targets_addr(i))
                    tb.load(depth_r.addr(v), dep=True)
                    tb.alu(1)
                    if depth[v] == -1:
                        depth[v] = depth[u] + 1
                        tb.store(depth_r.addr(v))
                        nxt.append(v)
                    if depth[v] == depth[u] + 1:
                        sigma[v] += sigma[u]
                        tb.load(sigma_r.addr(u))
                        tb.store(sigma_r.addr(v))
                        work += 1
            tb.sync()
            stages.append(nxt)

        # Backward accumulation.
        for stage in reversed(stages[:-1]):
            for u in stage:
                for i in range(self.graph.offsets[u],
                               self.graph.offsets[u + 1]):
                    v = self.graph.targets[i]
                    if depth[v] == depth[u] + 1:
                        tb.load(sigma_r.addr(u))
                        tb.load(delta_r.addr(v), dep=True)
                        tb.alu(1)
                        tb.store(delta_r.addr(u))
                        work += 1
            tb.sync()
        return work


class PrKernel(_GapKernel):
    """Pull-based PageRank — one of the kernels the paper *excludes*
    from Table 3 ("PR, CC, and TC ... have <1 % stores and no
    performance benefits from WC"; §3.3).  Implemented to verify the
    exclusion: its trace is left uncalibrated so the raw <1 %-store
    profile shows through, and the WC/SC speedup lands at ~1.
    """

    name = "PR"
    cold_fraction = 0.0

    def __init__(self, graph: Graph, cores: int, seed: int,
                 inject_graph: bool, trials: int = 1,
                 iterations: int = 2) -> None:
        super().__init__(graph, cores, seed, inject_graph, trials)
        self.iterations = iterations

    def run(self) -> Workload:
        traces = []
        work = 0
        for core in range(self.cores):
            ranks_r = self.amap.alloc(f"ranks{core}",
                                      self.graph.nodes * WORD,
                                      self.inject)
            next_r = self.amap.alloc(f"next{core}",
                                     self.graph.nodes * WORD,
                                     self.inject)
            tb = TraceBuilder(random.Random(self.seed * 41 + core))
            for _ in range(self.iterations):
                for u in range(self.graph.nodes):
                    tb.load(self.offsets_addr(u))
                    tb.load(self.offsets_addr(u + 1))
                    tb.alu(3)
                    for i in range(self.graph.offsets[u],
                                   self.graph.offsets[u + 1]):
                        tb.load(self.targets_addr(i))
                        tb.load(ranks_r.addr(self.graph.targets[i]),
                                dep=True)
                        tb.alu(10)  # rank/degree accumulate + fp work
                    # One store per vertex per iteration: <1 % stores.
                    tb.store(next_r.addr(u))
                    work += 1
                tb.sync()
            traces.append(tb.build())  # deliberately uncalibrated
        return Workload(self.name, traces, self.amap, work_items=work)


class CcKernel(_GapKernel):
    """Label-propagation connected components — the other kernel the
    paper excludes from Table 3 ("PR, CC, and TC ... have <1 % stores
    and no performance benefits from WC"; §3.3).  Each sweep pulls
    every neighbour's label and writes only on an actual label
    decrease, so stores vanish as labels converge (the capped sweep
    count leaves a low-single-digit store share here); like
    :class:`PrKernel` the trace is left uncalibrated so the raw
    read-heavy profile shows through.
    """

    name = "CC"
    cold_fraction = 0.0

    def __init__(self, graph: Graph, cores: int, seed: int,
                 inject_graph: bool, trials: int = 1,
                 sweeps: int = 2) -> None:
        super().__init__(graph, cores, seed, inject_graph, trials)
        self.sweeps = sweeps

    def run(self) -> Workload:
        traces = []
        work = 0
        for core in range(self.cores):
            comp_r = self.amap.alloc(f"comp{core}",
                                     self.graph.nodes * WORD,
                                     self.inject)
            tb = TraceBuilder(random.Random(self.seed * 53 + core))
            comp = list(range(self.graph.nodes))
            for _ in range(self.sweeps):
                changed = False
                for u in range(self.graph.nodes):
                    tb.load(self.offsets_addr(u))
                    tb.load(self.offsets_addr(u + 1))
                    tb.alu(2)
                    best = comp[u]
                    for i in range(self.graph.offsets[u],
                                   self.graph.offsets[u + 1]):
                        v = self.graph.targets[i]
                        tb.load(self.targets_addr(i))
                        tb.load(comp_r.addr(v), dep=True)
                        tb.alu(2)
                        if comp[v] < best:
                            best = comp[v]
                    if best < comp[u]:
                        comp[u] = best
                        tb.store(comp_r.addr(u))
                        work += 1
                        changed = True
                tb.sync()
                if not changed:
                    break
            traces.append(tb.build())  # deliberately uncalibrated
        return Workload(self.name, traces, self.amap, work_items=work)


_KERNELS = {"BFS": BfsKernel, "SSSP": SsspKernel, "BC": BcKernel,
            "PR": PrKernel, "CC": CcKernel}


def gap_workload(kernel: str, cores: int = 4, nodes: int = 2048,
                 degree: int = 8, seed: int = 1,
                 inject_graph: bool = False, trials: int = 1) -> Workload:
    """Build one GAP workload's per-core traces.

    Args:
        kernel: "BFS", "SSSP", or "BC".
        inject_graph: allocate the CSR arrays from the EInject region
            (the Figure 6 methodology).
        trials: source runs per core (GAP-style repeated trials).
    """
    try:
        cls = _KERNELS[kernel.upper()]
    except KeyError:
        raise KeyError(f"unknown GAP kernel {kernel!r}; "
                       f"choose from {sorted(_KERNELS)}") from None
    graph = generate_graph(nodes, degree, seed)
    return cls(graph, cores, seed, inject_graph, trials=trials).run()
