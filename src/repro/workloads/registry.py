"""Workload registry: the Table 3 roster and paper reference values."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from .base import Workload
from .cloudsuite import (
    data_caching_workload,
    data_serving_workload,
    media_streaming_workload,
)
from .gap import gap_workload
from .tailbench import masstree_workload, silo_workload


@dataclass(frozen=True)
class PaperReference:
    """Table 3's published values for one workload."""

    suite: str
    store_pct: int
    load_pct: int
    sync_pct: float
    wc_speedup: float
    state_kb_baseline: int
    state_kb_2x_memory: int
    state_kb_4x_skew: int


#: Table 3, verbatim from the paper.
PAPER_TABLE3: Dict[str, PaperReference] = {
    "BFS": PaperReference("GAP", 11, 22, 0.5, 1.53, 14, 14, 17),
    "SSSP": PaperReference("GAP", 3, 22, 1.0, 1.06, 21, 21, 21),
    "BC": PaperReference("GAP", 25, 25, 0.0, 3.24, 18, 18, 18),
    "Silo": PaperReference("Tailbench", 7, 13, 2.0, 1.15, 18, 18, 25),
    "Masstree": PaperReference("Tailbench", 14, 13, 0.5, 1.60, 16, 16, 16),
    "Data Caching": PaperReference("Cloudsuite", 11, 24, 0.5, 1.12, 17, 17, 22),
    "Media Streaming": PaperReference("Cloudsuite", 9, 13, 0.5, 1.16, 14, 14, 17),
    "Data Serving": PaperReference("Cloudsuite", 9, 24, 0.5, 1.10, 14, 17, 23),
}


def build_workload(name: str, cores: int = 4, seed: int = 1,
                   scale: float = 1.0, inject: bool = False,
                   trials: int = 1, degree: int = 8) -> Workload:
    """Build a workload by name: the Table 3 roster plus the
    paper-excluded GAP kernels ("PR", "CC" — §3.3's <1 %-store
    exclusions, reproduced to verify it).

    ``scale`` multiplies the default problem size; ``inject`` allocates
    the workload's data from the EInject region (Figure 6 only applies
    to GAP and Tailbench); ``trials`` repeats GAP kernels from fresh
    sources and ``degree`` sets their graph's out-degree (both ignored
    elsewhere).
    """
    key = name.strip()
    if key.upper() in ("BFS", "SSSP", "BC", "PR", "CC"):
        return gap_workload(key.upper(), cores=cores,
                            nodes=max(256, int(2048 * scale)),
                            degree=degree, seed=seed,
                            inject_graph=inject, trials=trials)
    if key == "Silo":
        return silo_workload(cores=cores,
                             requests_per_core=max(50, int(300 * scale)),
                             seed=seed, inject_packets=inject)
    if key == "Masstree":
        return masstree_workload(cores=cores,
                                 requests_per_core=max(50, int(300 * scale)),
                                 seed=seed, inject_packets=inject)
    if key == "Data Caching":
        return data_caching_workload(cores=cores,
                                     requests_per_core=max(50, int(400 * scale)),
                                     seed=seed)
    if key == "Media Streaming":
        return media_streaming_workload(cores=cores,
                                        chunks_per_core=max(50, int(250 * scale)),
                                        seed=seed)
    if key == "Data Serving":
        return data_serving_workload(cores=cores,
                                     requests_per_core=max(50, int(350 * scale)),
                                     seed=seed)
    raise KeyError(f"unknown workload {name!r}; "
                   f"choose from {sorted(PAPER_TABLE3)}")


def table3_workload_names() -> List[str]:
    return list(PAPER_TABLE3)


def figure6_workload_names() -> List[str]:
    """Figure 6 evaluates GAP (BFS/SSSP/BC) and Tailbench."""
    return ["BFS", "SSSP", "BC", "Silo", "Masstree"]
