"""Cloudsuite models for Table 3: Data Caching, Media Streaming,
Data Serving.

These appear only in the Table 3 study (instruction mix, WC speedup,
speculation state), so the models focus on the memory behaviour that
drives those numbers:

* **Data Caching** (memcached): GET-heavy hash-table lookups with a
  small SET fraction — 11 % stores / 24 % loads.
* **Media Streaming** (nginx): long sequential buffer reads chunked
  into client send buffers — 9 % stores / 13 % loads.
* **Data Serving** (Cassandra): keyed reads + memtable appends with a
  commit log — 9 % stores / 24 % loads.
"""

from __future__ import annotations

import random
from typing import List

from .base import WORD, AddressMap, TraceBuilder, Workload, calibrate_mix, skewed_index


def data_caching_workload(cores: int = 4, requests_per_core: int = 400,
                          buckets: int = 8192, seed: int = 1) -> Workload:
    rng = random.Random(seed)
    amap = AddressMap()
    table_r = amap.alloc("hashtable", buckets * 2 * WORD)
    values_r = amap.alloc("values", buckets * 8 * WORD)
    lru_r = amap.alloc("lru", buckets * WORD)

    traces = []
    work = 0
    for core in range(cores):
        tb = TraceBuilder(random.Random(seed * 43 + core))
        part = buckets // cores
        for _ in range(requests_per_core):
            # Sharded key space: ~90 % of requests hit this worker's
            # partition (memcached-style key hashing).
            if rng.random() < 0.9:
                key = core * part + skewed_index(rng, part)
            else:
                key = skewed_index(rng, buckets)
            tb.load(table_r.addr(key * 2))            # bucket head
            tb.load(values_r.addr(key * 8), dep=True)  # chase to item
            tb.load(values_r.addr(key * 8 + 1))
            tb.alu(5)
            if rng.random() < 0.30:                   # SET
                tb.store(values_r.addr(key * 8 + 1))
                tb.store(lru_r.addr(key))
                tb.alu(2)
            else:                                     # GET
                tb.load(lru_r.addr(key))
                tb.store(lru_r.addr(key))             # LRU touch
                tb.alu(3)
            work += 1
        stack = amap.alloc(f"stack{core}", 4096)
        traces.append(calibrate_mix(tb.build(), stack, 11, 24,
                                    random.Random(seed * 7 + core)))
    return Workload("Data Caching", traces, amap, work_items=work)


def media_streaming_workload(cores: int = 4, chunks_per_core: int = 250,
                             chunk_words: int = 16, seed: int = 1) -> Workload:
    rng = random.Random(seed)
    amap = AddressMap()
    media_r = amap.alloc("media", 1 << 22)
    sendbuf_r = amap.alloc("sendbuf", 1 << 16)
    session_r = amap.alloc("sessions", 4096 * WORD)

    traces = []
    work = 0
    for core in range(cores):
        tb = TraceBuilder(random.Random(seed * 47 + core))
        cursor = rng.randrange(1 << 20)
        for _ in range(chunks_per_core):
            session = rng.randrange(4096)
            tb.load(session_r.addr(session))
            tb.alu(6)
            for w in range(chunk_words):
                tb.load(media_r.byte(cursor + w * WORD))
                tb.alu(8)
                if w % 2 == 0:
                    tb.store(sendbuf_r.byte((session * 64 + w) * WORD))
            tb.store(session_r.addr(session))         # cursor update
            tb.alu(10)
            cursor += chunk_words * WORD
            work += 1
        stack = amap.alloc(f"stack{core}", 4096)
        traces.append(calibrate_mix(tb.build(), stack, 9, 13,
                                    random.Random(seed * 7 + core)))
    return Workload("Media Streaming", traces, amap, work_items=work)


def data_serving_workload(cores: int = 4, requests_per_core: int = 350,
                          rows: int = 8192, seed: int = 1) -> Workload:
    rng = random.Random(seed)
    amap = AddressMap()
    index_r = amap.alloc("rowindex", rows * WORD)
    memtable_r = amap.alloc("memtable", rows * 4 * WORD)
    sstable_r = amap.alloc("sstable", 1 << 22)
    commitlog_r = amap.alloc("commitlog", 1 << 20)

    traces = []
    work = 0
    for core in range(cores):
        tb = TraceBuilder(random.Random(seed * 53 + core))
        log_cursor = core * (1 << 16)
        part = rows // cores
        for _ in range(requests_per_core):
            if rng.random() < 0.9:
                row = core * part + skewed_index(rng, part)
            else:
                row = skewed_index(rng, rows)
            tb.load(index_r.addr(row))
            tb.alu(4)
            if rng.random() < 0.25:                   # write path
                tb.store(commitlog_r.byte(log_cursor))
                log_cursor += 2 * WORD
                tb.store(memtable_r.addr(row * 4))
                tb.store(memtable_r.addr(row * 4 + 1))
                tb.alu(6)
            else:                                     # read path
                tb.load(memtable_r.addr(row * 4), dep=True)
                if rng.random() < 0.5:                # memtable miss
                    tb.load(sstable_r.byte(row * 64))
                    tb.load(sstable_r.byte(row * 64 + WORD))
                tb.alu(7)
            for _ in range(2):
                tb.load(index_r.addr(rng.randrange(rows)))
                tb.alu(3)
            work += 1
        stack = amap.alloc(f"stack{core}", 4096)
        traces.append(calibrate_mix(tb.build(), stack, 9, 24,
                                    random.Random(seed * 7 + core)))
    return Workload("Data Serving", traces, amap, work_items=work)
