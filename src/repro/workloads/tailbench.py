"""Tailbench models: Silo and Masstree (paper Table 3, Figure 6).

*Silo* is an in-memory OLTP engine: each request is a short
transaction over a few records — index lookup, record reads, one or
two record writes, and a commit-log append.  *Masstree* is a
trie/B+-tree hybrid key-value store: each request walks tree levels
(pointer chasing — dependent loads) and occasionally inserts.

Both run in the paper's "integrated mode": a single process serves a
request stream for a fixed amount of work; the metric is aggregated
throughput (requests per cycle).  For Figure 6 the request packets
(and the store's value heap) are allocated from the EInject region.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from .base import WORD, AddressMap, TraceBuilder, Workload, calibrate_mix, skewed_index

#: Cold-spill pad fractions, calibrated against Table 3 WC speedups.
SILO_COLD_FRACTION = 0.0
MASSTREE_COLD_FRACTION = 0.0


def silo_workload(cores: int = 4, requests_per_core: int = 300,
                  table_records: int = 4096, seed: int = 1,
                  inject_packets: bool = False,
                  reads_per_txn: int = 20, writes_per_txn: int = 4) -> Workload:
    """Silo-style OLTP: read-mostly transactions with a log append.

    Mix target (Table 3): ~7 % stores, ~13 % loads, ~2 % sync.

    With ``inject_packets`` the request/response packet buffers come
    from the EInject region (the Figure 6 methodology): parsing a new
    request page raises a precise load fault, writing a new response
    page raises an imprecise store exception.
    """
    rng = random.Random(seed)
    amap = AddressMap()
    index_r = amap.alloc("index", table_records * WORD)
    records_r = amap.alloc("records", table_records * 8 * WORD)
    log_r = amap.alloc("log", 1 << 20)
    packets_r = amap.alloc("packets", requests_per_core * cores * 32,
                           injectable=inject_packets)
    responses_r = amap.alloc("responses", requests_per_core * cores * 32,
                             injectable=inject_packets)

    traces = []
    work = 0
    for core in range(cores):
        tb = TraceBuilder(random.Random(seed * 41 + core))
        log_cursor = core * (1 << 16)
        part = table_records // cores
        for req in range(requests_per_core):
            packet = (core * requests_per_core + req) * 32
            tb.load(packets_r.byte(packet))          # parse request
            tb.alu(6)
            # Read set via the index.
            written = None
            for _ in range(reads_per_txn):
                # Home-warehouse locality (TPC-C style): most records
                # touched belong to this worker's partition.
                if rng.random() < 0.9:
                    key = core * part + skewed_index(rng, part)
                else:
                    key = skewed_index(rng, table_records)
                tb.load(index_r.addr(key))           # hash index probe
                tb.load(records_r.addr(key * 8), dep=True)
                tb.load(records_r.addr(key * 8 + 1))
                tb.alu(8)
                written = key
            # Write set: record updates + log append + response.
            for wr in range(writes_per_txn):
                tb.store(records_r.addr((written + wr) * 8 + 1))
                tb.alu(6)
            tb.store(log_r.byte(log_cursor))
            log_cursor += WORD
            tb.store(responses_r.byte(packet))
            # Commit fence (Silo's epoch-based group commit).
            if req % 32 == 0:
                tb.sync()
            tb.alu(12)
            work += 1
        stack = amap.alloc(f"stack{core}", 4096)
        spill = amap.alloc(f"spill{core}", 128 * 1024)
        traces.append(calibrate_mix(tb.build(), stack, 7, 13,
                                    random.Random(seed * 7 + core),
                                    cold_region=spill,
                                    cold_fraction=SILO_COLD_FRACTION))
    return Workload("Silo", traces, amap, work_items=work)


def masstree_workload(cores: int = 4, requests_per_core: int = 300,
                      keys: int = 8192, fanout: int = 16, seed: int = 1,
                      inject_packets: bool = False,
                      write_fraction: float = 0.15,
                      keys_per_request: int = 8) -> Workload:
    """Masstree-style key-value store: tree descents per request
    (multi-get of ``keys_per_request`` keys).

    Mix target (Table 3): ~14 % stores, ~13 % loads.
    """
    rng = random.Random(seed)
    amap = AddressMap()
    levels = 1
    span = fanout
    while span < keys:
        levels += 1
        span *= fanout
    node_regions = [amap.alloc(f"level{d}", max(1, keys // (fanout ** (levels - 1 - d))) * fanout * WORD)
                    for d in range(levels)]
    values_r = amap.alloc("values", keys * 4 * WORD)
    packets_r = amap.alloc("packets", requests_per_core * cores * 32,
                           injectable=inject_packets)
    responses_r = amap.alloc("responses", requests_per_core * cores * 32,
                             injectable=inject_packets)

    traces = []
    work = 0
    for core in range(cores):
        tb = TraceBuilder(random.Random(seed * 59 + core))
        for req in range(requests_per_core):
            packet = (core * requests_per_core + req) * 32
            tb.load(packets_r.byte(packet))
            tb.alu(4)
            for _ in range(keys_per_request):
                key = skewed_index(rng, keys, hot_frac=0.1, hot_prob=0.6)
                # Tree descent: one dependent load per level.
                slot = key
                for depth, region in enumerate(node_regions):
                    tb.load(region.addr(slot % (region.size // WORD)),
                            dep=depth > 0)
                    tb.alu(3)
                    slot //= fanout
                is_write = rng.random() < write_fraction
                if is_write:
                    # Insert/update: write the value + version bump +
                    # node dirty marks (hand-over-hand versioning).
                    tb.store(values_r.addr(key * 4))
                    tb.store(values_r.addr(key * 4 + 1))
                    tb.store(node_regions[-1].addr(
                        key % (node_regions[-1].size // WORD)))
                    tb.alu(4)
                else:
                    tb.load(values_r.addr(key * 4), dep=True)
                    tb.alu(5)
            tb.store(responses_r.byte(packet))
            work += 1
        stack = amap.alloc(f"stack{core}", 4096)
        spill = amap.alloc(f"spill{core}", 128 * 1024)
        traces.append(calibrate_mix(tb.build(), stack, 14, 13,
                                    random.Random(seed * 7 + core),
                                    cold_region=spill,
                                    cold_fraction=MASSTREE_COLD_FRACTION))
    return Workload("Masstree", traces, amap, work_items=work)
