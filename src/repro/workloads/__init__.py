"""Workload models: GAP, Tailbench, Cloudsuite, and the Figure 5
microbenchmark."""

from .base import AddressMap, Region, TraceBuilder, Workload
from .capture import (
    CapturedWorkload,
    TraceCache,
    capture_workload,
    replay_trace,
    workload_cache_key,
)
from .cloudsuite import (
    data_caching_workload,
    data_serving_workload,
    media_streaming_workload,
)
from .gap import BcKernel, BfsKernel, Graph, SsspKernel, gap_workload, generate_graph
from .microbench import (
    MicrobenchResult,
    build_store_loop,
    figure5_sweep,
    run_microbenchmark,
)
from .registry import (
    PAPER_TABLE3,
    PaperReference,
    build_workload,
    figure6_workload_names,
    table3_workload_names,
)
from .tailbench import masstree_workload, silo_workload

__all__ = [
    "AddressMap", "Region", "TraceBuilder", "Workload",
    "CapturedWorkload", "TraceCache", "capture_workload", "replay_trace",
    "workload_cache_key",
    "data_caching_workload", "data_serving_workload",
    "media_streaming_workload",
    "BcKernel", "BfsKernel", "Graph", "SsspKernel", "gap_workload",
    "generate_graph",
    "MicrobenchResult", "build_store_loop", "figure5_sweep",
    "run_microbenchmark",
    "PAPER_TABLE3", "PaperReference", "build_workload",
    "figure6_workload_names", "table3_workload_names",
    "masstree_workload", "silo_workload",
]
