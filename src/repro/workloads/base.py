"""Workload framework: address layout and trace emission.

A workload model runs a *real* algorithm (BFS over an actual graph,
transactions over an actual table) and records the memory accesses it
performs as a :class:`~repro.sim.trace.TraceOp` stream, padded with
ALU ops to match the workload's published instruction mix (Table 3).
The traces are organic — locality, sharing, and dependence come from
the algorithm, not from a synthetic distribution.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..sim.trace import ALU, LOAD, STORE, SYNC, TraceOp

#: Each simulated word is 8 bytes.
WORD = 8


@dataclass
class Region:
    """A named, contiguous memory region."""

    name: str
    base: int
    size: int

    def addr(self, index: int) -> int:
        offset = (index * WORD) % max(WORD, self.size)
        return self.base + offset

    def byte(self, offset: int) -> int:
        return self.base + (offset % max(1, self.size))

    @property
    def end(self) -> int:
        return self.base + self.size

    def pages(self) -> int:
        return (self.size + 4095) // 4096


class AddressMap:
    """Lays out regions; optionally inside an EInject window.

    ``einject_base`` marks where injectable memory starts: regions
    allocated with ``injectable=True`` land above it (the Fig 6
    methodology allocates the graph / request packets from the EInject
    region), others below.
    """

    PRIVATE_STRIDE = 1 << 28   # per-core private address spaces

    def __init__(self, einject_base: int = 1 << 32) -> None:
        self.einject_base = einject_base
        self._next_low = 1 << 20
        self._next_high = einject_base
        self.regions: Dict[str, Region] = {}

    def alloc(self, name: str, size: int, injectable: bool = False) -> Region:
        size = (size + 4095) & ~4095  # page-align
        if injectable:
            region = Region(name, self._next_high, size)
            self._next_high += size + 4096
        else:
            region = Region(name, self._next_low, size)
            self._next_low += size + 4096
        self.regions[name] = region
        return region

    def injectable_regions(self) -> List[Region]:
        return [r for r in self.regions.values()
                if r.base >= self.einject_base]

    def injectable_span(self) -> Tuple[int, int]:
        """(base, size) covering every injectable region."""
        regions = self.injectable_regions()
        if not regions:
            return (self.einject_base, 0)
        base = min(r.base for r in regions)
        end = max(r.end for r in regions)
        return base, end - base


def skewed_index(rng: random.Random, n: int, hot_frac: float = 0.05,
                 hot_prob: float = 0.85) -> int:
    """Zipf-like key popularity: most requests hit a small hot set."""
    hot = max(1, int(n * hot_frac))
    if rng.random() < hot_prob:
        return rng.randrange(hot)
    return rng.randrange(n)


class TraceBuilder:
    """Accumulates one core's trace with mix-padding support."""

    def __init__(self, rng: Optional[random.Random] = None) -> None:
        self.ops: List[TraceOp] = []
        self.rng = rng or random.Random(0)

    def load(self, addr: int, dep: bool = False) -> None:
        self.ops.append(TraceOp(LOAD, addr, dep))

    def store(self, addr: int) -> None:
        self.ops.append(TraceOp(STORE, addr))

    def alu(self, n: int = 1) -> None:
        for _ in range(n):
            self.ops.append(TraceOp(ALU))

    def sync(self) -> None:
        self.ops.append(TraceOp(SYNC))

    def build(self) -> List[TraceOp]:
        return self.ops


def calibrate_mix(ops: List[TraceOp], stack: Region,
                  store_pct: float, load_pct: float,
                  rng: Optional[random.Random] = None,
                  cold_region: Optional[Region] = None,
                  cold_fraction: float = 0.0) -> List[TraceOp]:
    """Pad an algorithmic trace to a published instruction mix.

    Real binaries carry memory traffic the algorithm's pseudo-code does
    not show — register spills/fills on the stack, temporaries, heap
    bookkeeping — plus address arithmetic and control instructions.
    This pass interleaves stack stores/loads and ALU ops so the final
    trace approaches the published ``store_pct`` / ``load_pct``
    (percent of all instructions) while preserving the algorithmic
    accesses and their order.

    ``cold_fraction`` of the padded accesses walk ``cold_region`` with
    a cache-block stride instead of hitting the hot stack.  This knob
    restores the store-*latency* profile of the compiled binaries (a
    share of their store traffic misses L1), which our scaled-down
    kernels cannot reproduce from footprint alone; each workload's
    value is calibrated against its published Table 3 WC speedup and
    recorded in EXPERIMENTS.md.
    """
    rng = rng or random.Random(0)
    algo_stores = sum(1 for op in ops if op.kind == STORE)
    algo_loads = sum(1 for op in ops if op.kind == LOAD)
    algo_syncs = sum(1 for op in ops if op.kind == SYNC)

    store_frac = store_pct / 100.0
    load_frac = load_pct / 100.0
    # Solve for the final length N such that the dominant deficit is
    # met by padding; then derive each pad count.
    n_for_stores = algo_stores / store_frac if store_frac else 0
    n_for_loads = algo_loads / load_frac if load_frac else 0
    total = int(max(n_for_stores, n_for_loads, len(ops)))
    pad_stores = max(0, round(total * store_frac) - algo_stores)
    pad_loads = max(0, round(total * load_frac) - algo_loads)
    pad_alus = max(0, total - len(ops) - pad_stores - pad_loads)

    pads: List[TraceOp] = (
        [TraceOp(STORE, 0)] * pad_stores
        + [TraceOp(LOAD, 0)] * pad_loads
        + [TraceOp(ALU)] * pad_alus
    )
    rng.shuffle(pads)

    out: List[TraceOp] = []
    stack_words = max(1, min(64, stack.size // WORD))
    cursor = 0
    cold_cursor = 0

    def place(pad: TraceOp) -> TraceOp:
        nonlocal cursor, cold_cursor
        if pad.kind == ALU:
            return pad
        if cold_region is not None and rng.random() < cold_fraction:
            cold_cursor += 64  # new cache block each time
            return TraceOp(pad.kind, cold_region.byte(cold_cursor))
        cursor += 1
        return TraceOp(pad.kind, stack.addr(cursor % stack_words))

    pad_idx = 0
    pad_per_op = len(pads) / max(1, len(ops))
    acc = 0.0
    for op in ops:
        out.append(op)
        acc += pad_per_op
        while acc >= 1.0 and pad_idx < len(pads):
            out.append(place(pads[pad_idx]))
            pad_idx += 1
            acc -= 1.0
    for pad in pads[pad_idx:]:
        out.append(place(pad))
    return out


@dataclass
class Workload:
    """A named workload: per-core traces + injectable memory span."""

    name: str
    traces: List[List[TraceOp]]
    address_map: AddressMap
    #: Requests completed (Tailbench) or kernel iterations (GAP), for
    #: throughput metrics.
    work_items: int = 0

    @property
    def cores(self) -> int:
        return len(self.traces)

    def total_ops(self) -> int:
        return sum(len(t) for t in self.traces)

    def injectable_pages(self) -> List[int]:
        """Page-aligned addresses of every injectable page — what the
        Fig 6 methodology marks faulting before the workload starts."""
        pages = []
        for region in self.address_map.injectable_regions():
            addr = region.base & ~4095
            while addr < region.end:
                pages.append(addr)
                addr += 4096
        return pages
