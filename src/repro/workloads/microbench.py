"""The Figure 5 microbenchmark (paper §6.4).

Multiple iterations of a loop applying stores to a large array; at the
start of each iteration a random subset of 4 KB pages is marked
faulting through the EInject interface.  The resulting imprecise store
exceptions are handled transparently (minimal or batching handler) and
the per-faulting-store overhead is decomposed into microarchitectural
(FSB drain + flush), OS-apply, and other-OS parts.

The paper uses 10 K stores per iteration over a 512 MB array; the
defaults scale that down proportionally (same fault-to-store ratio),
which preserves the breakdown shape.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional

from ..core.handler import BatchingHandler, MinimalHandler
from ..core.osconfig import OsConfig
from ..sim.config import ConsistencyModel, SystemConfig, table2_config
from ..sim.devices.einject import EInject, PAGE_SIZE
from ..sim.timing import TimingResult, run_trace
from ..sim.trace import TraceOp
from .base import WORD, AddressMap, TraceBuilder, Workload


@dataclass
class MicrobenchResult:
    """Per-faulting-store overhead breakdown (one Figure 5 bar)."""

    batching: bool
    faulting_stores: int
    imprecise_exceptions: int
    uarch_per_fault: float
    os_apply_per_fault: float
    os_other_per_fault: float
    total_cycles: float

    @property
    def total_per_fault(self) -> float:
        return (self.uarch_per_fault + self.os_apply_per_fault
                + self.os_other_per_fault)

    @property
    def stores_per_exception(self) -> float:
        if not self.imprecise_exceptions:
            return 0.0
        return self.faulting_stores / self.imprecise_exceptions


def build_store_loop(stores: int = 2_000, array_bytes: int = 1 << 22,
                     alu_per_store: int = 4, seed: int = 1,
                     cores: int = 1, stride: int = 256) -> Workload:
    """The store loop over an EInject-region array.

    The walk is strided (streaming stores, like the paper's array
    sweep): consecutive stores land on nearby blocks, so a faulting
    4 KB page is hit by a *run* of stores — the situation batching
    amortises.
    """
    amap = AddressMap()
    array_r = amap.alloc("array", array_bytes, injectable=True)
    traces = []
    for core in range(cores):
        tb = TraceBuilder(random.Random(seed * 71 + core))
        cursor = core * (array_bytes // max(1, cores))
        for _ in range(stores):
            tb.store(array_r.byte(cursor & ~7))
            cursor += stride
            tb.alu(alu_per_store)
        traces.append(tb.build())
    return Workload("mbench", traces, amap, work_items=stores * cores)


def run_microbenchmark(
    faulting_page_fraction: float = 0.05,
    batching: bool = False,
    stores: int = 2_000,
    array_bytes: int = 1 << 22,
    seed: int = 1,
    config: Optional[SystemConfig] = None,
    os_config: Optional[OsConfig] = None,
) -> MicrobenchResult:
    """One Figure 5 measurement.

    ``faulting_page_fraction`` controls the exception rate; high rates
    make multiple faulting stores coexist in the store buffer, which
    is what batching amortises.
    """
    workload = build_store_loop(stores, array_bytes, seed=seed)
    cfg = config or table2_config().with_consistency(ConsistencyModel.WC)
    cfg = cfg.with_consistency(ConsistencyModel.WC)
    cfg.cores = max(cfg.cores, 1)

    einject = EInject()
    rng = random.Random(seed + 7)
    # Sample faulting pages from the pages the walk actually touches,
    # like the benchmark's per-iteration random marking (§6.4).
    touched = sorted({op.addr & ~4095 for op in workload.traces[0]
                      if op.kind == "S"})
    faulting = rng.sample(touched, max(1, int(len(touched)
                                              * faulting_page_fraction)))
    for page in faulting:
        einject.mmio_set(page)

    os_cfg = os_config or OsConfig()
    handler = BatchingHandler(os_cfg) if batching else MinimalHandler(os_cfg)
    result = run_trace(cfg, workload.traces, einject=einject,
                       handler=handler)

    stats = result.core_stats[0]
    faults = max(1, stats.faulting_stores)
    return MicrobenchResult(
        batching=batching,
        faulting_stores=stats.faulting_stores,
        imprecise_exceptions=stats.imprecise_exceptions,
        uarch_per_fault=stats.uarch_cycles / faults,
        os_apply_per_fault=stats.os_apply_cycles / faults,
        os_other_per_fault=(stats.os_other_cycles
                            + stats.os_resolve_cycles) / faults,
        total_cycles=result.total_cycles,
    )


def figure5_sweep(fractions=(0.01, 0.05, 0.2),
                  seed: int = 1) -> List[Dict]:
    """Figure 5's with/without-batching comparison across exception
    rates; returns rows ready for the reporting layer."""
    rows = []
    for fraction in fractions:
        for batching in (False, True):
            res = run_microbenchmark(faulting_page_fraction=fraction,
                                     batching=batching, seed=seed)
            rows.append({
                "fault_fraction": fraction,
                "mode": "batching" if batching else "minimal",
                "uarch": res.uarch_per_fault,
                "os_apply": res.os_apply_per_fault,
                "os_other": res.os_other_per_fault,
                "total": res.total_per_fault,
                "stores_per_exception": res.stores_per_exception,
            })
    return rows
