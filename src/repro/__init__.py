"""repro — reproduction of "Imprecise Store Exceptions" (ISCA 2023).

Subpackages:

* :mod:`repro.core` — the paper's contribution: the Faulting Store
  Buffer (FSB), its controller (FSBC), the architectural interface,
  drain-stream policies, and the OS imprecise-exception handlers.
* :mod:`repro.memmodel` — axiomatic memory-consistency formalism
  (SC/PC/WC/RVWMO), execution enumeration, and executable proofs.
* :mod:`repro.sim` — the multicore substrate: OoO cores with store
  buffers, MESI directory caches, 2D-mesh NoC, memory, virtual
  memory, the EInject fault injector, and a minimal OS model.
* :mod:`repro.litmus` — litmus DSL, test library and generators, the
  operational runner and the conformance harness.
* :mod:`repro.workloads` — GAP-, Tailbench-flavoured workload models
  and the Figure 5 microbenchmark.
* :mod:`repro.analysis` — speculation-state accounting, overhead
  decomposition, and table/figure reporting.
"""

__version__ = "1.0.0"
