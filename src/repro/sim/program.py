"""Program containers for the functional engine."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from .isa import Instruction, Op


@dataclass
class ThreadProgram:
    """The instruction stream for one hardware thread."""

    core: int
    instructions: List[Instruction] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.instructions)

    def __iter__(self):
        return iter(self.instructions)

    @property
    def memory_addresses(self) -> List[int]:
        return sorted({
            i.addr for i in self.instructions
            if i.is_memory and i.addr is not None
        })

    @property
    def observation_labels(self) -> List[str]:
        return [i.label for i in self.instructions if i.label]


@dataclass
class Program:
    """A multi-threaded program plus initial memory values."""

    threads: List[ThreadProgram]
    initial_memory: Dict[int, int] = field(default_factory=dict)
    name: str = ""

    @property
    def cores(self) -> int:
        return len(self.threads)

    @property
    def shared_addresses(self) -> List[int]:
        addrs = set(self.initial_memory)
        for t in self.threads:
            addrs.update(t.memory_addresses)
        return sorted(addrs)

    def instruction_count(self) -> int:
        return sum(len(t) for t in self.threads)

    def validate(self) -> None:
        """Sanity checks before simulation."""
        for t in self.threads:
            for pc, instr in enumerate(t.instructions):
                if instr.is_branch:
                    target = pc + 1 + instr.imm
                    if not (0 <= target <= len(t.instructions)):
                        raise ValueError(
                            f"thread {t.core}: branch at {pc} skips out of "
                            f"range (target {target})")
                if instr.is_memory and instr.addr is None and instr.rs1 is None:
                    raise ValueError(
                        f"thread {t.core}: memory op at {pc} has no address")


def make_program(
    thread_instrs: Sequence[Sequence[Instruction]],
    initial_memory: Optional[Dict[int, int]] = None,
    name: str = "",
) -> Program:
    """Build and validate a :class:`Program` from raw streams."""
    threads = [
        ThreadProgram(core=i, instructions=list(instrs))
        for i, instrs in enumerate(thread_instrs)
    ]
    prog = Program(threads=threads,
                   initial_memory=dict(initial_memory or {}), name=name)
    prog.validate()
    return prog
