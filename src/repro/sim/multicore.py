"""Functional-operational multicore engine.

This engine plays the role of the paper's RISC-V FPGA prototype: it
*runs* programs against a shared memory with exact visibility
semantics and lets a seeded random scheduler explore interleavings.
The litmus harness (§6.3 methodology) runs each test many times here
and checks the observed outcomes against the axiomatic model.

Per-core machinery:

* an instruction *window* (in-order fetch, out-of-order execute under
  the gating rules of the configured consistency model, in-order
  retire);
* a *store buffer* — FIFO drain under PC, random-within-segment drain
  with same-address coalescing under WC, absent under SC;
* store→load forwarding from the buffer;
* the FSBC + FSB (:mod:`repro.core`) for imprecise store exceptions,
  with the configured drain-stream policy;
* precise exception handling for faulting loads/atomics, including
  the §5.3 rule that the store buffer is drained (possibly raising
  imprecise exceptions first) before any precise handler runs.

Visibility: memory is single-copy-atomic (see
:mod:`repro.sim.mem.memory`); a store becomes visible when it drains
from the store buffer (or when the OS applies it from the FSB).

The scheduler interleaves micro-actions — instruction executions,
buffer drains, and OS-handler steps — uniformly at random, so OS
activity races with other cores' accesses exactly as in Figure 2.
"""

from __future__ import annotations

import enum
import random
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, List, Optional, Sequence, Tuple

from ..core.contract import ContractChecker
from ..core.exceptions import ExceptionCode, is_recoverable
from ..core.interface import ArchitecturalInterface
from ..core.streams import DrainPolicy, DrainTarget, PendingStore, plan_drain
from ..memmodel.events import FenceKind
from .config import ConsistencyModel, SystemConfig, small_config
from .devices.einject import EInject
from .isa import Instruction, Op
from .mem.memory import FlatMemory
from .program import Program


class CoreStatus(enum.Enum):
    RUNNING = "running"
    SERVICING = "servicing"   # OS micro-ops pending (drain/handler)
    TERMINATED = "terminated"  # irrecoverable fault killed the app
    DONE = "done"


class SlotState(enum.Enum):
    WAITING = "waiting"
    DONE = "done"


@dataclass
class WindowSlot:
    instr: Instruction
    pc: int
    state: SlotState = SlotState.WAITING
    value: Optional[int] = None


@dataclass
class SbEntry:
    addr: int
    data: int
    seq: int


_BARRIER = "barrier"  # store-buffer barrier marker (store-store fences)


@dataclass
class RunStats:
    steps: int = 0
    instructions_retired: int = 0
    sb_drains: int = 0
    forwards: int = 0
    imprecise_exceptions: int = 0
    precise_exceptions: int = 0
    faulting_stores_handled: int = 0
    flushes: int = 0
    interrupts: int = 0
    interrupts_deferred: int = 0


class DeadlockError(RuntimeError):
    pass


class _Core:
    """Execution state for one hardware thread."""

    def __init__(self, system: "MulticoreSystem", core_id: int) -> None:
        self.system = system
        self.id = core_id
        cfg = system.config
        self.model = cfg.core.consistency
        self.window_capacity = max(2, cfg.core.width * 2)
        self.sb_capacity = cfg.core.store_buffer_entries
        self.regs: Dict[int, int] = {}
        self.pc = 0
        self.window: Deque[WindowSlot] = deque()
        self.sb: List = []  # SbEntry | _BARRIER
        self.status = CoreStatus.RUNNING
        self.pending_ops: Deque[Callable[[], None]] = deque()
        self.observations: Dict[str, int] = {}
        self.interface = ArchitecturalInterface(
            core_id, fsb_capacity=_fsb_capacity(cfg))
        self._sb_seq = 0
        self._program = system.program.threads[core_id].instructions

    # ------------------------------------------------------------------
    # Register helpers
    # ------------------------------------------------------------------
    def read_reg(self, reg: Optional[int]) -> int:
        if reg is None or reg == 0:
            return 0
        return self.regs.get(reg, 0)

    def write_reg(self, reg: Optional[int], value: int) -> None:
        if reg is not None and reg != 0:
            self.regs[reg] = value

    # ------------------------------------------------------------------
    # Fetch / retire
    # ------------------------------------------------------------------
    def fetch_fill(self) -> None:
        if self.status is not CoreStatus.RUNNING:
            return
        while (len(self.window) < self.window_capacity
               and self.pc < len(self._program)):
            if any(s.instr.is_branch and s.state is SlotState.WAITING
                   for s in self.window):
                return  # no speculation past unresolved branches
            self.window.append(WindowSlot(self._program[self.pc], self.pc))
            self.pc += 1

    def retire_ready(self) -> None:
        while self.window and self.window[0].state is SlotState.DONE:
            slot = self.window.popleft()
            if slot.instr.label and slot.instr.is_read:
                self.observations[slot.instr.label] = slot.value or 0
            self.system.stats.instructions_retired += 1

    @property
    def finished(self) -> bool:
        return (self.status in (CoreStatus.DONE, CoreStatus.TERMINATED)
                or (self.status is CoreStatus.RUNNING
                    and self.pc >= len(self._program)
                    and not self.window
                    and not self.sb_entries()))

    # ------------------------------------------------------------------
    # Gating rules
    # ------------------------------------------------------------------
    def sb_entries(self) -> List[SbEntry]:
        return [e for e in self.sb if e is not _BARRIER]

    def _older(self, slot: WindowSlot) -> List[WindowSlot]:
        out = []
        for s in self.window:
            if s is slot:
                break
            out.append(s)
        return out

    def _regs_ready(self, slot: WindowSlot) -> bool:
        needed = {r for r in (slot.instr.rs1, slot.instr.rs2)
                  if r not in (None, 0)}
        if not needed:
            return True
        for s in self._older(slot):
            rd = s.instr.rd
            if rd in needed and s.state is not SlotState.DONE:
                return False
        return True

    def _fence_blocks(self, slot: WindowSlot) -> bool:
        """Does an incomplete older fence order this access?"""
        for s in self._older(slot):
            if s.state is SlotState.DONE or not s.instr.is_fence:
                continue
            kind = s.instr.fence
            if kind is FenceKind.FULL:
                return True
            if slot.instr.is_read and kind in (FenceKind.LOAD_LOAD,
                                               FenceKind.STORE_LOAD):
                return True
            if slot.instr.is_write and kind in (FenceKind.STORE_STORE,
                                                FenceKind.LOAD_STORE):
                return True
        return False

    def can_execute(self, slot: WindowSlot) -> bool:
        if slot.state is not SlotState.WAITING:
            return False
        if not self._regs_ready(slot):
            return False
        instr = slot.instr
        older = self._older(slot)

        if instr.is_fence:
            return self._fence_ready(instr, older)

        if instr.is_atomic:
            return (all(s.state is SlotState.DONE for s in older)
                    and not self.sb_entries())

        if instr.op is Op.STORE:
            # In-order retirement into the store buffer.
            if any(s.state is not SlotState.DONE for s in older):
                return False
            if self.model != ConsistencyModel.SC and \
                    len(self.sb_entries()) >= self.sb_capacity:
                return False
            return True

        if instr.op is Op.LOAD:
            if self._fence_blocks(slot):
                return False
            for s in older:
                if s.state is SlotState.DONE or s.instr.is_fence:
                    continue  # incomplete fences already checked above
                if s.instr.is_write or s.instr.is_atomic:
                    return False  # loads wait for older stores to buffer
                if s.instr.is_read and self.model != ConsistencyModel.WC:
                    return False  # PC/SC: loads in order
                if s.instr.is_read and self._may_alias(s.instr, slot.instr):
                    return False  # WC coherence: same-location in order
            return True

        # ALU / branch / nop: regs-ready is enough.
        return True

    @staticmethod
    def _may_alias(a: Instruction, b: Instruction) -> bool:
        """Conservative same-address check before both are resolved."""
        if a.rs1 is not None or b.rs1 is not None:
            return True  # indexed address unknown at gating time
        return a.addr == b.addr

    def _fence_ready(self, instr: Instruction, older: List[WindowSlot]) -> bool:
        kind = instr.fence
        if kind is FenceKind.FULL:
            return (all(s.state is SlotState.DONE for s in older)
                    and not self.sb_entries())
        if kind in (FenceKind.STORE_STORE, FenceKind.LOAD_STORE):
            # Older stores must at least be buffered; barrier preserves
            # the visibility order inside the buffer.
            return all(
                s.state is SlotState.DONE for s in older
                if s.instr.is_write or s.instr.is_atomic)
        if kind is FenceKind.STORE_LOAD:
            return (all(s.state is SlotState.DONE for s in older
                        if s.instr.is_write or s.instr.is_atomic)
                    and not self.sb_entries())
        # LOAD_LOAD
        return all(s.state is SlotState.DONE for s in older
                   if s.instr.is_read)

    def executable_slots(self) -> List[WindowSlot]:
        return [s for s in self.window if self.can_execute(s)]

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def execute(self, slot: WindowSlot) -> None:
        instr = slot.instr
        if instr.op is Op.LI:
            self.write_reg(instr.rd, instr.imm)
        elif instr.op is Op.ADD:
            self.write_reg(instr.rd,
                           self.read_reg(instr.rs1) + self.read_reg(instr.rs2))
        elif instr.op is Op.ADDI:
            self.write_reg(instr.rd, self.read_reg(instr.rs1) + instr.imm)
        elif instr.op is Op.XOR:
            self.write_reg(instr.rd,
                           self.read_reg(instr.rs1) ^ self.read_reg(instr.rs2))
        elif instr.op is Op.NOP:
            pass
        elif instr.is_branch:
            self._execute_branch(slot)
        elif instr.is_fence:
            if instr.fence in (FenceKind.STORE_STORE, FenceKind.LOAD_STORE):
                if self.sb_entries():
                    self.sb.append(_BARRIER)
        elif instr.op is Op.LOAD:
            self._execute_load(slot)
            return  # _execute_load sets state itself
        elif instr.op is Op.STORE:
            self._execute_store(slot)
            return  # _execute_store sets state itself (fault path)
        elif instr.is_atomic:
            self._execute_atomic(slot)
            return
        slot.state = SlotState.DONE

    def _execute_branch(self, slot: WindowSlot) -> None:
        instr = slot.instr
        a, b = self.read_reg(instr.rs1), self.read_reg(instr.rs2)
        taken = (a == b) if instr.op is Op.BEQ else (a != b)
        if taken:
            self.pc = min(len(self._program), self.pc + instr.imm)

    def _effective_addr(self, instr: Instruction) -> int:
        base = instr.addr or 0
        if instr.rs1 is not None:
            base += self.read_reg(instr.rs1)
        return base

    def _execute_load(self, slot: WindowSlot) -> None:
        addr = self._effective_addr(slot.instr)
        forwarded = self._forward(addr)
        if forwarded is not None:
            slot.value = forwarded
            self.write_reg(slot.instr.rd, forwarded)
            slot.state = SlotState.DONE
            self.system.stats.forwards += 1
            return
        if self.system.einject.is_faulting(addr):
            self.system.begin_precise_fault(self, slot, addr, is_write=False)
            return
        value = self.system.memory.read(addr)
        slot.value = value
        self.write_reg(slot.instr.rd, value)
        slot.state = SlotState.DONE

    def _forward(self, addr: int) -> Optional[int]:
        for entry in reversed(self.sb_entries()):
            if entry.addr == addr:
                return entry.data
        return None

    def _execute_store(self, slot: WindowSlot) -> None:
        instr = slot.instr
        addr = self._effective_addr(instr)
        data = (self.read_reg(instr.rs2) if instr.rs2 is not None
                else instr.imm)
        if self.model == ConsistencyModel.SC:
            if self.system.einject.is_faulting(addr):
                # Precise store fault: slot stays WAITING, re-executes
                # after the handler resolves the page.
                self.system.begin_precise_fault(self, slot, addr,
                                                is_write=True)
                return
            self.system.memory.write(addr, data)
            slot.state = SlotState.DONE
            return
        self._sb_insert(addr, data)
        slot.state = SlotState.DONE

    def _sb_insert(self, addr: int, data: int) -> None:
        seq = self._sb_seq
        self._sb_seq += 1
        if self.model == ConsistencyModel.WC:
            # Coalesce into the open (post-barrier) segment.
            open_segment_start = 0
            for i in range(len(self.sb) - 1, -1, -1):
                if self.sb[i] is _BARRIER:
                    open_segment_start = i + 1
                    break
            for i in range(open_segment_start, len(self.sb)):
                entry = self.sb[i]
                if entry is not _BARRIER and entry.addr == addr:
                    self.sb[i] = SbEntry(addr, data, entry.seq)
                    return
        self.sb.append(SbEntry(addr, data, seq))

    def _execute_atomic(self, slot: WindowSlot) -> None:
        instr = slot.instr
        addr = self._effective_addr(instr)
        if self.system.einject.is_faulting(addr):
            self.system.begin_precise_fault(self, slot, addr, is_write=True)
            return
        old = self.system.memory.read(addr)
        operand = (self.read_reg(instr.rs2) if instr.rs2 is not None
                   else instr.imm)
        new = (old + operand) if instr.op is Op.AMOADD else operand
        self.system.memory.write(addr, new)
        slot.value = old
        self.write_reg(instr.rd, old)
        slot.state = SlotState.DONE

    # ------------------------------------------------------------------
    # Store-buffer drain
    # ------------------------------------------------------------------
    def drainable_indices(self) -> List[int]:
        """Indices eligible to drain: the whole first segment (WC) or
        just the head (PC)."""
        if not self.sb:
            return []
        if self.sb[0] is _BARRIER:
            self.sb.pop(0)
            return self.drainable_indices()
        if self.model == ConsistencyModel.PC:
            return [0]
        end = len(self.sb)
        for i, e in enumerate(self.sb):
            if e is _BARRIER:
                end = i
                break
        return list(range(end))

    def drain_one(self, index: int) -> None:
        entry = self.sb.pop(index)
        assert entry is not _BARRIER
        self.system.stats.sb_drains += 1
        if self.system.einject.is_faulting(entry.addr):
            self.sb.insert(index, entry)  # stays buffered; goes to FSB
            self.system.begin_imprecise_exception(self)
            return
        self.system.memory.write(entry.addr, entry.data)
        self._drop_leading_barriers()

    def _drop_leading_barriers(self) -> None:
        while self.sb and self.sb[0] is _BARRIER:
            self.sb.pop(0)

    # ------------------------------------------------------------------
    # Flush (imprecise exception pinned at oldest uncommitted instr)
    # ------------------------------------------------------------------
    def flush(self) -> None:
        if self.window:
            self.pc = self.window[0].pc
        self.window.clear()
        self.system.stats.flushes += 1


def _fsb_capacity(cfg: SystemConfig) -> int:
    size = cfg.fsb_entries
    # round up to a power of two (ring-with-mask requirement)
    cap = 1
    while cap < size:
        cap *= 2
    return cap


class MulticoreSystem:
    """The full functional system: cores + memory + EInject + OS."""

    def __init__(
        self,
        program: Program,
        config: Optional[SystemConfig] = None,
        seed: int = 0,
        drain_policy: DrainPolicy = DrainPolicy.SAME_STREAM,
        fault_source=None,
        interrupt_rate: float = 0.0,
    ) -> None:
        """``fault_source`` is any EInject-compatible object
        (``check``/``is_faulting``/``mmio_clr``) — e.g. the täkō or
        Midgard models in :mod:`repro.sim.devices.faultsource`.

        ``interrupt_rate`` injects asynchronous interrupts: at each
        scheduler step, with this probability, a random core takes an
        interrupt.  Delivery respects the IE bit (§5.3): a core whose
        handler is running has the bit set, so the interrupt is
        deferred; imprecise store exceptions detected meanwhile queue
        behind it.
        """
        self.program = program
        self.config = config or small_config(cores=program.cores)
        if self.config.cores < program.cores:
            raise ValueError(
                f"program has {program.cores} threads but the system only "
                f"{self.config.cores} cores")
        self.rng = random.Random(seed)
        self.drain_policy = drain_policy
        self.interrupt_rate = interrupt_rate
        self.memory = FlatMemory(dict(program.initial_memory))
        self.einject = fault_source if fault_source is not None else EInject()
        self.contract = ContractChecker(
            ordered=self.config.core.consistency == ConsistencyModel.PC)
        self.stats = RunStats()
        self.cores = [_Core(self, i) for i in range(program.cores)]
        self.terminated = False

    # ------------------------------------------------------------------
    # Fault injection front-end (the litmus harness poisons test memory)
    # ------------------------------------------------------------------
    def inject_faults(self, addrs: Sequence[int]) -> None:
        for addr in addrs:
            self.einject.mmio_set(addr)

    # ------------------------------------------------------------------
    # Exception flows
    # ------------------------------------------------------------------
    def begin_imprecise_exception(self, core: _Core) -> None:
        """A store drain was denied: route the buffer through the FSB
        per the drain policy, flush, and queue the OS handler."""
        if core.status is CoreStatus.SERVICING:
            return
        core.status = CoreStatus.SERVICING
        self.stats.imprecise_exceptions += 1

        pending = []
        for e in core.sb_entries():
            if self.einject.is_faulting(e.addr):
                verdict = self.einject.check(e.addr)
                code = ExceptionCode(verdict.error_code)
            else:
                code = ExceptionCode.NONE
            pending.append(PendingStore(addr=e.addr, data=e.data,
                                        error_code=code))
        core.sb.clear()
        plan = plan_drain(pending, self.drain_policy)

        seq_base = core.interface.fsb.tail
        seq = [seq_base]

        def make_drain_op(action):
            def op() -> None:
                if action.target is DrainTarget.INTERFACE:
                    self.contract.sb_send(core.id, seq[0])
                    core.interface.put(action.store.addr, action.store.data,
                                       action.store.byte_mask,
                                       action.store.error_code)
                    self.contract.put(core.id, seq[0])
                    seq[0] += 1
                else:
                    self.memory.write(action.store.addr, action.store.data)
            return op

        for action in plan:
            core.pending_ops.append(make_drain_op(action))

        def flush_and_handle() -> None:
            core.flush()
            self._queue_handler_ops(core)
        core.pending_ops.append(flush_and_handle)

    def _queue_handler_ops(self, core: _Core) -> None:
        """Minimal-handler micro-steps: GET → resolve → apply, repeated
        until head == tail, then RESUME (§6.2).

        Irrecoverable faults (§4.1) terminate the application instead:
        the faulting stores are discarded.
        """
        entries = core.interface.peek_all()
        if any(e.is_faulting and not is_recoverable(e.error_code)
               for e in entries):
            def terminate() -> None:
                core.interface.get_all()     # discard
                core.status = CoreStatus.TERMINATED
                self.terminated = True
            core.pending_ops.append(terminate)
            return
        self.stats.faulting_stores_handled += sum(
            1 for e in entries if e.is_faulting)

        def make_get_resolve_apply(expect_seq):
            def op() -> None:
                entry = core.interface.get()
                assert entry is not None and entry.seq == expect_seq
                self.contract.get(core.id, entry.seq)
                if entry.is_faulting:
                    self.einject.mmio_clr(entry.addr)
                core.pending_ops.appendleft(_apply(entry))
            def _apply(entry):
                def apply_op() -> None:
                    self.memory.write(entry.addr, entry.data)
                    self.contract.apply(core.id, entry.seq)
                return apply_op
            return op

        for entry in entries:
            core.pending_ops.append(make_get_resolve_apply(entry.seq))

        def resume() -> None:
            self.contract.resume(core.id)
            core.status = CoreStatus.RUNNING
        core.pending_ops.append(resume)

    def begin_precise_fault(self, core: _Core, slot: WindowSlot,
                            addr: int, is_write: bool) -> None:
        """A load/atomic (or SC store) faulted precisely.  Per §5.3 the
        store buffer is drained first; a faulting store there flips the
        flow to the imprecise path, after which the instruction
        re-executes and may fault precisely again."""
        if core.status is CoreStatus.SERVICING:
            return
        faulting_in_sb = any(
            self.einject.is_faulting(e.addr) for e in core.sb_entries())
        if faulting_in_sb:
            # Imprecise exceptions win; this instruction re-executes
            # after RESOLVE (its slot stays WAITING through the flush).
            self.begin_imprecise_exception(core)
            return

        core.status = CoreStatus.SERVICING
        self.stats.precise_exceptions += 1

        verdict = self.einject.check(addr)
        if verdict.denied and not is_recoverable(
                ExceptionCode(verdict.error_code)):
            def terminate() -> None:
                core.status = CoreStatus.TERMINATED
                self.terminated = True
            core.pending_ops.append(terminate)
            return

        def drain_all() -> None:
            # Non-faulting residue drains normally before the handler.
            for entry in core.sb_entries():
                self.memory.write(entry.addr, entry.data)
            core.sb.clear()

        def resolve() -> None:
            self.einject.mmio_clr(addr)

        def resume() -> None:
            core.status = CoreStatus.RUNNING  # slot re-executes later
        core.pending_ops.extend([drain_all, resolve, resume])

    # ------------------------------------------------------------------
    # Scheduler
    # ------------------------------------------------------------------
    def _actions(self) -> List[Callable[[], None]]:
        actions: List[Callable[[], None]] = []
        for core in self.cores:
            if core.status is CoreStatus.SERVICING:
                if core.pending_ops:
                    actions.append(lambda c=core: c.pending_ops.popleft()())
                continue
            if core.status is not CoreStatus.RUNNING:
                continue
            if (not core.window and not core.sb
                    and core.pc >= len(core._program)):
                # Quiescent: program exhausted, nothing in flight.  It
                # can contribute no actions, so skip the slot/drain
                # scans — the action list (and hence the RNG stream)
                # is unchanged.
                continue
            core.fetch_fill()
            for slot in core.executable_slots():
                actions.append(lambda c=core, s=slot: c.execute(s))
            for index in core.drainable_indices():
                actions.append(lambda c=core, i=index: c.drain_one(i))
        return actions

    # ------------------------------------------------------------------
    # Interrupts (§5.3: concurrent with imprecise store exceptions)
    # ------------------------------------------------------------------
    def _maybe_deliver_interrupt(self) -> None:
        if self.interrupt_rate <= 0.0:
            return
        if self.rng.random() >= self.interrupt_rate:
            return
        candidates = [c for c in self.cores
                      if c.status is CoreStatus.RUNNING
                      and not c.finished]
        masked = [c for c in self.cores
                  if c.status is CoreStatus.SERVICING]
        if not candidates:
            if masked:
                # IE bit set: the interrupt is deferred, not lost to
                # the running handler (§5.3's serialisation).
                self.stats.interrupts_deferred += 1
            return
        core = self.rng.choice(candidates)
        self.stats.interrupts += 1
        core.status = CoreStatus.SERVICING

        def handler_body() -> None:
            pass  # device acknowledgement / bottom-half work

        def resume() -> None:
            core.status = CoreStatus.RUNNING
        core.pending_ops.extend([handler_body, handler_body, resume])

    def step(self) -> bool:
        for core in self.cores:
            core.retire_ready()
        self._maybe_deliver_interrupt()
        actions = self._actions()
        if not actions:
            return False
        self.rng.choice(actions)()
        self.stats.steps += 1
        return True

    def run(self, max_steps: int = 200_000) -> "RunResult":
        steps = 0
        while True:
            for core in self.cores:
                core.retire_ready()
            if all(core.finished for core in self.cores):
                break
            progressed = self.step()
            if not progressed:
                if all(core.finished for core in self.cores):
                    break
                raise DeadlockError(
                    f"no runnable actions; statuses="
                    f"{[c.status for c in self.cores]}, "
                    f"sb={[len(c.sb) for c in self.cores]}")
            steps += 1
            if steps > max_steps:
                raise DeadlockError(f"exceeded {max_steps} steps")
        return RunResult(self)


@dataclass
class RunResult:
    """Final architectural state of one run."""

    system: MulticoreSystem

    @property
    def observations(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for core in self.system.cores:
            out.update(core.observations)
        return out

    def memory_value(self, addr: int) -> int:
        return self.system.memory.peek(addr)

    @property
    def outcome(self) -> Tuple[Tuple[str, int], ...]:
        return tuple(sorted(self.observations.items()))

    @property
    def contract_report(self):
        return self.system.contract.check()

    @property
    def stats(self) -> RunStats:
        return self.system.stats
