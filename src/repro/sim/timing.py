"""Trace-driven timing engine (the QFlex-analogue, paper §3.3 & §6).

Replays per-core :class:`~repro.sim.trace.TraceOp` streams against the
coherent hierarchy under SC, PC, or WC store-buffer semantics, with
EInject fault injection and the full imprecise-exception cost path
(FSBC drain → flush → OS handler).  Cores are interleaved in time
order so coherence traffic (invalidations, forwards) is shared.

The model is interval-style rather than cycle-by-cycle:

* the frontend dispatches ``width`` instructions per cycle;
* a full ROB stalls dispatch until its head retires;
* loads complete after their hierarchy latency, serialised when
  ``dep`` marks pointer chasing;
* stores complete immediately into the store buffer (PC/WC) or after
  the full write latency (SC);
* the store buffer drains FIFO-serially under PC, and with up to
  ``WC_DRAIN_OVERLAP`` overlapping non-blocking drains under WC;
  a full buffer stalls store dispatch;
* syncs (fences/atomics) wait for the buffer to drain and for all
  earlier loads.

This is what makes the SC↔WC gap — and therefore Table 3's speedups —
emerge from store fraction and latency structure rather than from
hard-coded numbers.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..core.exceptions import ExceptionCode
from ..core.fsb import FsbEntry
from ..core.handler import BatchingHandler, HandlerCosts, MinimalHandler
from ..core.interface import ArchitecturalInterface
from ..obs.telemetry import SIM, current as _telemetry
from .cache.coherence import CoherentHierarchy
from .config import ConsistencyModel, SystemConfig
from .cpu.speculation import SpeculationReport, SpeculationTracker
from .devices.einject import EInject
from .mem.memory import MemoryController
from .trace import ALU, LOAD, STORE, SYNC, TraceOp

#: Maximum overlapping store drains under WC (non-FIFO buffer).
WC_DRAIN_OVERLAP = 8

#: Cycles to flush and refill the pipeline on an imprecise exception.
FLUSH_REFILL_CYCLES = 40


@dataclass
class CoreTimingStats:
    instructions: int = 0
    loads: int = 0
    stores: int = 0
    syncs: int = 0
    cycles: float = 0.0
    sb_full_stall_cycles: float = 0.0
    imprecise_exceptions: int = 0
    precise_exceptions: int = 0
    faulting_stores: int = 0
    uarch_cycles: float = 0.0       # FSB drain + flush/refill
    os_apply_cycles: float = 0.0
    os_resolve_cycles: float = 0.0
    os_other_cycles: float = 0.0

    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles if self.cycles else 0.0

    @property
    def exception_cycles(self) -> float:
        return (self.uarch_cycles + self.os_apply_cycles
                + self.os_resolve_cycles + self.os_other_cycles)


@dataclass
class TimingResult:
    """Outcome of one timing run."""

    config: SystemConfig
    core_stats: List[CoreTimingStats]
    speculation: Optional[List[SpeculationReport]] = None

    @property
    def total_cycles(self) -> float:
        return max((s.cycles for s in self.core_stats), default=0.0)

    @property
    def total_instructions(self) -> int:
        return sum(s.instructions for s in self.core_stats)

    @property
    def ipc(self) -> float:
        cycles = self.total_cycles
        return self.total_instructions / cycles if cycles else 0.0

    @property
    def total_imprecise_exceptions(self) -> int:
        return sum(s.imprecise_exceptions for s in self.core_stats)

    @property
    def total_faulting_stores(self) -> int:
        return sum(s.faulting_stores for s in self.core_stats)

    def overhead_breakdown_per_fault(self) -> Dict[str, float]:
        """Average per-faulting-store cycle breakdown (Figure 5)."""
        faults = max(1, self.total_faulting_stores)
        return {
            "uarch": sum(s.uarch_cycles for s in self.core_stats) / faults,
            "os_apply": sum(s.os_apply_cycles for s in self.core_stats) / faults,
            "os_other": (sum(s.os_other_cycles for s in self.core_stats)
                         + sum(s.os_resolve_cycles for s in self.core_stats)) / faults,
        }

    def speculation_peak_kb(self) -> float:
        if not self.speculation:
            return 0.0
        return max(r.peak_kb for r in self.speculation)

    def to_dict(self) -> Dict:
        """JSON-serialisable summary, for archiving runs
        (:mod:`repro.analysis.postprocess`)."""
        return {
            "consistency": self.config.core.consistency,
            "cores": len(self.core_stats),
            "total_cycles": self.total_cycles,
            "total_instructions": self.total_instructions,
            "ipc": self.ipc,
            "imprecise_exceptions": self.total_imprecise_exceptions,
            "faulting_stores": self.total_faulting_stores,
            "precise_exceptions": sum(s.precise_exceptions
                                      for s in self.core_stats),
            "speculation_peak_kb": self.speculation_peak_kb(),
            "per_core": [
                {
                    "instructions": s.instructions,
                    "cycles": s.cycles,
                    "ipc": s.ipc,
                    "sb_full_stall_cycles": s.sb_full_stall_cycles,
                    "exception_cycles": s.exception_cycles,
                }
                for s in self.core_stats
            ],
        }


@dataclass
class _SbSlot:
    addr: int
    drain_end: float
    missed: bool
    #: Denied by EInject; ``drain_end`` is then the *detection* time —
    #: when the error response reaches the store buffer (§5.1).
    faulted: bool = False


class _TimingCore:
    """Timing state for one core's trace replay."""

    def __init__(self, system: "TimingSystem", core_id: int,
                 trace: Sequence[TraceOp]) -> None:
        self.system = system
        self.id = core_id
        self.trace = trace
        self.pos = 0
        cfg = system.config
        self.model = cfg.core.consistency
        self.width = cfg.core.width
        self.rob_capacity = cfg.core.rob_entries
        self.sb_capacity = cfg.core.store_buffer_entries
        self.checkpoint_cap = system.checkpoint_cap
        self._early_detect_acc = 0.0
        #: Clock at which the oldest live checkpoint was taken
        #: (aso_precise rollback accounting).
        self._oldest_checkpoint_start: float = 0.0
        self.clock = 0.0
        self.rob: List[float] = []      # completion times, in order
        self.sb: List[_SbSlot] = []
        self.last_drain_end = 0.0
        self.last_load_complete = 0.0
        self.stats = CoreTimingStats()
        self.tel = system.telemetry
        self.interface = ArchitecturalInterface(core_id)
        self.tracker: Optional[SpeculationTracker] = (
            SpeculationTracker() if system.track_speculation else None)

    # ------------------------------------------------------------------
    @property
    def done(self) -> bool:
        return self.pos >= len(self.trace)

    def _retire_for_dispatch(self) -> None:
        """Make room in the ROB; a stalled head pushes the clock."""
        if len(self.rob) >= self.rob_capacity:
            head = self.rob.pop(0)
            if head > self.clock:
                self.clock = head

    def _sb_occupancy(self) -> int:
        # Faulted entries never complete on their own; they stay until
        # the exception flow drains them to the FSB.
        self.sb = [s for s in self.sb
                   if s.faulted or s.drain_end > self.clock]
        return len(self.sb)

    def _check_detection(self) -> None:
        """Fire the imprecise exception once the earliest denial's
        error response has arrived (deferred detection — this is what
        lets several faulting stores batch into one exception)."""
        faulted = [s for s in self.sb if s.faulted]
        if faulted and min(s.drain_end for s in faulted) <= self.clock:
            self._imprecise_exception()

    def _wait_for_checkpoint(self) -> None:
        """ASO-with-k-checkpoints mode: a store may only retire
        speculatively when a checkpoint is free, i.e. fewer than
        ``checkpoint_cap`` store misses are outstanding — otherwise the
        core stalls like the SC baseline (§3.2: the checkpoint count
        reflects the number of outstanding store misses)."""
        while True:
            live = [s.drain_end for s in self.sb
                    if s.missed and s.drain_end > self.clock]
            if len(live) < self.checkpoint_cap:
                return
            earliest = min(live)
            self.stats.sb_full_stall_cycles += max(
                0.0, earliest - self.clock)
            self.clock = max(self.clock, earliest)

    def _sb_wait_for_slot(self) -> None:
        while self._sb_occupancy() >= self.sb_capacity:
            if any(s.faulted for s in self.sb):
                self._imprecise_exception()
                continue
            earliest = min(s.drain_end for s in self.sb)
            stall = earliest - self.clock
            self.stats.sb_full_stall_cycles += max(0.0, stall)
            self.clock = max(self.clock, earliest)

    # ------------------------------------------------------------------
    def step(self) -> None:
        """Replay one trace op, advancing the core clock."""
        op = self.trace[self.pos]
        self.pos += 1
        self.stats.instructions += 1
        self.clock += 1.0 / self.width
        self._retire_for_dispatch()

        if op.kind == ALU:
            self.rob.append(self.clock + 1)
        elif op.kind == LOAD:
            self._do_load(op)
        elif op.kind == STORE:
            self._do_store(op)
        else:  # SYNC
            self._do_sync()
        self._check_detection()
        self.stats.cycles = max(self.stats.cycles, self.clock)

    # ------------------------------------------------------------------
    def _do_load(self, op: TraceOp) -> None:
        self.stats.loads += 1
        issue = self.clock
        if op.dep:
            issue = max(issue, self.last_load_complete)
        result = self.system.hierarchy.access(self.id, op.addr, False)
        if result.denied:
            self._precise_fault(op.addr)
            result = self.system.hierarchy.access(self.id, op.addr, False)
            issue = max(issue, self.clock)
        complete = issue + result.latency
        self.last_load_complete = complete
        self.rob.append(complete)
        if self.tracker is not None:
            self.tracker.on_load(int(issue), op.addr)

    def _do_store(self, op: TraceOp) -> None:
        self.stats.stores += 1
        if self.model == ConsistencyModel.SC:
            # No store buffer: the write is irrevocable, so it cannot
            # begin until the store is non-speculative at the ROB head,
            # and the store cannot retire until the write completes —
            # stores serialise their full latency on the retire path.
            result = self.system.hierarchy.access(self.id, op.addr, True)
            if result.denied:
                self._precise_fault(op.addr)
                result = self.system.hierarchy.access(self.id, op.addr, True)
            complete = max(self.clock, self.last_drain_end) + result.latency
            self.last_drain_end = complete
            self.rob.append(complete)
            return

        self._sb_wait_for_slot()

        # WC coalescing: a pending drain to the same block absorbs the
        # store (ASO likewise coalesces into the open checkpoint).
        if self.model == ConsistencyModel.WC:
            block = op.addr >> 6
            for slot in self.sb:
                if slot.addr >> 6 == block:
                    self.rob.append(self.clock + 1)
                    return

        if self.checkpoint_cap is not None:
            self._wait_for_checkpoint()
        self.rob.append(self.clock + 1)   # retires into the buffer

        result = self.system.hierarchy.access(self.id, op.addr, True)
        if result.denied:
            if self.system.aso_precise:
                self._aso_rollback(op.addr)
                return
            fraction = self.system.early_detection_fraction
            if fraction > 0.0:
                # Qiu & Dubois-style early detection: a prefetch
                # discovered the fault before retirement, so it is
                # still precise (deterministic thinning).
                self._early_detect_acc += fraction
                if self._early_detect_acc >= 1.0:
                    self._early_detect_acc -= 1.0
                    self._precise_fault(op.addr)
                    result = self.system.hierarchy.access(
                        self.id, op.addr, True)
                    if not result.denied:
                        self.rob.append(self.clock + 1)
                        self.sb.append(_SbSlot(
                            op.addr, self.clock + result.latency,
                            missed=result.hit_level != "L1"))
                        return
            # The denial is detected when the error response arrives,
            # a full round trip later; until then the entry occupies
            # the buffer and further stores keep retiring (§5.1).
            self.sb.append(_SbSlot(op.addr, self.clock + result.latency,
                                   missed=True, faulted=True))
            return

        overlap = sorted(s.drain_end for s in self.sb)
        if len(overlap) >= WC_DRAIN_OVERLAP:
            drain_start = max(self.clock, overlap[-WC_DRAIN_OVERLAP])
        else:
            drain_start = self.clock
        drain_end = drain_start + result.latency
        if self.model == ConsistencyModel.PC:
            # Write-permission acquisitions overlap, but the buffer
            # commits values to memory strictly in order (TSO).
            drain_end = max(drain_end, self.last_drain_end + 1)
        self.last_drain_end = drain_end
        if not any(s.missed and s.drain_end > self.clock
                   for s in self.sb):
            self._oldest_checkpoint_start = self.clock
        # Any store that is not an L1 write hit would stall an SC core
        # at retirement — the ASO checkpoint condition.
        missed = result.hit_level != "L1"
        self.sb.append(_SbSlot(op.addr, drain_end, missed))
        if self.tracker is not None:
            self.tracker.on_store_retire(int(self.clock), int(drain_end),
                                         missed, op.addr)

    def _do_sync(self) -> None:
        self.stats.syncs += 1
        if any(s.faulted for s in self.sb):
            # The fence blocks on the buffer; draining it surfaces the
            # pending imprecise exceptions first (§5.4).
            self._imprecise_exception()
        drain = max((s.drain_end for s in self.sb), default=0.0)
        self.clock = max(self.clock, drain, self.last_load_complete) + 1
        self.sb.clear()
        self.rob.append(self.clock)

    def finalize(self) -> None:
        """End of trace: surface any still-undetected denials."""
        faulted = [s for s in self.sb if s.faulted]
        if faulted:
            self.clock = max(self.clock,
                             max(s.drain_end for s in faulted))
            self._imprecise_exception()
            self.stats.cycles = max(self.stats.cycles, self.clock)

    # ------------------------------------------------------------------
    # Exceptions
    # ------------------------------------------------------------------
    def _imprecise_exception(self) -> None:
        """Detection completed: FSB drain + flush + OS handler.

        Every unfinished store in the buffer (same-stream) drains to
        the FSB; all accumulated faulted entries are handled in one
        invocation — the batching effect of §5.3.
        """
        self.stats.imprecise_exceptions += 1
        cfg = self.system.config
        detect_clock = self.clock

        entries = list(self.sb)
        self.sb.clear()
        drain_cycles = 0
        for slot in entries:
            code = (ExceptionCode.EINJECT_BUS_ERROR
                    if self.system.einject.is_faulting(slot.addr)
                    else ExceptionCode.NONE)
            drain_cycles += self.interface.put(slot.addr, 0,
                                               error_code=code)
        uarch = drain_cycles + FLUSH_REFILL_CYCLES
        self.stats.uarch_cycles += uarch
        self.clock += uarch
        self.rob.clear()

        faults_before = sum(1 for e in self.interface.peek_all()
                            if e.is_faulting)
        self.stats.faulting_stores += faults_before

        def resolve(entry: FsbEntry) -> int:
            self.system.einject.mmio_clr(entry.addr)
            return cfg.os.resolve_fault_cycles

        def apply(entry: FsbEntry) -> None:
            self.system.hierarchy.access(self.id, entry.addr, True)

        invocation = self.system.handler.handle(self.interface, resolve,
                                                apply)
        costs = invocation.costs
        self.stats.os_apply_cycles += costs.os_apply
        self.stats.os_resolve_cycles += costs.os_resolve
        self.stats.os_other_cycles += costs.os_other
        self.clock += costs.total
        self.last_drain_end = self.clock

        tel = self.tel
        if tel.enabled:
            # The per-fault phase spans Figure 5 is recomputed from:
            # detect→drain→flush on the uarch side, then the handler's
            # dispatch/resolve/apply, laid end-to-end in cycle time.
            core = self.id
            t = detect_clock
            tel.record_span("fault.drain", t, t + drain_cycles,
                            track=SIM, lane=core,
                            attrs={"phase": "uarch",
                                   "faults": faults_before,
                                   "stores": len(entries)})
            t += drain_cycles
            tel.record_span("fault.flush", t, t + FLUSH_REFILL_CYCLES,
                            track=SIM, lane=core,
                            attrs={"phase": "uarch"})
            t += FLUSH_REFILL_CYCLES
            tel.record_span("fault.os_dispatch", t, t + costs.os_other,
                            track=SIM, lane=core,
                            attrs={"phase": "os_other"})
            t += costs.os_other
            tel.record_span("fault.os_resolve", t, t + costs.os_resolve,
                            track=SIM, lane=core,
                            attrs={"phase": "os_resolve",
                                   "resolved": invocation.faults_resolved})
            t += costs.os_resolve
            tel.record_span("fault.os_apply", t, t + costs.os_apply,
                            track=SIM, lane=core,
                            attrs={"phase": "os_apply",
                                   "stores": invocation.stores_handled})
            tel.sample("fsb.occupancy", len(entries),
                       ts=detect_clock + drain_cycles, track=SIM,
                       lane=core)
            tel.sample("fsb.occupancy", self.interface.pending,
                       ts=self.clock, track=SIM, lane=core)
            tel.counter("timing.imprecise_exceptions").inc()
            tel.counter("timing.faulting_stores").inc(faults_before)
            tel.histogram("fault.batch_stores").observe(len(entries))
            tel.histogram("fault.batch_faults").observe(faults_before)

    def _aso_rollback(self, addr: int) -> None:
        """ASO precise-exception path (§3.2): squash back to the
        checkpoint before the faulting store, pay the re-execution of
        everything speculated since, then take a normal precise trap
        and retry the store non-speculatively."""
        self.stats.precise_exceptions += 1
        cfg = self.system.config
        # Work speculated since the oldest live checkpoint is redone.
        live_starts = [s.drain_end for s in self.sb if s.missed]
        rollback_start = self.clock
        rollback = max(0.0, self.clock - self._oldest_checkpoint_start)
        self.stats.uarch_cycles += rollback + FLUSH_REFILL_CYCLES
        self.clock += rollback + FLUSH_REFILL_CYCLES
        self.sb.clear()
        self.rob.clear()
        self.system.einject.mmio_clr(addr)
        cost = (cfg.os.trap_entry_cycles + cfg.os.dispatch_cycles
                + cfg.os.resolve_fault_cycles
                + cfg.os.context_switch_cycles)
        self.stats.os_other_cycles += cost
        self.clock += cost
        tel = self.tel
        if tel.enabled:
            tel.record_span("fault.rollback", rollback_start,
                            rollback_start + rollback
                            + FLUSH_REFILL_CYCLES,
                            track=SIM, lane=self.id,
                            attrs={"phase": "uarch"})
            tel.record_span("fault.precise_trap", self.clock - cost,
                            self.clock, track=SIM, lane=self.id,
                            attrs={"phase": "os_other"})
            tel.counter("timing.precise_exceptions").inc()
        retry = self.system.hierarchy.access(self.id, addr, True)
        self.sb.append(_SbSlot(addr, self.clock + retry.latency,
                               missed=retry.hit_level != "L1"))
        self._oldest_checkpoint_start = self.clock

    def _precise_fault(self, addr: int) -> None:
        """A load/atomic (or SC store) was denied: precise handling."""
        self.stats.precise_exceptions += 1
        cfg = self.system.config
        # §5.3: drain the buffer first; faulting stores there go the
        # imprecise way before the precise handler runs.
        if any(s.faulted for s in self.sb):
            self._imprecise_exception()
        self.system.einject.mmio_clr(addr)
        cost = (cfg.os.trap_entry_cycles + cfg.os.dispatch_cycles
                + cfg.os.resolve_fault_cycles
                + cfg.os.context_switch_cycles)
        self.stats.os_other_cycles += cost
        self.clock += cost
        tel = self.tel
        if tel.enabled:
            tel.record_span("fault.precise_trap", self.clock - cost,
                            self.clock, track=SIM, lane=self.id,
                            attrs={"phase": "os_other", "addr": addr})
            tel.counter("timing.precise_exceptions").inc()


class TimingSystem:
    """Replays one trace per core against the shared hierarchy."""

    def __init__(self, config: SystemConfig,
                 traces: Sequence[Sequence[TraceOp]],
                 einject: Optional[EInject] = None,
                 handler: Optional[object] = None,
                 track_speculation: bool = False,
                 checkpoint_cap: Optional[int] = None,
                 early_detection_fraction: float = 0.0,
                 aso_precise: bool = False,
                 telemetry=None) -> None:
        """``checkpoint_cap`` enables ASO-with-k-checkpoints mode:
        stores stall at retirement when ``k`` store misses are already
        outstanding, interpolating between the SC baseline (cap 0-ish)
        and full WC (cap = ∞).

        ``early_detection_fraction`` models the Qiu & Dubois
        prefetch-based alternative the paper discusses (§1's second
        approach): that fraction of store faults is discovered by a
        prefetch *before* the store retires, so it is handled as a
        conventional precise exception (no FSB flow) — at the price of
        the precise-trap cost and the prefetch traffic it implies.

        ``aso_precise`` models the paper's §3 alternative: ASO keeps
        exceptions *precise* by rolling the core back to the
        checkpoint taken before the faulting store and re-executing —
        so a fault pays a rollback (the speculated work since the
        checkpoint is squashed and redone) plus a conventional precise
        trap, but never uses the FSB.  Performance-wise this matches
        WC in the fault-free common case; the silicon bill is what
        Table 3 and the checkpoint sweep quantify.
        """
        if len(traces) > config.cores:
            raise ValueError(
                f"{len(traces)} traces for {config.cores} cores")
        if not (0.0 <= early_detection_fraction <= 1.0):
            raise ValueError("early_detection_fraction must be in [0,1]")
        self.config = config
        self.checkpoint_cap = checkpoint_cap
        self.early_detection_fraction = early_detection_fraction
        self.aso_precise = aso_precise
        #: Ambient telemetry unless one is supplied explicitly; the
        #: default NULL context makes every hook a cheap no-op.
        self.telemetry = (telemetry if telemetry is not None
                          else _telemetry())
        self.einject = einject or EInject()
        self.memory = MemoryController(config.memory, self.einject)
        self.hierarchy = CoherentHierarchy(config, self.memory)
        self.handler = handler or MinimalHandler(config.os)
        self.track_speculation = track_speculation
        self.cores = [
            _TimingCore(self, i, trace) for i, trace in enumerate(traces)
        ]

    def run(self) -> TimingResult:
        """Advance cores in time order until every trace is consumed."""
        tel = self.telemetry
        if not tel.enabled:
            return self._run()
        with tel.span("timing.run",
                      consistency=str(self.config.core.consistency),
                      cores=len(self.cores)):
            result = self._run()
        tel.counter("timing.instructions").inc(
            result.total_instructions)
        return result

    def _run(self) -> TimingResult:
        heap = [(core.clock, core.id) for core in self.cores
                if not core.done]
        heapq.heapify(heap)
        while heap:
            _, core_id = heapq.heappop(heap)
            core = self.cores[core_id]
            if core.done:
                continue
            core.step()
            if not core.done:
                heapq.heappush(heap, (core.clock, core.id))
            else:
                core.finalize()
        spec = None
        if self.track_speculation:
            spec = [c.tracker.report() for c in self.cores
                    if c.tracker is not None]
        return TimingResult(
            config=self.config,
            core_stats=[c.stats for c in self.cores],
            speculation=spec,
        )


def run_trace(config: SystemConfig,
              traces: Sequence[Sequence[TraceOp]],
              einject: Optional[EInject] = None,
              handler: Optional[object] = None,
              track_speculation: bool = False,
              checkpoint_cap: Optional[int] = None,
              telemetry=None) -> TimingResult:
    """One-shot convenience wrapper."""
    return TimingSystem(config, traces, einject, handler,
                        track_speculation, checkpoint_cap,
                        telemetry=telemetry).run()
